"""Table 2: X-Stream (CPU) vs CuSha (in-GPU-memory), BFS.

Shape targets: the GPU wins on every input; the advantage is largest on
the skewed Kronecker graph and smallest on the road network. (The
paper's 3x-389x dynamic range compresses under a level-synchronous
model; see EXPERIMENTS.md.)
"""

from repro.bench.reporting import emit, format_table
from repro.bench.runners import table2_gpu_vs_cpu


def test_table2_xstream_vs_cusha(once):
    rows = once(table2_gpu_vs_cpu)
    text = format_table(
        "Table 2: BFS, X-Stream (CPU) vs CuSha (GPU)",
        ["graph", "X-Stream (ms)", "CuSha (ms)", "speedup", "paper XS", "paper CuSha", "paper speedup"],
        [
            [
                r["graph"],
                r["xstream_ms"],
                r["cusha_ms"],
                f"{r['speedup']:.1f}x",
                r["paper_xstream_ms"],
                r["paper_cusha_ms"],
                f"{r['paper_speedup']:.0f}x",
            ]
            for r in rows
        ],
    )
    emit("table2_gpu_vs_cpu", text, rows)
    by_graph = {r["graph"]: r["speedup"] for r in rows}
    assert all(s > 1 for s in by_graph.values())  # GPU always wins
    assert max(by_graph, key=by_graph.get) == "kron_g500-logn20"
    assert min(by_graph, key=by_graph.get) == "belgium_osm"
