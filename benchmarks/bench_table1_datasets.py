"""Table 1: the dataset inventory and in-/out-of-memory classification."""

from repro.bench.reporting import emit, format_table
from repro.bench.runners import table1_datasets
from repro.sim.specs import DeviceSpec, SCALE


def test_table1_datasets(once):
    rows = once(table1_datasets)
    device = DeviceSpec()
    table_rows = [
        [
            r["graph"],
            r["vertices"],
            r["edges"],
            f"{r['in_memory_size_mb']:.1f}MB",
            "in-memory" if r["classified_in_memory"] else "out-of-memory",
            f"{r['paper_vertices']:,}",
            f"{r['paper_edges']:,}",
            r["paper_size"],
            f"1/{r['scale']}",
        ]
        for r in rows
    ]
    text = format_table(
        "Table 1: datasets (stand-ins vs paper)",
        ["graph", "V", "E", "size", "class", "paper V", "paper E", "paper size", "scale"],
        table_rows,
        note=(
            f"Simulated device memory: {device.memory_bytes / 2**20:.1f} MiB "
            f"(K20c 4.8 GB / {SCALE}, byte-density corrected). Every stand-in "
            "must classify as in Table 1."
        ),
    )
    emit("table1_datasets", text, rows)
    # The reproduction's classification must match the paper's.
    from repro.graph.datasets import DATASETS

    for r in rows:
        assert r["classified_in_memory"] == DATASETS[r["graph"]].in_memory, r["graph"]
