"""Figures 13/14: GR speedup over GraphChi and X-Stream per (graph,

algorithm). Paper headline: average 13.4x / 5x, max 79x / 21x. The
reproduction's simulated GR is leaner than the real one (see
EXPERIMENTS.md), so averages land above the paper's; the orderings --
which algorithm and graph benefit most -- are the reproduction target.
"""

from repro.bench.paper_values import HEADLINES
from repro.bench.reporting import emit, format_table
from repro.bench.runners import ALGORITHMS, fig13_14_speedups, table3_out_of_memory


def test_fig13_14_gr_speedups(once):
    data = once(lambda: fig13_14_speedups(table3_out_of_memory()))
    rows = []
    for baseline in ("GraphChi", "X-Stream"):
        for name, per in data["speedups"][baseline].items():
            rows.append([baseline, name] + [f"{per[a]:.1f}x" for a in ALGORITHMS])
    text = format_table(
        "Figures 13/14: GR speedup over out-of-memory frameworks",
        ["baseline", "graph"] + list(ALGORITHMS),
        rows,
        note=(
            f"avg over GraphChi: {data['average']['GraphChi']:.1f}x (paper "
            f"{HEADLINES['avg_speedup_over_graphchi']}x), max "
            f"{data['max']['GraphChi']:.0f}x (paper {HEADLINES['max_speedup_over_graphchi']:.0f}x); "
            f"avg over X-Stream: {data['average']['X-Stream']:.1f}x (paper "
            f"{HEADLINES['avg_speedup_over_xstream']}x), max "
            f"{data['max']['X-Stream']:.0f}x (paper {HEADLINES['max_speedup_over_xstream']:.0f}x)"
        ),
    )
    emit("fig13_14_speedups", text, data)

    assert data["average"]["GraphChi"] > 1
    assert data["average"]["X-Stream"] > 1
    # GraphChi speedups dominate X-Stream speedups on average (13.4 vs 5).
    assert data["average"]["GraphChi"] > data["average"]["X-Stream"]
    assert data["max"]["GraphChi"] > data["max"]["X-Stream"]
