"""Extension benchmarks beyond the paper's figures: multi-GPU scaling

(future work 1), SSD-backed host (future work 2), adaptive CPU/GPU
placement (future work 4), and energy efficiency (future work 5).
"""

import numpy as np

from repro.algorithms import BFS, PageRank
from repro.bench.reporting import emit, format_table
from repro.bench.runners import get_gr, make_program, prepared_graph
from repro.core.multigpu import MultiGPUGraphReduce
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.core.scheduler import AdaptiveEngine
from repro.sim.energy import EnergyModel
from repro.sim.specs import HostSpec, MachineSpec


def test_multigpu_scaling(once):
    def run():
        graph = prepared_graph("kron_g500-logn21", "Pagerank")
        prog = lambda: make_program("Pagerank", "kron_g500-logn21")
        opts = GraphReduceOptions(cache_policy="never")
        out = {}
        for policy in ("replicated", "partitioned"):
            rows = {}
            for n in (1, 2, 4, 8):
                r = MultiGPUGraphReduce(
                    graph, num_devices=n, options=opts, frontier_policy=policy
                ).run(prog())
                rows[n] = {
                    "sim_time": r.sim_time,
                    "replication_mb": r.replication_bytes / 2**20,
                    "p2p_mb": r.p2p_bytes / 2**20,
                    "host_staged_mb": r.host_staged_bytes / 2**20,
                }
            out[policy] = rows
        return out

    data = once(run)
    rows = [
        [policy, n, cell["sim_time"],
         f"{data[policy][1]['sim_time'] / cell['sim_time']:.2f}x",
         f"{cell['replication_mb']:.1f}MB",
         f"{cell['p2p_mb']:.1f}MB",
         f"{cell['host_staged_mb']:.1f}MB"]
        for policy in data
        for n, cell in data[policy].items()
    ]
    text = format_table(
        "Extension: multi-device scaling, kron_g500-logn21 PageRank",
        ["frontier", "devices", "sim time (s)", "scaling",
         "replication", "peer DMA", "host-staged"],
        rows,
        note="Contiguous shard ownership with sparse changed-only "
        "replication; same-switch pairs (radix 4) use peer DMA, "
        "cross-switch pairs stage through host DRAM (Section 8 item 1).",
    )
    emit("ext_multigpu", text, data)
    for policy in ("replicated", "partitioned"):
        rows = data[policy]
        assert rows[2]["sim_time"] < rows[1]["sim_time"]
        # The committed 1->8 scaling floor (also gated by
        # cluster_pagerank_wallclock in repro bench-wallclock).
        assert rows[1]["sim_time"] / rows[8]["sim_time"] >= 2.0
        # Diminishing returns: 8 devices do not give 8x.
        assert rows[1]["sim_time"] / rows[8]["sim_time"] < 8
        # Topology: 2 and 4 devices share one switch, 8 span two.
        assert rows[2]["host_staged_mb"] == 0 and rows[2]["p2p_mb"] > 0
        assert rows[8]["host_staged_mb"] > 0
    for n in (2, 4, 8):
        assert (
            data["partitioned"][n]["replication_mb"]
            <= data["replicated"][n]["replication_mb"]
        )


def test_ssd_backing(once):
    def run():
        graph = prepared_graph("uk-2002", "BFS")
        prog = lambda: make_program("BFS", "uk-2002")
        small_host = MachineSpec(host=HostSpec(memory_bytes=20 * 2**20))
        dram = GraphReduce(
            graph, options=GraphReduceOptions(cache_policy="never")
        ).run(prog())
        ssd = GraphReduce(
            graph,
            machine=small_host,
            options=GraphReduceOptions(cache_policy="never", host_backing="ssd"),
        ).run(prog())
        return {
            "dram_s": dram.sim_time,
            "ssd_s": ssd.sim_time,
            "storage_busy_s": ssd.trace.total_duration("storage"),
            "slowdown": ssd.sim_time / dram.sim_time,
        }

    data = once(run)
    text = format_table(
        "Extension: SSD-backed host, uk-2002 BFS",
        ["host backing", "sim time (s)"],
        [["DRAM (32GB-class)", data["dram_s"]], ["SSD (spilled)", data["ssd_s"]]],
        note=f"slowdown {data['slowdown']:.1f}x; SSD busy {data['storage_busy_s']:.3f}s "
        "(Section 8 item 2).",
    )
    emit("ext_ssd", text, data)
    assert data["ssd_s"] > data["dram_s"]
    assert data["storage_busy_s"] > 0


def test_adaptive_placement(once):
    def run():
        # PageRank on a skewed graph: dense all-active start (GPU),
        # sparse convergence tail (CPU).
        graph = prepared_graph("orkut", "Pagerank")
        prog = lambda: make_program("Pagerank", "orkut")
        adaptive = AdaptiveEngine(graph).run(prog())
        gr = get_gr("orkut", "Pagerank")
        cpu_iters = sum(1 for p in adaptive.placement if p == "cpu")
        # And the all-CPU regime: a high-diameter traversal never earns
        # its PCIe bill.
        road = prepared_graph("cage15", "BFS")
        tail = AdaptiveEngine(road).run(make_program("BFS", "cage15"))
        return {
            "adaptive_s": adaptive.sim_time,
            "gpu_only_s": gr.sim_time,
            "cpu_iterations": cpu_iters,
            "gpu_iterations": len(adaptive.placement) - cpu_iters,
            "switches": adaptive.switches,
            "cage15_bfs_cpu_fraction": (
                sum(1 for p in tail.placement if p == "cpu") / max(len(tail.placement), 1)
            ),
        }

    data = once(run)
    text = format_table(
        "Extension: adaptive CPU/GPU placement, orkut PageRank",
        ["metric", "value"],
        [[k, v] for k, v in data.items()],
        note="Dense iterations run on the GPU, the sparse tail on the CPU "
        "(Section 8 item 4); high-diameter traversals go all-CPU.",
    )
    emit("ext_adaptive", text, data)
    assert data["cpu_iterations"] > 0
    assert data["gpu_iterations"] > 0
    assert data["switches"] >= 1
    assert data["cage15_bfs_cpu_fraction"] > 0.9


def test_energy_efficiency(once):
    def run():
        model = EnergyModel()
        out = {}
        for name in ("kron_g500-logn21", "nlpkkt160"):
            opt = get_gr(name, "Pagerank", optimized=True)
            unopt = get_gr(name, "Pagerank", optimized=False)
            e_opt = model.energy(opt.trace, makespan=opt.sim_time)
            e_unopt = model.energy(unopt.trace, makespan=unopt.sim_time)
            out[name] = {
                "optimized_j": e_opt.total_j,
                "unoptimized_j": e_unopt.total_j,
                "saving_pct": 100 * (1 - e_opt.total_j / e_unopt.total_j),
                "optimized_w": e_opt.average_watts,
            }
        return out

    data = once(run)
    rows = [
        [name, cell["unoptimized_j"], cell["optimized_j"], f"{cell['saving_pct']:.1f}%"]
        for name, cell in data.items()
    ]
    text = format_table(
        "Extension: energy of PageRank, unoptimized vs optimized GR (joules)",
        ["graph", "unoptimized", "optimized", "energy saved"],
        rows,
        note="Section 8 item 5: the data-movement optimizations cut energy "
        "roughly in proportion to time.",
    )
    emit("ext_energy", text, data)
    for cell in data.values():
        assert cell["optimized_j"] < cell["unoptimized_j"]
