"""Figure 17: percentage of iterations below 50% of the maximum lifetime

frontier size. BFS shows the highest low-activity percentage everywhere;
graphs with more low-activity iterations gain the most from dynamic
frontier management (cross-checked against Figure 15's improvements).
"""

import numpy as np

from repro.bench.reporting import emit, format_table
from repro.bench.runners import FIG16_ALGS, fig15_memcpy, fig17_low_activity


def test_fig17_low_activity(once):
    data = once(fig17_low_activity)
    rows = [
        [name] + [f"{per[alg]:.1f}%" for alg in FIG16_ALGS]
        for name, per in data.items()
    ]
    text = format_table(
        "Figure 17: % iterations below 50% of max frontier",
        ["graph"] + list(FIG16_ALGS),
        rows,
    )
    emit("fig17_low_activity", text, data)

    # BFS has the most low-activity iterations on most graphs and on
    # average (cage15's banded structure gives BFS a constant-width
    # wavefront, the one counterexample).
    wins = sum(1 for per in data.values() if per["BFS"] >= max(per.values()) - 1e-9)
    assert wins >= len(data) - 1
    import numpy as _np

    means = {alg: _np.mean([per[alg] for per in data.values()]) for alg in FIG16_ALGS}
    assert means["BFS"] >= max(means.values()) - 1e-9

    # Correlation with Figure 15: more low-activity iterations -> larger
    # memcpy reduction from frontier management (PR/CC columns).
    f15 = fig15_memcpy()
    xs, ys = [], []
    for name, per in data.items():
        for alg in ("Pagerank", "CC"):
            xs.append(per[alg])
            ys.append(f15["cells"][name][alg]["improvement_pct"])
    corr = float(np.corrcoef(xs, ys)[0, 1])
    assert corr > 0, f"expected positive correlation, got {corr:.2f}"
