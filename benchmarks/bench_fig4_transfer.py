"""Figure 4: the three CUDA data-exchange mechanisms, 100M doubles.

Shape: Pinned/UVA wins for sequential access (MLP + prefetch over PCIe);
explicit transfer wins for random access (data lands in fast memory);
pinned is catastrophic for random access -- the Section-3.2 rationale
for GraphReduce's explicit-transfer design.
"""

from repro.bench.reporting import emit, format_table
from repro.bench.runners import fig4_transfer


def test_fig4_transfer_mechanisms(once):
    data = once(fig4_transfer)
    rows = []
    for pattern, mechs in data.items():
        for mech, cell in mechs.items():
            rows.append([pattern, mech, cell["seconds"], f"{cell['gbps']:.2f} GB/s"])
    text = format_table(
        "Figure 4: transferring 100,000,000 doubles",
        ["access pattern", "mechanism", "seconds", "effective throughput"],
        rows,
    )
    emit("fig4_transfer", text, data)

    seq = {m: c["seconds"] for m, c in data["sequential"].items()}
    rnd = {m: c["seconds"] for m, c in data["random"].items()}
    assert seq["pinned"] < seq["explicit"] < seq["managed"]
    assert rnd["explicit"] < rnd["managed"] < rnd["pinned"]
    assert rnd["pinned"] > 5 * rnd["explicit"]
