"""Figure 15: memcpy time, optimized vs unoptimized GraphReduce.

Paper: memcpy is >95% of unoptimized execution; the Section-5
optimizations cut it by 51.5% on average and up to 78.8%, with the
largest cuts on low-activity workloads (BFS everywhere; PR/CC on
nlpkkt160- and uk-2002-like inputs).
"""

from repro.bench.paper_values import HEADLINES
from repro.bench.reporting import emit, format_table
from repro.bench.runners import ALGORITHMS, fig15_memcpy


def test_fig15_memcpy_optimization(once):
    data = once(fig15_memcpy)
    rows = []
    for name, per in data["cells"].items():
        for alg, cell in per.items():
            rows.append(
                [
                    name,
                    alg,
                    cell["unoptimized_memcpy_s"],
                    cell["optimized_memcpy_s"],
                    f"{cell['improvement_pct']:.1f}%",
                    f"{100 * cell['memcpy_fraction']:.1f}%",
                ]
            )
    text = format_table(
        "Figure 15: memcpy time, unoptimized vs optimized GR (seconds)",
        ["graph", "algorithm", "unopt memcpy", "opt memcpy", "improvement", "memcpy % of unopt total"],
        rows,
        note=(
            f"average improvement {data['average_improvement_pct']:.1f}% "
            f"(paper {HEADLINES['avg_memcpy_reduction_pct']}%), max "
            f"{data['max_improvement_pct']:.1f}% (paper {HEADLINES['max_memcpy_reduction_pct']}%)"
        ),
    )
    emit("fig15_memcpy", text, data)

    for name, per in data["cells"].items():
        for alg, cell in per.items():
            # The optimizations never increase memcpy time.
            assert cell["optimized_memcpy_s"] < cell["unoptimized_memcpy_s"], (name, alg)
            # Memcpy dominates unoptimized execution (paper: >95%).
            assert cell["memcpy_fraction"] > 0.75, (name, alg)
        # BFS (lowest activity + full phase elimination) benefits most.
        assert per["BFS"]["improvement_pct"] >= max(
            per[a]["improvement_pct"] for a in ALGORITHMS
        ) - 1e-9, name
    assert data["average_improvement_pct"] > 40.0
