"""Table 4: in-memory (small graph) performance -- MapGraph, CuSha, GR.

Shape targets: GR is comparable to the tuned in-GPU-memory frameworks;
MapGraph beats CuSha on the high-diameter road BFS; CuSha beats MapGraph
on kron PageRank; GR sits between or ahead.
"""

from repro.bench.paper_values import TABLE4
from repro.bench.reporting import emit, format_table
from repro.bench.runners import ALGORITHMS, table4_in_memory


def test_table4_in_memory(once):
    data = once(table4_in_memory)
    rows = []
    for name, cols in data.items():
        for fw in ("MapGraph", "CuSha", "GR"):
            rows.append(
                [name, fw]
                + [cols[fw][alg] for alg in ALGORITHMS]
                + [TABLE4[name][fw][alg] for alg in ALGORITHMS]
            )
    text = format_table(
        "Table 4: in-memory frameworks (simulated ms | paper ms)",
        ["graph", "framework"] + list(ALGORITHMS) + [f"paper {a}" for a in ALGORITHMS],
        rows,
        note="MG = MapGraph. Compare ratios: datasets are scaled per DESIGN.md.",
    )
    emit("table4_inmem", text, data)

    # GR runs its in-memory mode on every Table-4 graph: within ~4x of
    # the best tuned framework on every cell (the paper's "comparable").
    for name, cols in data.items():
        for alg in ALGORITHMS:
            best = min(cols["MapGraph"][alg], cols["CuSha"][alg])
            assert cols["GR"][alg] < 4 * best, (name, alg, cols)
    # Framework-specific strengths (Table 4's interesting cells):
    road = data["belgium_osm"]
    assert road["MapGraph"]["BFS"] < road["CuSha"]["BFS"]
    kron = data["kron_g500-logn20"]
    assert kron["CuSha"]["Pagerank"] < kron["MapGraph"]["Pagerank"]
