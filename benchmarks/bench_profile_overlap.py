"""Figure 5 revisited through the profiler: the same overlap ablation
(unoptimized -> compute-transfer -> +spray), but measured from the
bottleneck-attribution profiler's occupancy evidence instead of end
times -- overlap efficiency must rise as each optimization lands, and
the cost-model validation must hold in every configuration."""

from repro.bench.reporting import emit, format_table


def _run_ablation():
    from repro.algorithms import PageRank
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import rmat
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import build_profile

    g = rmat(12, 40_000, seed=7)
    # 8 partitions keeps Eq. (2) from collapsing to K=1 on a graph this
    # small, so the async configurations actually stage shards ahead.
    p = 8
    configs = {
        "unoptimized": GraphReduceOptions.unoptimized().replace(num_partitions=p),
        "compute-transfer": GraphReduceOptions(
            cache_policy="never", spray=False, num_partitions=p
        ),
        "+spray": GraphReduceOptions(cache_policy="never", num_partitions=p),
    }
    out = {"order": list(configs), "profiles": {}, "sim_times": {}}
    combined = MetricsRegistry()
    for name, opts in configs.items():
        result = GraphReduce(g, options=opts).run(PageRank(tolerance=1e-3))
        report = build_profile(result)
        doc = report.to_dict()
        # Keep the emitted artifact summary-sized: drop the raw busy
        # windows and the per-iteration list (profile.json keeps them).
        doc.pop("per_iteration")
        for eng in doc["engines"].values():
            eng.pop("busy_intervals")
        out["profiles"][name] = doc
        out["sim_times"][name] = result.sim_time
        combined.merge(result.observer.metrics)
    # Campaign-wide totals across every configuration's run.
    out["combined_counters"] = {
        n: c.value for n, c in sorted(combined.counters.items())
    }
    return out


def test_fig5_overlap_profile(once):
    data = once(_run_ablation)
    rows = []
    for name in data["order"]:
        prof = data["profiles"][name]
        rows.append(
            [
                name,
                f"{data['sim_times'][name] * 1e3:.3f}",
                prof["concurrent_shards"],
                f"{100 * prof['overlap']['efficiency']:.1f}%",
                f"{100 * prof['engines']['sm']['occupancy']:.1f}%",
                prof["verdict"]["bottleneck"],
            ]
        )
    text = format_table(
        "Figure 5 via profiler: pagerank/rmat12, P=8 (times in ms)",
        ["config", "time", "K", "overlap eff", "SM occ", "bottleneck"],
        rows,
    )
    emit("fig5_overlap_profile", text, data)

    unopt, ct, spray = (data["profiles"][n] for n in data["order"])
    # Synchronous single-stream execution hides nothing; each async
    # stage hides strictly more of the PCIe traffic than the last.
    assert unopt["overlap"]["efficiency"] == 0.0
    assert ct["overlap"]["efficiency"] > 0.2
    assert spray["overlap"]["efficiency"] > ct["overlap"]["efficiency"]
    # More hiding means less wall-clock.
    times = [data["sim_times"][n] for n in data["order"]]
    assert times[0] > times[1] > times[2]
    # The cost model holds in every configuration.
    for name in data["order"]:
        assert all(c["ok"] for c in data["profiles"][name]["model_validation"]), name
    # Merged registry saw every run: its byte total is the sum of the
    # three configurations' individual counters.
    total = sum(
        data["profiles"][n]["counters"]["movement.h2d.bytes"] for n in data["order"]
    )
    assert data["combined_counters"]["movement.h2d.bytes"] == total
