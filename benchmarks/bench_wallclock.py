"""Host fast-path wall-clock ablation: the three execution fast paths
(dense-frontier kernels, gather-plan cache, parallel shard compute)
toggled one at a time on power-iteration PageRank, verifying each
configuration is bit-identical to the slow path while the fully
enabled one clears the committed speedup floor. Wall-clock numbers are
emitted as informational context; the asserted quantities are the
same-machine speedup ratio and the exact-equality invariants."""

from repro.bench.reporting import emit, format_table


def _run_ablation():
    import time

    import numpy as np

    from repro.algorithms import PageRank
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import erdos_renyi
    from repro.obs import bench

    g = erdos_renyi(32_768, 500_000, seed=11, name="er-wallclock-bench")
    common = dict(
        cache_policy="never", num_partitions=4, observe=False, trace=False
    )
    configs = {
        "slow": GraphReduceOptions(
            **common, dense_fast_path=False, plan_cache=False
        ),
        "+dense": GraphReduceOptions(**common, plan_cache=False),
        "+plans": GraphReduceOptions(**common),
        "+parallel": GraphReduceOptions(**common, parallel_shards=4),
    }

    def run(opts):
        return GraphReduce(g, options=opts).run(
            PageRank(tolerance=None, max_iterations=20)
        )

    out = {"order": list(configs), "wall_ms": {}, "sim_times": {}}
    reference = None
    for name, opts in configs.items():
        run(opts)  # warm-up: allocators, plan builds, thread pool spin-up
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            result = run(opts)
            best = min(best, time.perf_counter() - t0)
        out["wall_ms"][name] = best * 1e3
        out["sim_times"][name] = result.sim_time
        if reference is None:
            reference = result
        else:
            # Every fast path must be an exact host-side rewrite: same
            # ranks bit for bit, same frontier trajectory, same
            # simulated device timeline.
            assert np.array_equal(result.vertex_values, reference.vertex_values)
            assert result.frontier_history == reference.frontier_history
            assert result.sim_time == reference.sim_time
    out["speedup"] = out["wall_ms"]["slow"] / out["wall_ms"]["+parallel"]
    return out


def test_fastpath_wallclock_ablation(once):
    data = once(_run_ablation)
    slow_ms = data["wall_ms"]["slow"]
    rows = [
        [name, f"{data['wall_ms'][name]:.1f}", f"{slow_ms / data['wall_ms'][name]:.2f}x"]
        for name in data["order"]
    ]
    text = format_table(
        "Host fast-path ablation: pagerank-power/er 32k/500k, P=4 (wall ms)",
        ["config", "wall", "speedup"],
        rows,
    )
    emit("fastpath_wallclock", text, data)

    # Simulated time is invariant under host-side rewrites.
    sims = set(data["sim_times"].values())
    assert len(sims) == 1, data["sim_times"]
    # The full stack must beat the slow path decisively. The per-stage
    # floor is looser than the CLI gate's (this ablation runs a smaller
    # graph where fixed overheads weigh more).
    assert data["speedup"] > 1.5, data["wall_ms"]
