"""Host fast-path wall-clock ablation: the three execution fast paths
(dense-frontier kernels, gather-plan cache, parallel shard compute)
toggled one at a time on power-iteration PageRank, verifying each
configuration is bit-identical to the slow path while the fully
enabled one clears the committed speedup floor. Wall-clock numbers are
emitted as informational context; the asserted quantities are the
same-machine speedup ratio and the exact-equality invariants."""

from repro.bench.reporting import emit, format_table


def _run_ablation():
    import time

    import numpy as np

    from repro.algorithms import PageRank
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import erdos_renyi
    from repro.obs import bench

    g = erdos_renyi(32_768, 500_000, seed=11, name="er-wallclock-bench")
    common = dict(
        cache_policy="never", num_partitions=4, observe=False, trace=False
    )
    configs = {
        "slow": GraphReduceOptions(
            **common, dense_fast_path=False, plan_cache=False
        ),
        "+dense": GraphReduceOptions(**common, plan_cache=False),
        "+plans": GraphReduceOptions(**common),
        "+parallel": GraphReduceOptions(**common, parallel_shards=4),
    }

    def run(opts):
        return GraphReduce(g, options=opts).run(
            PageRank(tolerance=None, max_iterations=20)
        )

    out = {"order": list(configs), "wall_ms": {}, "sim_times": {}}
    reference = None
    for name, opts in configs.items():
        run(opts)  # warm-up: allocators, plan builds, thread pool spin-up
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            result = run(opts)
            best = min(best, time.perf_counter() - t0)
        out["wall_ms"][name] = best * 1e3
        out["sim_times"][name] = result.sim_time
        if reference is None:
            reference = result
        else:
            # Every fast path must be an exact host-side rewrite: same
            # ranks bit for bit, same frontier trajectory, same
            # simulated device timeline.
            assert np.array_equal(result.vertex_values, reference.vertex_values)
            assert result.frontier_history == reference.frontier_history
            assert result.sim_time == reference.sim_time
    out["speedup"] = out["wall_ms"]["slow"] / out["wall_ms"]["+parallel"]
    return out


def _run_batch_axis(K):
    import time

    import numpy as np

    from repro.algorithms import BFSGather
    from repro.core.batch import BatchRunner
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import erdos_renyi

    g = erdos_renyi(32_768, 500_000, seed=11, name="er-wallclock-bench")
    sources = [(k * 2897) % g.num_vertices for k in range(K)]
    opts = GraphReduceOptions(
        cache_policy="never", num_partitions=4, observe=False, trace=False
    )
    engine = GraphReduce(g, options=opts)

    def batch_run():
        return BatchRunner(engine, batch_size=max(64, K)).run_bfs(sources)

    report = batch_run()  # warm-up: allocators, plan builds
    batch_wall = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        report = batch_run()
        batch_wall = min(batch_wall, time.perf_counter() - t0)

    solo_times, solo_cols = [], []
    for s in sources:
        t0 = time.perf_counter()
        solo_cols.append(engine.run(BFSGather(source=int(s))).vertex_values)
        solo_times.append(time.perf_counter() - t0)
    # Bit-identical per query: the batch contract, asserted per column.
    assert np.array_equal(report.values_matrix(), np.stack(solo_cols, axis=1))

    # A query completes when its column retires; charge it the batch
    # wall time prorated to the iterations it was live for.
    batch_iters = max(1, report.stats["batch_iterations"])
    completion = [batch_wall * q.iterations / batch_iters for q in report.queries]
    return {
        "queries": K,
        "batch_wall_ms": batch_wall * 1e3,
        "solo_wall_ms": sum(solo_times) * 1e3,
        "speedup": sum(solo_times) / batch_wall,
        "batch_p50_ms": float(np.percentile(completion, 50)) * 1e3,
        "batch_p99_ms": float(np.percentile(completion, 99)) * 1e3,
        "solo_p50_ms": float(np.percentile(solo_times, 50)) * 1e3,
        "solo_p99_ms": float(np.percentile(solo_times, 99)) * 1e3,
        "retired_early": report.stats["retired_early"],
    }


def test_batch_query_axis(once, queries):
    """Batched MS-BFS vs sequential solo runs at width ``--queries``.

    Records total wall time for both sides plus per-query p50/p99
    completion times: a batched query completes when its column
    retires, so its completion time is the batch wall prorated to the
    iterations it was live for, while a solo query's completion time is
    its own run. The asserted quantities are per-column bit-equality
    (inside the runner) and the amortization win itself.
    """
    data = once(_run_batch_axis, queries)
    text = format_table(
        f"Batched queries: ms-bfs/er 32k/500k, P=4, K={data['queries']} (wall ms)",
        ["side", "wall", "p50/query", "p99/query"],
        [
            ["batch", f"{data['batch_wall_ms']:.1f}",
             f"{data['batch_p50_ms']:.1f}", f"{data['batch_p99_ms']:.1f}"],
            ["solo x K", f"{data['solo_wall_ms']:.1f}",
             f"{data['solo_p50_ms']:.1f}", f"{data['solo_p99_ms']:.1f}"],
        ],
    )
    emit("batch_query_axis", text, data)
    # One shared scan must beat K separate scans; the committed CLI
    # gate (batch_bfs_wallclock) enforces the 2x floor at K=16, this
    # axis just has to stay profitable at whatever K was requested.
    assert data["speedup"] > 1.0, data


def test_fastpath_wallclock_ablation(once):
    data = once(_run_ablation)
    slow_ms = data["wall_ms"]["slow"]
    rows = [
        [name, f"{data['wall_ms'][name]:.1f}", f"{slow_ms / data['wall_ms'][name]:.2f}x"]
        for name in data["order"]
    ]
    text = format_table(
        "Host fast-path ablation: pagerank-power/er 32k/500k, P=4 (wall ms)",
        ["config", "wall", "speedup"],
        rows,
    )
    emit("fastpath_wallclock", text, data)

    # Simulated time is invariant under host-side rewrites.
    sims = set(data["sim_times"].values())
    assert len(sims) == 1, data["sim_times"]
    # The full stack must beat the slow path decisively. The per-stage
    # floor is looser than the CLI gate's (this ablation runs a smaller
    # graph where fixed overheads weigh more).
    assert data["speedup"] > 1.5, data["wall_ms"]
