"""Table 3: out-of-memory execution times -- GraphChi, X-Stream, GR.

Shape targets: GR wins nearly every cell; its advantage is largest on
traversal algorithms (BFS/SSSP) over skewed graphs and smallest on
PageRank; X-Stream beats GraphChi throughout.
"""

from repro.bench.paper_values import TABLE3
from repro.bench.reporting import emit, format_table
from repro.bench.runners import ALGORITHMS, table3_out_of_memory


def test_table3_out_of_memory(once):
    data = once(table3_out_of_memory)
    rows = []
    for name, cols in data.items():
        for fw in ("GraphChi", "X-Stream", "GR"):
            rows.append(
                [name, fw]
                + [cols[fw][alg] for alg in ALGORITHMS]
                + [TABLE3[name][fw][alg] for alg in ALGORITHMS]
            )
    text = format_table(
        "Table 3: out-of-memory frameworks (simulated seconds | paper seconds)",
        ["graph", "framework"] + [f"{a}" for a in ALGORITHMS] + [f"paper {a}" for a in ALGORITHMS],
        rows,
        note="Simulated times are at 1/64 dataset scale; compare ratios, not magnitudes.",
    )
    emit("table3_outofmem", text, data)

    for name, cols in data.items():
        for alg in ALGORITHMS:
            # X-Stream beats GraphChi everywhere in Table 3.
            assert cols["X-Stream"][alg] < cols["GraphChi"][alg], (name, alg)
        # GR wins BFS and SSSP on every out-of-memory graph.
        assert cols["GR"]["BFS"] < cols["X-Stream"]["BFS"], name
        assert cols["GR"]["SSSP"] < cols["X-Stream"]["SSSP"], name
    # Traversal speedups exceed PageRank speedups on the skewed graphs
    # (on cage15's constant BFS wavefront the effect inverts; the
    # paper's cage15 BFS/PR gap is also its smallest).
    for name in ("kron_g500-logn21", "orkut", "uk-2002"):
        cols = data[name]
        bfs_speedup = cols["X-Stream"]["BFS"] / cols["GR"]["BFS"]
        pr_speedup = cols["X-Stream"]["Pagerank"] / cols["GR"]["Pagerank"]
        assert bfs_speedup > pr_speedup, name
