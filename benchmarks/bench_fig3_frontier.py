"""Figure 3: frontier size vs iteration for four (graph, algorithm)

cases, showcasing the irregularity that motivates frontier management:
PageRank/CC start with every vertex active and decay; BFS starts at one
vertex, peaks, and falls.
"""

from repro.bench.reporting import emit, format_series
from repro.bench.runners import fig3_frontier


def test_fig3_frontier_dynamics(once):
    series = once(fig3_frontier)
    text = format_series("Figure 3: frontier size across iterations", series)
    emit("fig3_frontier", text, series)

    pr_cage = series["cage15-Pagerank"]
    pr_nlp = series["nlpkkt160-Pagerank"]
    bfs_cage = series["cage15-BFS"]
    cc_orkut = series["orkut-CC"]

    # (a)/(b): PageRank starts with the full vertex set and decays.
    assert pr_cage[0] == max(pr_cage)
    assert pr_nlp[0] == max(pr_nlp)
    # (b): nlpkkt's frontier collapses well before the run ends (the
    # paper's "drops sharply ... and remains low").
    t = 3 * len(pr_nlp) // 4
    assert pr_nlp[t] < 0.5 * pr_nlp[0]
    # cage15's PageRank stays high much longer than nlpkkt's -- the
    # input dependence the figure demonstrates.
    q = max(len(pr_nlp) // 4, 1)
    qc = max(len(pr_cage) // 4, 1)
    assert pr_cage[qc] / pr_cage[0] > pr_nlp[q] / pr_nlp[0]
    # (c): BFS starts at exactly one active vertex, rises, then falls.
    assert bfs_cage[0] == 1
    assert max(bfs_cage) > 100
    assert bfs_cage[-1] == 0
    # (d): CC starts full and monotone-ish decays to empty.
    assert cc_orkut[0] == max(cc_orkut)
    assert cc_orkut[-1] == 0
