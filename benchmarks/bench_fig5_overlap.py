"""Figure 5: compute-transfer and compute-compute overlap on an

out-of-core striped matrix multiplication (stripe = 50 rows).
"""

from repro.bench.reporting import emit, format_table
from repro.bench.runners import fig5_overlap


def test_fig5_overlap_schemes(once):
    data = once(fig5_overlap)
    sizes = data["sizes"]
    rows = []
    for n in sizes:
        rows.append(
            [
                n,
                data["times"]["unoptimized"][n] * 1e3,
                data["times"]["compute_transfer"][n] * 1e3,
                f"{data['speedups']['compute_transfer'][n]:.2f}x",
                data["times"]["compute_compute"][n] * 1e3,
                f"{data['speedups']['compute_compute'][n]:.2f}x",
            ]
        )
    text = format_table(
        "Figure 5: out-of-core matmul, stripe=50 (times in ms)",
        ["N", "unoptimized", "compute-transfer", "speedup", "+compute-compute", "speedup"],
        rows,
    )
    emit("fig5_overlap", text, data)

    for n in sizes:
        ct = data["speedups"]["compute_transfer"][n]
        cc = data["speedups"]["compute_compute"][n]
        assert ct > 1.0  # overlap always helps
        assert cc >= ct - 1e-9  # compute-compute adds on top
    # Small stripes underfill the machine, so compute-compute's gain is
    # largest at small N.
    assert data["speedups"]["compute_compute"][sizes[0]] > data["speedups"]["compute_compute"][sizes[-1]]
