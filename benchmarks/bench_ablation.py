"""Ablation (extension): one-at-a-time optimization knockouts on

kron_g500-logn21, plus the two beyond-paper extensions (gather fusion
keeping the update array on-device, and greedy shard caching).
"""

from repro.bench.reporting import emit, format_table
from repro.bench.runners import ablation_optimizations


def test_ablation_optimizations(once):
    data = once(ablation_optimizations)
    rows = []
    for alg, variants in data.items():
        for label, cell in variants.items():
            rows.append(
                [
                    alg,
                    label,
                    cell["total_s"],
                    cell["memcpy_s"],
                    f"{cell['h2d_bytes'] / 2**20:.1f}MB",
                    int(cell["kernel_launches"]),
                ]
            )
    text = format_table(
        "Ablation: GR optimization knockouts on kron_g500-logn21",
        ["algorithm", "variant", "total (s)", "memcpy (s)", "H2D", "kernels"],
        rows,
    )
    emit("ablation_optimizations", text, data)

    for alg, variants in data.items():
        opt = variants["optimized"]["total_s"]
        # Every knockout hurts (or at worst matches).
        assert variants["unoptimized"]["total_s"] > opt
        assert variants["no_fusion_elimination"]["total_s"] >= opt - 1e-9
        assert variants["no_async_spray"]["total_s"] >= opt - 1e-9
        # The extensions help (or at worst match).
        assert variants["greedy_cache_extension"]["total_s"] <= opt + 1e-9
    # Gather fusion only matters for gather algorithms.
    pr = data["Pagerank"]
    assert pr["fuse_gather_extension"]["memcpy_s"] < pr["optimized"]["memcpy_s"]
