"""Shared benchmark configuration.

Each benchmark regenerates one paper table or figure. The heavy
experiments run exactly once per session (``benchmark.pedantic`` with a
single round -- re-running a minutes-long simulated campaign for timing
statistics would measure nothing useful), and results are cached across
benchmark files through :mod:`repro.bench.runners`, so e.g. Figures
13/14/15/16/17 reuse the Table-3 executions.

Formatted outputs are printed and mirrored under ``results/``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--queries",
        type=int,
        default=16,
        help="batch width K for the batched-query wall-clock axis",
    )


@pytest.fixture
def queries(request):
    """Batch width K for ``bench_wallclock``'s batched-query axis."""
    return request.config.getoption("--queries")


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its

    value."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
