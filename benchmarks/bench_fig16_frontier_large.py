"""Figure 16: frontier dynamics on the large out-of-memory graphs for

BFS, PageRank and CC: BFS rises from 1 and falls; PR/CC start at |V| and
decay, at input-dependent rates (nlpkkt160 collapses fastest).
"""

from repro.bench.reporting import emit, format_series
from repro.bench.runners import fig16_frontier_large


def test_fig16_frontier_large_graphs(once):
    data = once(fig16_frontier_large)
    series = {
        f"{name}-{alg}": hist
        for name, per in data.items()
        for alg, hist in per.items()
    }
    text = format_series("Figure 16: frontier sizes, large graphs", series)
    emit("fig16_frontier_large", text, data)

    for name, per in data.items():
        bfs, pr, cc = per["BFS"], per["Pagerank"], per["CC"]
        assert bfs[0] == 1 and max(bfs) > 1  # climbs from a single vertex
        assert pr[0] == max(pr)  # starts with all vertices
        assert cc[0] == max(cc)
    # Input dependence: nlpkkt's PageRank frontier decays much faster
    # than cage15's (the paper's key insight from this figure).
    def tail_mass(hist):
        peak = max(hist)
        return sum(hist) / (peak * len(hist))

    assert tail_mass(data["nlpkkt160"]["Pagerank"]) < tail_mass(data["cage15"]["Pagerank"])
