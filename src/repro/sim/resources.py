"""Shared rate resources with water-filling allocation.

Two hardware behaviours recur throughout the modeled machine:

* A **copy engine** (one per PCIe direction on Kepler) serves one DMA at a
  time at link bandwidth; queued transfers from any stream are serviced
  FIFO back-to-back.
* The **SM pool** executes up to ``hyperq`` concurrent kernels; each kernel
  can consume at most its *demand* (how much of the machine its grid can
  occupy) and the pool's total throughput is shared by water-filling. A
  kernel launched over a tiny frontier leaves most of the machine idle,
  which a concurrent kernel from another shard can soak up -- exactly the
  paper's compute-compute scheme (Section 3.3).

Both are instances of :class:`FluidResource`: total capacity ``capacity``
(units/second), at most ``max_concurrent`` jobs in service, each job
capped at its own ``max_rate``, with fair water-filling of the residual
capacity. A copy engine is simply ``max_concurrent=1``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.engine import SimulationError, Simulator


class _Job:
    __slots__ = (
        "work", "remaining", "max_rate", "callback", "on_start", "rate",
        "start_time", "tag",
    )

    def __init__(
        self,
        work: float,
        max_rate: float,
        callback: Callable[[], None],
        tag,
        on_start: Callable[[], None] | None = None,
    ):
        self.work = work
        self.remaining = work
        self.max_rate = max_rate
        self.callback = callback
        self.on_start = on_start
        self.rate = 0.0
        self.start_time = -1.0
        self.tag = tag


class FluidResource:
    """A capacity-``C`` resource shared by jobs via water-filling.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Total service rate in work units per second.
    max_concurrent:
        Maximum jobs in service at once; excess jobs queue FIFO.
    name:
        Used in traces and error messages.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        max_concurrent: int | None = None,
        name: str = "resource",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent!r}")
        self.sim = sim
        self.capacity = float(capacity)
        self.max_concurrent = max_concurrent
        self.name = name
        self._active: list[_Job] = []
        self._queue: deque[_Job] = deque()
        self._last_update = sim.now
        self._completion_event = None
        self.busy_time = 0.0  # integral of (allocated rate / capacity) dt
        self.served_work = 0.0
        #: Utilization timeline: [start, end, fraction-of-capacity]
        #: segments covering every instant the resource served work.
        #: Adjacent segments at the same fraction merge, so the list
        #: length is bounded by the number of rate changes, not events.
        self.timeline: list[list[float]] = []

    # ------------------------------------------------------------------
    def submit(
        self,
        work: float,
        callback: Callable[[], None],
        max_rate: float | None = None,
        tag=None,
        on_start: Callable[[], None] | None = None,
    ) -> None:
        """Submit a job of ``work`` units; ``callback`` fires on completion.

        ``max_rate`` caps how fast this job may be served (defaults to the
        full capacity). ``on_start`` fires when the job enters service
        (after any FIFO queueing) -- how transfers distinguish queue wait
        from actual DMA time. Zero-work jobs complete after the current
        event.
        """
        if work < 0:
            raise ValueError(f"negative work {work!r}")
        rate_cap = self.capacity if max_rate is None else float(max_rate)
        if rate_cap <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate!r}")
        job = _Job(float(work), rate_cap, callback, tag, on_start)
        if work == 0:
            # Completes "immediately" but asynchronously, preserving the
            # invariant that callbacks never run inside submit().
            if on_start is not None:
                self.sim.after(0.0, on_start)
            self.sim.after(0.0, callback)
            return
        self._sync()
        if self.max_concurrent is not None and len(self._active) >= self.max_concurrent:
            self._queue.append(job)
        else:
            job.start_time = self.sim.now
            self._active.append(job)
            if job.on_start is not None:
                job.on_start()
        self._reallocate()

    @property
    def active_jobs(self) -> int:
        return len(self._active)

    @property
    def queued_jobs(self) -> int:
        return len(self._queue)

    def utilization_until(self, t_end: float) -> float:
        """Average fraction of capacity used from t=0 to ``t_end``."""
        if t_end <= 0:
            return 0.0
        self._sync()
        return min(1.0, self.busy_time / t_end)

    def busy_intervals(self) -> list[tuple[float, float]]:
        """Merged (start, end) windows during which any job was served."""
        merged: list[list[float]] = []
        for start, end, _frac in self.timeline:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        return [(s, e) for s, e in merged]

    def busy_seconds(self) -> float:
        """Length of the union of service windows (occupancy numerator)."""
        return sum(e - s for s, e in self.busy_intervals())

    def profile_snapshot(self) -> dict:
        """Occupancy data for the profiler, JSON-shaped.

        ``busy_seconds`` is wall time in service (union), ``busy_time``
        the capacity-weighted integral, ``served_work`` total work units
        delivered -- for a copy engine, exactly the bytes transferred.
        """
        return {
            "name": self.name,
            "capacity": self.capacity,
            "busy_seconds": self.busy_seconds(),
            "busy_time": self.busy_time,
            "served_work": self.served_work,
            "timeline": [list(seg) for seg in self.timeline],
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Advance all active jobs' remaining work up to sim.now."""
        dt = self.sim.now - self._last_update
        if dt < 0:
            raise SimulationError(f"{self.name}: clock moved backwards")
        if dt > 0:
            total_rate = 0.0
            for job in self._active:
                job.remaining -= job.rate * dt
                # Rounding tolerance: dt is a difference of two clock
                # values, so its absolute error grows with sim.now; at
                # rate r that shows up as ~r * now * eps work units.
                tol = 1e-9 * max(1.0, job.work) + job.rate * (
                    abs(self.sim.now) + 1.0
                ) * 1e-11
                if job.remaining < -tol:
                    raise SimulationError(
                        f"{self.name}: job overshot completion by {-job.remaining!r}"
                    )
                job.remaining = max(job.remaining, 0.0)
                total_rate += job.rate
            self.busy_time += (total_rate / self.capacity) * dt
            self.served_work += total_rate * dt
            if total_rate > 0.0:
                frac = total_rate / self.capacity
                last = self.timeline[-1] if self.timeline else None
                if (
                    last is not None
                    and last[1] >= self._last_update - 1e-15
                    and abs(last[2] - frac) <= 1e-12
                ):
                    last[1] = self.sim.now
                else:
                    self.timeline.append([self._last_update, self.sim.now, frac])
        self._last_update = self.sim.now

    def _water_fill(self) -> None:
        """Assign rates: each job gets min(demand, fair residual share)."""
        jobs = sorted(self._active, key=lambda j: j.max_rate)
        remaining = self.capacity
        n = len(jobs)
        for i, job in enumerate(jobs):
            share = remaining / (n - i)
            job.rate = min(job.max_rate, share)
            remaining -= job.rate

    def _reallocate(self) -> None:
        """Recompute rates and (re)schedule the next completion event."""
        if self._completion_event is not None:
            self.sim.cancel(self._completion_event)
            self._completion_event = None
        finished: list[_Job] = []
        while True:
            # Retire jobs whose remaining work is (numerically) zero.
            done = [j for j in self._active if j.remaining <= 1e-12 * max(1.0, j.work)]
            if done:
                self._active = [j for j in self._active if j not in done]
                finished.extend(done)
                while self._queue and (
                    self.max_concurrent is None or len(self._active) < self.max_concurrent
                ):
                    job = self._queue.popleft()
                    job.start_time = self.sim.now
                    self._active.append(job)
                    if job.on_start is not None:
                        job.on_start()
                continue
            if not self._active:
                break
            self._water_fill()
            t_next = min(j.remaining / j.rate for j in self._active)
            if self.sim.now + t_next > self.sim.now:
                self._completion_event = self.sim.after(t_next, self._on_completion)
                break
            # Residual work too small for the clock to represent its
            # completion: snap those jobs to done and retire them now,
            # otherwise the completion event would fire at the current
            # time forever (dt = 0 -> no progress).
            for j in self._active:
                if j.remaining / j.rate <= t_next:
                    j.remaining = 0.0
        for job in finished:
            job.callback()

    def _on_completion(self) -> None:
        self._completion_event = None
        self._sync()
        self._reallocate()
