"""Machine descriptions and calibrated cost constants.

The paper's testbed is a 16-core Xeon E5-2670 host (32 GB DDR3) with one
NVIDIA K20c (13 SMX, 4.8 GB usable GDDR5) over PCIe gen2 x16, CUDA 6.5.

The reproduction scales the machine *and* the datasets down by the same
factor ``SCALE`` (default 64): device memory is 4.8 GB / 64 = 75 MiB and
the Table-1 stand-in graphs carry ~1/64 of the paper's edges, so the
in-memory / out-of-memory classification and all byte-ratio-driven
behaviour match the paper while NumPy execution stays laptop-friendly.
Bandwidths, launch overheads and per-item rates are *not* scaled -- they
are physical properties of the modeled parts -- so simulated times come
out roughly 1/SCALE of the paper's wall times and every *ratio* (speedup,
memcpy fraction, optimization benefit) is directly comparable.

Every constant that feeds a cost model lives here so calibration is one
diff away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Down-scaling factor applied to device memory and dataset sizes.
SCALE = 64

#: The paper counts ~54 bytes per edge for its in-memory sizes (float
#: states, CSC+CSR copies, CUDA-aligned temporaries); the reproduction's
#: lean NumPy layout stores ~20 bytes per edge. Device memory is reduced
#: by the same ratio so Table 1's in-memory / out-of-memory classification
#: is preserved at reproduction scale.
BYTE_DENSITY_RATIO = 2.75


@dataclass(frozen=True)
class DeviceSpec:
    """A discrete accelerator (GPU) model."""

    name: str = "K20c-sim"
    #: usable global memory in bytes (paper: 4.8 GB, scaled by SCALE and
    #: by BYTE_DENSITY_RATIO -- see module docstring)
    memory_bytes: int = int(4.8 * 2**30 / SCALE / BYTE_DENSITY_RATIO)
    #: number of SMX multiprocessors (K20c: 13)
    sm_count: int = 13
    #: hardware queues -- concurrent kernels (Kepler Hyper-Q: 32)
    hyperq: int = 32
    #: PCIe gen2 x16 peak per direction, bytes/s -- what pinned zero-copy
    #: access approaches (Figure 4)
    pcie_peak_bandwidth: float = 6.0e9
    #: effective copy-engine bandwidth for explicit transfers from
    #: pageable host memory (the mechanism GraphReduce chose in
    #: Section 3.2): the driver bounces through a staging buffer, cutting
    #: throughput well below peak
    pcie_bandwidth: float = 3.3e9
    #: per-cudaMemcpyAsync driver/launch overhead, seconds
    memcpy_setup: float = 10e-6
    #: per-kernel launch overhead, seconds
    kernel_launch_overhead: float = 6e-6
    #: floor on a kernel's solo execution time (one "wave"), seconds
    kernel_min_time: float = 4e-6
    #: device memory bandwidth, bytes/s (K20c GDDR5 ~208 GB/s peak)
    memory_bandwidth: float = 150e9
    #: throughput for edge-centric phases with coalesced/sequential edge
    #: access and random (but on-device) vertex access, edges/s
    edge_rate_seq: float = 2.0e9
    #: throughput when edge access itself is random, edges/s
    edge_rate_random: float = 0.6e9
    #: throughput for vertex-centric phases (apply/gatherReduce), items/s
    vertex_rate: float = 2.0e9

    def kernel_rate(self, kind: str) -> float:
        """Items/second for a saturating kernel of the given kind."""
        rates = {
            "edge_seq": self.edge_rate_seq,
            "edge_random": self.edge_rate_random,
            "vertex": self.vertex_rate,
        }
        try:
            return rates[kind]
        except KeyError:
            raise ValueError(f"unknown kernel kind {kind!r}") from None


@dataclass(frozen=True)
class HostSpec:
    """The CPU host the accelerator is attached to."""

    name: str = "XeonE5-2670-sim"
    cores: int = 16
    #: host DRAM capacity, bytes (paper: 32 GB, scaled)
    memory_bytes: int = int(32 * 2**30) // SCALE
    #: peak DRAM bandwidth, bytes/s (4-channel DDR3-1600)
    memory_bandwidth: float = 51.2e9
    #: achievable multicore sequential streaming bandwidth, bytes/s
    stream_bandwidth: float = 25.0e9
    #: aggregate random-access rate across cores, accesses/s
    random_access_rate: float = 160e6
    #: aggregate scalar op throughput for graph kernels, ops/s
    compute_rate: float = 8.0e9
    #: SSD sequential read bandwidth, bytes/s (SATA-era drive, as in
    #: GraphChi's original target platform; used when the host memory
    #: spills to storage -- the paper's future-work item 2)
    ssd_bandwidth: float = 500e6
    #: concurrent requests the SSD serves at full rate
    ssd_queue_depth: int = 4


@dataclass(frozen=True)
class LinkSpec:
    """The inter-device fabric of a multi-accelerator node.

    The paper's testbed has one K20c, so this models its natural
    extension: a PCIe-gen2 switch hierarchy where devices hanging off
    the same switch can DMA peer-to-peer (one link crossing), while
    devices on different switches must stage through host memory (two
    crossings through the root complex).
    """

    name: str = "PCIe-gen2-switch"
    #: devices per switch; pairs within the same switch use peer DMA
    switch_radix: int = 4
    #: effective peer-to-peer DMA bandwidth, bytes/s (slightly below
    #: the 6 GB/s link peak; no host staging buffer in the path)
    p2p_bandwidth: float = 5.0e9
    #: per-peer-copy setup overhead, seconds (cheaper than a host-staged
    #: pair of cudaMemcpyAsync calls)
    p2p_setup: float = 8e-6


@dataclass(frozen=True)
class MachineSpec:
    """One heterogeneous node: host + attached accelerator."""

    device: DeviceSpec = field(default_factory=DeviceSpec)
    host: HostSpec = field(default_factory=HostSpec)
    #: inter-device fabric for multi-accelerator configurations
    link: LinkSpec = field(default_factory=LinkSpec)

    def with_device_memory(self, memory_bytes: int) -> "MachineSpec":
        """A copy of this machine with a different device memory size."""
        return replace(self, device=replace(self.device, memory_bytes=memory_bytes))


#: The paper's GPU at reproduction scale.
K20C = DeviceSpec()

#: The paper's host at reproduction scale.
XEON_E5_2670 = HostSpec()


def default_machine() -> MachineSpec:
    """The evaluation platform of Section 6.1 (scaled by ``SCALE``)."""
    return MachineSpec(device=K20C, host=XEON_E5_2670)
