"""Device memory accounting.

The allocator does not manage addresses -- the actual arrays live in host
NumPy memory -- it enforces the *capacity* of the simulated device, which
is what separates in-memory from out-of-memory graph processing in the
paper. In-GPU-memory frameworks (CuSha, MapGraph) raise
:class:`DeviceOOMError` on Table-1's "out-of-memory" graphs, while
GraphReduce streams shards through a bounded allocation.
"""

from __future__ import annotations


class DeviceOOMError(MemoryError):
    """Requested allocation exceeds simulated device memory."""

    def __init__(self, requested: int, free: int, capacity: int):
        self.requested = requested
        self.free = free
        self.capacity = capacity
        super().__init__(
            f"device OOM: requested {requested} B with {free} B free "
            f"of {capacity} B total"
        )


class DeviceMemoryAllocator:
    """Named-allocation capacity tracker with a high-water mark."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = int(capacity)
        self._allocations: dict[str, int] = {}
        self.allocated = 0
        self.high_water = 0

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name``; raises on OOM or reuse."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes!r}")
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if self.allocated + nbytes > self.capacity:
            raise DeviceOOMError(nbytes, self.free_bytes, self.capacity)
        self._allocations[name] = nbytes
        self.allocated += nbytes
        self.high_water = max(self.high_water, self.allocated)

    def free(self, name: str) -> int:
        """Release the named allocation; returns its size."""
        try:
            nbytes = self._allocations.pop(name)
        except KeyError:
            raise KeyError(f"no allocation named {name!r}") from None
        self.allocated -= nbytes
        return nbytes

    def contains(self, name: str) -> bool:
        return name in self._allocations

    def size_of(self, name: str) -> int:
        return self._allocations[name]

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.allocated

    def reset(self) -> None:
        """Drop every allocation (device reset)."""
        self._allocations.clear()
        self.allocated = 0
