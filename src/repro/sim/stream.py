"""CUDA-stream semantics on the simulated device.

A :class:`Stream` is an ordered queue of operations; operations on one
stream execute strictly in issue order, while operations on different
streams overlap subject to resource limits (copy engines, Hyper-Q slots).
This mirrors the CUDA execution model the paper's Data Movement Engine is
built on (Sections 4.3 and 5.1).

Supported operations:

* :class:`Memcpy` -- an async transfer; pays a per-call driver setup
  latency, then occupies the direction's copy engine FIFO at link
  bandwidth. Spray streams win precisely because setups on *different*
  streams overlap with in-flight DMA, while on a single stream they
  serialize.
* :class:`Kernel` -- pays a launch overhead then runs on the SM pool.
  Work is expressed in items (edges or vertices); a kernel whose grid is
  too small to fill the machine consumes only its occupancy fraction,
  letting concurrent kernels from other shards use the idle SMs
  (the paper's compute-compute scheme).
* :class:`Callback` -- host-side function, zero simulated time.
* :class:`EventRecord` / :class:`EventWait` -- cross-stream ordering.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.device import GPUDevice


class StreamEvent:
    """A CUDA event: recorded once, awaited by any number of streams."""

    def __init__(self, name: str = "event"):
        self.name = name
        self.recorded = False
        self.time: float | None = None
        self._waiters: list[Callable[[], None]] = []

    def _fire(self, now: float) -> None:
        self.recorded = True
        self.time = now
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter()

    def _add_waiter(self, callback: Callable[[], None]) -> None:
        if self.recorded:
            callback()
        else:
            self._waiters.append(callback)


class _Op:
    """Base operation; subclasses implement :meth:`start`."""

    label = ""

    def start(self, device: "GPUDevice", stream: "Stream", done: Callable[[], None]) -> None:
        raise NotImplementedError


class Memcpy(_Op):
    """Asynchronous host<->device copy of ``nbytes``."""

    __slots__ = ("nbytes", "direction", "label")

    def __init__(self, nbytes: int, direction: str = "h2d", label: str = ""):
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        self.nbytes = int(nbytes)
        self.direction = direction
        self.label = label

    def start(self, device, stream, done):
        engine = device.copy_engine(self.direction)
        spec = device.spec
        # Trace the *DMA service* interval (from entering the copy
        # engine, not from issue), so "memcpy time" counts transfer
        # occupancy rather than queueing behind other streams.
        state = {"t_service": device.sim.now}

        def mark_service():
            state["t_service"] = device.sim.now

        def finish():
            device.trace.record(
                state["t_service"],
                device.sim.now,
                self.direction,
                stream.name,
                self.nbytes,
                self.label,
            )
            done()

        def enqueue_dma():
            engine.submit(
                float(self.nbytes),
                finish,
                max_rate=spec.pcie_bandwidth,
                tag=self.label,
                on_start=mark_service,
            )

        device.sim.after(spec.memcpy_setup, enqueue_dma)


class Kernel(_Op):
    """A device kernel over ``items`` work items of a given ``kind``.

    ``work_seconds`` overrides the items/rate cost for fused kernels
    whose phases mix edge- and vertex-centric rates; ``items`` then only
    sizes the grid (occupancy). ``occupancy`` pins the fraction of the
    machine the grid can fill (e.g. threads/machine-width for a GEMM
    stripe); when omitted it is inferred from the work volume.
    """

    __slots__ = ("items", "kind", "label", "work_seconds", "occupancy")

    def __init__(
        self,
        items: int,
        kind: str = "edge_seq",
        label: str = "",
        work_seconds: float | None = None,
        occupancy: float | None = None,
    ):
        if items < 0:
            raise ValueError(f"negative work items {items!r}")
        if work_seconds is not None and work_seconds < 0:
            raise ValueError(f"negative work_seconds {work_seconds!r}")
        if occupancy is not None and not (0 < occupancy <= 1):
            raise ValueError(f"occupancy must be in (0, 1], got {occupancy!r}")
        self.items = int(items)
        self.kind = kind
        self.label = label
        self.work_seconds = work_seconds
        self.occupancy = occupancy

    def start(self, device, stream, done):
        spec = device.spec
        if self.work_seconds is None:
            rate = spec.kernel_rate(self.kind)
            # Machine-seconds of work; the SM pool has capacity 1.0.
            work = self.items / rate
        else:
            spec.kernel_rate(self.kind)  # still validate the kind
            work = self.work_seconds
        # Occupancy: fraction of the machine this grid can fill. A kernel
        # smaller than one full wave (kernel_min_time of work) leaves SMs
        # idle for concurrent kernels; solo it still takes kernel_min_time.
        if self.occupancy is not None:
            occupancy = self.occupancy
        else:
            occupancy = min(1.0, max(work / spec.kernel_min_time, 1e-6))
        t_issue = device.sim.now
        # The SM-service window (entry into the pool after launch
        # overhead and any Hyper-Q queueing) feeds the occupancy
        # profiler; the full issue-to-completion window stays the
        # interval's [start, end] so kernel_time semantics are unchanged.
        state = {"t_service": device.sim.now}

        def mark_service():
            state["t_service"] = device.sim.now

        def finish():
            device.trace.record(
                t_issue,
                device.sim.now,
                "kernel",
                stream.name,
                self.items,
                self.label,
                service_start=state["t_service"],
            )
            done()

        def launch():
            device.sm_pool.submit(
                work, finish, max_rate=occupancy, tag=self.label, on_start=mark_service
            )

        device.sim.after(spec.kernel_launch_overhead, launch)


class ResourceOp(_Op):
    """Occupy an arbitrary shared :class:`FluidResource` for ``work``

    units -- e.g. an SSD read ahead of an H2D copy when the host memory
    spilled to storage. Contends with every other stream using the same
    resource. Recorded under the ``storage`` trace category when
    ``record`` is set.
    """

    __slots__ = ("resource", "work", "max_rate", "label", "record")

    def __init__(self, resource, work: float, max_rate: float | None = None,
                 label: str = "", record: bool = True):
        if work < 0:
            raise ValueError(f"negative work {work!r}")
        self.resource = resource
        self.work = float(work)
        self.max_rate = max_rate
        self.label = label
        self.record = record

    def start(self, device, stream, done):
        t_issue = device.sim.now

        def finish():
            if self.record:
                device.trace.record(
                    t_issue, device.sim.now, "storage", stream.name, self.work, self.label
                )
            done()

        self.resource.submit(self.work, finish, max_rate=self.max_rate, tag=self.label)


class Callback(_Op):
    """Host callback: runs instantly when reached in stream order."""

    __slots__ = ("fn", "label")

    def __init__(self, fn: Callable[[], None], label: str = ""):
        self.fn = fn
        self.label = label

    def start(self, device, stream, done):
        self.fn()
        done()


class EventRecord(_Op):
    __slots__ = ("event", "label")

    def __init__(self, event: StreamEvent):
        self.event = event
        self.label = f"record:{event.name}"

    def start(self, device, stream, done):
        self.event._fire(device.sim.now)
        done()


class EventWait(_Op):
    __slots__ = ("event", "label")

    def __init__(self, event: StreamEvent):
        self.event = event
        self.label = f"wait:{event.name}"

    def start(self, device, stream, done):
        self.event._add_waiter(done)


class Stream:
    """An in-order operation queue on a :class:`~repro.sim.device.GPUDevice`."""

    def __init__(self, device: "GPUDevice", name: str):
        self.device = device
        self.name = name
        self._queue: deque[_Op] = deque()
        self._busy = False
        self._idle_waiters: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    def enqueue(self, op: _Op) -> "Stream":
        """Append an operation; returns self for chaining."""
        self._queue.append(op)
        if not self._busy:
            self._dispatch_next()
        return self

    def memcpy_h2d(self, nbytes: int, label: str = "") -> "Stream":
        return self.enqueue(Memcpy(nbytes, "h2d", label))

    def memcpy_d2h(self, nbytes: int, label: str = "") -> "Stream":
        return self.enqueue(Memcpy(nbytes, "d2h", label))

    def kernel(self, items: int, kind: str = "edge_seq", label: str = "") -> "Stream":
        return self.enqueue(Kernel(items, kind, label))

    def callback(self, fn: Callable[[], None], label: str = "") -> "Stream":
        return self.enqueue(Callback(fn, label))

    def record_event(self, event: StreamEvent) -> "Stream":
        return self.enqueue(EventRecord(event))

    def wait_event(self, event: StreamEvent) -> "Stream":
        return self.enqueue(EventWait(event))

    @property
    def idle(self) -> bool:
        return not self._busy and not self._queue

    def on_idle(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` once the stream next drains."""
        if self.idle:
            callback()
        else:
            self._idle_waiters.append(callback)

    # ------------------------------------------------------------------
    def _dispatch_next(self) -> None:
        if not self._queue:
            self._busy = False
            waiters, self._idle_waiters = self._idle_waiters, []
            for waiter in waiters:
                waiter()
            return
        self._busy = True
        op = self._queue.popleft()
        op.start(self.device, self, self._op_done)

    def _op_done(self) -> None:
        self._dispatch_next()
