"""Power and energy accounting (the paper's future work, Section 8

item 5: "performance and energy efficiency of the highly irregular
graph algorithm"). A simple component-level model over the device
trace: each component draws idle power for the whole makespan plus an
active increment while its intervals are in flight (busy spans, so
overlapping operations are not double-billed).

Default constants approximate a K20c (225 W TDP) in a dual-socket
Xeon E5-2670 node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class PowerModel:
    """Component power draws in watts."""

    device_idle: float = 25.0
    sm_active: float = 140.0       # added while any kernel runs
    copy_engine_active: float = 12.0  # added per direction while a DMA runs
    host_idle: float = 70.0
    host_active: float = 60.0      # added while the host drives transfers
    storage_active: float = 8.0


@dataclass(frozen=True)
class EnergyReport:
    """Joules by component plus the total."""

    makespan: float
    device_idle_j: float
    sm_j: float
    copy_j: float
    host_j: float
    storage_j: float

    @property
    def total_j(self) -> float:
        return (
            self.device_idle_j + self.sm_j + self.copy_j + self.host_j + self.storage_j
        )

    @property
    def average_watts(self) -> float:
        return self.total_j / self.makespan if self.makespan > 0 else 0.0


class EnergyModel:
    """Integrates a :class:`PowerModel` over a device trace."""

    def __init__(self, power: PowerModel | None = None):
        self.power = power or PowerModel()

    def energy(self, trace: TraceRecorder, makespan: float | None = None) -> EnergyReport:
        p = self.power
        span = trace.makespan() if makespan is None else makespan
        kernel_busy = trace.busy_span("kernel")
        h2d_busy = trace.busy_span("h2d")
        d2h_busy = trace.busy_span("d2h")
        any_copy = trace.busy_span("h2d", "d2h")
        storage_busy = trace.busy_span("storage")
        return EnergyReport(
            makespan=span,
            device_idle_j=p.device_idle * span,
            sm_j=p.sm_active * kernel_busy,
            copy_j=p.copy_engine_active * (h2d_busy + d2h_busy),
            host_j=p.host_idle * span + p.host_active * any_copy,
            storage_j=p.storage_active * storage_busy,
        )

    def efficiency(self, trace: TraceRecorder, edges_processed: float) -> float:
        """Traversed edges per joule -- the usual graph-energy metric."""
        report = self.energy(trace)
        return edges_processed / report.total_j if report.total_j > 0 else 0.0
