"""The simulated GPU: copy engines, SM pool, memory and streams.

Kepler-class devices have two DMA copy engines (one per PCIe direction),
so host-to-device and device-to-host transfers proceed full duplex, and
up to 32 hardware queues (Hyper-Q) feeding the SM pool. The GraphReduce
Data Movement Engine leans on both: concurrent shard transfers overlap
kernels, and spray streams keep all queues fed (Section 5.1).
"""

from __future__ import annotations

import itertools

from repro.sim.engine import Simulator
from repro.sim.memory import DeviceMemoryAllocator
from repro.sim.resources import FluidResource
from repro.sim.specs import DeviceSpec
from repro.sim.stream import Stream
from repro.sim.trace import TraceRecorder


class GPUDevice:
    """One simulated accelerator attached to the host over PCIe."""

    def __init__(
        self,
        sim: Simulator,
        spec: DeviceSpec | None = None,
        trace: TraceRecorder | None = None,
    ):
        self.sim = sim
        self.spec = spec or DeviceSpec()
        # Note: TraceRecorder has __len__, so an empty recorder is falsy
        # -- must compare against None, not truthiness.
        self.trace = trace if trace is not None else TraceRecorder()
        self.memory = DeviceMemoryAllocator(self.spec.memory_bytes)
        # One copy engine per direction: FIFO at link bandwidth.
        self._h2d = FluidResource(
            sim, self.spec.pcie_bandwidth, max_concurrent=1, name="h2d-engine"
        )
        self._d2h = FluidResource(
            sim, self.spec.pcie_bandwidth, max_concurrent=1, name="d2h-engine"
        )
        # SM pool: capacity normalized to 1.0 machine-seconds/second.
        self.sm_pool = FluidResource(
            sim, 1.0, max_concurrent=self.spec.hyperq, name="sm-pool"
        )
        self._streams: list[Stream] = []
        self._stream_ids = itertools.count()

    # ------------------------------------------------------------------
    def copy_engine(self, direction: str) -> FluidResource:
        if direction == "h2d":
            return self._h2d
        if direction == "d2h":
            return self._d2h
        raise ValueError(f"unknown direction {direction!r}")

    def create_stream(self, name: str | None = None) -> Stream:
        """Create a new stream (the CUDA default-stream caveats do not
        apply: every stream here is a non-blocking stream)."""
        if name is None:
            name = f"stream{next(self._stream_ids)}"
        stream = Stream(self, name)
        self._streams.append(stream)
        return stream

    @property
    def streams(self) -> tuple[Stream, ...]:
        return tuple(self._streams)

    def synchronize(self) -> None:
        """Run the simulator until every stream has drained

        (cudaDeviceSynchronize). Simulated time advances accordingly.
        """
        # Streams can enqueue follow-on work from callbacks, so iterate.
        while True:
            self.sim.run()
            if all(s.idle for s in self._streams):
                break

    def engines(self) -> dict[str, FluidResource]:
        """The shared hardware engines, keyed by profiler name."""
        return {"h2d": self._h2d, "d2h": self._d2h, "sm": self.sm_pool}

    def engine_snapshots(self) -> dict[str, dict]:
        """Per-engine occupancy data (see FluidResource.profile_snapshot)."""
        return {name: res.profile_snapshot() for name, res in self.engines().items()}

    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: int) -> float:
        """Analytic solo-transfer duration (setup + bytes over the link)."""
        return self.spec.memcpy_setup + nbytes / self.spec.pcie_bandwidth

    def kernel_time(self, items: int, kind: str = "edge_seq") -> float:
        """Analytic solo-kernel duration including launch overhead."""
        work = items / self.spec.kernel_rate(kind)
        return self.spec.kernel_launch_overhead + max(work, self.spec.kernel_min_time)
