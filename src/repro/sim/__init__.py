"""Discrete-event simulation of an accelerator-based HPC node.

This package is the hardware substrate for the GraphReduce reproduction.
The paper evaluates on a real NVIDIA K20c attached to a Xeon host over
PCIe; here we model the same machine with a discrete-event simulator:

* :mod:`repro.sim.engine` -- the event loop and simulated clock.
* :mod:`repro.sim.resources` -- shared rate resources (PCIe copy engines,
  the GPU SM pool) with water-filling bandwidth allocation and bounded
  concurrency, plus FIFO queueing.
* :mod:`repro.sim.stream` -- CUDA-stream semantics: operations issued to a
  stream execute in issue order; operations on different streams may
  overlap, bounded by the device's hardware queues (Hyper-Q).
* :mod:`repro.sim.specs` -- machine descriptions (a K20c-like device and a
  Xeon-E5-2670-like host) including every calibrated cost constant.
* :mod:`repro.sim.device` -- the simulated GPU: copy engines, SM pool,
  memory allocator and stream factory.
* :mod:`repro.sim.memory` -- device memory accounting with OOM errors.
* :mod:`repro.sim.transfer` -- models of the three CUDA host/device data
  exchange mechanisms compared in Figure 4 of the paper.
* :mod:`repro.sim.trace` -- operation timelines and memcpy/compute
  aggregation used to regenerate Figure 15.

Simulated time is completely decoupled from wall time: graph computation
runs eagerly in NumPy while the simulator accounts for when each transfer
and kernel would have started and finished on the modeled hardware.
"""

from repro.sim.engine import Simulator
from repro.sim.memory import DeviceMemoryAllocator, DeviceOOMError
from repro.sim.resources import FluidResource
from repro.sim.specs import (
    DeviceSpec,
    HostSpec,
    MachineSpec,
    K20C,
    XEON_E5_2670,
    default_machine,
)
from repro.sim.device import GPUDevice
from repro.sim.stream import Kernel, Memcpy, Stream
from repro.sim.trace import TraceRecorder

__all__ = [
    "Simulator",
    "FluidResource",
    "DeviceMemoryAllocator",
    "DeviceOOMError",
    "DeviceSpec",
    "HostSpec",
    "MachineSpec",
    "K20C",
    "XEON_E5_2670",
    "default_machine",
    "GPUDevice",
    "Stream",
    "Memcpy",
    "Kernel",
    "TraceRecorder",
]
