"""Models of the three CUDA host/device data-exchange mechanisms.

Figure 4 of the paper compares, for sequential and random access to a
100M-element double array:

* **Explicit H2D** (``cudaMemcpy`` from pageable memory): a staged copy
  over PCIe (pageable copies bounce through a driver staging buffer, well
  below link bandwidth) followed by accesses at device-memory speed.
  Best for *random* access -- the data ends up in fast memory.
* **Pinned / UVA zero-copy**: loads/stores cross PCIe directly. With
  sequential access, memory-level parallelism and prefetching drive the
  link near peak, making it the best sequential mechanism; with random
  access every load is an individual PCIe round trip with bounded
  outstanding transactions -- the worst case.
* **Managed (Unified) memory** (CUDA 6): pages migrate on fault. Pays
  per-page fault handling on first touch, then runs at device speed.

These orderings (pinned best sequential / worst random; explicit best
random) are exactly the Section-3.2 motivation for GraphReduce mapping
random accesses to device memory via explicit transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.specs import DeviceSpec, LinkSpec

#: Recognized access patterns.
PATTERNS = ("sequential", "random")

#: Mechanisms compared in Figure 4.
MECHANISMS = ("explicit", "pinned", "managed")


@dataclass(frozen=True)
class TransferModel:
    """Analytic timing for the three mechanisms on a given device."""

    spec: DeviceSpec
    #: pinned zero-copy sequential efficiency (MLP + prefetch)
    pinned_seq_efficiency: float = 0.92
    #: outstanding zero-copy transactions the SMs can keep in flight
    pinned_outstanding: int = 32
    #: PCIe round-trip latency per zero-copy transaction, seconds
    pcie_latency: float = 1.0e-6
    #: managed-memory page size, bytes
    page_size: int = 4096
    #: per-page fault-handling overhead, seconds
    fault_overhead: float = 3.0e-6
    #: device-memory random access rate, accesses/s
    device_random_rate: float = 1.0e9

    # ------------------------------------------------------------------
    def _device_access_time(self, nbytes: int, n_accesses: int, pattern: str) -> float:
        if pattern == "sequential":
            return nbytes / self.spec.memory_bandwidth
        return n_accesses / self.device_random_rate

    def explicit_time(self, nbytes: int, elem_size: int, pattern: str) -> float:
        """Pageable cudaMemcpy (spec.pcie_bandwidth is the effective

        staged-copy rate) + on-device access."""
        self._check(pattern)
        copy = self.spec.memcpy_setup + nbytes / self.spec.pcie_bandwidth
        return copy + self._device_access_time(nbytes, nbytes // elem_size, pattern)

    def pinned_time(self, nbytes: int, elem_size: int, pattern: str) -> float:
        """Zero-copy access over the PCIe link at near-peak bandwidth."""
        self._check(pattern)
        if pattern == "sequential":
            return nbytes / (self.spec.pcie_peak_bandwidth * self.pinned_seq_efficiency)
        # Random: each access is a latency-bound round trip; MLP overlaps
        # up to ``pinned_outstanding`` of them.
        n_accesses = nbytes // elem_size
        return n_accesses * self.pcie_latency / self.pinned_outstanding

    def managed_time(self, nbytes: int, elem_size: int, pattern: str) -> float:
        """First-touch page migration + on-device access."""
        self._check(pattern)
        n_pages = -(-nbytes // self.page_size)
        migrate = n_pages * self.fault_overhead + nbytes / self.spec.pcie_peak_bandwidth
        return migrate + self._device_access_time(nbytes, nbytes // elem_size, pattern)

    # ------------------------------------------------------------------
    def time(self, mechanism: str, nbytes: int, elem_size: int, pattern: str) -> float:
        fn = {
            "explicit": self.explicit_time,
            "pinned": self.pinned_time,
            "managed": self.managed_time,
        }
        try:
            return fn[mechanism](nbytes, elem_size, pattern)
        except KeyError:
            raise ValueError(f"unknown mechanism {mechanism!r}") from None

    def throughput(self, mechanism: str, nbytes: int, elem_size: int, pattern: str) -> float:
        """Useful bytes per second for the whole exchange+access."""
        return nbytes / self.time(mechanism, nbytes, elem_size, pattern)

    def compare(self, n_elements: int, elem_size: int = 8) -> dict[str, dict[str, float]]:
        """Figure-4 table: pattern -> mechanism -> seconds."""
        nbytes = n_elements * elem_size
        return {
            pattern: {
                mech: self.time(mech, nbytes, elem_size, pattern)
                for mech in MECHANISMS
            }
            for pattern in PATTERNS
        }

    @staticmethod
    def _check(pattern: str) -> None:
        if pattern not in PATTERNS:
            raise ValueError(f"unknown access pattern {pattern!r}")


@dataclass(frozen=True)
class InterconnectModel:
    """Analytic device-to-device transfer timing on a multi-GPU node.

    Two routes, chosen by switch topology (:class:`LinkSpec`):

    * **peer**: both devices hang off the same PCIe switch, so the copy
      is a single peer DMA -- one link crossing at ``p2p_bandwidth``.
    * **host-staged**: the devices sit on different switches; the copy
      bounces through host DRAM as a D2H followed by an H2D, each a
      full ``cudaMemcpyAsync`` with its own setup and staged-copy rate.

    The multi-device scheduler uses :meth:`peer_capable` to decide how
    many link crossings each replication pair enqueues on the simulated
    streams; the analytic times here serve reporting and benchmarks.
    """

    device: DeviceSpec
    link: LinkSpec

    def peer_capable(self, a: int, b: int) -> bool:
        """True when devices ``a`` and ``b`` share a switch (and differ)."""
        radix = max(self.link.switch_radix, 1)
        return a != b and a // radix == b // radix

    def peer_time(self, nbytes: int) -> float:
        """One peer DMA crossing."""
        return self.link.p2p_setup + nbytes / self.link.p2p_bandwidth

    def staged_time(self, nbytes: int) -> float:
        """D2H into host DRAM plus H2D out of it."""
        per_leg = self.device.memcpy_setup + nbytes / self.device.pcie_bandwidth
        return 2 * per_leg

    def transfer_time(self, a: int, b: int, nbytes: int) -> float:
        """Seconds to move ``nbytes`` from device ``a`` to device ``b``."""
        if a == b:
            return 0.0
        if self.peer_capable(a, b):
            return self.peer_time(nbytes)
        return self.staged_time(nbytes)

    def matrix(self, num_devices: int, nbytes: int) -> list[list[float]]:
        """All-pairs transfer seconds for a ``num_devices`` node."""
        return [
            [self.transfer_time(a, b, nbytes) for b in range(num_devices)]
            for a in range(num_devices)
        ]
