"""Event loop and simulated clock.

The simulator is a classic discrete-event engine: callbacks are scheduled
at absolute simulated times on a binary heap and executed in time order.
Ties are broken by insertion order so runs are fully deterministic.

All other :mod:`repro.sim` components (resources, streams, devices) hang
off one :class:`Simulator` instance; a GraphReduce run owns exactly one.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class SimulationError(RuntimeError):
    """Raised for causality violations or malformed schedules."""


class _Event:
    """A scheduled callback. Cancellation is a tombstone flag so the heap

    never needs re-ordering; cancelled entries are skipped on pop.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.at(2.0, lambda: order.append("b"))
    >>> _ = sim.at(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Returns a handle whose :meth:`cancel` removes the event. Scheduling
        in the past is a causality violation and raises.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time!r} before now={self.now!r}"
            )
        event = _Event(float(time), next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self.now + delay, callback)

    @staticmethod
    def cancel(event: _Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        event.cancelled = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the earliest pending event. Returns False when idle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains (or past ``until``).

        With ``until`` set, events strictly later than ``until`` stay
        queued and the clock advances exactly to ``until``.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                event.callback()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) queued events."""
        return sum(1 for e in self._heap if not e.cancelled)
