"""Operation timelines and the memcpy/compute breakdown.

Section 6.2.3 of the paper reports that memcpy occupies on average >95% of
total execution time for the large graphs and that the Section-5
optimizations cut memcpy time by 51.5% on average (Figure 15). The trace
recorder captures every simulated transfer and kernel interval so those
aggregates can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: Interval categories recorded by the device.
CATEGORIES = ("h2d", "d2h", "kernel", "storage")


def union_length(spans) -> float:
    """Total length of the union of (start, end) pairs."""
    total = 0.0
    cur_start: float | None = None
    cur_end = 0.0
    for start, end in sorted(spans):
        if cur_start is None:
            cur_start, cur_end = start, end
        elif start <= cur_end:
            cur_end = max(cur_end, end)
        else:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
    if cur_start is not None:
        total += cur_end - cur_start
    return total


@dataclass(frozen=True)
class Interval:
    """One completed operation on the simulated device."""

    start: float
    end: float
    category: str  # one of CATEGORIES
    stream: str
    amount: float  # bytes for copies, items for kernels
    label: str = ""
    #: When the operation entered *service* on its engine (kernels: SM
    #: entry after launch overhead and Hyper-Q queueing). None means the
    #: service window equals [start, end] -- memcpy intervals already
    #: trace the DMA service window.
    service_start: float | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def service_begin(self) -> float:
        """Start of the engine-service window (falls back to ``start``)."""
        return self.start if self.service_start is None else self.service_start


class TraceRecorder:
    """Accumulates :class:`Interval` records and computes aggregates."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.intervals: list[Interval] = []

    def record(
        self,
        start: float,
        end: float,
        category: str,
        stream: str,
        amount: float,
        label: str = "",
        service_start: float | None = None,
    ) -> None:
        if not self.enabled:
            return
        if category not in CATEGORIES:
            raise ValueError(f"unknown trace category {category!r}")
        if end < start:
            raise ValueError(f"interval ends before it starts: {start!r}..{end!r}")
        if service_start is not None and not (start <= service_start <= end):
            raise ValueError(
                f"service_start {service_start!r} outside interval {start!r}..{end!r}"
            )
        self.intervals.append(
            Interval(start, end, category, stream, amount, label, service_start)
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_duration(self, *categories: str) -> float:
        """Sum of interval durations in the given categories."""
        cats = categories or CATEGORIES
        return sum(i.duration for i in self.intervals if i.category in cats)

    def total_amount(self, *categories: str) -> float:
        cats = categories or CATEGORIES
        return sum(i.amount for i in self.intervals if i.category in cats)

    def busy_span(self, *categories: str) -> float:
        """Length of the union of intervals in the given categories.

        Unlike :meth:`total_duration` this does not double-count
        overlapping operations, so ``busy_span('h2d', 'd2h')`` is the time
        during which *any* transfer was in flight -- the paper's "memcpy
        time" once copies overlap compute.
        """
        cats = categories or CATEGORIES
        return union_length(
            (i.start, i.end) for i in self.intervals if i.category in cats
        )

    def service_busy_span(self, *categories: str) -> float:
        """Like :meth:`busy_span`, but over engine-*service* windows.

        For transfers the two are identical (memcpy intervals trace the
        DMA service); for kernels this excludes launch overhead and
        Hyper-Q queueing, so it equals the SM pool's busy time.
        """
        cats = categories or CATEGORIES
        return union_length(
            (i.service_begin, i.end) for i in self.intervals if i.category in cats
        )

    def makespan(self) -> float:
        """End time of the last recorded interval (0 when empty)."""
        return max((i.end for i in self.intervals), default=0.0)

    def memcpy_time(self) -> float:
        """Total transfer time (sum over both directions, Figure 15)."""
        return self.total_duration("h2d", "d2h")

    def memcpy_bytes(self) -> float:
        return self.total_amount("h2d", "d2h")

    def kernel_time(self) -> float:
        return self.total_duration("kernel")

    def filtered(self, predicate) -> Iterable[Interval]:
        return (i for i in self.intervals if predicate(i))

    def clear(self) -> None:
        self.intervals.clear()

    def __len__(self) -> int:
        return len(self.intervals)
