"""The Partition Engine (Section 4.2).

Divides the vertex set into disjoint *intervals* and builds one *shard*
per interval holding every edge with a source or destination inside it:
in-edges sorted by destination (CSC) and out-edges sorted by source
(CSR), so neither the Gather nor the Scatter phase ever transposes data
at runtime.

Interval selection answers the paper's three questions:

1. *Choice of interval*: edge-balanced -- each shard gets approximately
   equal in+out edges (the Shard Creator's load balancing).
2. *Number of shards*: enough that one shard (plus the resident vertex
   arrays) fits comfortably in device memory; see
   :meth:`PartitionEngine.choose_num_partitions`.
3. *Edge order*: CSC by destination / CSR by source, giving contiguous
   PCIe transfers, consecutive gather updates per vertex, and coalesced
   device access.

Alternative partitioning logics plug into :class:`PartitionLogicTable`,
mirroring the paper's user-pluggable Partition Logic Table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.graph.csr import CSR, build_csc, build_csr
from repro.graph.edgelist import EdgeList

#: Bytes of one vertex-id index slot (int32 on device).
IDX_BYTES = 4
#: Bytes of one float32 edge weight / update slot.
VAL_BYTES = 4
#: Bytes per indptr entry as stored on device (int64).
PTR_BYTES = 8


# ----------------------------------------------------------------------
# Interval selection strategies (the Partition Logic Table)
# ----------------------------------------------------------------------
def edge_balanced_from_loads(load: np.ndarray, num_partitions: int) -> np.ndarray:
    """Boundary math of :func:`edge_balanced_intervals` from a per-vertex
    load array alone -- shared with the external partitioner, which
    accumulates degrees in a streaming pass and never holds the edges.
    """
    n = len(load)
    if n == 0:
        return np.zeros(num_partitions + 1, dtype=np.int64)
    # Give every vertex a small epsilon so isolated-vertex runs still
    # split and no interval is forced empty.
    cum = np.cumsum(load.astype(np.float64) + 1e-9)
    total = cum[-1]
    targets = total * np.arange(1, num_partitions) / num_partitions
    inner = np.searchsorted(cum, targets, side="left") + 1
    boundaries = np.concatenate(([0], inner, [n])).astype(np.int64)
    return np.maximum.accumulate(boundaries)


def edge_balanced_intervals(edges: EdgeList, num_partitions: int) -> np.ndarray:
    """Interval boundaries equalizing per-shard (in + out) edge counts.

    Returns ``boundaries`` of length ``num_partitions + 1`` with
    ``boundaries[0] == 0`` and ``boundaries[-1] == num_vertices``.
    """
    if edges.num_vertices == 0:
        return np.zeros(num_partitions + 1, dtype=np.int64)
    load = edges.out_degrees() + edges.in_degrees()
    return edge_balanced_from_loads(load, num_partitions)


def vertex_balanced_intervals(edges: EdgeList, num_partitions: int) -> np.ndarray:
    """Equal-width vertex intervals (the naive alternative)."""
    n = edges.num_vertices
    return np.linspace(0, n, num_partitions + 1).astype(np.int64)


class PartitionLogicTable:
    """Named partitioning strategies; users may register their own."""

    def __init__(self) -> None:
        self._logics: dict[str, Callable[[EdgeList, int], np.ndarray]] = {}
        self.register("edge_balanced", edge_balanced_intervals)
        self.register("vertex_balanced", vertex_balanced_intervals)

    def register(self, name: str, fn: Callable[[EdgeList, int], np.ndarray]) -> None:
        self._logics[name] = fn

    def get(self, name: str) -> Callable[[EdgeList, int], np.ndarray]:
        try:
            return self._logics[name]
        except KeyError:
            raise KeyError(
                f"unknown partition logic {name!r}; registered: {sorted(self._logics)}"
            ) from None

    @property
    def names(self) -> list[str]:
        return sorted(self._logics)


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------
class ShardBytes:
    """Streaming-buffer byte accounting shared by every shard flavour.

    Everything here is a function of three counts --
    ``num_interval_vertices``, ``num_in_edges``, ``num_out_edges`` -- so
    the Data Movement Engine can size transfers for an in-RAM
    :class:`Shard` and an out-of-core lazy shard identically, without
    the latter ever faulting its arrays in from disk.
    """

    @property
    def num_edges(self) -> int:
        return self.num_in_edges + self.num_out_edges

    # ------------------------------------------------------------------
    # Streaming-buffer byte sizes (what the Data Movement Engine moves)
    # ------------------------------------------------------------------
    #: logical buffer name -> its constituent deep-copied sub-arrays.
    SUB_ARRAYS = {
        "in_topology": ("in_indptr", "in_indices"),
        "out_topology": ("out_indptr", "out_indices"),
        "edge_update_array": ("edge_update_array",),
        "vertex_update_array": ("vertex_update_array",),
        "in_weights": ("in_weights",),
        "out_weights": ("out_weights",),
        "in_edge_state": ("in_edge_state",),
        "out_edge_state": ("out_edge_state",),
    }

    def sub_array_bytes(self, with_weights: bool, with_edge_state: bool) -> dict[str, int]:
        """Sizes of each deep-copied sub-array of this shard.

        A shard is not one contiguous byte-array; each entry here needs
        its own ``cudaMemcpyAsync`` -- the fact the spray operation
        exploits (Section 5.1). Topology splits into the indptr and
        indices arrays of the CSC/CSR layouts.
        """
        nv = self.num_interval_vertices
        arrays = {
            "in_indptr": (nv + 1) * PTR_BYTES,
            "in_indices": self.num_in_edges * IDX_BYTES,
            "out_indptr": (nv + 1) * PTR_BYTES,
            "out_indices": self.num_out_edges * IDX_BYTES,
            "edge_update_array": self.num_in_edges * VAL_BYTES,
            "vertex_update_array": nv * VAL_BYTES,
        }
        if with_weights:
            arrays["in_weights"] = self.num_in_edges * VAL_BYTES
            arrays["out_weights"] = self.num_out_edges * VAL_BYTES
        if with_edge_state:
            arrays["in_edge_state"] = self.num_in_edges * VAL_BYTES
            arrays["out_edge_state"] = self.num_out_edges * VAL_BYTES
        return arrays

    def buffer_bytes(self, with_weights: bool, with_edge_state: bool) -> dict[str, int]:
        """Logical-buffer sizes (sums of their sub-arrays)."""
        sub = self.sub_array_bytes(with_weights, with_edge_state)
        out = {}
        for name, parts in self.SUB_ARRAYS.items():
            if all(p in sub for p in parts):
                out[name] = sum(sub[p] for p in parts)
        return out

    def expand_buffers(
        self, names, with_weights: bool, with_edge_state: bool
    ) -> dict[str, int]:
        """The deep-copy list for a set of logical buffers."""
        sub = self.sub_array_bytes(with_weights, with_edge_state)
        out = {}
        for name in names:
            for part in self.SUB_ARRAYS[name]:
                out[part] = sub[part]
        return out

    def total_bytes(self, with_weights: bool, with_edge_state: bool) -> int:
        return sum(self.buffer_bytes(with_weights, with_edge_state).values())


@dataclass
class Shard(ShardBytes):
    """All edges incident to one vertex interval (Figure 7).

    ``csc`` holds the interval's in-edges (rows are interval vertices,
    ``csc.indices`` their source vertices) and ``csr`` its out-edges.
    ``csc_weights``/``csr_weights`` are the static edge values in each
    layout; ``edge_update_array`` slots (one per in-edge) and the
    interval slice of the ``vertex_update_array`` live in the runtime's
    buffer pool and are sized from this shard's counts.
    """

    index: int
    start: int
    stop: int
    csc: CSR
    csr: CSR
    csc_weights: np.ndarray | None = None
    csr_weights: np.ndarray | None = None

    @property
    def num_interval_vertices(self) -> int:
        return self.stop - self.start

    @property
    def num_in_edges(self) -> int:
        return self.csc.num_edges

    @property
    def num_out_edges(self) -> int:
        return self.csr.num_edges


@dataclass
class ShardedGraph:
    """The Partition Engine's output: interval boundaries plus shards."""

    edges: EdgeList
    boundaries: np.ndarray
    shards: list[Shard]
    logic: str = "edge_balanced"
    full_csc: CSR = field(repr=False, default=None)
    full_csr: CSR = field(repr=False, default=None)

    @property
    def num_partitions(self) -> int:
        return len(self.shards)

    @property
    def num_vertices(self) -> int:
        return self.edges.num_vertices

    def interval_of(self, vertex: int) -> int:
        """Shard index owning a vertex."""
        return int(np.searchsorted(self.boundaries, vertex, side="right") - 1)

    def max_shard_bytes(self, with_weights: bool, with_edge_state: bool) -> int:
        return max(
            (s.total_bytes(with_weights, with_edge_state) for s in self.shards),
            default=0,
        )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class PartitionEngine:
    """Shard Creator + Graph Layout Engine + Partition Logic Table."""

    def __init__(self, logic_table: PartitionLogicTable | None = None):
        self.logic_table = logic_table or PartitionLogicTable()

    def partition(
        self,
        edges: EdgeList,
        num_partitions: int,
        logic: str = "edge_balanced",
    ) -> ShardedGraph:
        """Split ``edges`` into ``num_partitions`` shards."""
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions!r}")
        if num_partitions > max(edges.num_vertices, 1):
            num_partitions = max(edges.num_vertices, 1)
        boundaries = self.logic_table.get(logic)(edges, num_partitions)
        self._check_boundaries(boundaries, edges.num_vertices, num_partitions)
        csc = build_csc(edges)
        csr = build_csr(edges)
        shards = []
        for i in range(num_partitions):
            start, stop = int(boundaries[i]), int(boundaries[i + 1])
            shard_csc = csc.row_slice(start, stop)
            shard_csr = csr.row_slice(start, stop)
            csc_w = csr_w = None
            if edges.weights is not None:
                csc_w = edges.weights[shard_csc.edge_ids]
                csr_w = edges.weights[shard_csr.edge_ids]
            shards.append(
                Shard(i, start, stop, shard_csc, shard_csr, csc_w, csr_w)
            )
        return ShardedGraph(edges, boundaries, shards, logic, csc, csr)

    @staticmethod
    def choose_num_partitions(
        edges: EdgeList,
        device_memory: int,
        with_weights: bool,
        with_edge_state: bool,
        resident_bytes: int,
        target_fraction: float = 0.25,
        min_partitions: int = 1,
    ) -> int:
        """Pick P so a single shard fits in a ``target_fraction`` slice of

        the device memory left after resident buffers -- guaranteeing at
        least one (in practice several) shard can be loaded completely,
        per Section 4.2's requirement (2).
        """
        avail = device_memory - resident_bytes
        if avail <= 0:
            raise ValueError(
                f"resident buffers ({resident_bytes} B) exceed device memory "
                f"({device_memory} B); the vertex set does not fit"
            )
        # Per logical edge: one in-slot + one out-slot of topology, one
        # update slot, plus weight/state copies in both layouts.
        per_edge = 2 * IDX_BYTES + VAL_BYTES
        if with_weights:
            per_edge += 2 * VAL_BYTES
        if with_edge_state:
            per_edge += 2 * VAL_BYTES
        total_edge_bytes = edges.num_edges * per_edge
        budget = max(int(avail * target_fraction), 1)
        p = max(min_partitions, -(-total_edge_bytes // budget))
        return min(p, max(edges.num_vertices, 1))

    @staticmethod
    def _check_boundaries(boundaries: np.ndarray, n: int, p: int) -> None:
        if len(boundaries) != p + 1 or boundaries[0] != 0 or boundaries[-1] != n:
            raise ValueError(
                f"partition logic produced invalid boundaries {boundaries!r} "
                f"for n={n}, p={p}"
            )
        if np.any(np.diff(boundaries) < 0):
            raise ValueError("partition boundaries must be non-decreasing")
