"""Execution reports: phase-level breakdowns from the span tree + trace.

Turns a :class:`~repro.core.runtime.GraphReduceResult` into the
engineering view the paper's Section 6.2.3 discussion is based on --
where the time went (which phase, transfers vs kernels), how much
overlap the asynchronous schedule achieved, and what frontier skipping
saved.

Two sources feed the report:

* the runtime's **span tree** (:mod:`repro.obs`), which contributes the
  per-phase wall time (sum of the phase spans' barrier-to-barrier
  windows) and the structural shard counts; and
* the device **interval trace**, which contributes the byte and
  transfer/kernel-time attribution per phase label.

When the run carried no observer (``options.observe = False``) the
report falls back to the interval trace alone, exactly the pre-span
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runtime import GraphReduceResult


@dataclass
class PhaseBreakdown:
    """Aggregates for one phase group (label prefix before ':')."""

    name: str
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    transfer_time: float = 0.0
    kernel_time: float = 0.0
    kernel_launches: int = 0
    #: summed duration of this phase's spans (barrier to barrier); 0.0
    #: when the run carried no observer
    wall_time: float = 0.0
    #: shards streamed / skipped for this phase across all iterations
    shards: int = 0
    skipped: int = 0

    @property
    def total_time(self) -> float:
        return self.transfer_time + self.kernel_time


@dataclass
class ExecutionReport:
    sim_time: float
    memcpy_time: float
    kernel_time: float
    overlap_efficiency: float
    shard_skip_rate: float
    phases: dict[str, PhaseBreakdown] = field(default_factory=dict)
    iterations: int = 0
    #: counter snapshot from the observer ({} without one)
    counters: dict = field(default_factory=dict)

    def to_text(self) -> str:
        lines = [
            f"simulated time     : {self.sim_time:.6f} s",
            f"transfer/kernel    : {self.memcpy_time:.6f} s / {self.kernel_time:.6f} s",
            f"overlap efficiency : {100 * self.overlap_efficiency:.1f}% "
            "(busy work hidden per unit makespan)",
            f"shards skipped     : {100 * self.shard_skip_rate:.1f}%",
            f"iterations         : {self.iterations}",
            "",
            f"{'phase':18s} {'H2D':>10s} {'D2H':>10s} {'xfer (s)':>10s} "
            f"{'kernel (s)':>11s} {'launches':>9s} {'wall (s)':>10s}",
        ]
        for name, ph in sorted(self.phases.items(), key=lambda kv: -kv[1].total_time):
            lines.append(
                f"{name:18s} {ph.h2d_bytes / 2**20:8.2f}MB {ph.d2h_bytes / 2**20:8.2f}MB "
                f"{ph.transfer_time:10.6f} {ph.kernel_time:11.6f} {ph.kernel_launches:9d} "
                f"{ph.wall_time:10.6f}"
            )
        return "\n".join(lines)


def build_report(result: GraphReduceResult) -> ExecutionReport:
    """Aggregate the span tree and trace by phase-group name."""
    if result.trace is None or not result.trace.enabled:
        raise ValueError("result carries no trace (options.trace was off)")
    phases: dict[str, PhaseBreakdown] = {}
    counters: dict = {}

    observer = getattr(result, "observer", None)
    if observer is not None and observer.enabled:
        # Span tree first: every phase the runtime entered appears in the
        # report even when it moved no bytes (fully resident/cached runs).
        for sp in observer.find(category="phase"):
            ph = phases.setdefault(sp.name, PhaseBreakdown(sp.name))
            ph.wall_time += sp.duration
            ph.shards += int(sp.attrs.get("shards", 0))
            ph.skipped += int(sp.attrs.get("skipped", 0))
        counters = {
            name: c.value for name, c in sorted(observer.metrics.counters.items())
        }

    for interval in result.trace.intervals:
        name = interval.label.split(":", 1)[0] if interval.label else "(unlabeled)"
        ph = phases.setdefault(name, PhaseBreakdown(name))
        if interval.category == "h2d":
            ph.h2d_bytes += interval.amount
            ph.transfer_time += interval.duration
        elif interval.category == "d2h":
            ph.d2h_bytes += interval.amount
            ph.transfer_time += interval.duration
        elif interval.category == "kernel":
            ph.kernel_time += interval.duration
            ph.kernel_launches += 1

    busy = result.memcpy_time + result.kernel_time
    overlap = 0.0
    if result.sim_time > 0 and busy > 0:
        # 1.0 means busy work equals makespan (no hiding); > 1 means the
        # schedule hid that multiple of work through overlap.
        overlap = busy / result.sim_time
    total_shards = result.stats.shards_processed + result.stats.shards_skipped
    skip_rate = result.stats.shards_skipped / total_shards if total_shards else 0.0
    return ExecutionReport(
        sim_time=result.sim_time,
        memcpy_time=result.memcpy_time,
        kernel_time=result.kernel_time,
        overlap_efficiency=overlap,
        shard_skip_rate=skip_rate,
        phases=phases,
        iterations=result.iterations,
        counters=counters,
    )
