"""Batched query execution: K queries over one shard stream.

Running K independent queries (BFS from K sources, PageRank at K
damping factors, ...) as K solo runs streams every shard K times. The
shard stream is the expensive part -- H2D movement, plan building,
kernel launches all scale with shards touched -- while each query only
adds O(n) state. This module shares one stream across the batch:

* **Columnar layout** (float32): vertex state becomes an ``(n, K)``
  matrix, one column per query. gather/apply run once per shard per
  iteration on the whole matrix; every elementwise op broadcasts over
  the columns in the same order as the solo run, so each column stays
  bit-identical to its solo counterpart.
* **Bit-packed layout** (uint64, BFS only): the MS-BFS formulation.
  Each vertex holds ``W = ceil(K/64)`` words whose bit ``k`` means
  "reached by query k"; gather ORs parent words (64 traversals per
  machine word), and per-query depths are recovered exactly by
  recording the iteration at which each bit first appears.

**Union frontier.** The batch drives shard selection and direction
switching with the union of the per-query frontiers. Correctness rests
on the same invariant the pull direction already relies on: the
programs here are improvement-driven, so a column sees no spurious
update from vertices another query activated -- their in-neighbors
carry no better candidate in *that* column (each column's candidate is
a fold over the same in-edge sequence the solo run folds). Iteration 0
is the one exception -- other queries' sources are active but a solo
push run improves nothing on iteration 0 -- so apply is an explicit
no-op there, which keeps per-column *changed* sets (and therefore
retirement iterations) identical to solo runs.

A note on direction: a solo ``pull`` run gains a one-iteration head
start (with every vertex active on iteration 0, depth-1 vertices
already see their source), so solo iteration counts were never
direction-invariant -- only values are. The batch's iteration-0 no-op
instead pins every batch run to the canonical *natural-schedule*
(push) trajectory: per-query ``iterations`` equals the solo **push**
count under any batch direction, and values stay bit-identical in
every mode, the same invariant the solo engine documents for itself.

**Early retirement.** A query retires when its solo run would have
converged: the column's changed rows this iteration have zero total
out-degree, i.e. the solo frontier for the next iteration is empty.
Retired columns stop changing, the union frontier shrinks to the live
wavefronts, and the batch ends when the union empties -- exactly when
the last query retires.

:class:`BatchRunner` is the front end: submit queries (grouped by
program family), chunk to ``batch_size``, pick a layout, execute each
chunk in one :meth:`~repro.core.runtime.GraphReduce.run`, and hand
back per-query results in submission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.api import GASProgram
from repro.core.kernels import GatherSpec

_EMPTY_ROWS = np.empty(0, dtype=np.int64)

#: program families the batch executor can fuse
FAMILIES = ("bfs", "sssp", "cc", "pagerank")
LAYOUTS = ("auto", "columns", "bits")


def _validate_sources(sources, num_vertices: int) -> np.ndarray:
    """Source ids as int64, failing fast on out-of-range values."""
    arr = np.atleast_1d(np.asarray(sources))
    if arr.size == 0:
        raise ValueError("batch needs at least one source")
    if not np.issubdtype(arr.dtype, np.integer):
        try:
            cast = arr.astype(np.int64)
        except (TypeError, ValueError):
            raise ValueError(f"source ids must be integers, got {arr.dtype}")
        if not np.array_equal(cast, arr):
            raise ValueError("source ids must be integers")
        arr = cast
    arr = arr.astype(np.int64)
    bad = (arr < 0) | (arr >= num_vertices)
    if bad.any():
        culprit = int(arr[bad][0])
        raise ValueError(
            f"source {culprit} out of range for a graph with "
            f"{num_vertices} vertices (valid ids: 0..{num_vertices - 1})"
        )
    return arr


class _BatchLedger:
    """Per-query retirement bookkeeping (main process only).

    Tracks, per column, the iteration at which the matching solo run
    would have stopped: a solo run exits at the top of iteration ``t+1``
    when the frontier is empty, i.e. when its changed rows at iteration
    ``t`` have zero total out-degree. The ledger recovers each column's
    changed rows from value diffs against a kept previous-state copy
    (improvement-driven programs change a value iff the row changed),
    plus the iteration-0 source seed solo runs report without a value
    change.
    """

    def __init__(self, num_queries: int):
        self.num_queries = num_queries
        self.retired_at = np.full(num_queries, -1, dtype=np.int64)

    @property
    def alive(self) -> np.ndarray:
        return self.retired_at < 0

    def observe(self, col_rows_fn, out_degrees, iteration, seeds=None) -> None:
        """Retire columns whose solo frontier empties after ``iteration``.

        ``col_rows_fn(k)`` returns the rows column ``k`` changed this
        iteration; ``seeds`` (iteration 0 only) supplies the per-query
        source ids that count as changed without a value diff.
        """
        for k in np.flatnonzero(self.alive):
            if seeds is not None:
                col_rows = seeds[k : k + 1]
            else:
                col_rows = col_rows_fn(k)
            if col_rows.size and int(out_degrees[col_rows].sum()) > 0:
                continue
            self.retired_at[k] = iteration + 1

    def stats(self) -> dict:
        done = self.retired_at[self.retired_at >= 0]
        return {
            "queries": int(self.num_queries),
            "retired": int(done.size),
            "active": int(self.num_queries - done.size),
            "min_query_iterations": int(done.min()) if done.size else 0,
            "max_query_iterations": int(done.max()) if done.size else 0,
        }


class _MainOnlyState:
    """Strip main-process-only ledger state when pickling to workers.

    The retirement ledger, previous-state copies, and depth matrices
    are only read by ``end_iteration`` (a main-process hook); shipping
    them to process-pool workers would add O(n*K) bytes per worker for
    no reason. Workers lazily rebuild anything they do touch (the
    PageRank degree table).
    """

    _main_only: tuple = ()

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in self._main_only:
            state[key] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


class BatchedTraversal(_MainOnlyState, GASProgram):
    """Columnar multi-query traversal: BFS levels / SSSP / CC labels.

    One float32 column per query; gather folds each column over the
    same in-edge sequence as the solo program (``add_one`` / gather
    ``add_weight`` / ``copy`` with a min reduction), apply keeps
    per-column improvements. Solo equivalence is exact: every
    elementwise op matches the solo program's op and order per column.
    """

    gather_reduce = np.minimum
    gather_identity = np.inf
    pull_compatible = True

    _GATHER_KINDS = {"bfs": "add_one", "sssp": "add_weight", "cc": "copy"}

    def __init__(self, mode: str, sources=None, count: int | None = None):
        if mode not in self._GATHER_KINDS:
            raise ValueError(f"unknown traversal mode {mode!r}")
        self.mode = mode
        if mode == "cc":
            if count is None or count < 1:
                raise ValueError("cc batches need count >= 1")
            self.sources = None
            self.state_cols = int(count)
        else:
            if sources is None:
                raise ValueError(f"{mode} batches need sources")
            self.sources = np.asarray(sources, dtype=np.int64)
            self.state_cols = len(self.sources)
        self.num_queries = self.state_cols
        self.needs_weights = mode == "sssp"
        self.name = f"batch-{mode}x{self.num_queries}"
        self.ledger = _BatchLedger(self.num_queries)
        self._prev = None

    _main_only = ("_prev",)

    # -- initialization ------------------------------------------------
    def init_vertices(self, ctx):
        n = ctx.num_vertices
        if self.mode == "cc":
            vals = np.repeat(
                np.arange(n, dtype=self.vertex_dtype)[:, None], self.state_cols, axis=1
            )
        else:
            _validate_sources(self.sources, n)
            vals = np.full((n, self.state_cols), np.inf, dtype=self.vertex_dtype)
            vals[self.sources, np.arange(self.state_cols)] = 0.0
        self._prev = vals.copy()
        return vals

    def init_frontier(self, ctx):
        frontier = np.zeros(ctx.num_vertices, dtype=bool)
        if self.mode == "cc":
            frontier[:] = True
        else:
            frontier[self.sources] = True
        return frontier

    # -- phases --------------------------------------------------------
    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        if self.mode == "bfs":
            return src_vals + np.float32(1.0)
        if self.mode == "sssp":
            return src_vals + weights[:, None]
        return src_vals

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        if iteration == 0 and self.mode != "cc":
            # A solo run improves nothing on iteration 0 (only its
            # already-optimal source is active); replicating that keeps
            # per-column changed sets solo-identical even when one
            # query's source neighbors another's. The sources still
            # report changed once to seed FrontierActivate.
            return old_vals, np.isin(vids, self.sources)
        candidate = np.where(has_gather[:, None], gathered, np.inf).astype(
            old_vals.dtype
        )
        improved = candidate < old_vals
        new_vals = np.where(improved, candidate, old_vals)
        return new_vals, improved.any(axis=1)

    def gather_kernel_spec(self):
        return GatherSpec(kind=self._GATHER_KINDS[self.mode], reduce="min")

    # -- retirement ----------------------------------------------------
    def end_iteration(self, ctx, values, changed, iteration) -> None:
        rows = np.flatnonzero(changed)
        if rows.size:
            cur = values[rows]
            diff = cur != self._prev[rows]
            self._prev[rows] = cur
        else:
            diff = None

        def col_rows(k):
            return rows[diff[:, k]] if diff is not None else _EMPTY_ROWS

        seeds = self.sources if iteration == 0 and self.mode != "cc" else None
        self.ledger.observe(col_rows, ctx.out_degrees, iteration, seeds=seeds)

    def batch_stats(self) -> dict:
        return {"family": self.mode, "layout": "columns", **self.ledger.stats()}

    def query_values(self, vertex_values: np.ndarray, k: int) -> np.ndarray:
        return np.ascontiguousarray(vertex_values[:, k])


class BatchedPageRank(_MainOnlyState, GASProgram):
    """Columnar power-iteration PageRank: per-query damping + rounds.

    Only the ``tolerance=None`` (power iteration) formulation batches:
    its trajectory is a pure function of the iteration index, so
    per-column freezing after ``iterations[k]`` rounds reproduces each
    solo run exactly and stays deterministic in process-pool workers.
    Tolerance-driven PageRank is frontier-adaptive and not
    superset-safe; :class:`BatchRunner` rejects it.
    """

    gather_reduce = np.add
    gather_identity = 0.0
    always_active = True

    def __init__(self, dampings, iterations):
        damp = np.atleast_1d(np.asarray(dampings, dtype=np.float64))
        if damp.size == 0:
            raise ValueError("batch needs at least one damping factor")
        if np.any((damp <= 0.0) | (damp >= 1.0)):
            raise ValueError("damping factors must lie in (0, 1)")
        iters = np.broadcast_to(
            np.atleast_1d(np.asarray(iterations, dtype=np.int64)), damp.shape
        ).copy()
        if np.any(iters < 1):
            raise ValueError("per-query iteration counts must be >= 1")
        self.state_cols = int(damp.size)
        self.num_queries = self.state_cols
        # Mirror the solo constructor's float32 casts exactly.
        self._damp = damp.astype(np.float32)
        self._base = np.array([np.float32(1.0 - d) for d in damp], dtype=np.float32)
        self._col_iters = iters
        self._max_rounds = int(iters.max())
        self.name = f"batch-pagerank-x{self.num_queries}"
        self.ledger = _BatchLedger(self.num_queries)
        self._deg32 = None
        self._deg32_ctx = None

    _main_only = ("_deg32", "_deg32_ctx")

    def init_vertices(self, ctx):
        return np.full(
            (ctx.num_vertices, self.state_cols), 1.0, dtype=self.vertex_dtype
        )

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        deg = self._deg32
        if deg is None or self._deg32_ctx is not ctx:
            deg = np.maximum(ctx.out_degrees.astype(np.float32), 1.0)
            self._deg32, self._deg32_ctx = deg, ctx
        return src_vals / np.take(deg, src_ids)[:, None]

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        g = np.where(has_gather[:, None], gathered, np.float32(0.0)).astype(
            old_vals.dtype
        )
        new_vals = self._base + self._damp * g
        # Columns past their round budget freeze at their solo final
        # state; the update above is discarded for them.
        live = self._col_iters > iteration
        new_vals = np.where(live, new_vals, old_vals)
        return new_vals, np.ones(len(vids), dtype=bool)

    def converged(self, ctx, iteration, frontier_size) -> bool:
        return iteration >= self._max_rounds

    def gather_kernel_spec(self):
        return GatherSpec(kind="div_degree", reduce="add")

    def end_iteration(self, ctx, values, changed, iteration) -> None:
        done = (self._col_iters <= iteration + 1) & self.ledger.alive
        self.ledger.retired_at[done] = self._col_iters[done]

    def batch_stats(self) -> dict:
        return {"family": "pagerank", "layout": "columns", **self.ledger.stats()}

    def query_values(self, vertex_values: np.ndarray, k: int) -> np.ndarray:
        return np.ascontiguousarray(vertex_values[:, k])


class BitParallelBFS(_MainOnlyState, GASProgram):
    """MS-BFS: bit-parallel multi-source BFS, 64 traversals per word.

    Vertex state is ``W = ceil(K/64)`` uint64 words; bit ``k`` of the
    word block means "reached by query k". Gather ORs parent words
    (``GatherSpec("copy", reduce="or")``), apply ORs the gathered words
    into the state. Depths are recovered exactly: a bit first appears
    at precisely the solo BFS depth of that vertex (bits propagate one
    hop per iteration from the sources, and iteration 0 is a no-op just
    like the solo run), so stamping the iteration number at first
    appearance reproduces :class:`~repro.algorithms.bfs.BFSGather`
    levels bit-for-bit, unreached vertices staying at +inf.
    """

    vertex_dtype = np.uint64
    gather_dtype = np.uint64
    gather_reduce = np.bitwise_or
    gather_identity = 0
    pull_compatible = True

    def __init__(self, sources):
        self.sources = np.asarray(sources, dtype=np.int64)
        if self.sources.size == 0:
            raise ValueError("batch needs at least one source")
        self.num_queries = len(self.sources)
        self.state_cols = (self.num_queries + 63) // 64
        self.name = f"batch-bfs-bits-x{self.num_queries}"
        self.ledger = _BatchLedger(self.num_queries)
        self.depths = None
        self._prev = None

    _main_only = ("_prev", "depths")

    def init_vertices(self, ctx):
        n = ctx.num_vertices
        _validate_sources(self.sources, n)
        vals = np.zeros((n, self.state_cols), dtype=np.uint64)
        cols = np.arange(self.num_queries, dtype=np.int64)
        bits = np.uint64(1) << (cols % 64).astype(np.uint64)
        # ufunc.at: duplicate (source, word) pairs must all land.
        np.bitwise_or.at(vals, (self.sources, cols // 64), bits)
        self.depths = np.full((n, self.num_queries), np.inf, dtype=np.float32)
        self.depths[self.sources, cols] = 0.0
        self._prev = vals.copy()
        return vals

    def init_frontier(self, ctx):
        frontier = np.zeros(ctx.num_vertices, dtype=bool)
        frontier[self.sources] = True
        return frontier

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return src_vals

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        if iteration == 0:
            # Same no-op-plus-seed as the columnar layout: keeps each
            # bit's first appearance at exactly the solo BFS depth.
            return old_vals, np.isin(vids, self.sources)
        new_vals = old_vals | np.where(has_gather[:, None], gathered, np.uint64(0))
        return new_vals, (new_vals != old_vals).any(axis=1)

    def gather_kernel_spec(self):
        return GatherSpec(kind="copy", reduce="or")

    def end_iteration(self, ctx, values, changed, iteration) -> None:
        rows = np.flatnonzero(changed)
        K = self.num_queries
        if rows.size:
            cur = values[rows]
            newly = cur & ~self._prev[rows]
            self._prev[rows] = cur
            # Little-endian bit unpack: word w byte b bit i -> query
            # 64*w + 8*b + i, matching the shift layout above.
            bits = np.unpackbits(
                np.ascontiguousarray(newly).view(np.uint8), axis=1, bitorder="little"
            )[:, :K].astype(bool)
            r_idx, q_idx = np.nonzero(bits)
            if r_idx.size:
                self.depths[rows[r_idx], q_idx] = np.float32(iteration)
        else:
            bits = None

        def col_rows(k):
            return rows[bits[:, k]] if bits is not None else _EMPTY_ROWS

        seeds = self.sources if iteration == 0 else None
        self.ledger.observe(col_rows, ctx.out_degrees, iteration, seeds=seeds)

    def batch_stats(self) -> dict:
        return {
            "family": "bfs",
            "layout": "bits",
            "words": int(self.state_cols),
            **self.ledger.stats(),
        }

    def query_values(self, vertex_values: np.ndarray, k: int) -> np.ndarray:
        # Depths, not words: the per-query result a solo run produces.
        return np.ascontiguousarray(self.depths[:, k])


@dataclass(frozen=True)
class QueryResult:
    """One query's solo-equivalent result extracted from a batch."""

    index: int  #: submission order within the BatchRunner
    family: str
    params: dict
    values: np.ndarray  #: per-vertex result, bit-identical to the solo run
    iterations: int  #: iterations the solo run would have executed
    retired_early: bool  #: finished before the batch's last iteration


@dataclass
class BatchReport:
    """Everything one :meth:`BatchRunner.execute` produced."""

    queries: list[QueryResult]
    runs: list = field(default_factory=list)  #: GraphReduceResult per chunk
    stats: dict = field(default_factory=dict)

    def values_matrix(self) -> np.ndarray:
        """(n, K) matrix of per-query results in submission order."""
        return np.stack([q.values for q in self.queries], axis=1)


class BatchRunner:
    """Group, chunk, and execute independent queries over one engine.

    Queries enter via :meth:`submit` (or the ``run_*`` one-shots), are
    grouped by program family -- only same-family queries can share a
    state matrix -- chunked to ``batch_size``, and each chunk executes
    as a single :meth:`GraphReduce.run` over the shared shard stream.

    ``layout`` picks the state encoding: ``"columns"`` (float32 matrix,
    any family), ``"bits"`` (uint64 bitmasks, BFS only), or ``"auto"``
    (bits for BFS, columns otherwise).
    """

    def __init__(self, engine, batch_size: int = 64, layout: str = "auto"):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if layout not in LAYOUTS:
            raise ValueError(f"unknown layout {layout!r} (choose from {LAYOUTS})")
        self.engine = engine
        self.batch_size = int(batch_size)
        self.layout = layout
        self._queue: list[tuple[int, str, dict]] = []
        self._next_index = 0

    # -- submission ----------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.engine.edges.num_vertices

    def submit(self, family: str, **params) -> int:
        """Queue one query; returns its submission index."""
        if family not in FAMILIES:
            raise ValueError(f"unknown family {family!r} (choose from {FAMILIES})")
        if family in ("bfs", "sssp"):
            if "source" not in params:
                raise ValueError(f"{family} queries need a source=")
            src = _validate_sources([params["source"]], self.num_vertices)
            params = {**params, "source": int(src[0])}
        elif family == "pagerank":
            damping = float(params.get("damping", 0.85))
            iterations = int(params.get("iterations", 20))
            if not 0.0 < damping < 1.0:
                raise ValueError("damping must lie in (0, 1)")
            if iterations < 1:
                raise ValueError("iterations must be >= 1")
            params = {"damping": damping, "iterations": iterations}
        else:  # cc
            params = {}
        index = self._next_index
        self._next_index += 1
        self._queue.append((index, family, params))
        return index

    def _resolve_layout(self, family: str) -> str:
        if self.layout == "bits" and family != "bfs":
            raise ValueError(
                f"bits layout packs reachability bits and only supports bfs; "
                f"{family} queries need layout='columns'"
            )
        if family == "bfs" and self.layout in ("auto", "bits"):
            return "bits"
        return "columns"

    def _build_program(self, family: str, layout: str, chunk: list):
        params = [p for _, _, p in chunk]
        if family == "bfs":
            sources = [p["source"] for p in params]
            if layout == "bits":
                return BitParallelBFS(sources)
            return BatchedTraversal("bfs", sources=sources)
        if family == "sssp":
            return BatchedTraversal("sssp", sources=[p["source"] for p in params])
        if family == "cc":
            return BatchedTraversal("cc", count=len(chunk))
        return BatchedPageRank(
            dampings=[p["damping"] for p in params],
            iterations=[p["iterations"] for p in params],
        )

    # -- execution -----------------------------------------------------
    def execute(self, max_iterations: int | None = None) -> BatchReport:
        """Run every queued query; results come back in submission order."""
        if not self._queue:
            raise ValueError("no queries submitted")
        queue, self._queue = self._queue, []
        groups: dict[str, list] = {}
        for item in queue:
            groups.setdefault(item[1], []).append(item)

        results: dict[int, QueryResult] = {}
        runs = []
        chunks = 0
        for family, items in groups.items():
            layout = self._resolve_layout(family)
            for lo in range(0, len(items), self.batch_size):
                chunk = items[lo : lo + self.batch_size]
                program = self._build_program(family, layout, chunk)
                run = self.engine.run(program, max_iterations=max_iterations)
                runs.append(run)
                chunks += 1
                retired_at = program.ledger.retired_at
                for k, (index, fam, params) in enumerate(chunk):
                    solo_iters = int(retired_at[k])
                    retired = solo_iters >= 0
                    results[index] = QueryResult(
                        index=index,
                        family=fam,
                        params=params,
                        values=program.query_values(run.vertex_values, k),
                        iterations=solo_iters if retired else run.iterations,
                        retired_early=retired and solo_iters < run.iterations,
                    )

        ordered = [results[i] for i, _, _ in queue]
        stats = {
            "queries": len(ordered),
            "chunks": chunks,
            "retired_early": sum(1 for q in ordered if q.retired_early),
            "batch_iterations": sum(r.iterations for r in runs),
            "families": sorted(groups),
        }
        return BatchReport(queries=ordered, runs=runs, stats=stats)

    # -- one-shot helpers ----------------------------------------------
    def run_bfs(self, sources, max_iterations: int | None = None) -> BatchReport:
        for s in np.asarray(_validate_sources(sources, self.num_vertices)):
            self.submit("bfs", source=int(s))
        return self.execute(max_iterations=max_iterations)

    def run_sssp(self, sources, max_iterations: int | None = None) -> BatchReport:
        for s in np.asarray(_validate_sources(sources, self.num_vertices)):
            self.submit("sssp", source=int(s))
        return self.execute(max_iterations=max_iterations)

    def run_cc(self, count: int = 1, max_iterations: int | None = None) -> BatchReport:
        for _ in range(count):
            self.submit("cc")
        return self.execute(max_iterations=max_iterations)

    def run_pagerank(
        self, dampings, iterations=20, max_iterations: int | None = None
    ) -> BatchReport:
        damp = np.atleast_1d(np.asarray(dampings, dtype=np.float64))
        iters = np.broadcast_to(
            np.atleast_1d(np.asarray(iterations, dtype=np.int64)), damp.shape
        )
        for d, it in zip(damp, iters):
            self.submit("pagerank", damping=float(d), iterations=int(it))
        return self.execute(max_iterations=max_iterations)
