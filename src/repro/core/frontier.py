"""Dynamic Frontier Management (Section 5.2).

The Frontier Manager maintains the set of active vertices for the
current iteration (the computational frontier), marks the vertices whose
state changed in apply/gather, and derives the next frontier as their
one-hop out-neighborhood. Its per-shard activity counts are what let the
Data Movement Engine skip the memcpy and kernel launch for shards with
no active vertex or edge -- the paper's headline memcpy optimization --
and feed CTA load balancing in the Compute Engine.

It also records the per-iteration frontier sizes, which regenerate
Figures 3, 16 and 17.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.partition import ShardedGraph
from repro.obs.span import NULL_OBSERVER

#: Keep a compacted (sorted-vid) copy of the active frontier only while
#: it is this sparse; denser frontiers answer interval queries straight
#: from the mask, and the dense fast path takes over anyway.
COMPACT_MAX_FRACTION = 0.25


class FrontierManager:
    """Active/changed vertex tracking over a sharded graph."""

    def __init__(self, sharded: ShardedGraph, initial: np.ndarray, obs=None):
        n = sharded.num_vertices
        initial = np.asarray(initial, dtype=bool)
        if initial.shape != (n,):
            raise ValueError(
                f"initial frontier must be a bool mask of length {n}, "
                f"got shape {initial.shape}"
            )
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.sharded = sharded
        self.current = initial.copy()
        self.next = np.zeros(n, dtype=bool)
        self.changed = np.zeros(n, dtype=bool)
        self.iteration = 0
        #: frontier size per completed iteration (Figures 3/16)
        self.history: list[int] = [int(initial.sum())]
        self._starts = sharded.boundaries[:-1]
        self._stops = sharded.boundaries[1:]
        # Write-generation clocks consumed by :mod:`repro.core.plans`:
        # one per (mask, shard interval). Every mutation of a mask bumps
        # the epochs of the intervals it may have touched, so a cached
        # index plan recorded at epoch e for shard i is provably fresh
        # while ``*_epochs[i] == e`` -- without rescanning the mask. The
        # lock covers parallel shard compute (mark_changed runs on
        # worker threads).
        p = sharded.num_partitions
        self._plan_epoch = 0
        self.active_epochs = np.zeros(p, dtype=np.int64)
        self.changed_epochs = np.zeros(p, dtype=np.int64)
        self._epoch_lock = threading.Lock()
        self._recompact()

    def _recompact(self) -> None:
        """Refresh the compacted frontier after a ``current`` mutation.

        ``current`` is stable for the whole iteration (only ``next`` and
        ``changed`` mutate mid-iteration), so one flatnonzero at the
        mutation boundary replaces a per-shard-per-phase interval scan.
        Every method that rewrites ``current`` must end here.
        """
        n = len(self.current)
        size = int(self.current.sum())
        self._size = size
        if 0 < size <= int(n * COMPACT_MAX_FRACTION):
            self._compact = np.flatnonzero(self.current)
        else:
            self._compact = None

    # ------------------------------------------------------------------
    # Queries used to build each phase's shard work list
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self._size

    @property
    def compact_indices(self) -> np.ndarray | None:
        """Sorted indices of ``current``, or None when not compacted."""
        return self._compact

    def counts_per_shard(self, mask: np.ndarray) -> np.ndarray:
        """How many set vertices of ``mask`` fall in each interval.

        One ``np.add.reduceat`` over the interval starts instead of an
        O(V) prefix-sum array. Empty intervals need care: reduceat
        yields the *element* at the start index for an empty segment, so
        reduce only over non-empty intervals (their starts partition the
        mask) and leave the empty ones at zero.
        """
        lengths = self._stops - self._starts
        counts = np.zeros(len(lengths), dtype=np.int64)
        nonempty = np.flatnonzero(lengths)
        if len(mask) and len(nonempty):
            counts[nonempty] = np.add.reduceat(
                mask, self._starts[nonempty], dtype=np.int64
            )
        return counts

    def active_shards(self) -> np.ndarray:
        """Shards with at least one *active* vertex (gather/apply work)."""
        c = self._compact
        if c is not None:
            # O(P log F) from the compacted frontier instead of an O(V)
            # reduceat over the mask.
            per = np.searchsorted(c, self.sharded.boundaries)
            return np.flatnonzero(per[1:] > per[:-1])
        return np.flatnonzero(self.counts_per_shard(self.current) > 0)

    def changed_shards(self) -> np.ndarray:
        """Shards with at least one *changed* vertex (scatter/FA work)."""
        return np.flatnonzero(self.counts_per_shard(self.changed) > 0)

    def active_in(self, start: int, stop: int) -> np.ndarray:
        """Active vertex ids inside [start, stop)."""
        c = self._compact
        if c is not None:
            lo, hi = np.searchsorted(c, (start, stop))
            return c[lo:hi]
        return start + np.flatnonzero(self.current[start:stop])

    def changed_in(self, start: int, stop: int) -> np.ndarray:
        return start + np.flatnonzero(self.changed[start:stop])

    def dense_active_in(self, start: int, stop: int) -> bool:
        """Whether *every* vertex of [start, stop) is active."""
        c = self._compact
        if c is not None:
            lo, hi = np.searchsorted(c, (start, stop))
            return int(hi - lo) == stop - start
        return bool(self.current[start:stop].all())

    def sparse_count(self, mask: str, start: int, stop: int) -> int | None:
        """Cheap count of set ``mask`` vids in [start, stop), else None.

        The plan cache's sparse-bypass pre-check: it must cost far less
        than building the plan it might skip. ``active`` answers from
        the compacted frontier in O(log F) and reports None when the
        frontier is too dense to be compacted (no bypass candidate
        anyway); ``changed`` is one vectorized count over the interval.
        """
        if mask == "active":
            c = self._compact
            if c is None:
                return None
            lo, hi = np.searchsorted(c, (start, stop))
            return int(hi - lo)
        return int(np.count_nonzero(self.changed[start:stop]))

    def dense_changed_in(self, start: int, stop: int) -> bool:
        """Whether *every* vertex of [start, stop) changed."""
        return bool(self.changed[start:stop].all())

    # ------------------------------------------------------------------
    # Plan-cache epochs (see repro.core.plans)
    # ------------------------------------------------------------------
    def _bump(self, epochs: np.ndarray, shard_ids=None) -> None:
        with self._epoch_lock:
            self._plan_epoch += 1
            if shard_ids is None:
                epochs[:] = self._plan_epoch
            else:
                epochs[shard_ids] = self._plan_epoch

    def _shards_of(self, vids: np.ndarray) -> np.ndarray:
        """Interval index containing each vid (skipping empty intervals).

        ``vids`` must be sorted ascending (the update methods receive
        phase row sets, which are). The common call marks rows of a
        single shard, so first check whether the extremes land in the
        same interval -- O(log P) -- before bucketing every vid.
        """
        ends = np.searchsorted(self._stops, vids[[0, -1]], side="right")
        if ends[0] == ends[1]:
            return ends[:1]
        ids = np.searchsorted(self._stops, vids, side="right")
        return ids[np.r_[True, ids[1:] != ids[:-1]]]

    def invalidate_plans(self) -> None:
        """Out-of-band mask mutation: force every cached plan stale.

        Anything that writes ``current``/``changed`` directly instead of
        going through the update methods below must call this before the
        next phase runs with a plan cache attached.
        """
        self._bump(self.active_epochs)
        self._bump(self.changed_epochs)
        self._recompact()

    # ------------------------------------------------------------------
    # Updates from the Compute Engine
    # ------------------------------------------------------------------
    def mark_changed(self, vids: np.ndarray) -> None:
        self.changed[vids] = True
        if len(vids):
            self._bump(self.changed_epochs, self._shards_of(vids))
        self.obs.add("frontier.changes", len(vids))

    def activate_next(self, vids: np.ndarray, count: int | None = None) -> None:
        """FrontierActivate: these vertices are active next iteration.

        ``next`` carries no epochs: it only ever becomes visible to plan
        queries through :meth:`advance`, which bumps every interval.

        ``count`` overrides the recorded activation total: the dense
        fast path activates the *deduplicated* target set (``next[...] =
        True`` is idempotent, so the mask is identical) but must report
        the same per-out-edge activation count as the slow path.
        """
        self.next[vids] = True
        self.obs.add("frontier.activations", len(vids) if count is None else count)

    def activate_next_mask(self, mask: np.ndarray, count: int) -> None:
        """Mask-form FrontierActivate used by the dense fast path.

        Sets ``next`` wherever a precomputed bool target mask is set --
        identical to ``activate_next`` over the mask's set vids, one
        vectorized masked store instead of one write per out-edge. A
        masked store writes *only* the selected positions (no
        read-modify-write of the rest), so it composes with concurrent
        ``activate_next`` scatters from parallel shard compute exactly
        like the vids form does. ``count`` is the per-out-edge
        activation total the slow path would report.
        """
        self.next[mask] = True
        self.obs.add("frontier.activations", count)

    def activate_all(self) -> None:
        """The whole vertex set is this iteration's frontier.

        Used by ``always_active`` programs every iteration, and by the
        runtime's pull direction: a pull iteration executes with every
        vertex active (bottom-up gather), while ``next``/``changed``
        still derive the natural frontier for termination and the
        direction rule.
        """
        self.current[:] = True
        self._bump(self.active_epochs)
        self._recompact()

    def set_current(self, mask: np.ndarray) -> None:
        """Replace this iteration's frontier before any phase ran.

        The reseed path (:meth:`repro.core.api.GASProgram.
        reseed_frontier`): the recorded history entry for this iteration
        is corrected to the real frontier size.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.current.shape:
            raise ValueError(
                f"reseed frontier must be a bool mask of length "
                f"{len(self.current)}, got shape {mask.shape}"
            )
        self.current[:] = mask
        self._bump(self.active_epochs)
        self._recompact()
        self.history[-1] = self._size

    def advance(self) -> None:
        """BSP iteration boundary: promote next -> current."""
        self.current, self.next = self.next, self.current
        self.next[:] = False
        self.changed[:] = False
        self._bump(self.active_epochs)
        self._bump(self.changed_epochs)
        self.iteration += 1
        self._recompact()
        size = self._size
        self.history.append(size)
        self.obs.observe("frontier.size", size)

    # ------------------------------------------------------------------
    # Figure-17 statistic
    # ------------------------------------------------------------------
    def low_activity_fraction(self, threshold: float = 0.5) -> float:
        """Fraction of iterations whose frontier was below ``threshold``

        of the maximum lifetime frontier size (Figure 17's metric).
        """
        sizes = self.history
        if not sizes:
            return 0.0
        peak = max(sizes)
        if peak == 0:
            return 1.0
        below = sum(1 for s in sizes if s < threshold * peak)
        return below / len(sizes)


# ----------------------------------------------------------------------
# Direction-optimizing traversal (Beamer-style push/pull switching)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DirectionDecision:
    """One iteration's direction choice and the rule inputs behind it.

    Recorded on :class:`repro.core.runtime.GraphReduceResult` so tests
    (and the report) can replay the alpha/beta rule exactly.
    """

    iteration: int
    direction: str
    #: natural frontier size n_f (before any pull expansion)
    frontier_size: int
    #: out-edges of the natural frontier, m_f
    frontier_edges: int
    #: out-edges of still-unexplored vertices, m_u (frontier counted
    #: as explored)
    unexplored_edges: int


class DirectionController:
    """Per-iteration push/pull selection (Gunrock / Beamer 2012).

    Push (top-down) enumerates the frontier's out-edges; pull
    (bottom-up) gathers over every vertex's in-edges, which the host
    fast path serves from cached dense plans. The classic hysteresis
    rule picks between them:

    * push -> pull when the frontier's edge work exceeds its share of
      the unexplored edges: ``m_f > m_u / alpha``;
    * pull -> push when the frontier thins out again: ``n_f < n / beta``.

    Every input is derived from the *natural* (change-driven) frontier,
    which is identical in both directions for improvement-driven
    programs -- so the decision sequence is a deterministic function of
    (graph, program, alpha, beta), independent of execution backend.
    ``m_u`` counts each unexplored vertex's out-degree (for the
    symmetrized graphs traversal runs on, identical to in-degree).
    """

    def __init__(
        self,
        mode: str,
        out_degrees: np.ndarray,
        num_edges: int,
        num_vertices: int,
        alpha: float = 14.0,
        beta: float = 24.0,
    ):
        if mode not in ("push", "pull", "auto"):
            raise ValueError(f"unknown direction {mode!r}")
        if alpha <= 0 or beta <= 0:
            raise ValueError("direction alpha/beta must be positive")
        self.mode = mode
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._out_degrees = np.asarray(out_degrees, dtype=np.int64)
        self._num_vertices = int(num_vertices)
        self._unexplored_edges = int(num_edges)
        self._visited = np.zeros(num_vertices, dtype=bool)
        self._state = "push"
        self.decisions: list[DirectionDecision] = []

    def choose(
        self,
        frontier_mask: np.ndarray,
        iteration: int,
        vids: np.ndarray | None = None,
    ) -> str:
        """Pick this iteration's direction from the natural frontier.

        ``vids``, when given, is the compacted index form of
        ``frontier_mask``; the bookkeeping then costs O(F) instead of
        four O(V) passes, which matters on the long sparse tail of
        high-diameter traversals. Both forms yield identical decisions.
        """
        if vids is not None:
            new = vids[~self._visited[vids]]
            self._unexplored_edges -= int(self._out_degrees[new].sum())
            self._visited[vids] = True
            n_f = len(vids)
            m_f = int(self._out_degrees[vids].sum())
        else:
            new = frontier_mask & ~self._visited
            self._unexplored_edges -= int(self._out_degrees[new].sum())
            self._visited |= frontier_mask
            n_f = int(np.count_nonzero(frontier_mask))
            m_f = int(self._out_degrees[frontier_mask].sum())
        if self.mode == "auto":
            if self._state == "push" and m_f > self._unexplored_edges / self.alpha:
                self._state = "pull"
            elif self._state == "pull" and n_f < self._num_vertices / self.beta:
                self._state = "push"
            direction = self._state
        else:
            direction = self.mode
        self.decisions.append(
            DirectionDecision(
                iteration=iteration,
                direction=direction,
                frontier_size=n_f,
                frontier_edges=m_f,
                unexplored_edges=self._unexplored_edges,
            )
        )
        return direction
