"""Dynamic Frontier Management (Section 5.2).

The Frontier Manager maintains the set of active vertices for the
current iteration (the computational frontier), marks the vertices whose
state changed in apply/gather, and derives the next frontier as their
one-hop out-neighborhood. Its per-shard activity counts are what let the
Data Movement Engine skip the memcpy and kernel launch for shards with
no active vertex or edge -- the paper's headline memcpy optimization --
and feed CTA load balancing in the Compute Engine.

It also records the per-iteration frontier sizes, which regenerate
Figures 3, 16 and 17.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import ShardedGraph
from repro.obs.span import NULL_OBSERVER


class FrontierManager:
    """Active/changed vertex tracking over a sharded graph."""

    def __init__(self, sharded: ShardedGraph, initial: np.ndarray, obs=None):
        n = sharded.num_vertices
        initial = np.asarray(initial, dtype=bool)
        if initial.shape != (n,):
            raise ValueError(
                f"initial frontier must be a bool mask of length {n}, "
                f"got shape {initial.shape}"
            )
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.sharded = sharded
        self.current = initial.copy()
        self.next = np.zeros(n, dtype=bool)
        self.changed = np.zeros(n, dtype=bool)
        self.iteration = 0
        #: frontier size per completed iteration (Figures 3/16)
        self.history: list[int] = [int(initial.sum())]
        self._starts = sharded.boundaries[:-1]
        self._stops = sharded.boundaries[1:]

    # ------------------------------------------------------------------
    # Queries used to build each phase's shard work list
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return int(self.current.sum())

    def counts_per_shard(self, mask: np.ndarray) -> np.ndarray:
        """How many set vertices of ``mask`` fall in each interval."""
        prefix = np.zeros(len(mask) + 1, dtype=np.int64)
        np.cumsum(mask, out=prefix[1:])
        return prefix[self._stops] - prefix[self._starts]

    def active_shards(self) -> np.ndarray:
        """Shards with at least one *active* vertex (gather/apply work)."""
        return np.flatnonzero(self.counts_per_shard(self.current) > 0)

    def changed_shards(self) -> np.ndarray:
        """Shards with at least one *changed* vertex (scatter/FA work)."""
        return np.flatnonzero(self.counts_per_shard(self.changed) > 0)

    def active_in(self, start: int, stop: int) -> np.ndarray:
        """Active vertex ids inside [start, stop)."""
        return start + np.flatnonzero(self.current[start:stop])

    def changed_in(self, start: int, stop: int) -> np.ndarray:
        return start + np.flatnonzero(self.changed[start:stop])

    # ------------------------------------------------------------------
    # Updates from the Compute Engine
    # ------------------------------------------------------------------
    def mark_changed(self, vids: np.ndarray) -> None:
        self.changed[vids] = True
        self.obs.add("frontier.changes", len(vids))

    def activate_next(self, vids: np.ndarray) -> None:
        """FrontierActivate: these vertices are active next iteration."""
        self.next[vids] = True
        self.obs.add("frontier.activations", len(vids))

    def advance(self) -> None:
        """BSP iteration boundary: promote next -> current."""
        self.current, self.next = self.next, self.current
        self.next[:] = False
        self.changed[:] = False
        self.iteration += 1
        size = int(self.current.sum())
        self.history.append(size)
        self.obs.observe("frontier.size", size)

    # ------------------------------------------------------------------
    # Figure-17 statistic
    # ------------------------------------------------------------------
    def low_activity_fraction(self, threshold: float = 0.5) -> float:
        """Fraction of iterations whose frontier was below ``threshold``

        of the maximum lifetime frontier size (Figure 17's metric).
        """
        sizes = [s for s in self.history if True]
        if not sizes:
            return 0.0
        peak = max(sizes)
        if peak == 0:
            return 1.0
        below = sum(1 for s in sizes if s < threshold * peak)
        return below / len(sizes)
