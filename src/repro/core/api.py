"""The GraphReduce user interface (Section 4.1).

Programmers express a graph algorithm by subclassing :class:`GASProgram`
and defining up to four device functions -- ``gather_map``,
``gather_reduce`` (a NumPy ufunc, so the Compute Engine can segment-
reduce it vertex-centrically), ``apply`` and ``scatter`` -- together with
the vertex/edge state dtypes. The runtime detects which phases are
defined and the Phase Fusion Engine eliminates or fuses the rest
(Section 5.3), exactly as the paper's BFS defines only ``apply``.

All functions are *vectorized*: they receive NumPy arrays covering every
active edge (or vertex) of one shard and must return arrays of the same
length. This is the reproduction's analogue of the paper's
``__host__ __device__`` scalar functions, which CUDA maps over threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import RuntimeContext


class GASProgram:
    """Base class for user algorithms.

    Class attributes
    ----------------
    vertex_dtype / gather_dtype / edge_dtype:
        NumPy dtypes of the vertex values, gathered partial results, and
        mutable per-edge state (``None`` when edges carry no mutable
        state -- true for all four paper algorithms).
    gather_reduce:
        The |+| combiner of Section 2.1 as a binary NumPy ufunc
        (``np.add`` for PageRank, ``np.minimum`` for BFS/SSSP/CC).
    gather_identity:
        Value a vertex sees when no in-edge contributed this iteration.
    needs_weights:
        True when ``gather_map``/``scatter`` read static edge weights.
    """

    vertex_dtype = np.float32
    gather_dtype = np.float32
    edge_dtype: np.dtype | None = None
    gather_reduce: np.ufunc = np.add
    gather_identity: float = 0.0
    needs_weights: bool = False
    #: None: classic scalar state, one value per vertex. An integer C
    #: widens every vertex buffer to an ``(n, C)`` matrix -- one column
    #: per in-flight query -- and the engine gathers/applies all columns
    #: in a single shard pass (the batch executor's scan sharing). The
    #: frontier stays a single shared bitmask: the *union* of the
    #: per-column frontiers, which is results-preserving exactly for
    #: pull-compatible (improvement-driven) programs.
    state_cols: int | None = None
    #: dense programs whose activation cannot be change-driven (e.g.
    #: level-scheduled sweeps): every vertex stays in the frontier each
    #: iteration and termination comes solely from :meth:`converged`.
    always_active: bool = False
    #: whether the runtime may execute an iteration with a *superset* of
    #: the natural frontier (pull / bottom-up direction). Safe exactly
    #: when ``apply`` is improvement-driven: extra active vertices must
    #: be no-ops (no value change, ``changed`` False) whenever none of
    #: their in-neighbors improved. Programs whose apply treats
    #: activation itself as information (the apply-only BFS marks every
    #: active unvisited vertex) must leave this False.
    pull_compatible: bool = False
    #: False for programs carrying mutable Python state across apply
    #: calls (e.g. delta-stepping's propagation ledger): the process-
    #: pool backend replicates the program per worker, so such state
    #: would silently diverge. The runtime rejects the combination.
    process_safe: bool = True
    name: str = "gas-program"

    # ------------------------------------------------------------------
    # Initialization stage
    # ------------------------------------------------------------------
    def init_vertices(self, ctx: "RuntimeContext") -> np.ndarray:
        """Initial vertex values (length ``ctx.num_vertices``)."""
        raise NotImplementedError

    def init_frontier(self, ctx: "RuntimeContext") -> np.ndarray:
        """Initial frontier as a boolean mask over vertices."""
        raise NotImplementedError

    def init_edge_state(self, ctx: "RuntimeContext") -> np.ndarray | None:
        """Initial mutable per-edge state (only when edge_dtype is set)."""
        if self.edge_dtype is None:
            return None
        return np.zeros(ctx.num_edges, dtype=self.edge_dtype)

    # ------------------------------------------------------------------
    # Iteration-stage device functions (override the ones you need)
    # ------------------------------------------------------------------
    def gather_map(
        self,
        ctx: "RuntimeContext",
        src_ids: np.ndarray,
        dst_ids: np.ndarray,
        src_vals: np.ndarray,
        weights: np.ndarray | None,
        edge_states: np.ndarray | None,
    ) -> np.ndarray:
        """Per-in-edge contribution G(u, v, e) for each active edge."""
        raise NotImplementedError  # pragma: no cover - presence-checked

    def apply(
        self,
        ctx: "RuntimeContext",
        vids: np.ndarray,
        old_vals: np.ndarray,
        gathered: np.ndarray,
        has_gather: np.ndarray,
        iteration: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """U(v, R): returns (new vertex values, changed mask)."""
        raise NotImplementedError

    def scatter(
        self,
        ctx: "RuntimeContext",
        src_ids: np.ndarray,
        src_vals: np.ndarray,
        weights: np.ndarray | None,
        edge_states: np.ndarray | None,
    ) -> np.ndarray:
        """S(v', e_out): new mutable state for each active out-edge."""
        raise NotImplementedError  # pragma: no cover - presence-checked

    def converged(self, ctx: "RuntimeContext", iteration: int, frontier_size: int) -> bool:
        """Extra termination condition; the empty frontier always stops."""
        return False

    def end_iteration(
        self,
        ctx: "RuntimeContext",
        values: np.ndarray,
        changed: np.ndarray,
        iteration: int,
    ) -> None:
        """Main-process hook after one full iteration, before advance.

        Called with the (already delta-replayed) vertex values and the
        iteration's changed bitmask under every backend, so programs
        that track cross-iteration state -- the batch executor's
        per-query retirement ledger and depth capture -- stay
        process-safe: workers never see or mutate the tracking state.
        """
        return None

    def reseed_frontier(
        self, ctx: "RuntimeContext", values: np.ndarray
    ) -> np.ndarray | None:
        """Called when the frontier empties, before terminating.

        Bucketed algorithms (delta-stepping SSSP) hold improvements back
        until their bucket opens; this hook lets them re-activate the
        deferred vertices. Return a bool mask to continue with it as the
        next frontier, or None to accept convergence (the default).
        """
        return None

    # ------------------------------------------------------------------
    # Fusable kernel shapes (drive the compiled kernel layer)
    # ------------------------------------------------------------------
    def gather_kernel_spec(self):
        """Declare gather as a fusable kernel shape, or None.

        Return a :class:`repro.core.kernels.GatherSpec` when this
        program's ``gather_map`` + ``gather_reduce`` match one of the
        kernel layer's fused shapes *exactly* (bit-identical results are
        a contract, not a goal). The default None keeps the generic
        vectorized path.
        """
        return None

    def apply_kernel_spec(self):
        """Declare apply as a fusable kernel shape, or None.

        Return a :class:`repro.core.kernels.ApplySpec`; same contract
        as :meth:`gather_kernel_spec`. Programs with mutable Python
        state in apply (ledgers, histories) must return None.
        """
        return None

    # ------------------------------------------------------------------
    # Phase presence (drives the Phase Fusion Engine)
    # ------------------------------------------------------------------
    @property
    def has_gather(self) -> bool:
        return type(self).gather_map is not GASProgram.gather_map

    @property
    def has_scatter(self) -> bool:
        return type(self).scatter is not GASProgram.scatter

    def user_info(self) -> "UserInfoTuple":
        """The paper's UserInfoTuple for this program."""
        return UserInfoTuple(
            gather=type(self).gather_map if self.has_gather else None,
            gather_reduce=self.gather_reduce if self.has_gather else None,
            apply=type(self).apply,
            scatter=type(self).scatter if self.has_scatter else None,
            vertex_dtype=np.dtype(self.vertex_dtype),
            edge_dtype=None if self.edge_dtype is None else np.dtype(self.edge_dtype),
        )

    def validate(self) -> None:
        """Reject malformed programs before the runtime starts."""
        if type(self).apply is GASProgram.apply:
            raise TypeError(f"{type(self).__name__} must define apply()")
        if self.has_gather and not isinstance(self.gather_reduce, np.ufunc):
            raise TypeError(
                f"{type(self).__name__}.gather_reduce must be a NumPy ufunc "
                f"(got {self.gather_reduce!r}) so gatherReduce can run "
                "vertex-centrically via reduceat"
            )


@dataclass(frozen=True)
class UserInfoTuple:
    """<gather(), apply(), scatter(), VertexDataType, EdgeDataType>

    (Section 4.1). Informational bundle; the runtime itself works with
    the :class:`GASProgram` instance.
    """

    gather: object | None
    gather_reduce: np.ufunc | None
    apply: object
    scatter: object | None
    vertex_dtype: np.dtype
    edge_dtype: np.dtype | None
