"""Compiled kernel backend: fused Numba ``@njit`` gather/apply passes.

Each kernel makes a single pass over shard CSC/CSR sub-arrays -- the
per-edge map, the segment reduction, and the result/mask writes are one
loop nest, with no ``plan.eids``/``plan.indices``-shaped temporaries.
Segment loops accumulate strictly left-to-right in the element dtype
(float32 stays float32 inside ``njit``; scalar constants are passed in
as ``np.float32`` so nothing promotes to float64), which reproduces
``ufunc.reduceat``'s sequential fold bit-for-bit. No ``fastmath``.

Parallelism: the dense gather and dense apply kernels use ``prange``
over segments/vertices -- every iteration writes disjoint slots, so
the parallel schedule cannot reorder any floating-point accumulation.
Sparse-row kernels are serial: bypass row sets are small by definition
(that is why the bypass fired).

``cache=True`` persists compiled machine code next to the module, so a
warmed cache makes even first calls cheap; within a process the first
call per signature still compiles, which is why ``bench-wallclock``'s
untimed warmup loop runs every engine once before timing.

This module imports only when Numba is installed; the registry checks
availability first and falls back to the NumPy backend otherwise.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

from repro.core.kernels.arena import ScratchArena
from repro.core.kernels.specs import (
    APPLY_KINDS,
    CHANGED_MODES,
    GATHER_KINDS,
    REDUCE_KINDS,
    ApplySpec,
    GatherSpec,
)

_F32_INF = np.float32(np.inf)


@njit(cache=True, inline="always")
def _edge_value(values, nbr, weights, deg, j, kind):
    idx = nbr[j]
    if kind == 1:  # div_degree
        return values[idx] / deg[idx]
    if kind == 2:  # mul_weight
        return values[idx] * weights[j]
    if kind == 3:  # add_weight
        return values[idx] + weights[j]
    if kind == 4:  # add_one
        return values[idx] + np.float32(1.0)
    return values[idx]  # copy


@njit(cache=True, parallel=True)
def _gather_segments(
    values, indices, weights, deg, starts, verts, n_edges, kind, red,
    gather_temp, gather_has,
):
    n_seg = starts.shape[0]
    for s in prange(n_seg):
        lo = starts[s]
        hi = starts[s + 1] if s + 1 < n_seg else n_edges
        acc = _edge_value(values, indices, weights, deg, lo, kind)
        if red == 0:
            for j in range(lo + 1, hi):
                acc = acc + _edge_value(values, indices, weights, deg, j, kind)
        else:
            for j in range(lo + 1, hi):
                v = _edge_value(values, indices, weights, deg, j, kind)
                if v < acc:
                    acc = v
        gather_temp[verts[s]] = acc
        gather_has[verts[s]] = True


@njit(cache=True)
def _gather_rows(
    values, indptr, nbr, weights, deg, rows, base, kind, red,
    gather_temp, gather_has,
):
    n_edges = 0
    n_seg = 0
    for i in range(rows.shape[0]):
        r = rows[i]
        lo = indptr[r - base]
        hi = indptr[r - base + 1]
        if lo == hi:
            continue
        acc = _edge_value(values, nbr, weights, deg, lo, kind)
        if red == 0:
            for j in range(lo + 1, hi):
                acc = acc + _edge_value(values, nbr, weights, deg, j, kind)
        else:
            for j in range(lo + 1, hi):
                v = _edge_value(values, nbr, weights, deg, j, kind)
                if v < acc:
                    acc = v
        gather_temp[r] = acc
        gather_has[r] = True
        n_edges += hi - lo
        n_seg += 1
    return n_edges, n_seg


@njit(cache=True, inline="always")
def _edge_value_mat(values, nbr, weights, deg, j, c, kind):
    """One column's per-edge value for a 2-D (batched) state matrix."""
    idx = nbr[j]
    if kind == 1:  # div_degree
        return values[idx, c] / deg[idx]
    if kind == 2:  # mul_weight
        return values[idx, c] * weights[j]
    if kind == 3:  # add_weight
        return values[idx, c] + weights[j]
    if kind == 4:  # add_one
        return values[idx, c] + np.float32(1.0)
    return values[idx, c]  # copy


@njit(cache=True, parallel=True)
def _gather_segments_mat(
    values, indices, weights, deg, starts, verts, n_edges, kind, red,
    gather_temp, gather_has,
):
    """Columnar fused gather: every query column in one edge pass."""
    n_seg = starts.shape[0]
    n_col = values.shape[1]
    for s in prange(n_seg):
        lo = starts[s]
        hi = starts[s + 1] if s + 1 < n_seg else n_edges
        v0 = verts[s]
        for c in range(n_col):
            acc = _edge_value_mat(values, indices, weights, deg, lo, c, kind)
            if red == 0:
                for j in range(lo + 1, hi):
                    acc = acc + _edge_value_mat(values, indices, weights, deg, j, c, kind)
            else:
                for j in range(lo + 1, hi):
                    v = _edge_value_mat(values, indices, weights, deg, j, c, kind)
                    if v < acc:
                        acc = v
            gather_temp[v0, c] = acc
        gather_has[v0] = True


@njit(cache=True)
def _gather_rows_mat(
    values, indptr, nbr, weights, deg, rows, base, kind, red,
    gather_temp, gather_has,
):
    n_edges = 0
    n_seg = 0
    n_col = values.shape[1]
    for i in range(rows.shape[0]):
        r = rows[i]
        lo = indptr[r - base]
        hi = indptr[r - base + 1]
        if lo == hi:
            continue
        for c in range(n_col):
            acc = _edge_value_mat(values, nbr, weights, deg, lo, c, kind)
            if red == 0:
                for j in range(lo + 1, hi):
                    acc = acc + _edge_value_mat(values, nbr, weights, deg, j, c, kind)
            else:
                for j in range(lo + 1, hi):
                    v = _edge_value_mat(values, nbr, weights, deg, j, c, kind)
                    if v < acc:
                        acc = v
            gather_temp[r, c] = acc
        gather_has[r] = True
        n_edges += hi - lo
        n_seg += 1
    return n_edges, n_seg


@njit(cache=True, parallel=True)
def _gather_segments_bits(
    values, indices, starts, verts, n_edges, gather_temp, gather_has
):
    """Bit-parallel MS-BFS gather: OR uint64 reach words per segment.

    Separate from the float kernels because ``|`` does not type for
    float32 -- Numba types every branch of a compiled body.
    """
    n_seg = starts.shape[0]
    n_word = values.shape[1]
    for s in prange(n_seg):
        lo = starts[s]
        hi = starts[s + 1] if s + 1 < n_seg else n_edges
        v0 = verts[s]
        for c in range(n_word):
            acc = values[indices[lo], c]
            for j in range(lo + 1, hi):
                acc = acc | values[indices[j], c]
            gather_temp[v0, c] = acc
        gather_has[v0] = True


@njit(cache=True)
def _gather_rows_bits(values, indptr, nbr, rows, base, gather_temp, gather_has):
    n_edges = 0
    n_seg = 0
    n_word = values.shape[1]
    for i in range(rows.shape[0]):
        r = rows[i]
        lo = indptr[r - base]
        hi = indptr[r - base + 1]
        if lo == hi:
            continue
        for c in range(n_word):
            acc = values[nbr[lo], c]
            for j in range(lo + 1, hi):
                acc = acc | values[nbr[j], c]
            gather_temp[r, c] = acc
        gather_has[r] = True
        n_edges += hi - lo
        n_seg += 1
    return n_edges, n_seg


@njit(cache=True, inline="always")
def _apply_one(old, g, has, kind, base, scale, fill, tol, changed_mode, level):
    """One vertex's fused apply; returns (new value, changed)."""
    if kind == 0:  # affine
        v = g if has else fill
        if scale != np.float32(1.0):
            v = v * scale
        if base != np.float32(0.0):
            v = base + v
        if changed_mode == 0:
            return v, True
        if changed_mode == 2:
            return v, False
        return v, np.abs(v - old) > tol
    if kind == 1:  # min_improve
        cand = g if has else _F32_INF
        if cand < old:
            return cand, True
        return old, False
    # mark_level
    if np.isinf(old):
        return level, True
    return old, False


@njit(cache=True, parallel=True)
def _apply_dense(
    values, gather_temp, gather_has, lo, hi, kind, base, scale, fill, tol,
    changed_mode, level, src_pos, out, changed,
):
    for i in prange(hi - lo):
        v, c = _apply_one(
            values[lo + i], gather_temp[lo + i], gather_has[lo + i],
            kind, base, scale, fill, tol, changed_mode, level,
        )
        out[i] = v
        changed[i] = c
    if src_pos >= 0:
        changed[src_pos] = True


@njit(cache=True)
def _apply_rows(
    values, gather_temp, gather_has, rows, kind, base, scale, fill, tol,
    changed_mode, level, src_pos, out, changed,
):
    for i in range(rows.shape[0]):
        r = rows[i]
        v, c = _apply_one(
            values[r], gather_temp[r], gather_has[r],
            kind, base, scale, fill, tol, changed_mode, level,
        )
        out[i] = v
        changed[i] = c
    if src_pos >= 0:
        changed[src_pos] = True


@njit(cache=True)
def _activate_targets(indptr, nbr, rows, base, out):
    k = 0
    for i in range(rows.shape[0]):
        r = rows[i] - base
        for j in range(indptr[r], indptr[r + 1]):
            out[k] = nbr[j]
            k += 1
    return k


#: Compiled dispatchers, exposed so tests can assert warm-up hygiene
#: (no new ``.signatures`` entries appear during timed iterations).
DISPATCHERS = (
    _gather_segments,
    _gather_rows,
    _gather_segments_mat,
    _gather_rows_mat,
    _gather_segments_bits,
    _gather_rows_bits,
    _apply_dense,
    _apply_rows,
    _activate_targets,
)

_F32_EMPTY = np.empty(0, dtype=np.float32)


class NumbaKernels:
    """Fused-shape kernels executed as compiled single-pass loops."""

    name = "numba"
    #: 2-D state matrices dispatch to the columnar/bit-packed kernels
    supports_matrix = True

    def __init__(self):
        self.arena = ScratchArena()

    def _gather_args(self, spec: GatherSpec, weights, deg):
        w = weights if spec.needs_weights else _F32_EMPTY
        d = deg if spec.kind == "div_degree" else _F32_EMPTY
        return w, d, GATHER_KINDS[spec.kind], REDUCE_KINDS[spec.reduce]

    def gather_segments(
        self, key, spec: GatherSpec, values, deg, indices, weights, starts, verts,
        gather_temp, gather_has,
    ) -> None:
        if values.ndim == 2:
            if spec.reduce == "or":
                _gather_segments_bits(
                    values, indices, starts, verts, len(indices),
                    gather_temp, gather_has,
                )
                return
            w, d, kind, red = self._gather_args(spec, weights, deg)
            _gather_segments_mat(
                values, indices, w, d, starts, verts, len(indices), kind, red,
                gather_temp, gather_has,
            )
            return
        w, d, kind, red = self._gather_args(spec, weights, deg)
        _gather_segments(
            values, indices, w, d, starts, verts, len(indices), kind, red,
            gather_temp, gather_has,
        )

    def gather_rows(
        self, key, spec: GatherSpec, values, deg, indptr, nbr, weights, rows, base,
        gather_temp, gather_has,
    ):
        if values.ndim == 2:
            if spec.reduce == "or":
                return _gather_rows_bits(
                    values, indptr, nbr, rows, base, gather_temp, gather_has
                )
            w, d, kind, red = self._gather_args(spec, weights, deg)
            return _gather_rows_mat(
                values, indptr, nbr, w, d, rows, base, kind, red,
                gather_temp, gather_has,
            )
        w, d, kind, red = self._gather_args(spec, weights, deg)
        return _gather_rows(
            values, indptr, nbr, w, d, rows, base, kind, red,
            gather_temp, gather_has,
        )

    def apply_block(
        self, key, spec: ApplySpec, values, gather_temp, gather_has, rows, lo, hi,
        iteration, src_pos,
    ):
        n = (hi - lo) if rows is None else len(rows)
        out = self.arena.get((key, "av"), n, values.dtype)
        changed = self.arena.get((key, "ac"), n, bool)
        args = (
            APPLY_KINDS[spec.kind],
            np.float32(spec.base),
            np.float32(spec.scale),
            np.float32(spec.fill),
            np.float32(0.0 if spec.tol is None else spec.tol),
            CHANGED_MODES[spec.changed_mode],
            np.float32(iteration),
            src_pos,
            out,
            changed,
        )
        if rows is None:
            _apply_dense(values, gather_temp, gather_has, lo, hi, *args)
        else:
            _apply_rows(values, gather_temp, gather_has, rows, *args)
        return out, changed

    def activate_targets(self, key, indptr, nbr, rows, base):
        loc = rows - base
        total = int((indptr[loc + 1] - indptr[loc]).sum())
        if total == 0:
            return nbr[:0]
        targets = self.arena.get((key, "at"), total, nbr.dtype)
        _activate_targets(indptr, nbr, rows, base, targets)
        return targets

    def stats(self) -> dict:
        return {"backend": self.name, **self.arena.stats()}
