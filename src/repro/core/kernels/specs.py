"""Declarative kernel specs: how a GAS program opts into fusion.

A program whose gather/apply phases fit one of a small set of shapes
declares them as frozen specs (:meth:`GASProgram.gather_kernel_spec` /
:meth:`~repro.core.api.GASProgram.apply_kernel_spec`). The kernel
backends compile/execute those shapes as single fused passes; programs
without specs (stateful apply, edge-state gathers) run the generic
NumPy path unchanged.

Gather kinds (per-edge value fed to the segment reduction)::

    copy        src                       (connected components)
    div_degree  src / max(out_degree, 1)  (PageRank)
    mul_weight  src * w                   (SpMV)
    add_weight  src + w                   (SSSP)
    add_one     src + 1                   (pull BFS)

Apply kinds::

    affine      new = base + scale * where(has, g, fill)
                changed per ``changed_mode`` (all | tol | none)
    min_improve candidate = where(has, g, inf); keep improvements;
                ``source`` (if set) reports changed once on iteration 0
    mark_level  new = where(isinf(old), iteration, old); changed where
                old was inf (apply-only BFS)

Numeric codes (:data:`GATHER_KINDS`, :data:`REDUCE_KINDS`,
:data:`APPLY_KINDS`, :data:`CHANGED_MODES`) are what the compiled
backend branches on inside ``@njit`` bodies, so kernels specialize
without string handling.
"""

from __future__ import annotations

from dataclasses import dataclass

GATHER_KINDS = {"copy": 0, "div_degree": 1, "mul_weight": 2, "add_weight": 3, "add_one": 4}
#: "or" is the bit-parallel multi-source reduction (MS-BFS): uint64
#: bitmask words OR together, 64 traversals per word. Integer state
#: only -- the batch executor's bit-packed layout is its sole user.
REDUCE_KINDS = {"add": 0, "min": 1, "or": 2}
APPLY_KINDS = {"affine": 0, "min_improve": 1, "mark_level": 2}
CHANGED_MODES = {"all": 0, "tol": 1, "none": 2}

#: Gather kinds whose per-edge value reads the edge weight.
WEIGHTED_KINDS = frozenset({"mul_weight", "add_weight"})


@dataclass(frozen=True)
class GatherSpec:
    """Fusable gather: per-edge map ``kind`` + segment reduction."""

    kind: str
    reduce: str = "add"

    def __post_init__(self):
        if self.kind not in GATHER_KINDS:
            raise ValueError(f"unknown gather kind {self.kind!r}")
        if self.reduce not in REDUCE_KINDS:
            raise ValueError(f"unknown gather reduce {self.reduce!r}")

    @property
    def needs_weights(self) -> bool:
        return self.kind in WEIGHTED_KINDS


@dataclass(frozen=True)
class ApplySpec:
    """Fusable apply: vertex update + changed-mask rule."""

    kind: str
    base: float = 0.0
    scale: float = 1.0
    fill: float = 0.0
    tol: float | None = None
    changed_mode: str = "all"
    source: int | None = None

    def __post_init__(self):
        if self.kind not in APPLY_KINDS:
            raise ValueError(f"unknown apply kind {self.kind!r}")
        if self.changed_mode not in CHANGED_MODES:
            raise ValueError(f"unknown changed mode {self.changed_mode!r}")
        if self.changed_mode == "tol" and self.tol is None:
            raise ValueError("changed_mode 'tol' requires a tolerance")
