"""Cache-line-aligned array helpers for the kernel layer.

Compiled gather/apply kernels stream shard sub-arrays sequentially, so
the layer guarantees 64-byte (one x86 cache line, half an AVX-512
vector) alignment wherever it owns an allocation:

* scratch buffers handed out by :class:`~repro.core.kernels.arena.ScratchArena`,
* unit-weight arrays synthesized by the shard store at load time.

Shard sub-arrays loaded from ``.npy`` files are already aligned: the
format's ``ARRAY_ALIGN`` pads every header to 64 bytes, so memmapped
data starts on a page *and* the in-file payload offset is a multiple of
64. :func:`is_aligned` lets tests and callers assert that invariant
instead of trusting it.

NumPy's own allocator only guarantees 16-byte alignment, hence
:func:`aligned_empty`: over-allocate a byte buffer and slice to the
first 64-byte boundary. The returned view keeps the raw buffer alive
through ``.base``.
"""

from __future__ import annotations

import numpy as np

#: Alignment guarantee, in bytes, for every allocation this layer owns.
ALIGN = 64


def aligned_empty(n: int, dtype) -> np.ndarray:
    """Uninitialized 1-D array of ``n`` items on a 64-byte boundary."""
    dtype = np.dtype(dtype)
    nbytes = int(n) * dtype.itemsize
    raw = np.empty(nbytes + ALIGN, dtype=np.uint8)
    offset = (-raw.ctypes.data) % ALIGN
    return raw[offset : offset + nbytes].view(dtype)


def aligned_zeros(n: int, dtype) -> np.ndarray:
    out = aligned_empty(n, dtype)
    out.fill(0)
    return out


def aligned_ones(n: int, dtype) -> np.ndarray:
    out = aligned_empty(n, dtype)
    out.fill(1)
    return out


def aligned_copy(arr: np.ndarray) -> np.ndarray:
    """Aligned copy of a 1-D array (same dtype, same values)."""
    arr = np.ascontiguousarray(arr)
    out = aligned_empty(arr.size, arr.dtype)
    np.copyto(out, arr.reshape(-1))
    return out


def is_aligned(arr: np.ndarray, align: int = ALIGN) -> bool:
    """True when ``arr``'s first element sits on an ``align`` boundary.

    Empty arrays are vacuously aligned: NumPy gives them an arbitrary
    (sometimes unset) data pointer, and no kernel ever dereferences it.
    """
    return arr.size == 0 or arr.ctypes.data % align == 0
