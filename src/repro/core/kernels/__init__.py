"""Kernel registry: interchangeable gather/apply backend selection.

Two backends implement the same fused-kernel interface:

* ``numpy`` -- the existing primitives refactored behind the interface
  (:mod:`~repro.core.kernels.numpy_backend`), always available;
* ``numba`` -- compiled single-pass kernels
  (:mod:`~repro.core.kernels.numba_backend`), opt-in, only importable
  when Numba is installed.

:func:`resolve_backend` maps the ``--kernel-backend`` option to an
instance:

* ``"auto"`` picks ``numba`` when importable, else ``numpy`` silently;
* ``"numba"`` without Numba degrades to ``numpy`` with a single
  :class:`RuntimeWarning` -- never an error;
* ``"off"`` returns ``None`` (the engine runs the generic path only;
  used by tests to pin fused-vs-generic equivalence);
* anything else raises ``ValueError``.

Process-pool workers resolve their backend locally from the option
string, so compiled kernels compose with ``--parallel-backend
processes`` without pickling compiled state.
"""

from __future__ import annotations

import importlib.util
import warnings

from repro.core.kernels.numpy_backend import NumpyKernels
from repro.core.kernels.specs import ApplySpec, GatherSpec

__all__ = [
    "ApplySpec",
    "GatherSpec",
    "BACKEND_CHOICES",
    "numba_available",
    "resolve_backend",
]

#: Names accepted by ``--kernel-backend`` (``"off"`` is test-only).
BACKEND_CHOICES = ("auto", "numpy", "numba")


def numba_available() -> bool:
    """True when the Numba package is importable."""
    return importlib.util.find_spec("numba") is not None


def _make_numba():
    from repro.core.kernels.numba_backend import NumbaKernels

    return NumbaKernels()


def resolve_backend(name: str):
    """Instantiate the kernel backend for an option string."""
    if name == "off":
        return None
    if name == "numpy":
        return NumpyKernels()
    if name == "auto":
        return _make_numba() if numba_available() else NumpyKernels()
    if name == "numba":
        if numba_available():
            return _make_numba()
        warnings.warn(
            "kernel backend 'numba' requested but Numba is not installed; "
            "falling back to the NumPy backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return NumpyKernels()
    raise ValueError(
        f"unknown kernel backend {name!r}; expected one of {BACKEND_CHOICES}"
    )
