"""NumPy kernel backend: the existing primitives behind the interface.

This backend computes exactly what the generic compute path computes --
the same elementwise ops in the same order, so results are
bit-identical by construction -- but restructured the way the compiled
backend wants:

* every temporary lives in a :class:`ScratchArena` buffer keyed by
  ``(role, shard)``, so steady-state iterations stop allocating;
* the per-edge map and the segment reduction write through ``out=``
  into those buffers (``ufunc.reduceat`` supports ``out=``), replacing
  the gather_map -> segment_reduce -> astype chain of fresh arrays;
* the sparse-bypass path reads shard CSC/CSR sub-arrays directly
  (indptr + neighbor ids) instead of materializing a cached plan.

Bit-identity notes: ``ufunc.reduceat`` folds each segment
left-to-right from its first element; scale-by-1 and add-0 steps are
skipped entirely (SpMV's generic apply never performs them, and a
skipped ``+0.0`` also avoids the ``-0.0 -> +0.0`` rewrite the real
addition would make).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels.arena import ScratchArena
from repro.core.kernels.specs import ApplySpec, GatherSpec

_F32_ONE = np.float32(1.0)


_REDUCE_UFUNCS = {"add": np.add, "min": np.minimum, "or": np.bitwise_or}


class NumpyKernels:
    """Fused-shape kernels executed with NumPy whole-array primitives."""

    name = "numpy"
    #: the gather kernels also accept ``(n, C)`` state matrices (one
    #: column per batched query) and ``(n, W)`` uint64 bitmask words
    #: with the "or" reduction -- the batch executor's two layouts
    supports_matrix = True

    def __init__(self):
        self.arena = ScratchArena()

    # -- gather --------------------------------------------------------

    def _edge_values(self, key, spec: GatherSpec, values, deg, indices, weights):
        """Per-edge contributions into an arena buffer (the fused map).

        2-D ``values`` broadcast the per-edge degree/weight factor over
        the query columns -- same elementwise ops per column as the
        scalar path, so per-query results stay bit-identical.
        """
        n = len(indices)
        if values.ndim == 2:
            vals = self.arena.get2d((key, "gv"), n, values.shape[1], values.dtype)
        else:
            vals = self.arena.get((key, "gv"), n, values.dtype)
        np.take(values, indices, axis=0, out=vals)
        if spec.kind == "copy":
            return vals
        if spec.kind == "div_degree":
            dvals = self.arena.get((key, "gd"), n, deg.dtype)
            np.take(deg, indices, out=dvals)
            factor = dvals
            op = np.divide
        elif spec.kind == "mul_weight":
            factor = weights
            op = np.multiply
        elif spec.kind == "add_weight":
            factor = weights
            op = np.add
        else:  # add_one
            np.add(vals, _F32_ONE, out=vals)
            return vals
        if values.ndim == 2:
            factor = factor[:, None]
        op(vals, factor, out=vals)
        return vals

    def gather_segments(
        self, key, spec: GatherSpec, values, deg, indices, weights, starts, verts,
        gather_temp, gather_has,
    ) -> None:
        """Fused gather over a prebuilt plan (map + reduceat + mark)."""
        vals = self._edge_values(key, spec, values, deg, indices, weights)
        ufunc = _REDUCE_UFUNCS[spec.reduce]
        if vals.ndim == 2:
            red = self.arena.get2d(
                (key, "gr"), len(starts), vals.shape[1], gather_temp.dtype
            )
        else:
            red = self.arena.get((key, "gr"), len(starts), gather_temp.dtype)
        ufunc.reduceat(vals, starts, axis=0, out=red)
        gather_temp[verts] = red
        gather_has[verts] = True

    def _expand_rows(self, key, indptr, loc):
        """Edge positions + segment starts for a sparse row subset."""
        counts = indptr[loc + 1] - indptr[loc]
        total = int(counts.sum())
        if total == 0:
            return None, None, None, 0
        nz = counts > 0
        loc_nz = loc[nz]
        counts_nz = counts[nz]
        starts = self.arena.get((key, "rs"), len(loc_nz), np.int64)
        starts[0] = 0
        np.cumsum(counts_nz[:-1], out=starts[1:])
        firsts = indptr[loc_nz].astype(np.int64)
        np.subtract(firsts, starts, out=firsts)
        pos = self.arena.get((key, "rp"), total, np.int64)
        pos[:] = np.arange(total, dtype=np.int64)
        pos += np.repeat(firsts, counts_nz)
        return pos, starts, nz, total

    def gather_rows(
        self, key, spec: GatherSpec, values, deg, indptr, nbr, weights, rows, base,
        gather_temp, gather_has,
    ):
        """Fused sparse-bypass gather straight off shard CSC arrays."""
        pos, starts, nz, total = self._expand_rows(key, indptr, rows - base)
        if total == 0:
            return 0, 0
        indices = self.arena.get((key, "ri"), total, nbr.dtype)
        np.take(nbr, pos, out=indices)
        w = None
        if spec.needs_weights:
            w = self.arena.get((key, "rw"), total, weights.dtype)
            np.take(weights, pos, out=w)
        self.gather_segments(
            key, spec, values, deg, indices, w, starts, rows[nz],
            gather_temp, gather_has,
        )
        return total, len(starts)

    # -- apply ---------------------------------------------------------

    def apply_block(
        self, key, spec: ApplySpec, values, gather_temp, gather_has, rows, lo, hi,
        iteration, src_pos,
    ):
        """Fused apply; returns (new values, changed mask) arena views."""
        if rows is None:
            n = hi - lo
            old = values[lo:hi]
            g = gather_temp[lo:hi]
            has = gather_has[lo:hi]
        else:
            n = len(rows)
            old = self.arena.get((key, "ao"), n, values.dtype)
            np.take(values, rows, out=old)
            g = self.arena.get((key, "ag"), n, gather_temp.dtype)
            np.take(gather_temp, rows, out=g)
            has = self.arena.get((key, "ah"), n, bool)
            np.take(gather_has, rows, out=has)
        out = self.arena.get((key, "av"), n, values.dtype)
        changed = self.arena.get((key, "ac"), n, bool)
        if spec.kind == "affine":
            np.copyto(out, np.float32(spec.fill))
            np.copyto(out, g, where=has)
            if spec.scale != 1.0:
                np.multiply(out, np.float32(spec.scale), out=out)
            if spec.base != 0.0:
                np.add(out, np.float32(spec.base), out=out)
            if spec.changed_mode == "all":
                changed.fill(True)
            elif spec.changed_mode == "none":
                changed.fill(False)
            else:
                diff = self.arena.get((key, "ad"), n, values.dtype)
                np.subtract(out, old, out=diff)
                np.abs(diff, out=diff)
                np.greater(diff, np.float32(spec.tol), out=changed)
        elif spec.kind == "min_improve":
            np.copyto(out, np.float32(np.inf))
            np.copyto(out, g, where=has)
            np.less(out, old, out=changed)
            keep = self.arena.get((key, "ak"), n, bool)
            np.logical_not(changed, out=keep)
            np.copyto(out, old, where=keep)
            if src_pos >= 0:
                changed[src_pos] = True
        else:  # mark_level
            np.isinf(old, out=changed)
            np.copyto(out, old)
            np.copyto(out, np.float32(iteration), where=changed)
        return out, changed

    # -- frontier activation -------------------------------------------

    def activate_targets(self, key, indptr, nbr, rows, base):
        """Concatenated out-neighbors of ``rows`` in CSR row order."""
        pos, _, _, total = self._expand_rows(key, indptr, rows - base)
        if total == 0:
            return nbr[:0]
        targets = self.arena.get((key, "at"), total, nbr.dtype)
        np.take(nbr, pos, out=targets)
        return targets

    def stats(self) -> dict:
        return {"backend": self.name, **self.arena.stats()}
