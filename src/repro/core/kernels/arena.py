"""Reusable scratch-buffer arena: allocation-free steady-state loops.

The generic compute path materializes fresh temporaries every
iteration (``np.take`` results, reduceat outputs, apply masks). The
kernel backends instead borrow buffers from a :class:`ScratchArena`
keyed by ``(role, shard)``: the first iteration allocates, every later
iteration reuses, so a converging run stops churning the allocator
after its first sweep over the shards.

Buffers are 64-byte aligned (:mod:`repro.core.kernels.layout`) and
grow monotonically -- a request larger than the cached capacity
replaces the buffer (with slack so ragged frontier sizes settle
quickly). ``get`` returns a length-``n`` *view*; callers must treat it
as invalid after the next ``get`` with the same key and must copy
anything that outlives the shard step (the process-pool workers copy
deltas for exactly this reason).
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import layout

#: Over-allocation factor applied when a buffer has to grow, so ragged
#: per-iteration sizes (shrinking frontiers) stop reallocating early.
GROWTH_SLACK = 1.25


class ScratchArena:
    """Keyed, aligned, grow-only scratch buffers with reuse counters."""

    def __init__(self):
        self._buffers: dict = {}
        self.allocations = 0
        self.reuses = 0

    def get(self, key, n: int, dtype) -> np.ndarray:
        """A length-``n`` aligned buffer for ``key``, reused when possible."""
        dtype = np.dtype(dtype)
        slot = (key, dtype)
        buf = self._buffers.get(slot)
        if buf is None or buf.size < n:
            capacity = max(int(n * GROWTH_SLACK), n, 1)
            buf = layout.aligned_empty(capacity, dtype)
            self._buffers[slot] = buf
            self.allocations += 1
        else:
            self.reuses += 1
        return buf[:n]

    def get2d(self, key, n: int, cols: int, dtype) -> np.ndarray:
        """An ``(n, cols)`` aligned buffer, row-count grow-only.

        Used by the batch executor's columnar/bit-packed kernels: the
        column count is fixed for a run (one per query or one uint64
        word per 64 queries), so only the row dimension is ragged.
        """
        dtype = np.dtype(dtype)
        slot = (key, dtype, int(cols))
        buf = self._buffers.get(slot)
        if buf is None or buf.shape[0] < n:
            capacity = max(int(n * GROWTH_SLACK), n, 1)
            buf = layout.aligned_empty(capacity * cols, dtype).reshape(
                capacity, cols
            )
            self._buffers[slot] = buf
            self.allocations += 1
        else:
            self.reuses += 1
        return buf[:n]

    @property
    def held_bytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()

    def stats(self) -> dict:
        return {
            "allocations": self.allocations,
            "reuses": self.reuses,
            "held_bytes": self.held_bytes,
        }
