"""Process-parallel shard compute with zero-copy shared arrays.

The ``--parallel-shards`` thread path scales poorly for the NumPy-light
phases (gatherReduce, apply, frontier activation) because the workers
serialize on the GIL between kernels. This module provides the
``processes`` backend: a persistent, spawn-safe ``multiprocessing``
worker pool in which every worker holds a **zero-copy** view of the
shard CSC/CSR sub-arrays --

* in-RAM runs export the shard arrays once into a read-only
  ``multiprocessing.shared_memory`` segment that each worker maps, and
* shard-store runs let each worker ``np.memmap`` its own shards straight
  from the :class:`~repro.core.shardstore.ShardStore` (the OS page cache
  dedupes the physical pages between workers, so nobody double-faults a
  shard another worker already paged in).

Determinism is preserved by construction, not by luck: workers never
write shared state. Each task runs the phase kernels against a
*published snapshot* of the mutable arrays (vertex values, frontier
masks, edge state) and returns only **deltas** -- per-interval
``vertex_update_array`` slices, changed-row ids, packed frontier target
bitmaps, scattered edge-state writes -- through a result queue. The main
process replays those deltas in the fixed shard order the serial path
uses, so vertex values, frontier history, observer counters and the
simulated timeline are bit-identical to serial execution.

Shards are pinned to workers (``shard.index % num_workers``) so the
worker-local ``gather_temp`` scratch keeps exactly the stale values the
serial engine would hold, and the parked gatherMap output of the
unfused plan is popped by the same worker's gatherReduce.

Crash safety: if a worker dies (or a task raises, or times out), the
pool raises :class:`WorkerCrashed`; the runtime catches it, emits a
``RuntimeWarning`` and re-runs the whole computation serially -- the
run is deterministic, so the fallback result is identical to what the
pool would have produced. All shared-memory segments are unlinked by
the owning (main) process on shutdown, crash or not.
"""

from __future__ import annotations

import os
import queue
import traceback
from time import perf_counter

import numpy as np

from repro.core.compute import ComputeEngine, WorkItems
from repro.core.plans import PlanCache
from repro.graph.csr import CSR
from repro.obs.span import NULL_OBSERVER

#: Set in pool workers (to the worker id) before any task runs; lets
#: test programs detect they are executing inside a pool worker.
ENV_WORKER_FLAG = "REPRO_POOL_WORKER"

_STOP = "stop"
_TASK = "task"

#: /dev/shm segments are named with this prefix so tests can assert
#: none leak.
SHM_PREFIX = "repro_pool"

_shm_seq = 0


class WorkerCrashed(RuntimeError):
    """A pool worker died, raised, or timed out; callers fall back to
    serial execution (deterministic, so results are unchanged)."""


# ----------------------------------------------------------------------
# Shared-memory packing
# ----------------------------------------------------------------------
def _pack_layout(arrays: dict) -> tuple[int, dict]:
    """(total bytes, name -> (offset, shape, dtype str)) for one segment."""
    toc = {}
    offset = 0
    for name, arr in arrays.items():
        offset = (offset + 63) & ~63  # cache-line align each sub-array
        toc[name] = (offset, tuple(arr.shape), arr.dtype.str)
        offset += arr.nbytes
    return max(offset, 1), toc


def _create_segment(arrays: dict, tag: str):
    """Export ``arrays`` into one named shared-memory segment."""
    from multiprocessing import shared_memory

    global _shm_seq
    size, toc = _pack_layout(arrays)
    while True:
        _shm_seq += 1
        name = f"{SHM_PREFIX}_{os.getpid()}_{_shm_seq}_{tag}"
        try:
            shm = shared_memory.SharedMemory(create=True, name=name, size=size)
            break
        except FileExistsError:  # pragma: no cover - stale name collision
            continue
    for name_, arr in arrays.items():
        off, shape, dt = toc[name_]
        view = np.ndarray(shape, dtype=np.dtype(dt), buffer=shm.buf, offset=off)
        view[...] = arr
    return shm, toc


def _attach_segment(name: str):
    # Spawned workers inherit the main process's resource-tracker, so
    # the attach-side register is an idempotent set-add against the
    # create-side one; the single unregister happens in the owner's
    # ``unlink()`` at shutdown. (Python 3.13 adds ``track=False``; with
    # a shared tracker the default tracking is already correct.)
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _segment_views(shm, toc: dict, writable: bool) -> dict:
    views = {}
    for name, (off, shape, dt) in toc.items():
        view = np.ndarray(tuple(shape), dtype=np.dtype(dt), buffer=shm.buf, offset=off)
        if not writable:
            view.flags.writeable = False
        views[name] = view
    return views


# ----------------------------------------------------------------------
# Worker-side shims
# ----------------------------------------------------------------------
class _WorkerFrontier:
    """Frontier facade over the published snapshot masks.

    Read queries serve the shm snapshot; mutations are *captured* as
    replay deltas instead of applied. The one read-after-write the
    serial engine relies on -- a fused ``apply``+``frontier_activate``
    group reading the changed rows its own apply just marked -- is
    honored through a task-local overlay copy of the changed mask.
    """

    def __init__(self, num_partitions: int, current, changed):
        self._shm_current = current
        self._shm_changed = changed
        # Per-shard plan epochs. Main-sent epochs are >= 0; local bumps
        # (mark_changed inside a task) come from a strictly negative,
        # monotonically decreasing namespace so a stale local epoch can
        # never collide with a later main-sent value -- the plan cache
        # then revalidates via the dense check / array_equal path.
        self.active_epochs = np.zeros(num_partitions, dtype=np.int64)
        self.changed_epochs = np.zeros(num_partitions, dtype=np.int64)
        self._local_changed = None
        self._local_epoch = -1
        self.deltas: list | None = None

    @property
    def current(self):
        return self._shm_current

    @property
    def changed(self):
        return self._local_changed if self._local_changed is not None else self._shm_changed

    def begin_sync(self) -> None:
        """A new snapshot was published: drop the task-local overlay."""
        self._local_changed = None

    def begin_task(self, shard_index: int, active_epoch: int, changed_epoch: int) -> None:
        self.active_epochs[shard_index] = active_epoch
        self.changed_epochs[shard_index] = changed_epoch

    # -- mask queries used by the plan cache ---------------------------
    def active_in(self, start: int, stop: int) -> np.ndarray:
        return start + np.flatnonzero(self.current[start:stop])

    def changed_in(self, start: int, stop: int) -> np.ndarray:
        return start + np.flatnonzero(self.changed[start:stop])

    def dense_active_in(self, start: int, stop: int) -> bool:
        return bool(self.current[start:stop].all())

    def dense_changed_in(self, start: int, stop: int) -> bool:
        return bool(self.changed[start:stop].all())

    def sparse_count(self, mask: str, start: int, stop: int) -> int:
        """Sparse-bypass pre-check (see FrontierManager.sparse_count).

        Workers handle one shard per task, so a vectorized interval
        count is cheap enough without the main process's compacted-
        frontier cache.
        """
        src = self.current if mask == "active" else self.changed
        return int(np.count_nonzero(src[start:stop]))

    # -- captured mutations --------------------------------------------
    def mark_changed(self, vids: np.ndarray) -> None:
        self.deltas.append(("mc", vids))
        if len(vids):
            if self._local_changed is None:
                self._local_changed = self._shm_changed.copy()
            self._local_changed[vids] = True
            self.changed_epochs[:] = self._local_epoch
            self._local_epoch -= 1

    def activate_next(self, vids: np.ndarray, count: int | None = None) -> None:
        self.deltas.append(("an", vids, count))

    def activate_next_mask(self, mask: np.ndarray, count: int) -> None:
        # packbits shrinks the V-bool target mask 8x for the IPC hop;
        # the main process unpacks and ORs it in, same as serial.
        self.deltas.append(("am", np.packbits(mask), count))


class _WorkerEngine(ComputeEngine):
    """Compute engine whose mutable-state writes become deltas.

    ``vertex_values``/``edge_state`` are read-only views of the
    published snapshot; ``gather_temp``/``gather_has`` are worker-local
    (correct under shard pinning: only this worker's shards ever read
    or write its intervals, mirroring the serial engine's buffer).
    """

    def __init__(self, program, ctx, frontier, plans, vertex_values, edge_state,
                 kernels=None):
        self.sharded = None
        self.program = program
        self.ctx = ctx
        self.frontier = frontier
        self.obs = NULL_OBSERVER
        self.plans = plans
        self.vertex_values = vertex_values
        n = len(vertex_values)
        # Matches the main engine's buffer shape: batched programs carry
        # one gather column per query (vertex_values arrives 2-D here).
        self.gather_temp = np.full(
            vertex_values.shape, program.gather_identity, dtype=program.gather_dtype
        )
        self.gather_has = np.zeros(n, dtype=bool)
        self.edge_state = edge_state
        self.iteration = 0
        self._pending = {}
        self.deltas: list | None = None
        self._setup_kernels(kernels)

    def _write_vertex_values(self, shard, rows, dense, out):
        if self.kernels is not None:
            # Fused kernels return views of the backend's scratch arena,
            # which the *next* task reuses before the result queue's
            # feeder thread pickles this task's deltas. Snapshot now.
            out = np.array(out, copy=True)
        if dense:
            self.deltas.append(("vd", shard.start, shard.stop, out))
        else:
            self.deltas.append(("vr", rows, out))

    def _capture_targets(self, targets):
        # Same arena-reuse race as ``out`` above: the delta list holds
        # the array until the feeder thread serializes it.
        return np.array(targets, copy=True)

    def _write_edge_state(self, eids, new_states):
        self.deltas.append(("es", eids, np.asarray(new_states)))


class _SharedContext:
    """RuntimeContext stand-in backed by exported degree arrays."""

    def __init__(self, num_vertices, num_edges, out_degrees, in_degrees):
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.out_degrees = out_degrees
        self.in_degrees = in_degrees


class _WorkerSharded:
    """Just enough of a ShardedGraph for the worker's plan cache."""

    def __init__(self, num_vertices, boundaries, shards):
        self.num_vertices = num_vertices
        self.boundaries = boundaries
        self.shards = shards
        self.num_partitions = len(shards)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _WorkerRunner:
    def __init__(self, spec, segments: list):
        from repro.core.partition import Shard

        self.worker_id = spec["worker_id"]
        self.t0 = spec["t0"]
        num_vertices = spec["num_vertices"]
        mode = spec["graph"][0]
        if mode == "shm":
            _, seg_name, toc = spec["graph"]
            shm = _attach_segment(seg_name)
            segments.append(shm)
            views = _segment_views(shm, toc, writable=False)
            shards = []
            for index, start, stop, _num_in, _num_out in spec["shards"]:
                pre = f"s{index}."
                shards.append(
                    Shard(
                        index=index,
                        start=start,
                        stop=stop,
                        csc=CSR(
                            views[pre + "csc.indptr"],
                            views[pre + "csc.indices"],
                            views[pre + "csc.edge_ids"],
                        ),
                        csr=CSR(
                            views[pre + "csr.indptr"],
                            views[pre + "csr.indices"],
                            views[pre + "csr.edge_ids"],
                        ),
                        csc_weights=views.get(pre + "csc.weights"),
                        csr_weights=views.get(pre + "csr.weights"),
                    )
                )
            ctx = _SharedContext(
                num_vertices,
                spec["num_edges"],
                views["out_degrees"],
                views["in_degrees"],
            )
        else:
            from repro.core.runtime import RuntimeContext
            from repro.core.shardstore import ShardStore

            _, path, unit_weights = spec["graph"]
            store = ShardStore.open(path)
            # Each worker memmaps its *own* pinned shards on first
            # touch; the page cache shares the physical pages, so
            # workers never re-read a shard another already faulted.
            shards = store.sharded_graph(unit_weights=unit_weights).shards
            ctx = RuntimeContext(store.edgelist())
        state_name, state_toc = spec["state"]
        state_shm = _attach_segment(state_name)
        segments.append(state_shm)
        state = _segment_views(state_shm, state_toc, writable=False)

        self.shards = {s.index: s for s in shards}
        self.frontier = _WorkerFrontier(len(shards), state["current"], state["changed"])
        sharded = _WorkerSharded(num_vertices, spec["boundaries"], shards)
        self.plans = PlanCache(
            sharded,
            self.frontier,
            dense=spec["dense"],
            cache=spec["cache"],
            budget=spec["plan_budget"],
            sparse=spec.get("sparse", True),
        )
        # Each worker resolves its kernel backend locally: Numba
        # dispatchers are not picklable, and the on-disk JIT cache
        # (``cache=True``) makes the per-worker warm-up a cache load,
        # not a recompile. The main process ships the *resolved* name,
        # so a missing-Numba warning is emitted once, not per worker.
        from repro.core.kernels import resolve_backend

        kernels = resolve_backend(spec.get("kernel_backend", "off"))
        self.engine = _WorkerEngine(
            spec["program"],
            ctx,
            self.frontier,
            self.plans,
            state["vertex_values"],
            state.get("edge_state"),
            kernels=kernels,
        )
        self._sync_id = -1
        self._iteration_seen = False

    def _on_sync(self) -> None:
        """Hook before ``begin_sync`` on a new publish; cluster workers
        ingest their mailbox here."""

    def run_task(self, msg):
        _, sync_id, iteration, phases, shard_index, count_full, a_epoch, c_epoch = msg
        t_start = perf_counter() - self.t0
        if sync_id != self._sync_id:
            self._sync_id = sync_id
            self._on_sync()
            self.frontier.begin_sync()
        self.frontier.begin_task(shard_index, a_epoch, c_epoch)
        if not self._iteration_seen or iteration != self.engine.iteration:
            self.engine.begin_iteration(iteration)
            self._iteration_seen = True
        deltas: list = []
        self.engine.deltas = deltas
        self.frontier.deltas = deltas
        shard = self.shards[shard_index]
        per_phase = []
        for phase in phases:
            w = getattr(self.engine, "_" + phase)(shard, count_full)
            per_phase.append((phase, w.edge_items, w.vertex_items))
        t_end = perf_counter() - self.t0
        return ("ok", shard_index, self.worker_id, per_phase, deltas, t_start, t_end)


class _ClusterWorkerRunner(_WorkerRunner):
    """Partitioned-ownership worker: owned shards only + delta mailbox.

    Differences from the replicated runner:

    * **Graph**: only the worker's *owned* shards are attached -- the
      per-worker shm segment holds just their arrays, and store-backed
      runs bind just the owned lazy shards (the others are never
      faulted). Per-worker resident bytes scale down with ownership.
    * **State**: instead of read-only views of a full published
      snapshot, the worker keeps *private writable copies* of the
      vertex values, frontier masks and edge state, bootstrapped once
      from the state segment at attach.
    * **Sync**: on each new publish the worker ingests its fixed-slot
      mailbox -- sparse ``(indices, values)`` vertex records, packed
      frontier bitmaps (full or owned-slice, per the frontier policy)
      and sparse edge-state records -- written by the main process
      before the first task of the phase was enqueued.
    """

    def __init__(self, spec, segments: list):
        from repro.core.partition import Shard

        self.worker_id = spec["worker_id"]
        self.t0 = spec["t0"]
        num_vertices = spec["num_vertices"]
        mode = spec["graph"][0]
        if mode == "shm":
            _, seg_name, toc = spec["graph"]
            shm = _attach_segment(seg_name)
            segments.append(shm)
            views = _segment_views(shm, toc, writable=False)
            shards = []
            for index, start, stop, _num_in, _num_out in spec["shards"]:
                pre = f"s{index}."
                shards.append(
                    Shard(
                        index=index,
                        start=start,
                        stop=stop,
                        csc=CSR(
                            views[pre + "csc.indptr"],
                            views[pre + "csc.indices"],
                            views[pre + "csc.edge_ids"],
                        ),
                        csr=CSR(
                            views[pre + "csr.indptr"],
                            views[pre + "csr.indices"],
                            views[pre + "csr.edge_ids"],
                        ),
                        csc_weights=views.get(pre + "csc.weights"),
                        csr_weights=views.get(pre + "csr.weights"),
                    )
                )
        else:
            from repro.core.shardstore import ShardStore

            _, path, unit_weights = spec["graph"]
            store = ShardStore.open(path)
            lazy = store.sharded_graph(unit_weights=unit_weights).shards
            # Bind only the owned shards: the others stay manifest
            # entries and are never memmapped by this process.
            shards = [lazy[index] for index, *_rest in spec["shards"]]
        state_name, state_toc = spec["state"]
        state_shm = _attach_segment(state_name)
        segments.append(state_shm)
        state = _segment_views(state_shm, state_toc, writable=False)
        # Private writable copies: the mailbox ingest below is the only
        # writer, so the worker's view of the run state advances exactly
        # one publish at a time, like the replicated snapshot -- but the
        # full-state segment is touched once (bootstrap), not per phase.
        self.vertex_values = np.array(state["vertex_values"])
        current = np.array(state["current"])
        changed = np.array(state["changed"])
        edge_state = (
            np.array(state["edge_state"]) if "edge_state" in state else None
        )
        ctx = _SharedContext(
            num_vertices,
            spec["num_edges"],
            state["out_degrees"],
            state["in_degrees"],
        )
        mbox_name, mbox_toc = spec["mailbox"]
        mbox_shm = _attach_segment(mbox_name)
        segments.append(mbox_shm)
        self._mbox = _segment_views(mbox_shm, mbox_toc, writable=False)
        self._mbox_seen = 0
        self._mask_lo, self._mask_hi = spec["mask_range"]
        self._current = current
        self._changed = changed
        self._edge_state = edge_state

        self.shards = {s.index: s for s in shards}
        # Plan epochs are indexed by *global* shard index -- the worker
        # holds a subset of the shards but must size the epoch arrays
        # for all of them.
        self.frontier = _WorkerFrontier(spec["num_partitions"], current, changed)
        sharded = _WorkerSharded(num_vertices, spec["boundaries"], shards)
        self.plans = PlanCache(
            sharded,
            self.frontier,
            dense=spec["dense"],
            cache=spec["cache"],
            budget=spec["plan_budget"],
            sparse=spec.get("sparse", True),
        )
        from repro.core.kernels import resolve_backend

        kernels = resolve_backend(spec.get("kernel_backend", "off"))
        self.engine = _WorkerEngine(
            spec["program"],
            ctx,
            self.frontier,
            self.plans,
            self.vertex_values,
            edge_state,
            kernels=kernels,
        )
        self._sync_id = -1
        self._iteration_seen = False

    def _on_sync(self) -> None:
        """Apply the mailbox the main process wrote for this publish.

        The header sequence number decouples mailbox freshness from the
        task sync id: a worker with no tasks for several phases sees one
        mailbox carrying the *accumulated* pending rows, applied once.
        Safe by construction: the main process writes a mailbox only
        while this worker is idle (all its previous-phase results were
        collected before the next publish), and the queue message that
        triggers this read is sent after the write completes.
        """
        header = self._mbox["header"]
        seq = int(header[0])
        if seq == self._mbox_seen:
            return
        self._mbox_seen = seq
        k = int(header[1])
        if k:
            rows = self._mbox["vidx"][:k]
            self.vertex_values[rows] = self._mbox["vvals"][:k]
        lo, hi = self._mask_lo, self._mask_hi
        span = hi - lo
        self._current[lo:hi] = np.unpackbits(
            self._mbox["cur"], count=span
        ).view(bool)
        self._changed[lo:hi] = np.unpackbits(
            self._mbox["chg"], count=span
        ).view(bool)
        if self._edge_state is not None:
            m = int(header[2])
            if m:
                eids = self._mbox["eidx"][:m]
                self._edge_state[eids] = self._mbox["evals"][:m]


def _worker_main(spec, task_q, result_q):  # pragma: no cover - child process
    os.environ[ENV_WORKER_FLAG] = str(spec["worker_id"])
    segments: list = []
    runner_cls = _ClusterWorkerRunner if spec.get("cluster") else _WorkerRunner
    try:
        runner = runner_cls(spec, segments)
    except Exception:
        result_q.put(("init_error", spec["worker_id"], traceback.format_exc()))
        return
    result_q.put(("ready", spec["worker_id"]))
    try:
        while True:
            msg = task_q.get()
            if msg[0] == _STOP:
                break
            try:
                result_q.put(runner.run_task(msg))
            except Exception:
                result_q.put(
                    ("task_error", msg[4], spec["worker_id"], traceback.format_exc())
                )
    finally:
        result_q.put(
            (
                "bye",
                spec["worker_id"],
                runner.plans.stats(),
                runner.engine.kernel_stats(),
            )
        )
        for shm in segments:
            try:
                shm.close()
            except Exception:
                pass


# ----------------------------------------------------------------------
# Main-process pool
# ----------------------------------------------------------------------
class ProcessPool:
    """Persistent spawn-based worker pool for one GraphReduce run.

    Construction exports the graph (in-RAM runs) and the mutable-state
    snapshot buffer to shared memory, spawns the workers and waits for
    their attach handshake. :meth:`phase_run` publishes the current
    state, fans one phase group's shard tasks out to the pinned workers
    and returns a per-shard collector the Data Movement Engine calls in
    shard order -- which is where the deltas are replayed, keeping the
    merge deterministic. :meth:`shutdown` (idempotent, always called
    from the runtime's ``finally``) stops the workers and closes +
    unlinks every segment, so nothing survives in ``/dev/shm`` on
    normal exit or crash.
    """

    def __init__(
        self,
        *,
        sharded,
        program,
        ctx,
        frontier,
        compute,
        obs=None,
        workers: int,
        dense: bool,
        cache: bool,
        sparse: bool = True,
        plan_budget: int | None = None,
        kernel_backend: str = "off",
        store=None,
        unit_weights: bool = False,
        task_timeout: float = 300.0,
        telemetry=None,
    ):
        import multiprocessing as mp

        self._frontier = frontier
        self._compute = compute
        self._obs = obs if obs is not None else NULL_OBSERVER
        self._num_vertices = sharded.num_vertices
        self.num_workers = max(1, min(int(workers), sharded.num_partitions))
        self.task_timeout = task_timeout
        # Health-watchdog hookup (repro.obs.telemetry.RunTelemetry):
        # workers register heartbeats on attach, beat on every task
        # result, and carry a busy flag while tasks are outstanding.
        # A busy worker whose heartbeat goes quiet past the stall
        # timeout is escalated from the blocking result wait as
        # WorkerCrashed -- the runtime's serial fallback takes over.
        self._telemetry = telemetry
        self._heartbeats = telemetry.heartbeats if telemetry is not None else None
        self._stall_timeout = (
            telemetry.config.stall_timeout if telemetry is not None else 0.0
        )
        self._outstanding = [0] * self.num_workers
        self.tasks = 0
        self.max_inflight = 0
        self.publish_seconds = 0.0
        self.wait_seconds = 0.0
        self.lane: list[tuple] = []
        self.worker_plan_stats: list[dict] = []
        self.worker_kernel_stats: list[dict] = []
        self._segments: list = []
        self._procs: list = []
        self._task_qs: list = []
        self._closed = False
        self._sync_id = 0
        self._t0 = perf_counter()

        try:
            self._start(
                mp, sharded, program, ctx, store, unit_weights, dense, cache,
                sparse, plan_budget, kernel_backend,
            )
        except WorkerCrashed:
            self.shutdown()
            raise
        except Exception as exc:
            self.shutdown()
            raise WorkerCrashed(f"pool startup failed: {exc!r}") from exc

    # ------------------------------------------------------------------
    def _start(
        self, mp, sharded, program, ctx, store, unit_weights, dense, cache,
        sparse, plan_budget, kernel_backend,
    ):
        spawn = mp.get_context("spawn")
        shard_manifest = [
            (s.index, s.start, s.stop, s.num_in_edges, s.num_out_edges)
            for s in sharded.shards
        ]
        if store is not None:
            graph_spec = ("store", str(store.path), bool(unit_weights))
        else:
            arrays = {
                "out_degrees": np.asarray(ctx.out_degrees),
                "in_degrees": np.asarray(ctx.in_degrees),
            }
            for s in sharded.shards:
                pre = f"s{s.index}."
                arrays[pre + "csc.indptr"] = s.csc.indptr
                arrays[pre + "csc.indices"] = s.csc.indices
                arrays[pre + "csc.edge_ids"] = s.csc.edge_ids
                arrays[pre + "csr.indptr"] = s.csr.indptr
                arrays[pre + "csr.indices"] = s.csr.indices
                arrays[pre + "csr.edge_ids"] = s.csr.edge_ids
                if s.csc_weights is not None:
                    arrays[pre + "csc.weights"] = s.csc_weights
                if s.csr_weights is not None:
                    arrays[pre + "csr.weights"] = s.csr_weights
            graph_shm, graph_toc = _create_segment(arrays, "graph")
            self._segments.append(graph_shm)
            graph_spec = ("shm", graph_shm.name, graph_toc)

        state_arrays = {
            "vertex_values": self._compute.vertex_values,
            "current": self._frontier.current,
            "changed": self._frontier.changed,
        }
        if self._compute.edge_state is not None:
            state_arrays["edge_state"] = self._compute.edge_state
        state_shm, state_toc = _create_segment(state_arrays, "state")
        self._segments.append(state_shm)
        self._state_views = _segment_views(state_shm, state_toc, writable=True)

        spec_base = {
            "t0": self._t0,
            "program": program,
            "num_vertices": sharded.num_vertices,
            "num_edges": getattr(ctx, "num_edges", 0),
            "boundaries": np.asarray(sharded.boundaries),
            "shards": shard_manifest,
            "graph": graph_spec,
            "state": (state_shm.name, state_toc),
            "dense": dense,
            "cache": cache,
            "sparse": sparse,
            "plan_budget": plan_budget,
            "kernel_backend": kernel_backend,
        }
        self._result_q = spawn.Queue()
        for w in range(self.num_workers):
            task_q = spawn.SimpleQueue()
            spec = dict(spec_base, worker_id=w)
            proc = spawn.Process(
                target=_worker_main,
                args=(spec, task_q, self._result_q),
                name=f"repro-pool-{w}",
                daemon=True,
            )
            proc.start()
            self._task_qs.append(task_q)
            self._procs.append(proc)
        self._await_ready()

    def _await_ready(self) -> None:
        ready = 0
        deadline = perf_counter() + 120.0
        while ready < self.num_workers:
            try:
                msg = self._result_q.get(timeout=0.2)
            except queue.Empty:
                self._check_alive()
                if perf_counter() > deadline:
                    raise WorkerCrashed("pool workers did not finish attaching in time")
                continue
            if msg[0] == "ready":
                ready += 1
                if self._heartbeats is not None:
                    self._heartbeats.register(f"worker-{msg[1]}", kind="worker")
            elif msg[0] == "init_error":
                raise WorkerCrashed(f"worker {msg[1]} failed to attach:\n{msg[2]}")

    def _check_alive(self) -> None:
        for w, proc in enumerate(self._procs):
            if not proc.is_alive():
                raise WorkerCrashed(f"worker {w} died (exit code {proc.exitcode})")

    # ------------------------------------------------------------------
    def _worker_for(self, shard_index: int) -> int:
        """Worker pinned to a shard (round-robin; ownership in cluster)."""
        return shard_index % self.num_workers

    # ------------------------------------------------------------------
    def _publish(self) -> None:
        """Copy the mutable state into the snapshot segment.

        Called between phase groups, when every worker is idle (the
        previous group's results were all consumed), so the write is
        race-free by construction.
        """
        t0 = perf_counter()
        views = self._state_views
        views["vertex_values"][...] = self._compute.vertex_values
        views["current"][...] = self._frontier.current
        views["changed"][...] = self._frontier.changed
        if self._compute.edge_state is not None:
            views["edge_state"][...] = self._compute.edge_state
        self.publish_seconds += perf_counter() - t0

    def phase_run(self, group, shards, iteration: int, count_full: bool):
        """Publish + dispatch one phase group; returns the collector.

        The returned callable is handed to ``DataMovementEngine.
        run_phase`` as the per-shard compute function: it blocks for
        that shard's result and replays its deltas. ``run_phase``
        consumes shards in their original order, so the replay -- and
        with it every frontier/vertex write and observer count -- lands
        in exactly the serial order.
        """
        self._publish()
        self._sync_id += 1
        fr = self._frontier
        for shard in shards:
            self._task_qs[self._worker_for(shard.index)].put(
                (
                    _TASK,
                    self._sync_id,
                    iteration,
                    tuple(group.phases),
                    shard.index,
                    count_full,
                    int(fr.active_epochs[shard.index]),
                    int(fr.changed_epochs[shard.index]),
                )
            )
        self.tasks += len(shards)
        self.max_inflight = max(self.max_inflight, len(shards))
        self._obs.add("procpool.tasks", len(shards))
        if self._heartbeats is not None:
            for shard in shards:
                w = self._worker_for(shard.index)
                self._outstanding[w] += 1
                self._heartbeats.busy(f"worker-{w}", True)
        pending: dict[int, tuple] = {}

        def collect(shard):
            payload = self._await_result(shard.index, pending)
            return self._replay(payload)

        return collect

    def _await_result(self, index: int, pending: dict) -> tuple:
        t0 = perf_counter()
        deadline = t0 + self.task_timeout
        while index not in pending:
            try:
                msg = self._result_q.get(timeout=0.1)
            except queue.Empty:
                self._check_alive()
                self._check_stalled(index)
                if perf_counter() > deadline:
                    raise WorkerCrashed(f"timed out waiting for shard {index}")
                continue
            kind = msg[0]
            if kind == "ok":
                pending[msg[1]] = msg
                if self._heartbeats is not None:
                    w = msg[2]
                    self._outstanding[w] -= 1
                    self._heartbeats.beat(f"worker-{w}")
                    if self._outstanding[w] <= 0:
                        self._heartbeats.busy(f"worker-{w}", False)
            elif kind == "task_error":
                raise WorkerCrashed(f"worker {msg[2]} raised on shard {msg[1]}:\n{msg[3]}")
            # "ready"/"bye" stragglers are ignored
        self.wait_seconds += perf_counter() - t0
        return pending.pop(index)

    def _check_stalled(self, index: int) -> None:
        """Escalate a confirmed worker stall to :class:`WorkerCrashed`.

        Run from the blocking result wait: the one place the pool can
        still act on a hang. A worker counts as stalled only when it
        has tasks outstanding (idle workers legitimately emit no beats)
        and its last heartbeat is older than the telemetry stall
        timeout -- a SIGSTOP'd or livelocked worker, not a slow one.
        """
        if self._heartbeats is None or not self._stall_timeout:
            return
        w = self._worker_for(index)
        if self._outstanding[w] <= 0:
            return
        name = f"worker-{w}"
        age = self._heartbeats.age(name)
        if age is None or age <= self._stall_timeout:
            return
        from repro.obs.health import Incident

        incident = Incident(
            kind="stall",
            component=name,
            component_kind="worker",
            age=age,
            wall_time=self._heartbeats.clock(),
            details=(
                f"worker {w} has shard {index} outstanding with no "
                f"heartbeat for {age:.3f}s "
                f"(stall timeout {self._stall_timeout:.3f}s); "
                "escalating to serial fallback"
            ),
        )
        if self._telemetry is not None:
            self._telemetry.watchdog.incident(incident)
        raise WorkerCrashed(incident.details)

    def _replay(self, payload: tuple) -> WorkItems:
        _, shard_index, worker_id, per_phase, deltas, t_start, t_end = payload
        obs = self._obs
        compute = self._compute
        frontier = self._frontier
        work = WorkItems()
        record = obs.enabled
        for phase, edge_items, vertex_items in per_phase:
            if record:
                obs.add(f"compute.{phase}.edge_items", edge_items)
                obs.add(f"compute.{phase}.vertex_items", vertex_items)
            work.edge_items += edge_items
            work.vertex_items += vertex_items
        for d in deltas:
            kind = d[0]
            if kind == "vd":
                compute.vertex_values[d[1] : d[2]] = d[3]
            elif kind == "vr":
                compute.vertex_values[d[1]] = d[2]
            elif kind == "mc":
                frontier.mark_changed(d[1])
            elif kind == "an":
                frontier.activate_next(d[1], count=d[2])
            elif kind == "am":
                mask = np.unpackbits(d[1], count=self._num_vertices).view(bool)
                frontier.activate_next_mask(mask, count=d[2])
            elif kind == "es":
                compute.edge_state[d[1]] = d[2]
        self.lane.append((worker_id, shard_index, t_start, t_end))
        return work

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._heartbeats is not None:
            for w in range(self.num_workers):
                self._heartbeats.unregister(f"worker-{w}")
        for task_q in self._task_qs:
            try:
                task_q.put((_STOP,))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        # Best-effort: collect the workers' parting plan-cache stats.
        while True:
            try:
                msg = self._result_q.get_nowait()
            except Exception:
                break
            if msg[0] == "bye":
                self.worker_plan_stats.append(msg[2])
                if len(msg) > 3 and msg[3]:
                    self.worker_kernel_stats.append(msg[3])
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        try:
            self._result_q.close()
        except Exception:
            pass
        for shm in self._segments:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass
        self._segments = []

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Totals + wall-clock lane for the profiler and Chrome trace."""
        plans = None
        if self.worker_plan_stats:
            plans = {
                key: sum(s.get(key, 0) for s in self.worker_plan_stats)
                for key in (
                    "hits", "misses", "invalidations", "evictions", "sparse_bypass",
                )
            }
            total = plans["hits"] + plans["misses"]
            plans["hit_rate"] = plans["hits"] / total if total else 0.0
        kernels = None
        if self.worker_kernel_stats:
            kernels = {"backend": self.worker_kernel_stats[0].get("backend")}
            for key in (
                "fused_calls", "fallbacks", "allocations", "reuses", "held_bytes",
            ):
                kernels[key] = sum(
                    s.get(key, 0) for s in self.worker_kernel_stats
                )
        return {
            "backend": "processes",
            "workers": self.num_workers,
            "tasks": self.tasks,
            "max_inflight": self.max_inflight,
            "publish_seconds": self.publish_seconds,
            "wait_seconds": self.wait_seconds,
            "plan_cache": plans,
            "kernels": kernels,
            "lane": list(self.lane),
        }


# ----------------------------------------------------------------------
# Cluster pool: partitioned ownership + boundary-delta mailboxes
# ----------------------------------------------------------------------
class ClusterPool(ProcessPool):
    """Partitioned-ownership variant of the process pool.

    Where :class:`ProcessPool` replicates the whole graph into every
    worker and re-publishes the full mutable state every phase, the
    cluster pool assigns each worker a contiguous block of shards
    (:class:`repro.core.ownership.OwnershipMap`) and ships only what
    crosses the ownership boundary:

    * each worker attaches **only its owned shards** (a per-worker shm
      segment for in-RAM runs; owned-only lazy-shard binding for
      store-backed runs), so per-worker resident bytes shrink with the
      worker count instead of staying at the full-graph footprint;
    * between phases the main process diffs the live state against its
      shadow copy and packs, per tasked worker, only the **pending rows
      that worker can read** (its owned intervals plus its in-boundary
      source vertices) into a fixed-slot shared-memory mailbox --
      ``(indices, values)`` records plus packed activation bitmaps
      (full under the ``replicated`` frontier policy, the owned slice
      under ``partitioned``);
    * mailboxes are filled in fixed owner order and each worker's tasks
      are enqueued right after its mailbox write, so the first owner is
      already computing while later owners' deltas are still being
      packed -- the exchange overlaps the next shard's compute.

    Results stay bit-identical to serial execution: workers still
    return deltas, and :meth:`ProcessPool._replay` merges them in the
    serial shard order. Mailbox slots are sized to the worker's full
    readable set, so a publish can never overflow; a publish whose
    vertex slot fills completely is counted as a *mailbox stall* (the
    sparse exchange degenerated to a full replication for that worker).
    """

    def __init__(self, *, frontier_policy: str = "replicated", **kw):
        from repro.core.ownership import check_frontier_policy

        self._policy = check_frontier_policy(frontier_policy)
        self.boundary_bytes_sent = 0
        self.delta_bytes_merged = 0
        self.mailbox_stalls = 0
        self.mailbox_publishes = 0
        super().__init__(**kw)

    # ------------------------------------------------------------------
    def _worker_for(self, shard_index: int) -> int:
        return self._owner_of[shard_index]

    def _start(
        self, mp, sharded, program, ctx, store, unit_weights, dense, cache,
        sparse, plan_budget, kernel_backend,
    ):
        from repro.core.ownership import (
            OwnershipMap,
            boundary_sets,
            estimate_shard_bytes,
        )

        spawn = mp.get_context("spawn")
        n = sharded.num_vertices
        num_edges = getattr(ctx, "num_edges", 0)
        ownership = OwnershipMap.contiguous(sharded.num_partitions, self.num_workers)
        ownership.validate()
        self._ownership = ownership
        self._owner_of = ownership.owner_of
        in_bounds, out_bounds = boundary_sets(sharded, ownership)
        self.boundary_in_sizes = [len(b) for b in in_bounds]
        self.boundary_out_sizes = [len(b) for b in out_bounds]

        if store is not None:
            with_weights = bool(store.weighted or unit_weights)
        else:
            with_weights = any(
                s.csc_weights is not None for s in sharded.shards
            )
        shard_manifest = {
            s.index: (s.index, s.start, s.stop, s.num_in_edges, s.num_out_edges)
            for s in sharded.shards
        }
        if store is not None:
            # Count math only -- never fault the store's memmaps.
            shard_bytes = {
                i: estimate_shard_bytes(row[2] - row[1], row[3], row[4], with_weights)
                for i, row in shard_manifest.items()
            }
        else:
            # In-RAM shards are already materialized: use the actual
            # array footprints so worker/single comparisons share units
            # (the per-worker segment holds exactly these arrays).
            shard_bytes = {}
            for s in sharded.shards:
                total = (
                    s.csc.indptr.nbytes + s.csc.indices.nbytes
                    + s.csc.edge_ids.nbytes + s.csr.indptr.nbytes
                    + s.csr.indices.nbytes + s.csr.edge_ids.nbytes
                )
                if s.csc_weights is not None:
                    total += s.csc_weights.nbytes
                if s.csr_weights is not None:
                    total += s.csr_weights.nbytes
                shard_bytes[s.index] = total

        # --- bootstrap state segment (doubles as the main-side shadow) --
        out_deg = np.asarray(ctx.out_degrees)
        in_deg = np.asarray(ctx.in_degrees)
        state_arrays = {
            "vertex_values": self._compute.vertex_values,
            "current": self._frontier.current,
            "changed": self._frontier.changed,
            "out_degrees": out_deg,
            "in_degrees": in_deg,
        }
        if self._compute.edge_state is not None:
            state_arrays["edge_state"] = self._compute.edge_state
        state_shm, state_toc = _create_segment(state_arrays, "state")
        self._segments.append(state_shm)
        self._state_views = _segment_views(state_shm, state_toc, writable=True)

        vv = self._compute.vertex_values
        self._vrow_bytes = vv.nbytes // max(n, 1)
        es = self._compute.edge_state
        self._erow_bytes = es.nbytes // max(num_edges, 1) if es is not None else 0
        # Worker-side run state: values + gather scratch (same shape),
        # bool masks + gather_has, edge state, degree arrays.
        state_bytes = (
            2 * vv.nbytes
            + 3 * n
            + (es.nbytes if es is not None else 0)
            + out_deg.nbytes
            + in_deg.nbytes
        )

        self._pending_v = [np.zeros(n, dtype=bool) for _ in range(self.num_workers)]
        self._readable_v = []
        self._pending_e = (
            [np.zeros(num_edges, dtype=bool) for _ in range(self.num_workers)]
            if es is not None
            else None
        )
        self._mask_range = []
        self._mailboxes = []
        self._mbox_seq = [0] * self.num_workers
        self.worker_resident_bytes = []
        self.single_process_bytes = sum(shard_bytes.values()) + state_bytes

        spec_base = {
            "t0": self._t0,
            "cluster": True,
            "program": program,
            "num_vertices": n,
            "num_edges": num_edges,
            "num_partitions": sharded.num_partitions,
            "boundaries": np.asarray(sharded.boundaries),
            "state": (state_shm.name, state_toc),
            "dense": dense,
            "cache": cache,
            "sparse": sparse,
            "plan_budget": plan_budget,
            "kernel_backend": kernel_backend,
        }
        self._result_q = spawn.Queue()
        for w in range(self.num_workers):
            owned_ids = ownership.shards_of(w)
            owned = [shard_manifest[i] for i in owned_ids]
            # Contiguous ownership: the owned vertex set is one range.
            lo = min(row[1] for row in owned)
            hi = max(row[2] for row in owned)

            if store is not None:
                graph_spec = ("store", str(store.path), bool(unit_weights))
                graph_nbytes = 0
            else:
                arrays = {}
                for i in owned_ids:
                    s = sharded.shards[i]
                    pre = f"s{s.index}."
                    arrays[pre + "csc.indptr"] = s.csc.indptr
                    arrays[pre + "csc.indices"] = s.csc.indices
                    arrays[pre + "csc.edge_ids"] = s.csc.edge_ids
                    arrays[pre + "csr.indptr"] = s.csr.indptr
                    arrays[pre + "csr.indices"] = s.csr.indices
                    arrays[pre + "csr.edge_ids"] = s.csr.edge_ids
                    if s.csc_weights is not None:
                        arrays[pre + "csc.weights"] = s.csc_weights
                    if s.csr_weights is not None:
                        arrays[pre + "csr.weights"] = s.csr_weights
                graph_shm, graph_toc = _create_segment(arrays, f"graph{w}")
                self._segments.append(graph_shm)
                graph_spec = ("shm", graph_shm.name, graph_toc)
                graph_nbytes = graph_shm.size

            readable = np.zeros(n, dtype=bool)
            readable[lo:hi] = True
            readable[in_bounds[w]] = True
            self._readable_v.append(readable)
            mask_lo, mask_hi = (lo, hi) if self._policy == "partitioned" else (0, n)
            self._mask_range.append((mask_lo, mask_hi))

            # Fixed mailbox slots sized to the worker's full readable
            # set -- the sparse exchange can never overflow them.
            cap_v = (hi - lo) + len(in_bounds[w])
            packed = (mask_hi - mask_lo + 7) // 8
            mbox_arrays = {
                "header": np.zeros(4, dtype=np.int64),
                "vidx": np.zeros(cap_v, dtype=np.int64),
                "vvals": np.zeros((cap_v,) + vv.shape[1:], dtype=vv.dtype),
                "cur": np.zeros(packed, dtype=np.uint8),
                "chg": np.zeros(packed, dtype=np.uint8),
            }
            if es is not None:
                mbox_arrays["eidx"] = np.zeros(num_edges, dtype=np.int64)
                mbox_arrays["evals"] = np.zeros(num_edges, dtype=es.dtype)
            mbox_shm, mbox_toc = _create_segment(mbox_arrays, f"mbox{w}")
            self._segments.append(mbox_shm)
            self._mailboxes.append(
                {
                    "views": _segment_views(mbox_shm, mbox_toc, writable=True),
                    "cap_v": cap_v,
                    "packed": packed,
                }
            )

            # In-RAM runs map the per-worker graph segment zero-copy, so
            # its size *is* the worker's shard footprint; store-backed
            # workers memmap their owned shards (count math, no faults).
            graph_bytes = (
                graph_nbytes
                if store is None
                else sum(shard_bytes[i] for i in owned_ids)
            )
            self.worker_resident_bytes.append(
                graph_bytes + state_bytes + mbox_shm.size
            )

            spec = dict(
                spec_base,
                worker_id=w,
                shards=owned,
                graph=graph_spec,
                mailbox=(mbox_shm.name, mbox_toc),
                mask_range=(mask_lo, mask_hi),
            )
            task_q = spawn.SimpleQueue()
            proc = spawn.Process(
                target=_worker_main,
                args=(spec, task_q, self._result_q),
                name=f"repro-cluster-{w}",
                daemon=True,
            )
            proc.start()
            self._task_qs.append(task_q)
            self._procs.append(proc)
        self._await_ready()

    # ------------------------------------------------------------------
    def _accumulate_pending(self) -> None:
        """Diff live state vs the shadow; fold dirty rows into pending.

        An O(n) compare instead of tracking every mutation site: robust
        to any write path (delta replay, ``frontier.advance``, reseeds,
        the direction controller's ``activate_all``). The shadow then
        catches up, so each row is shipped to each worker at most once
        per change.
        """
        t0 = perf_counter()
        views = self._state_views
        live = self._compute.vertex_values
        shadow = views["vertex_values"]
        dirty = live != shadow
        if dirty.ndim > 1:
            dirty = dirty.any(axis=1)
        if dirty.any():
            rows = np.flatnonzero(dirty)
            shadow[rows] = live[rows]
            for w in range(self.num_workers):
                readable = self._readable_v[w]
                self._pending_v[w][rows[readable[rows]]] = True
        es = self._compute.edge_state
        if es is not None:
            e_shadow = views["edge_state"]
            e_dirty = es != e_shadow
            if e_dirty.ndim > 1:
                e_dirty = e_dirty.any(axis=1)
            if e_dirty.any():
                eids = np.flatnonzero(e_dirty)
                e_shadow[eids] = es[eids]
                for w in range(self.num_workers):
                    self._pending_e[w][eids] = True
        self.publish_seconds += perf_counter() - t0

    def _fill_mailbox(self, w: int) -> None:
        """Pack worker ``w``'s pending rows + fresh bitmaps; bump seq."""
        mb = self._mailboxes[w]
        views = mb["views"]
        pend = self._pending_v[w]
        rows = np.flatnonzero(pend)
        k = len(rows)
        if k:
            views["vidx"][:k] = rows
            views["vvals"][:k] = self._compute.vertex_values[rows]
            pend[:] = False
        lo, hi = self._mask_range[w]
        views["cur"][...] = np.packbits(self._frontier.current[lo:hi])
        views["chg"][...] = np.packbits(self._frontier.changed[lo:hi])
        m = 0
        if self._pending_e is not None:
            pe = self._pending_e[w]
            eids = np.flatnonzero(pe)
            m = len(eids)
            if m:
                views["eidx"][:m] = eids
                views["evals"][:m] = self._compute.edge_state[eids]
                pe[:] = False
        self._mbox_seq[w] += 1
        header = views["header"]
        header[1] = k
        header[2] = m
        # The sequence number is written last: a worker acts on the
        # payload only after seeing the new seq (and only after the
        # task-queue message that itself follows this write).
        header[0] = self._mbox_seq[w]
        self.mailbox_publishes += 1
        if k >= mb["cap_v"]:
            self.mailbox_stalls += 1
        self.boundary_bytes_sent += (
            k * (8 + self._vrow_bytes) + 2 * mb["packed"] + m * (8 + self._erow_bytes)
        )

    def phase_run(self, group, shards, iteration: int, count_full: bool):
        """Mailbox publish + dispatch, one owner at a time.

        Owner ``w``'s tasks are enqueued immediately after its mailbox
        write, so its compute overlaps the packing of every later
        owner's deltas; the collector (and with it the deterministic
        owner-order merge) is identical to the base pool's.
        """
        self._accumulate_pending()
        self._sync_id += 1
        fr = self._frontier
        by_worker: dict[int, list] = {}
        for shard in shards:
            by_worker.setdefault(self._worker_for(shard.index), []).append(shard)
        for w in sorted(by_worker):
            self._fill_mailbox(w)
            for shard in by_worker[w]:
                self._task_qs[w].put(
                    (
                        _TASK,
                        self._sync_id,
                        iteration,
                        tuple(group.phases),
                        shard.index,
                        count_full,
                        int(fr.active_epochs[shard.index]),
                        int(fr.changed_epochs[shard.index]),
                    )
                )
        self.tasks += len(shards)
        self.max_inflight = max(self.max_inflight, len(shards))
        self._obs.add("procpool.tasks", len(shards))
        if self._heartbeats is not None:
            for shard in shards:
                w = self._worker_for(shard.index)
                self._outstanding[w] += 1
                self._heartbeats.busy(f"worker-{w}", True)
        pending: dict[int, tuple] = {}

        def collect(shard):
            payload = self._await_result(shard.index, pending)
            return self._replay(payload)

        return collect

    def _replay(self, payload: tuple) -> WorkItems:
        for delta in payload[4]:
            for part in delta[1:]:
                if isinstance(part, np.ndarray):
                    self.delta_bytes_merged += part.nbytes
        return super()._replay(payload)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["backend"] = "cluster"
        snap["frontier_policy"] = self._policy
        snap["owned_shards"] = [
            len(self._ownership.shards_of(w)) for w in range(self.num_workers)
        ]
        snap["boundary_in_sizes"] = list(self.boundary_in_sizes)
        snap["boundary_out_sizes"] = list(self.boundary_out_sizes)
        snap["worker_resident_bytes"] = list(self.worker_resident_bytes)
        snap["single_process_bytes"] = self.single_process_bytes
        snap["boundary_bytes_sent"] = self.boundary_bytes_sent
        snap["delta_bytes_merged"] = self.delta_bytes_merged
        snap["mailbox_publishes"] = self.mailbox_publishes
        snap["mailbox_stalls"] = self.mailbox_stalls
        return snap
