"""On-disk shard store: the out-of-core analogue of Section 4.3.

GraphReduce's defining claim is processing graphs *larger than device
memory* by streaming shards over PCIe. On the host side of the
reproduction the same regime appears one level up the hierarchy: a graph
larger than host RAM must stream shards from *disk*. This module is that
tier -- a directory format holding one ``ShardedGraph``:

``manifest.json``
    intervals, per-shard edge counts, dtypes, graph metadata. Opening a
    store reads only this file, so ``ShardStore.open`` is O(1) RAM.
``degrees.out.npy`` / ``degrees.in.npy``
    the per-vertex degree arrays (PageRank's normalization and the
    partitioner's load model need them without touching edges).
``shardNNNNN.csc.indptr.npy`` (+ ``indices``/``eids``/``weights``, and
the same four under ``.csr.``)
    each shard's sub-arrays as plain ``.npy`` files, loaded with
    ``np.load(..., mmap_mode="r")`` so a shard's bytes fault in on
    first touch and can be dropped again by releasing the arrays.

Shards come back as :class:`LazyShard` views whose ``csc``/``csr``
properties delegate to a pluggable *source* -- by default a per-store
memo, at runtime the movement layer's ``HostPrefetcher`` -- so the
resident set is a policy decision, not a format property. The arrays a
lazy shard exposes have byte-identical dtypes and contents to the
in-RAM :class:`~repro.core.partition.Shard`, which is what keeps
out-of-core runs bit-identical to in-RAM runs.

:func:`build_store_streaming` ingests an edge-list file that never fully
resides in RAM: a chunked counting pass fixes the intervals, a bucketing
pass spills (key, neighbor, edge-id[, weight]) records per shard, and a
per-shard compression pass reproduces exactly the stable-sort layout of
:func:`repro.graph.csr._compress` -- including the global edge ids.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.kernels import layout as layout_mod
from repro.core.partition import (
    ShardBytes,
    ShardedGraph,
    edge_balanced_from_loads,
)
from repro.graph.edgelist import VID_DTYPE, WEIGHT_DTYPE
from repro.graph.csr import CSR
from repro.graph.io import edgelist_metadata, iter_edge_chunks

FORMAT = "graphreduce-shard-store"
VERSION = 1

MANIFEST = "manifest.json"
OUT_DEGREES = "degrees.out.npy"
IN_DEGREES = "degrees.in.npy"

#: sub-array file suffixes per layout ("csc" / "csr")
_PARTS = ("indptr", "indices", "eids", "weights")


def _shard_file(index: int, layout: str, part: str) -> str:
    return f"shard{index:05d}.{layout}.{part}.npy"


# ----------------------------------------------------------------------
# Lazy views
# ----------------------------------------------------------------------
@dataclass
class ShardArrays:
    """One shard's materialized (memmap-backed) arrays."""

    csc: CSR
    csr: CSR
    csc_weights: np.ndarray | None
    csr_weights: np.ndarray | None
    #: bytes this shard's mapped files cover (for fault accounting)
    nbytes: int = 0


class LazyShard(ShardBytes):
    """A :class:`~repro.core.partition.Shard` look-alike whose arrays
    live behind a *source* (store memo or prefetcher cache).

    Counts come from the manifest, so everything the Data Movement
    Engine sizes transfers with -- ``sub_array_bytes``, ``total_bytes``,
    ``expand_buffers`` -- never faults a byte in from disk.
    """

    __slots__ = ("index", "start", "stop", "_num_in", "_num_out", "_source")

    def __init__(self, index: int, start: int, stop: int, num_in: int, num_out: int, source):
        self.index = index
        self.start = start
        self.stop = stop
        self._num_in = num_in
        self._num_out = num_out
        self._source = source

    def bind(self, source) -> None:
        """Swap the array provider (the runtime installs its prefetcher)."""
        self._source = source

    @property
    def num_interval_vertices(self) -> int:
        return self.stop - self.start

    @property
    def num_in_edges(self) -> int:
        return self._num_in

    @property
    def num_out_edges(self) -> int:
        return self._num_out

    @property
    def csc(self) -> CSR:
        return self._source.arrays(self.index).csc

    @property
    def csr(self) -> CSR:
        return self._source.arrays(self.index).csr

    @property
    def csc_weights(self) -> np.ndarray | None:
        return self._source.arrays(self.index).csc_weights

    @property
    def csr_weights(self) -> np.ndarray | None:
        return self._source.arrays(self.index).csr_weights


class StoreEdgeList:
    """EdgeList facade over a store: metadata + memmapped degrees.

    Satisfies everything the runtime reads from ``edges`` -- counts,
    ``name``, ``undirected``, degree arrays, the ``weights is None``
    probe -- without the edges themselves ever existing in RAM.
    ``weights`` is a zero-length marker array when the run is weighted
    (stored or synthesized unit weights); real per-edge values are only
    ever touched shard-wise through the lazy shards.
    """

    def __init__(self, store: "ShardStore", weighted: bool):
        self.num_vertices = store.num_vertices
        self.num_edges = store.num_edges
        self.undirected = store.undirected
        self.name = store.name
        self.weights = np.empty(0, dtype=WEIGHT_DTYPE) if weighted else None
        self._store = store

    def with_unit_weights(self) -> "StoreEdgeList":
        return StoreEdgeList(self._store, weighted=True)

    def out_degrees(self) -> np.ndarray:
        return self._store.out_degrees()

    def in_degrees(self) -> np.ndarray:
        return self._store.in_degrees()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreEdgeList({self.name!r}, V={self.num_vertices}, "
            f"E={self.num_edges}, store={str(self._store.path)!r})"
        )


class _MemoSource:
    """Default array provider: load on first touch, keep forever.

    Fine for direct store use (tests, ad-hoc inspection); the runtime
    replaces it with the budgeted ``HostPrefetcher``.
    """

    def __init__(self, store: "ShardStore", unit_weights: bool):
        self._store = store
        self._unit_weights = unit_weights
        self._cache: dict[int, ShardArrays] = {}

    def arrays(self, index: int) -> ShardArrays:
        got = self._cache.get(index)
        if got is None:
            got = self._store.load_arrays(index, unit_weights=self._unit_weights)
            self._cache[index] = got
        return got


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ShardStore:
    """A ``ShardedGraph`` serialized to one directory.

    ``open`` reads the manifest only; array files are memory-mapped on
    demand through :meth:`load_arrays`.
    """

    def __init__(self, path: Path, manifest: dict):
        self.path = Path(path)
        if manifest.get("format") != FORMAT:
            raise ValueError(f"{path}: not a shard store (format={manifest.get('format')!r})")
        if manifest.get("version") != VERSION:
            raise ValueError(f"{path}: unsupported store version {manifest.get('version')!r}")
        self.manifest = manifest
        self.name: str = manifest["name"]
        self.num_vertices: int = manifest["num_vertices"]
        self.num_edges: int = manifest["num_edges"]
        self.undirected: bool = manifest["undirected"]
        self.weighted: bool = manifest["weighted"]
        self.logic: str = manifest["logic"]
        self.boundaries = np.asarray(manifest["boundaries"], dtype=np.int64)
        self.shard_meta: list[dict] = manifest["shards"]

    # -- construction ---------------------------------------------------
    @classmethod
    def open(cls, path) -> "ShardStore":
        path = Path(path)
        with (path / MANIFEST).open() as fh:
            return cls(path, json.load(fh))

    @classmethod
    def save(cls, sharded: ShardedGraph, path) -> "ShardStore":
        """Serialize an in-RAM ``ShardedGraph`` (same layout the
        streaming builder produces)."""
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        edges = sharded.edges
        weighted = edges.weights is not None
        np.save(path / OUT_DEGREES, edges.out_degrees())
        np.save(path / IN_DEGREES, edges.in_degrees())
        meta = []
        for shard in sharded.shards:
            for layout, csr, w in (
                ("csc", shard.csc, shard.csc_weights),
                ("csr", shard.csr, shard.csr_weights),
            ):
                np.save(path / _shard_file(shard.index, layout, "indptr"), csr.indptr)
                np.save(path / _shard_file(shard.index, layout, "indices"), csr.indices)
                np.save(path / _shard_file(shard.index, layout, "eids"), csr.edge_ids)
                if weighted:
                    np.save(path / _shard_file(shard.index, layout, "weights"), w)
            meta.append(
                {
                    "index": shard.index,
                    "start": shard.start,
                    "stop": shard.stop,
                    "in_edges": shard.num_in_edges,
                    "out_edges": shard.num_out_edges,
                }
            )
        manifest = {
            "format": FORMAT,
            "version": VERSION,
            "name": edges.name,
            "num_vertices": edges.num_vertices,
            "num_edges": edges.num_edges,
            "undirected": bool(edges.undirected),
            "weighted": weighted,
            "logic": sharded.logic,
            "dtypes": {
                "indptr": "int64",
                "indices": np.dtype(VID_DTYPE).name,
                "eids": "int64",
                "weights": np.dtype(WEIGHT_DTYPE).name,
            },
            "boundaries": [int(b) for b in sharded.boundaries],
            "shards": meta,
        }
        with (path / MANIFEST).open("w") as fh:
            json.dump(manifest, fh, indent=1)
        return cls(path, manifest)

    # -- reading --------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.shard_meta)

    def load_arrays(self, index: int, unit_weights: bool = False) -> ShardArrays:
        """Memory-map one shard's sub-arrays.

        ``unit_weights`` synthesizes per-shard ``ones`` when an
        unweighted store runs a weights-needing program -- the same
        values ``EdgeList.with_unit_weights`` would have partitioned.

        Alignment: the memmapped ``.npy`` payloads start at the format's
        64-byte ``ARRAY_ALIGN`` boundary (a page-aligned mapping keeps
        it), and the synthesized weights come from the kernel layer's
        aligned allocator, so every sub-array the fused kernels stream
        is cache-line aligned.
        """
        def load(layout: str, part: str):
            return np.load(self.path / _shard_file(index, layout, part), mmap_mode="r")

        csc = CSR(load("csc", "indptr"), load("csc", "indices"), load("csc", "eids"))
        csr = CSR(load("csr", "indptr"), load("csr", "indices"), load("csr", "eids"))
        csc_w = csr_w = None
        if self.weighted:
            csc_w = load("csc", "weights")
            csr_w = load("csr", "weights")
        elif unit_weights:
            csc_w = layout_mod.aligned_ones(csc.num_edges, WEIGHT_DTYPE)
            csr_w = layout_mod.aligned_ones(csr.num_edges, WEIGHT_DTYPE)
        nbytes = sum(
            a.nbytes
            for a in (
                csc.indptr, csc.indices, csc.edge_ids,
                csr.indptr, csr.indices, csr.edge_ids,
            )
        )
        if csc_w is not None:
            nbytes += csc_w.nbytes + csr_w.nbytes
        return ShardArrays(csc, csr, csc_w, csr_w, nbytes)

    def out_degrees(self) -> np.ndarray:
        return np.load(self.path / OUT_DEGREES, mmap_mode="r")

    def in_degrees(self) -> np.ndarray:
        return np.load(self.path / IN_DEGREES, mmap_mode="r")

    def sharded_graph(self, unit_weights: bool = False, source=None) -> ShardedGraph:
        """The lazy ``ShardedGraph`` view (no shard data is read)."""
        if source is None:
            source = _MemoSource(self, unit_weights)
        edges = StoreEdgeList(self, weighted=self.weighted or unit_weights)
        shards = [
            LazyShard(m["index"], m["start"], m["stop"], m["in_edges"], m["out_edges"], source)
            for m in self.shard_meta
        ]
        return ShardedGraph(edges, self.boundaries, shards, self.logic, None, None)

    def edgelist(self) -> StoreEdgeList:
        return StoreEdgeList(self, weighted=self.weighted)

    def max_shard_bytes(self, with_weights: bool, with_edge_state: bool) -> int:
        return self.sharded_graph().max_shard_bytes(with_weights, with_edge_state)

    def max_interval_vertices(self) -> int:
        return max((m["stop"] - m["start"] for m in self.shard_meta), default=0)

    def disk_bytes(self) -> int:
        """Total size of the array files (what streaming must cover)."""
        return sum(
            f.stat().st_size for f in self.path.iterdir() if f.suffix == ".npy"
        )


# ----------------------------------------------------------------------
# Streaming ingestion: the two-pass external partitioner
# ----------------------------------------------------------------------
def _grow_to(arr: np.ndarray, size: int) -> np.ndarray:
    if size <= len(arr):
        return arr
    grown = np.zeros(size, dtype=arr.dtype)
    grown[: len(arr)] = arr
    return grown


def build_store_streaming(
    input_path,
    out_dir,
    num_partitions: int,
    chunk_edges: int = 1 << 20,
    num_vertices: int | None = None,
    name: str | None = None,
) -> ShardStore:
    """Build a shard store from an edge-list file without ever holding
    the full edge set in RAM.

    Pass 1 streams chunks accumulating degree arrays (the partitioner's
    load model and the store's ``degrees.*`` files). Pass 2 re-streams,
    bucketing each chunk's edges by destination interval (the CSC side)
    and source interval (the CSR side) into per-shard spill files of
    ``(key, neighbor, edge_id[, weight])`` records. Pass 3 reads one
    shard's records at a time, stable-sorts by key and compresses --
    reproducing :func:`repro.graph.csr._compress`'s layout exactly,
    global edge ids included, so a streamed store is bit-identical to
    ``ShardStore.save(PartitionEngine().partition(...))``.

    Peak memory: one chunk + one shard's records + the degree arrays.
    """
    input_path = Path(input_path)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    meta = edgelist_metadata(input_path)

    # -- pass 1: degrees / counts --------------------------------------
    out_deg = np.zeros(0, dtype=np.int64)
    in_deg = np.zeros(0, dtype=np.int64)
    num_edges = 0
    weighted = None
    for src, dst, w in iter_edge_chunks(input_path, chunk_edges):
        if weighted is None:
            weighted = w is not None
        elif weighted != (w is not None):
            raise ValueError(f"{input_path}: mixed weighted/unweighted chunks")
        if len(src):
            hi = int(max(src.max(), dst.max())) + 1
            out_deg = _grow_to(out_deg, hi)
            in_deg = _grow_to(in_deg, hi)
            out_deg += np.bincount(src, minlength=len(out_deg))
            in_deg += np.bincount(dst, minlength=len(in_deg))
        num_edges += len(src)
    weighted = bool(weighted)
    n = meta["num_vertices"] if meta["num_vertices"] is not None else len(out_deg)
    if num_vertices is not None:
        n = num_vertices
    if n < len(out_deg):
        raise ValueError(f"{input_path}: endpoint {len(out_deg) - 1} outside [0, {n})")
    out_deg = _grow_to(out_deg, n)
    in_deg = _grow_to(in_deg, n)
    num_partitions = max(1, min(num_partitions, max(n, 1)))
    boundaries = edge_balanced_from_loads(out_deg + in_deg, num_partitions)
    np.save(out_dir / OUT_DEGREES, out_deg)
    np.save(out_dir / IN_DEGREES, in_deg)

    # -- pass 2: bucket records into per-shard spill files --------------
    fields = [("key", np.int64), ("val", np.int64), ("eid", np.int64)]
    if weighted:
        fields.append(("w", WEIGHT_DTYPE))
    rec_dtype = np.dtype(fields)
    spill_dir = out_dir / "_spill"
    spill_dir.mkdir(exist_ok=True)
    spill = {
        (i, layout): (spill_dir / f"{i:05d}.{layout}.bin").open("wb")
        for i in range(num_partitions)
        for layout in ("csc", "csr")
    }
    try:
        eid_base = 0
        for src, dst, w in iter_edge_chunks(input_path, chunk_edges):
            eids = np.arange(eid_base, eid_base + len(src), dtype=np.int64)
            eid_base += len(src)
            for layout, keys, vals in (("csc", dst, src), ("csr", src, dst)):
                recs = np.empty(len(keys), dtype=rec_dtype)
                recs["key"] = keys
                recs["val"] = vals
                recs["eid"] = eids
                if weighted:
                    recs["w"] = w
                owner = np.searchsorted(boundaries, keys, side="right") - 1
                order = np.argsort(owner, kind="stable")
                recs = recs[order]
                counts = np.bincount(owner, minlength=num_partitions)
                offset = 0
                for i in range(num_partitions):
                    c = int(counts[i])
                    if c:
                        recs[offset : offset + c].tofile(spill[(i, layout)])
                    offset += c
    finally:
        for fh in spill.values():
            fh.close()

    # -- pass 3: per-shard compression ----------------------------------
    shard_meta = []
    for i in range(num_partitions):
        start, stop = int(boundaries[i]), int(boundaries[i + 1])
        entry = {"index": i, "start": start, "stop": stop}
        for layout, count_key in (("csc", "in_edges"), ("csr", "out_edges")):
            recs = np.fromfile(spill_dir / f"{i:05d}.{layout}.bin", dtype=rec_dtype)
            # Records arrive in original edge order; a stable sort by key
            # therefore preserves per-row original order -- the layout
            # the in-RAM _compress + row_slice pipeline produces.
            order = np.argsort(recs["key"], kind="stable")
            recs = recs[order]
            counts = np.bincount(recs["key"] - start, minlength=stop - start)
            indptr = np.zeros(stop - start + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            np.save(out_dir / _shard_file(i, layout, "indptr"), indptr)
            np.save(out_dir / _shard_file(i, layout, "indices"), recs["val"].astype(VID_DTYPE))
            np.save(out_dir / _shard_file(i, layout, "eids"), np.ascontiguousarray(recs["eid"]))
            if weighted:
                np.save(out_dir / _shard_file(i, layout, "weights"), np.ascontiguousarray(recs["w"]))
            entry[count_key] = len(recs)
        shard_meta.append(entry)
    shutil.rmtree(spill_dir)

    manifest = {
        "format": FORMAT,
        "version": VERSION,
        "name": name or meta["name"],
        "num_vertices": int(n),
        "num_edges": int(num_edges),
        "undirected": bool(meta["undirected"]),
        "weighted": weighted,
        "logic": "edge_balanced",
        "dtypes": {
            "indptr": "int64",
            "indices": np.dtype(VID_DTYPE).name,
            "eids": "int64",
            "weights": np.dtype(WEIGHT_DTYPE).name,
        },
        "boundaries": [int(b) for b in boundaries],
        "shards": shard_meta,
    }
    with (out_dir / MANIFEST).open("w") as fh:
        json.dump(manifest, fh, indent=1)
    return ShardStore(out_dir, manifest)
