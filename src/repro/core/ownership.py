"""Partitioned ownership: who holds which shard, and what crosses owners.

One abstraction shared by the two scale-out layers:

* the ``cluster`` procpool backend (:mod:`repro.core.procpool`), where
  each worker *process* attaches only its owned shard slice and the main
  process ships sparse boundary-vertex deltas through fixed-slot
  shared-memory mailboxes, and
* the simulated multi-device scheduler (:mod:`repro.core.multigpu`),
  where each *device* owns its shards for the whole run and the
  iteration-end replication exchanges only the changed vertices each
  peer actually reads.

Both layers need the same three answers, which live here:

1. **shard -> owner**: a total, single-owner assignment
   (:class:`OwnershipMap`; every shard has exactly one owner).
2. **boundary-vertex index sets**: which foreign vertices an owner
   *reads* (``in_boundary`` -- the CSC source vertices of its shards
   that fall outside its own intervals) and which of its vertices other
   owners read (``out_boundary``). These bound the sparse delta traffic:
   an owner only ever needs value updates for ``owned union
   in_boundary`` vertices.
3. **frontier policy**: ``"replicated"`` keeps full frontier bitmaps
   everywhere (the classic multi-GPU GAS design, and what the paper's
   single-device engine assumes); ``"partitioned"`` ships only the
   owned-interval slice (cluster) or the pairwise boundary bits
   (multi-device), trading bitmap traffic for the bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import IDX_BYTES, PTR_BYTES, VAL_BYTES

#: Recognized frontier exchange policies.
FRONTIER_POLICIES = ("replicated", "partitioned")


def check_frontier_policy(policy: str) -> str:
    if policy not in FRONTIER_POLICIES:
        raise ValueError(
            f"unknown frontier_policy {policy!r}; expected one of "
            f"{FRONTIER_POLICIES}"
        )
    return policy


@dataclass(frozen=True)
class OwnershipMap:
    """A total shard -> owner assignment (every shard, exactly one owner).

    ``owner_of[i]`` is the owner of shard ``i``. Owners are dense ids
    ``0..num_owners-1``; an owner may end up with zero shards only when
    there are more owners than shards.
    """

    num_owners: int
    owner_of: tuple

    @classmethod
    def contiguous(cls, num_partitions: int, num_owners: int) -> "OwnershipMap":
        """Block assignment: owner ``w`` gets a contiguous run of shards.

        Contiguous runs keep each owner's vertex intervals contiguous
        too (shard intervals are sorted), which is what lets the cluster
        backend describe an owner's vertex range as one ``[lo, hi)``
        slice -- the partitioned frontier policy ships exactly that
        slice of the bitmaps.
        """
        if num_owners < 1:
            raise ValueError(f"num_owners must be >= 1, got {num_owners!r}")
        num_owners = min(num_owners, max(num_partitions, 1))
        bounds = np.linspace(0, num_partitions, num_owners + 1).astype(np.int64)
        owner_of = np.repeat(np.arange(num_owners), np.diff(bounds))
        return cls(num_owners=num_owners, owner_of=tuple(int(o) for o in owner_of))

    @classmethod
    def round_robin(cls, num_partitions: int, num_owners: int) -> "OwnershipMap":
        """``shard.index % num_owners`` -- the legacy multi-GPU layout."""
        if num_owners < 1:
            raise ValueError(f"num_owners must be >= 1, got {num_owners!r}")
        num_owners = min(num_owners, max(num_partitions, 1))
        return cls(
            num_owners=num_owners,
            owner_of=tuple(i % num_owners for i in range(num_partitions)),
        )

    @property
    def num_partitions(self) -> int:
        return len(self.owner_of)

    def shards_of(self, owner: int) -> list[int]:
        return [i for i, o in enumerate(self.owner_of) if o == owner]

    def validate(self) -> None:
        """Every shard has exactly one owner in ``[0, num_owners)``."""
        if self.num_owners < 1:
            raise ValueError("ownership needs at least one owner")
        for i, o in enumerate(self.owner_of):
            if not isinstance(o, int) or not (0 <= o < self.num_owners):
                raise ValueError(
                    f"shard {i} has invalid owner {o!r} "
                    f"(num_owners={self.num_owners})"
                )


# ----------------------------------------------------------------------
# Boundary-vertex index sets
# ----------------------------------------------------------------------
def owned_vertex_mask(sharded, ownership: OwnershipMap, owner: int) -> np.ndarray:
    """Bool mask of the vertices inside ``owner``'s shard intervals."""
    mask = np.zeros(sharded.num_vertices, dtype=bool)
    for i in ownership.shards_of(owner):
        s = sharded.shards[i]
        mask[s.start : s.stop] = True
    return mask


def boundary_sets(sharded, ownership: OwnershipMap) -> tuple[list, list]:
    """Per-owner (in_boundary, out_boundary) sorted vertex-id arrays.

    ``in_boundary[w]``: foreign vertices ``w`` *reads* -- the CSC source
    vertices of its shards outside its own intervals (gather pulls their
    values across the ownership boundary).

    ``out_boundary[w]``: vertices ``w`` owns that some *other* owner
    reads. By construction the two sides describe the same edges, so
    ``union_{c != p}(in_boundary[c] & owned[p]) == out_boundary[p]`` --
    the symmetry the property test pins down.

    Works identically for in-RAM shards and store-backed lazy shards
    (reading ``csc.indices`` faults a lazy shard in once; this runs at
    pool/scheduler startup, not per iteration).
    """
    n = sharded.num_vertices
    readers = [
        np.zeros(n, dtype=bool) for _ in range(ownership.num_owners)
    ]  # readers[w][v]: w reads v via some owned shard's in-edges
    owned = [
        owned_vertex_mask(sharded, ownership, w)
        for w in range(ownership.num_owners)
    ]
    for shard in sharded.shards:
        w = ownership.owner_of[shard.index]
        src = shard.csc.indices
        if len(src):
            readers[w][src] = True
    in_b = [
        np.flatnonzero(readers[w] & ~owned[w])
        for w in range(ownership.num_owners)
    ]
    out_b = []
    for w in range(ownership.num_owners):
        read_by_others = np.zeros(n, dtype=bool)
        for other in range(ownership.num_owners):
            if other != w:
                read_by_others[in_b[other]] = True
        out_b.append(np.flatnonzero(read_by_others & owned[w]))
    return in_b, out_b


def boundary_matrix(sharded, ownership: OwnershipMap) -> dict:
    """Pairwise boundary sets: ``(consumer, producer) -> vertex ids``.

    ``matrix[(c, p)]`` holds the vertices owned by ``p`` that consumer
    ``c`` reads -- the exact vertex set a partitioned-frontier exchange
    from ``p`` to ``c`` must cover. Diagonal pairs are absent (an owner
    never ships to itself).
    """
    in_b, _ = boundary_sets(sharded, ownership)
    owned = [
        owned_vertex_mask(sharded, ownership, w)
        for w in range(ownership.num_owners)
    ]
    matrix = {}
    for c in range(ownership.num_owners):
        for p in range(ownership.num_owners):
            if c == p:
                continue
            vids = in_b[c][owned[p][in_b[c]]]
            if len(vids):
                matrix[(c, p)] = vids
    return matrix


# ----------------------------------------------------------------------
# Resident-byte accounting
# ----------------------------------------------------------------------
def estimate_shard_bytes(
    num_interval_vertices: int,
    num_in_edges: int,
    num_out_edges: int,
    with_weights: bool,
) -> int:
    """Host bytes of one shard's CSC+CSR arrays, from counts alone.

    Pure count math so the cluster pool can report per-worker resident
    footprints for store-backed shards without faulting their memmaps
    (edge ids ride with each layout at ``IDX_BYTES`` apiece).
    """
    nv = num_interval_vertices
    total = 2 * (nv + 1) * PTR_BYTES  # csc+csr indptr
    total += (num_in_edges + num_out_edges) * 2 * IDX_BYTES  # indices+edge_ids
    if with_weights:
        total += (num_in_edges + num_out_edges) * VAL_BYTES
    return total
