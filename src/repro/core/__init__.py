"""GraphReduce: the paper's primary contribution.

The framework of Section 4, mirrored module by module:

* :mod:`repro.core.api` -- the user interface (Section 4.1): the
  Gather-Apply-Scatter program definition (gatherMap / gatherReduce /
  apply / scatter plus the vertex/edge data types -- the UserInfoTuple).
* :mod:`repro.core.partition` -- the Partition Engine (Section 4.2):
  edge-balanced vertex intervals, per-interval shards with in-edges in
  CSC order and out-edges in CSR order, and the Partition Logic Table
  plug-in point.
* :mod:`repro.core.frontier` -- Dynamic Frontier Management
  (Section 5.2): active/changed tracking, per-shard activity counts,
  shard-skip decisions, frontier history for Figures 3/16/17.
* :mod:`repro.core.fusion` -- the Phase Fusion Engine (Section 5.3):
  dynamic phase elimination and fusion producing each iteration's phase
  plan.
* :mod:`repro.core.compute` -- the Compute Engine (Section 4.4): the
  five phases with the hybrid edge-/vertex-centric execution model.
* :mod:`repro.core.movement` -- the Data Movement Engine (Section 4.3
  and 5.1): asynchronous shard streaming over CUDA streams, double
  buffering, spray-stream deep copies and the Eq. (1)/(2) concurrent
  shard computation.
* :mod:`repro.core.runtime` -- the iteration driver tying it together.
"""

from repro.core.api import GASProgram, UserInfoTuple
from repro.core.partition import PartitionEngine, Shard, ShardedGraph
from repro.core.runtime import GraphReduce, GraphReduceOptions, GraphReduceResult

__all__ = [
    "GASProgram",
    "UserInfoTuple",
    "PartitionEngine",
    "Shard",
    "ShardedGraph",
    "GraphReduce",
    "GraphReduceOptions",
    "GraphReduceResult",
]
