"""Adaptive processor choice (the paper's future work, Section 8

item 4: "how dynamic profiling and processor choice (i.e., GPU vs CPU
execution) could be integrated into GraphReduce").

The :class:`AdaptiveEngine` runs the same BSP iterations as GraphReduce
but decides *per iteration* whether the GPU or the host CPU executes it,
from a lightweight cost prediction over the frontier census:

* GPU iteration cost ~ bytes of active shards over PCIe (plus launch
  overheads) -- cheap when frontiers are large and shard skipping is
  ineffective anyway, expensive per useful edge when frontiers are tiny;
* CPU iteration cost ~ active edges at the host's graph-processing rate
  -- unbeatable for a handful of active vertices, hopeless for full
  sweeps.

Switching sides mid-run costs a vertex-state transfer over PCIe, which
the predictor charges before it flips. The engine therefore tends to
run the dense middle of a BFS on the GPU and the long sparse tail on
the CPU -- with high-diameter inputs showing the largest wins, as the
ablation benchmark demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import GASProgram
from repro.core.fusion import build_plan
from repro.core.partition import PartitionEngine
from repro.core.runtime import GraphReduce, GraphReduceOptions, RuntimeContext
from repro.graph.csr import build_csc, build_csr, dense_gather, ragged_gather, segment_reduce
from repro.graph.edgelist import EdgeList
from repro.obs.span import NULL_OBSERVER, Observer
from repro.sim.specs import HostSpec, MachineSpec, default_machine


@dataclass
class AdaptiveResult:
    vertex_values: np.ndarray
    iterations: int
    converged: bool
    sim_time: float
    #: 'gpu' or 'cpu' per executed iteration
    placement: list[str]
    #: seconds spent per side (including switch transfers)
    gpu_time: float
    cpu_time: float
    switch_time: float
    switches: int
    #: span tree + metrics (None when observe=False)
    observer: "Observer | None" = None


@dataclass(frozen=True)
class AdaptiveConfig:
    #: host-side effective processing rate for GAS iterations, edges/s
    cpu_edge_rate: float = 50e6
    #: per-iteration host overhead (thread fork/join), seconds
    cpu_iteration_overhead: float = 1e-5
    #: GPU per-kernel launch + sync overhead per phase, seconds
    gpu_phase_overhead: float = 3e-5
    #: shard granularity of GPU streaming: one active vertex drags its
    #: whole shard across PCIe
    num_partitions: int = 16


class AdaptiveEngine:
    """Per-iteration GPU/CPU placement over one graph."""

    def __init__(
        self,
        edges: EdgeList,
        machine: MachineSpec | None = None,
        config: AdaptiveConfig | None = None,
        num_partitions: int | None = None,
        observe: bool = True,
    ):
        self.edges = edges
        self.machine = machine or default_machine()
        self.config = config or AdaptiveConfig()
        self.num_partitions = num_partitions
        self.observe = observe

    # ------------------------------------------------------------------
    def _iteration_costs(self, active_edges: int, active_bytes: int, phases: int):
        """(gpu_seconds, cpu_seconds) predictions for one iteration."""
        cfg = self.config
        dev = self.machine.device
        gpu = (
            active_bytes / dev.pcie_bandwidth
            + phases * cfg.gpu_phase_overhead
            + active_edges / dev.edge_rate_seq
        )
        cpu = cfg.cpu_iteration_overhead + active_edges / cfg.cpu_edge_rate
        return gpu, cpu

    def run(self, program: GASProgram, max_iterations: int = 100_000) -> AdaptiveResult:
        program.validate()
        edges = self.edges
        if program.needs_weights and edges.weights is None:
            edges = edges.with_unit_weights()
        ctx = RuntimeContext(edges)
        csc = build_csc(edges)
        csr = build_csr(edges)
        csc_w = None if edges.weights is None else edges.weights[csc.edge_ids]
        csr_w = None if edges.weights is None else edges.weights[csr.edge_ids]
        plan = build_plan(program, optimized=True)
        phases = len(plan)
        # Bytes per active edge when streaming shards (topology + update
        # array + weights), the dominant GPU-side cost.
        bytes_per_edge = 12 + (8 if program.needs_weights else 0)
        vdt = np.dtype(program.vertex_dtype).itemsize

        n = edges.num_vertices
        # Shard-granular streaming model: partition_of drives touched
        # fractions, since a single active vertex moves its whole shard.
        p = max(1, min(self.config.num_partitions, max(n, 1)))
        bounds = np.linspace(0, n, p + 1).astype(np.int64)
        partition_of = np.searchsorted(bounds, np.arange(n), side="right") - 1
        total_stream_bytes = edges.num_edges * bytes_per_edge
        values = np.asarray(program.init_vertices(ctx)).astype(program.vertex_dtype, copy=False)
        frontier = np.asarray(program.init_frontier(ctx), dtype=bool)
        edge_state = program.init_edge_state(ctx)

        placement: list[str] = []
        # Dense-frontier fast path (host-only, same trick as
        # repro.core.plans): when every vertex is active/changed the
        # edge enumeration is a function of topology alone, built once.
        dense_in = None  # (seg, starts, rows_with_edges) over the CSC
        dense_out_seg = None  # per-edge source row over the CSR
        gpu_time = cpu_time = switch_time = 0.0
        side = "gpu"  # vertex state starts on the device
        switches = 0
        converged = False
        iteration = 0
        # The adaptive engine has no event simulator; its clock is the
        # accumulated predicted time, so spans still line up end to end.
        clock = {"now": 0.0}
        obs = Observer(clock=lambda: clock["now"]) if self.observe else NULL_OBSERVER
        run_cm = obs.span("run", category="run", algo=program.name, graph=edges.name)
        run_span = run_cm.__enter__()
        while iteration < max_iterations:
            if program.always_active:
                frontier[:] = True
            active = np.flatnonzero(frontier)
            if len(active) == 0:
                converged = True
                break
            if program.converged(ctx, iteration, len(active)):
                converged = True
                break
            # ---- placement decision ----------------------------------
            deg = csc.indptr[active + 1] - csc.indptr[active]
            active_edges = int(deg.sum()) if program.has_gather else len(active)
            touched = len(np.unique(partition_of[active])) / p
            active_bytes = touched * total_stream_bytes
            gpu_cost, cpu_cost = self._iteration_costs(active_edges, active_bytes, phases)
            transfer = n * vdt / self.machine.device.pcie_bandwidth
            want = "gpu" if gpu_cost <= cpu_cost else "cpu"
            if want != side:
                # Only flip when the gain pays for moving vertex state.
                if abs(gpu_cost - cpu_cost) > transfer:
                    side = want
                    switches += 1
                    switch_time += transfer
                    clock["now"] += transfer
                    obs.add("adaptive.switches")
                    obs.event("switch", category="adaptive", to=side)
            placement.append(side)
            it_cm = obs.span(
                "iteration",
                category="iteration",
                index=iteration,
                placement=side,
                frontier=len(active),
            )
            it_cm.__enter__()
            if side == "gpu":
                gpu_time += gpu_cost
                clock["now"] += gpu_cost
                obs.add("adaptive.gpu_iterations")
            else:
                cpu_time += cpu_cost
                clock["now"] += cpu_cost
                obs.add("adaptive.cpu_iterations")
            it_cm.__exit__(None, None, None)

            # ---- semantic execution (identical on both sides) --------
            gathered = np.full(len(active), program.gather_identity, dtype=program.gather_dtype)
            has = np.zeros(len(active), dtype=bool)
            if program.has_gather:
                if len(active) == n:
                    if dense_in is None:
                        dense_in = dense_gather(csc.indptr)
                    seg, starts, seg_verts = dense_in
                    n_sel = len(seg)
                    src = csc.indices
                    w = csc_w
                    st = None if edge_state is None else edge_state[csc.edge_ids]
                else:
                    pos, seg = ragged_gather(csc.indptr, active)
                    n_sel = len(pos)
                    if n_sel:
                        src = csc.indices[pos]
                        w = None if csc_w is None else csc_w[pos]
                        st = None if edge_state is None else edge_state[csc.edge_ids[pos]]
                        starts = np.flatnonzero(np.r_[True, seg[1:] != seg[:-1]])
                        seg_verts = seg[starts]
                if n_sel:
                    contrib = program.gather_map(ctx, src, seg.astype(src.dtype), values[src], w, st)
                    red = segment_reduce(program.gather_reduce, contrib, starts)
                    slot = np.searchsorted(active, seg_verts)
                    gathered[slot] = red.astype(program.gather_dtype, copy=False)
                    has[slot] = True
            new_vals, changed = program.apply(ctx, active, values[active], gathered, has, iteration)
            changed = np.asarray(changed, dtype=bool)
            values[active] = np.asarray(new_vals).astype(program.vertex_dtype, copy=False)
            changed_ids = active[changed]
            if len(changed_ids) == n:
                if dense_out_seg is None:
                    dense_out_seg = dense_gather(csr.indptr)[0]
                seg = dense_out_seg
                out_indices = csr.indices
                eids = csr.edge_ids
                w = csr_w
            else:
                pos, seg = ragged_gather(csr.indptr, changed_ids)
                out_indices = csr.indices[pos]
                eids = csr.edge_ids[pos] if program.has_scatter and len(pos) else None
                w = None if csr_w is None or eids is None else csr_w[pos]
            if program.has_scatter and len(seg):
                st = None if edge_state is None else edge_state[eids]
                out = program.scatter(ctx, seg.astype(np.int32), values[seg], w, st)
                if edge_state is not None:
                    edge_state[eids] = out
            frontier = np.zeros(n, dtype=bool)
            frontier[out_indices] = True
            iteration += 1
        else:
            converged = frontier.sum() == 0

        run_span.set(iterations=iteration, converged=converged, switches=switches)
        run_cm.__exit__(None, None, None)
        return AdaptiveResult(
            vertex_values=values,
            iterations=iteration,
            converged=converged,
            sim_time=gpu_time + cpu_time + switch_time,
            placement=placement,
            gpu_time=gpu_time,
            cpu_time=cpu_time,
            switch_time=switch_time,
            switches=switches,
            observer=obs if self.observe else None,
        )
