"""The GraphReduce runtime: the iteration driver of Figure 12.

Ties the engines together: the Partition Engine shards the input, the
Phase Fusion Engine builds the iteration's phase plan, and each phase
streams its active shards through the Data Movement Engine while the
Compute Engine executes the user's device functions. Phases are
bulk-synchronous (the next phase starts only when the previous completed
across all shards); within a phase, shards overlap freely.

Every Section-5 optimization is an independent switch on
:class:`GraphReduceOptions` so the Figure-15 ablation can toggle them:

* ``async_streams`` / ``spray`` -- asynchronous execution and the spray
  operation (Section 5.1),
* ``frontier_skipping`` -- dynamic frontier management (Section 5.2),
* ``fusion`` -- dynamic phase fusion/elimination (Section 5.3).

``GraphReduceOptions.unoptimized()`` is the paper's baseline
configuration; the default is everything on.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.api import GASProgram
from repro.core.compute import ComputeEngine
from repro.core.frontier import DirectionController, FrontierManager
from repro.core.fusion import PhaseGroup, build_async_plan, build_plan
from repro.core.kernels import resolve_backend
from repro.core.movement import (
    DataMovementEngine,
    HostPrefetcher,
    MovementConfig,
    MovementStats,
    optimal_concurrent_shards,
)
from repro.core.partition import PartitionEngine, ShardedGraph
from repro.core.plans import PlanCache
from repro.graph.edgelist import EdgeList
from repro.obs.span import NULL_OBSERVER, Observer
from repro.obs.telemetry import FlightRecorder, RunTelemetry, TelemetryConfig
from repro.sim.device import GPUDevice
from repro.sim.engine import Simulator
from repro.sim.specs import MachineSpec, default_machine
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class GraphReduceOptions:
    """Runtime configuration; defaults are the fully optimized GR."""

    num_partitions: int | None = None  # None -> Section 4.2 auto choice
    partition_logic: str = "edge_balanced"
    async_streams: bool = True
    spray: bool = True
    frontier_skipping: bool = True
    fusion: bool = True
    #: extension beyond the paper: fuse gatherMap+gatherReduce so the
    #: edge update array stays on-device (see fusion.build_plan)
    fuse_gather: bool = False
    #: 'bsp' (the paper's model: phase barriers across all shards) or
    #: 'async' (Section 2.1's variant: one fused sweep per iteration in
    #: which later shards see earlier shards' same-sweep updates --
    #: fewer sweeps for monotone programs, Gauss-Seidel for PageRank)
    execution_mode: str = "bsp"
    #: 'auto': keep all shards resident when the graph's *canonical*
    #: footprint (Table 1's accounting, all buffer kinds) fits -- the
    #: Table-4 in-memory mode; 'never': always stream (the Table-3
    #: regime); 'greedy': cache whenever this program's actual buffers
    #: fit, even if the canonical footprint does not (an extension
    #: beyond the paper: e.g. BFS needs no edge values, so kron21's
    #: topology alone fits the K20c); 'lru': stream, but keep as many
    #: whole shards resident as leftover memory allows, evicting the
    #: least recently touched (extension for almost-fitting graphs).
    cache_policy: str = "auto"
    #: 'dram' keeps the whole graph in host memory (the paper's Table-3
    #: setting); 'ssd' backs the host with simulated flash storage so
    #: graphs larger than host DRAM stream from disk (future work,
    #: Section 8 item 2). The spilled fraction of every shard read pays
    #: an SSD pass before crossing PCIe.
    host_backing: str = "dram"
    max_iterations: int = 100_000
    #: Host-side fast paths (see :mod:`repro.core.plans`). They change
    #: only host wall-clock, never results or the simulated timeline:
    #: ``dense_fast_path`` skips ragged/fancy gathers when a shard's
    #: whole interval is active/changed; ``plan_cache`` memoizes sparse
    #: index plans under frontier-epoch fingerprints; ``parallel_shards``
    #: > 1 executes independent shards' phase work on that many threads
    #: (NumPy releases the GIL), bsp mode only -- async sweeps are
    #: Gauss-Seidel and order-dependent, so they stay sequential.
    dense_fast_path: bool = True
    plan_cache: bool = True
    #: build per-frontier gather plans straight from the compacted
    #: frontier when it is much smaller than a shard's interval, instead
    #: of consulting (and missing) the epoch-keyed plan cache -- the fix
    #: for traversal frontiers that never repeat (see repro.core.plans).
    sparse_bypass: bool = True
    #: Kernel backend for the fused gather/apply/activate inner loops
    #: (see :mod:`repro.core.kernels`): ``"numpy"`` runs the fused
    #: shapes with whole-array primitives and arena-reused scratch
    #: buffers; ``"numba"`` compiles them into single-pass ``@njit``
    #: kernels (falls back to ``"numpy"`` with a warning when Numba is
    #: not installed); ``"auto"`` picks numba when importable; ``"off"``
    #: disables the kernel layer entirely (generic path, test hook).
    #: Like the other host fast paths this changes wall-clock only:
    #: results, frontier history and the simulated timeline are
    #: bit-identical across backends.
    kernel_backend: str = "auto"
    #: Traversal direction: ``"push"`` executes the natural change-
    #: driven frontier (the paper's model); ``"pull"`` runs every
    #: iteration bottom-up with all vertices active, which the dense
    #: fast path serves from cached whole-interval plans; ``"auto"``
    #: switches per iteration with the Beamer alpha/beta rule (see
    #: :class:`repro.core.frontier.DirectionController`). Anything but
    #: ``"push"`` requires a pull-compatible gather program; results
    #: are bit-identical in every mode.
    direction: str = "push"
    direction_alpha: float = 14.0
    direction_beta: float = 24.0
    parallel_shards: int = 0
    #: How ``parallel_shards`` workers execute: ``"threads"`` (PR 3's
    #: ThreadPoolExecutor; NumPy kernels release the GIL), or
    #: ``"processes"`` (a spawn-safe worker pool attaching the shard
    #: arrays zero-copy -- shared memory for in-RAM runs, per-worker
    #: memmaps for shard-store runs -- see :mod:`repro.core.procpool`).
    #: or ``"cluster"`` (partitioned ownership: each worker attaches
    #: only its owned shard slice and the main process ships sparse
    #: boundary-vertex deltas through fixed-slot shared-memory
    #: mailboxes -- per-worker resident bytes scale down with the
    #: worker count; see :class:`repro.core.procpool.ClusterPool`).
    #: ``"serial"`` ignores ``parallel_shards`` entirely. All parallel
    #: backends are bit-identical to serial: results, frontier history
    #: and the simulated timeline are merged in fixed shard order. If a
    #: pool worker crashes or times out mid-run the runtime emits a
    #: ``RuntimeWarning`` and transparently re-runs serially.
    parallel_backend: str = "threads"
    #: Frontier exchange policy for the partitioned-ownership layers
    #: (the ``cluster`` backend and the multi-device scheduler):
    #: ``"replicated"`` ships full frontier bitmaps to every owner;
    #: ``"partitioned"`` ships only each owner's interval slice (or the
    #: pairwise boundary bits, for devices). Results are bit-identical
    #: either way; only the modeled/communicated bytes differ.
    frontier_policy: str = "replicated"
    #: LRU byte budget for the gather/scatter plan cache (counts the
    #: bytes each cached plan references, including dense plans' aliased
    #: shard arrays -- i.e. what eviction can unpin). ``None`` keeps the
    #: pre-PR-5 unbounded behavior.
    plan_cache_budget: int | None = 256 * 1024 * 1024
    #: Out-of-core execution (shard-store-backed runs only; see
    #: :mod:`repro.core.shardstore`). ``memory_budget`` bounds the host
    #: RAM spent on resident shards: the prefetcher's LRU capacity comes
    #: from the Eq. (1)/(2) formula with this budget standing in for
    #: device memory (None -> every shard may stay resident).
    #: ``host_prefetch`` toggles the asynchronous warming threads;
    #: disabled, shards fault in synchronously on first touch.
    #: Like the host fast paths these change wall-clock only -- results
    #: and the simulated timeline are bit-identical to in-RAM runs.
    memory_budget: int | None = None
    host_prefetch: bool = True
    prefetch_workers: int = 2
    #: carry host-side warm state across consecutive ``run()`` calls on
    #: one engine: the prefetcher's LRU (resident shards survive, so the
    #: next run's first touches are hits instead of faults) and the
    #: PlanCache's dense plans (topology-only, rebuilt otherwise). The
    #: batch executor's chunked runs and repeated-query workloads are
    #: the intended users. Wall-clock only -- results and the simulated
    #: timeline are bit-identical either way. Ignored by the process-
    #: pool backend (workers memmap their own shards; the main process
    #: holds nothing worth keeping). Call :meth:`GraphReduce.close`
    #: (or use the engine as a context manager) to release the kept
    #: threads and cache.
    keep_warm: bool = False
    trace: bool = True
    #: structured observability (hierarchical spans + typed counters,
    #: see :mod:`repro.obs`); when off the runtime uses the shared
    #: no-op recorder and the instrumentation costs one method call
    observe: bool = True
    #: live telemetry (see :mod:`repro.obs.telemetry`): a
    #: :class:`~repro.obs.telemetry.TelemetryConfig` turns on the
    #: streaming bus (periodic JSONL snapshots a concurrent ``repro
    #: monitor`` tails), the health watchdog over the main loop /
    #: pool workers / prefetcher, and -- when its ``flight_recorder``
    #: flag is set -- the bounded ring-buffer span recorder in place
    #: of the unbounded tree. ``None`` (default) adds nothing: the
    #: NULL_OBSERVER zero-overhead path is untouched.
    telemetry: "TelemetryConfig | None" = None

    @staticmethod
    def unoptimized() -> "GraphReduceOptions":
        """The Figure-15 baseline: synchronous single-stream execution,

        full-shard movement every phase, no fusion, no frontier skips."""
        return GraphReduceOptions(
            async_streams=False,
            spray=False,
            frontier_skipping=False,
            fusion=False,
            cache_policy="never",
        )

    def replace(self, **kw) -> "GraphReduceOptions":
        return replace(self, **kw)


class RuntimeContext:
    """Graph-level read-only state exposed to user device functions."""

    def __init__(self, edges: EdgeList):
        self.num_vertices = edges.num_vertices
        self.num_edges = edges.num_edges
        self._edges = edges
        self._out_degrees: np.ndarray | None = None
        self._in_degrees: np.ndarray | None = None

    @property
    def out_degrees(self) -> np.ndarray:
        if self._out_degrees is None:
            self._out_degrees = self._edges.out_degrees()
        return self._out_degrees

    @property
    def in_degrees(self) -> np.ndarray:
        if self._in_degrees is None:
            self._in_degrees = self._edges.in_degrees()
        return self._in_degrees


@dataclass(frozen=True)
class IterationStat:
    """Per-iteration accounting (the Figure-3/16 views plus traffic)."""

    iteration: int
    frontier_size: int
    h2d_bytes: int
    d2h_bytes: int
    sim_seconds: float
    shards_processed: int
    shards_skipped: int
    #: execution direction this iteration ran in ('push' or 'pull');
    #: frontier_size stays the *natural* frontier either way
    direction: str = "push"


@dataclass
class GraphReduceResult:
    """Output values plus the simulated performance accounting."""

    vertex_values: np.ndarray
    iterations: int
    converged: bool
    #: simulated wall time of the whole run, seconds
    sim_time: float
    #: summed transfer durations, both directions (Figure 15's metric)
    memcpy_time: float
    #: summed kernel durations
    kernel_time: float
    #: time during which at least one transfer was in flight
    memcpy_busy_span: float
    stats: MovementStats
    frontier_history: list[int]
    #: True when every shard stayed resident (Table-4 in-memory mode)
    in_memory_mode: bool
    num_partitions: int
    concurrent_shards: int
    edge_state: np.ndarray | None = None
    #: full device trace (intervals) for energy/overlap analysis
    trace: "TraceRecorder | None" = None
    #: per-iteration frontier/traffic/time breakdown
    iteration_stats: list[IterationStat] = field(default_factory=list)
    #: span tree + metrics of the run (None when options.observe is off)
    observer: "Observer | None" = None
    #: per-engine busy/utilization timelines captured from the device's
    #: copy engines and SM pool (None when options.trace is off); feeds
    #: the occupancy computation in :mod:`repro.obs.profile`
    engine_snapshots: dict | None = None
    #: gather-plan cache totals (hits/misses/invalidations/hit_rate) of
    #: the host fast paths; None when both fast paths were disabled
    plan_cache: dict | None = None
    #: kernel-layer totals (backend, fused_calls, fallbacks, arena
    #: reuse); None when ``kernel_backend`` was "off"
    kernels: dict | None = None
    #: host prefetcher totals + wall-clock activity lane (out-of-core
    #: shard-store runs only; None for in-RAM runs)
    prefetch: dict | None = None
    #: process-pool totals + per-worker wall-clock lane (``processes``
    #: backend only; None otherwise)
    procpool: dict | None = None
    #: telemetry summary (records emitted, incidents, flight-recorder
    #: occupancy); None unless ``options.telemetry`` was set
    telemetry: dict | None = None
    #: per-iteration :class:`repro.core.frontier.DirectionDecision`
    #: records (options.direction != 'push' only; None otherwise)
    direction_decisions: list | None = None
    #: batch-executor summary (layout, query count, per-query retirement
    #: iterations) for programs exposing ``batch_stats()``; None for
    #: ordinary single-query programs
    batch: dict | None = None

    @property
    def memcpy_fraction(self) -> float:
        """Share of execution occupied by transfers (paper: >95% for the

        large graphs). Uses the busy span so overlap is not
        double-counted."""
        return self.memcpy_busy_span / self.sim_time if self.sim_time > 0 else 0.0


class GraphReduce:
    """One GraphReduce execution context over a fixed input graph.

    >>> from repro.graph.generators import path_graph
    >>> from repro.algorithms.bfs import BFS
    >>> engine = GraphReduce(path_graph(4))
    >>> result = engine.run(BFS(source=0))
    >>> result.vertex_values.tolist()
    [0.0, 1.0, 2.0, 3.0]
    """

    def __init__(
        self,
        edges: EdgeList | None = None,
        machine: MachineSpec | None = None,
        options: GraphReduceOptions | None = None,
        partition_engine: PartitionEngine | None = None,
        shard_store=None,
    ):
        if shard_store is not None and not hasattr(shard_store, "load_arrays"):
            from repro.core.shardstore import ShardStore

            shard_store = ShardStore.open(shard_store)
        self.shard_store = shard_store
        if edges is None:
            if shard_store is None:
                raise ValueError("GraphReduce needs an edge list or a shard store")
            edges = shard_store.edgelist()
        self.edges = edges
        self.machine = machine or default_machine()
        self.options = options or GraphReduceOptions()
        self.partition_engine = partition_engine or PartitionEngine()
        self._sharded_cache: dict[tuple, ShardedGraph] = {}
        # keep_warm carry-over (see GraphReduceOptions.keep_warm):
        # {"sharded", "prefetcher", "key"} for store-backed runs, and
        # (plans, sharded, key) for the dense-plan cache. Released by
        # close() or whenever a run's configuration stops matching.
        self._warm_prefetch: dict | None = None
        self._warm_plans: tuple | None = None

    def close(self) -> None:
        """Release ``keep_warm`` state (prefetcher threads, shard LRU,
        carried plans). Idempotent; a no-op for engines that never kept
        anything warm."""
        if self._warm_prefetch is not None:
            self._warm_prefetch["prefetcher"].shutdown()
            self._warm_prefetch = None
        self._warm_plans = None

    def __enter__(self) -> "GraphReduce":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    @staticmethod
    def _pool_engaged(opts: GraphReduceOptions) -> bool:
        """Whether this configuration runs through a worker pool.

        The ``processes`` backend needs at least two workers to be
        worth a pool; ``cluster`` engages from one worker up -- a
        single-owner cluster still exercises the partitioned-ownership
        attach and the mailbox exchange, and is the degenerate point of
        the scaling curve.
        """
        if opts.execution_mode != "bsp":
            return False
        if opts.parallel_backend == "processes":
            return opts.parallel_shards > 1
        if opts.parallel_backend == "cluster":
            return opts.parallel_shards >= 1
        return False

    def run(self, program: GASProgram, max_iterations: int | None = None) -> GraphReduceResult:
        """Execute ``program`` to convergence on the simulated machine."""
        opts = self.options
        if opts.parallel_backend not in ("serial", "threads", "processes", "cluster"):
            raise ValueError(f"unknown parallel_backend {opts.parallel_backend!r}")
        if self._pool_engaged(opts):
            from repro.core.procpool import WorkerCrashed

            try:
                return self._execute(program, max_iterations, opts)
            except WorkerCrashed as exc:
                # The run is deterministic, so a clean serial re-run
                # produces exactly the result the pool would have.
                warnings.warn(
                    f"{opts.parallel_backend} pool backend failed ({exc}); "
                    "falling back to serial execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return self._execute(
                    program,
                    max_iterations,
                    opts.replace(parallel_backend="serial", parallel_shards=0),
                )
        return self._execute(program, max_iterations, opts)

    def _execute(
        self, program: GASProgram, max_iterations: int | None, opts: GraphReduceOptions
    ) -> GraphReduceResult:
        program.validate()
        if opts.direction not in ("push", "pull", "auto"):
            raise ValueError(f"unknown direction {opts.direction!r}")
        if opts.direction != "push" and not (
            program.pull_compatible and program.has_gather
        ):
            raise ValueError(
                f"direction={opts.direction!r} needs a pull-compatible gather "
                f"program; {type(program).__name__} is push-only (its apply "
                "treats activation as information, so a superset frontier "
                "would change results)"
            )
        edges = self.edges
        if program.needs_weights and edges.weights is None:
            edges = edges.with_unit_weights()
        ctx = RuntimeContext(edges)

        # --- Simulated device + observability --------------------------
        sim = Simulator()
        if opts.telemetry is not None and opts.telemetry.flight_recorder:
            # Bounded black box for long-lived runs: spans go to fixed
            # rings instead of the O(run) tree. Metrics stay exact.
            obs = FlightRecorder(
                clock=lambda: sim.now, budget_bytes=opts.telemetry.budget_bytes
            )
        elif opts.observe:
            obs = Observer(clock=lambda: sim.now)
        else:
            obs = NULL_OBSERVER
        telem = (
            RunTelemetry(opts.telemetry, sim=sim, obs=obs)
            if opts.telemetry is not None
            else None
        )
        run_span_cm = obs.span(
            "run", category="run", algo=program.name, graph=edges.name
        )
        run_span = run_span_cm.__enter__()

        # --- Partition Engine -----------------------------------------
        with_weights = program.needs_weights
        with_state = program.edge_dtype is not None
        resident_bytes = self._resident_bytes(program, edges.num_vertices)
        use_pool = self._pool_engaged(opts)
        if use_pool and not program.process_safe:
            raise ValueError(
                f"{type(program).__name__} carries mutable per-run Python "
                "state (process_safe=False); the processes backend would "
                "silently diverge per worker -- use serial or threads"
            )
        keep_state = opts.keep_warm and not use_pool
        if not keep_state:
            # A non-warm run (or the pool backend, whose workers memmap
            # their own shards) invalidates whatever a previous warm run
            # left behind.
            self.close()
        prefetcher = None
        prefetch_key = None
        executor = None
        pool = None
        telemetry_summary = None
        # Initialized before the try so the telemetry run_end in the
        # finally block has defined values even when setup raises.
        converged = False
        iteration = 0
        run_error = None
        # One try/finally covers everything from here on: the prefetcher
        # (and later the executor/pool) own threads, processes and
        # shared-memory segments that must be released even when setup
        # or an iteration raises mid-run.
        try:
            with obs.span("partition", category="setup") as part_span:
                if self.shard_store is not None:
                    sharded, prefetcher, prefetch_key = self._open_store(
                        program,
                        opts,
                        with_weights,
                        with_state,
                        resident_bytes,
                        obs,
                        warm=not use_pool,
                        telemetry=telem,
                    )
                    part_span.set(
                        num_partitions=sharded.num_partitions,
                        logic=self.shard_store.logic,
                        shard_store=str(self.shard_store.path),
                        prefetch_capacity=prefetcher.capacity,
                    )
                else:
                    p = opts.num_partitions or PartitionEngine.choose_num_partitions(
                        edges,
                        self.machine.device.memory_bytes,
                        with_weights,
                        with_state,
                        resident_bytes,
                    )
                    key = (p, opts.partition_logic, with_weights, id(edges))
                    sharded = self._sharded_cache.get(key)
                    if sharded is None:
                        sharded = self.partition_engine.partition(edges, p, opts.partition_logic)
                        self._sharded_cache[key] = sharded
                    part_span.set(
                        num_partitions=sharded.num_partitions, logic=opts.partition_logic
                    )

            kernels = resolve_backend(opts.kernel_backend)
            if telem is not None:
                telem.start(
                    algorithm=program.name,
                    graph=edges.name,
                    backend=opts.parallel_backend,
                    workers=opts.parallel_shards,
                    kernel_backend=kernels.name if kernels is not None else "off",
                    num_vertices=edges.num_vertices,
                    num_edges=edges.num_edges,
                    num_shards=sharded.num_partitions,
                )

            device = GPUDevice(sim, self.machine.device, TraceRecorder(enabled=opts.trace))
            movement = DataMovementEngine(
                device,
                sharded,
                MovementConfig(async_streams=opts.async_streams, spray=opts.spray),
                with_weights,
                with_state,
                obs=obs,
            )
            if opts.host_backing == "ssd":
                from repro.sim.resources import FluidResource

                host = self.machine.host
                graph_host_bytes = sum(
                    s.total_bytes(with_weights, with_state) for s in sharded.shards
                ) + resident_bytes
                spill = max(0.0, 1.0 - host.memory_bytes / max(graph_host_bytes, 1))
                ssd = FluidResource(
                    sim, host.ssd_bandwidth, max_concurrent=host.ssd_queue_depth, name="ssd"
                )
                movement.ssd = (ssd, spill)
            elif opts.host_backing != "dram":
                raise ValueError(f"unknown host_backing {opts.host_backing!r}")
            with obs.span("resident", category="phase"):
                movement.upload_resident(self._resident_buffers(program, edges.num_vertices))
            in_memory = False
            with obs.span("cache", category="phase") as cache_span:
                if opts.cache_policy == "auto":
                    from repro.graph.properties import footprint_bytes

                    if footprint_bytes(edges) <= self.machine.device.memory_bytes:
                        in_memory = movement.cache_all_shards()
                elif opts.cache_policy == "greedy":
                    in_memory = movement.cache_all_shards()
                elif opts.cache_policy not in ("never", "lru"):
                    raise ValueError(f"unknown cache_policy {opts.cache_policy!r}")
                if not in_memory:
                    movement.reserve_stage_slots()
                    if opts.cache_policy == "lru":
                        movement.enable_lru_cache()
                # Everything the profiler's Eq. (1)/(2) replay needs to
                # re-derive K from first principles lives on this span.
                cache_span.set(
                    policy=opts.cache_policy,
                    in_memory=in_memory,
                    k=movement.k,
                    async_streams=opts.async_streams,
                    max_shard_bytes=movement.max_shard_bytes,
                    interval_bytes=movement.interval_bytes,
                    resident_bytes=resident_bytes,
                    device_memory=self.machine.device.memory_bytes,
                    num_partitions=sharded.num_partitions,
                )

            # --- Compute side ------------------------------------------
            frontier = FrontierManager(
                sharded, np.asarray(program.init_frontier(ctx), dtype=bool), obs=obs
            )
            plans = None
            plans_key = (
                opts.dense_fast_path,
                opts.plan_cache,
                opts.plan_cache_budget,
                opts.sparse_bypass,
            )
            if keep_state and self._warm_plans is not None:
                warm_plans, warm_sharded, warm_key = self._warm_plans
                if warm_sharded is sharded and warm_key == plans_key:
                    # Carried cache: dense plans survive, frontier-keyed
                    # state is dropped and re-aimed at this run.
                    plans = warm_plans
                    plans.rebind(frontier, obs=obs)
                else:
                    self._warm_plans = None
            if plans is None:
                plans = PlanCache(
                    sharded,
                    frontier,
                    obs=obs,
                    dense=opts.dense_fast_path,
                    cache=opts.plan_cache,
                    budget=opts.plan_cache_budget,
                    sparse=opts.sparse_bypass,
                )
            if kernels is not None:
                obs.add(f"kernels.backend.{kernels.name}")
            compute = ComputeEngine(
                sharded, program, ctx, frontier, obs=obs, plans=plans, kernels=kernels
            )
            if telem is not None and plans.enabled:
                telem.add_source("plan_cache", plans.stats)
            if telem is not None and hasattr(program, "batch_stats"):
                # Per-query lanes for the monitor: retirement progress
                # rides the same snapshot stream as the other sources.
                telem.add_source("batch", program.batch_stats)
            if prefetcher is not None:
                # Dense plans alias the memmapped shard arrays by reference;
                # eviction must drop them or the mappings stay pinned.
                prefetcher.on_evict = plans.drop_shard
            if opts.execution_mode == "async":
                plan = build_async_plan(program, obs=obs)
            elif opts.execution_mode == "bsp":
                plan = build_plan(
                    program, optimized=opts.fusion, fuse_gather=opts.fuse_gather, obs=obs
                )
            else:
                raise ValueError(f"unknown execution_mode {opts.execution_mode!r}")
            if use_pool:
                from repro.core.procpool import ClusterPool, ProcessPool

                cluster = opts.parallel_backend == "cluster"
                pool_cls = ProcessPool
                pool_kwargs = {}
                if cluster:
                    pool_cls = ClusterPool
                    pool_kwargs["frontier_policy"] = opts.frontier_policy
                pool = pool_cls(
                    **pool_kwargs,
                    sharded=sharded,
                    program=program,
                    ctx=ctx,
                    frontier=frontier,
                    compute=compute,
                    obs=obs,
                    workers=opts.parallel_shards,
                    dense=opts.dense_fast_path,
                    cache=opts.plan_cache,
                    sparse=opts.sparse_bypass,
                    plan_budget=opts.plan_cache_budget,
                    # Ship the *resolved* backend name: workers re-resolve
                    # locally (dispatchers are not picklable) but must not
                    # re-warn about a missing Numba per worker.
                    kernel_backend=(
                        kernels.name if kernels is not None else "off"
                    ),
                    store=self.shard_store,
                    unit_weights=(
                        self.shard_store is not None
                        and with_weights
                        and not self.shard_store.weighted
                    ),
                    telemetry=telem,
                )
                if telem is not None:
                    telem.add_source(
                        "cluster" if cluster else "procpool",
                        lambda p=pool: {
                            k: v for k, v in p.snapshot().items() if k != "lane"
                        },
                    )

            # --- Iterations --------------------------------------------
            controller = None
            if opts.direction != "push":
                controller = DirectionController(
                    opts.direction,
                    ctx.out_degrees,
                    edges.num_edges,
                    edges.num_vertices,
                    alpha=opts.direction_alpha,
                    beta=opts.direction_beta,
                )
            limit = max_iterations if max_iterations is not None else opts.max_iterations
            frontier_bytes = edges.num_vertices // 8 + 1
            iteration_stats: list[IterationStat] = []
            end_hook = type(program).end_iteration is not GASProgram.end_iteration
            if (
                opts.parallel_shards > 1
                and opts.execution_mode == "bsp"
                and opts.parallel_backend == "threads"
            ):
                # Shards of one phase are independent in bsp mode and the
                # heavy NumPy kernels release the GIL; async sweeps are
                # Gauss-Seidel (later shards read earlier shards' same-sweep
                # writes) and must stay sequential.
                from concurrent.futures import ThreadPoolExecutor

                executor = ThreadPoolExecutor(
                    max_workers=opts.parallel_shards, thread_name_prefix="shard-compute"
                )
            while iteration < limit:
                if program.always_active:
                    frontier.activate_all()
                if frontier.size == 0:
                    reseed = program.reseed_frontier(ctx, compute.vertex_values)
                    if reseed is None or not np.any(reseed):
                        converged = True
                        break
                    frontier.set_current(reseed)
                if program.converged(ctx, iteration, frontier.size):
                    converged = True
                    break
                frontier_size = frontier.size
                direction = "push"
                if controller is not None:
                    direction = controller.choose(
                        frontier.current, iteration, vids=frontier.compact_indices
                    )
                    if direction == "pull":
                        # Bottom-up: run the iteration with every vertex
                        # active. The natural next frontier still comes
                        # from FA over the changed set, so termination
                        # and the direction rule are unaffected.
                        frontier.activate_all()
                t0 = sim.now
                h2d0, d2h0 = movement.stats.h2d_bytes, movement.stats.d2h_bytes
                proc0, skip0 = movement.stats.shards_processed, movement.stats.shards_skipped
                compute.begin_iteration(iteration)
                movement.current_iteration = iteration
                with obs.span(
                    "iteration",
                    category="iteration",
                    index=iteration,
                    frontier=frontier_size,
                    direction=direction,
                ) as it_span:
                    for group in plan:
                        shards, skipped = self._select_shards(group, sharded, frontier, opts)
                        if prefetcher is not None and pool is None:
                            # Only the frontier-selected shards: skipped
                            # shards are neither prefetched nor faulted.
                            # (With the process pool the workers memmap
                            # their own shards; the main process never
                            # touches the arrays at all.)
                            prefetcher.schedule([s.index for s in shards])
                        if pool is not None:
                            run_shard = pool.phase_run(
                                group, shards, iteration,
                                count_full=not opts.frontier_skipping,
                            )
                        elif prefetcher is None:
                            run_shard = (
                                lambda shard, g=group: compute.run_group(
                                    g.phases, shard, count_full=not opts.frontier_skipping
                                )
                            )
                        else:
                            def run_shard(shard, g=group, pf=prefetcher):
                                pf.get(shard.index)
                                return compute.run_group(
                                    g.phases, shard, count_full=not opts.frontier_skipping
                                )
                        with obs.span(
                            group.name,
                            category="phase",
                            selector=group.selector,
                            shards=len(shards),
                            skipped=skipped,
                        ):
                            movement.run_phase(
                                group,
                                shards,
                                skipped,
                                run_shard,
                                executor=executor,
                            )
                    with obs.span("frontier", category="phase"):
                        movement.iteration_sync(frontier_bytes)
                    it_span.set(
                        h2d_bytes=movement.stats.h2d_bytes - h2d0,
                        d2h_bytes=movement.stats.d2h_bytes - d2h0,
                    )
                iteration_stats.append(
                    IterationStat(
                        iteration=iteration,
                        frontier_size=frontier_size,
                        h2d_bytes=movement.stats.h2d_bytes - h2d0,
                        d2h_bytes=movement.stats.d2h_bytes - d2h0,
                        sim_seconds=sim.now - t0,
                        shards_processed=movement.stats.shards_processed - proc0,
                        shards_skipped=movement.stats.shards_skipped - skip0,
                        direction=direction,
                    )
                )
                obs.add("runtime.iterations")
                if telem is not None:
                    telem.iteration(iteration, frontier_size, direction=direction)
                if end_hook:
                    # After delta replay (the pool applies worker deltas
                    # inside run_phase) and before advance clears the
                    # changed mask, so the hook sees the iteration's
                    # final values under every backend.
                    program.end_iteration(
                        ctx, compute.vertex_values, frontier.changed, iteration
                    )
                frontier.advance()
                iteration += 1
            else:
                converged = frontier.size == 0
        except BaseException as exc:
            # Captured explicitly: sys.exc_info() in the finally would
            # also see an *outer* handled exception (the serial
            # fallback re-executes inside the WorkerCrashed handler).
            run_error = exc
            raise
        finally:
            if pool is not None:
                pool.shutdown()
            if executor is not None:
                executor.shutdown(wait=True)
            keep_prefetcher = (
                keep_state and run_error is None and prefetcher is not None
            )
            if prefetcher is not None and not keep_prefetcher:
                prefetcher.shutdown()
                if (
                    self._warm_prefetch is not None
                    and self._warm_prefetch["prefetcher"] is prefetcher
                ):
                    # An errored warm run killed the carried prefetcher;
                    # the stale carry-over must not resurrect it.
                    self._warm_prefetch = None
                    self._warm_plans = None
            if telem is not None:
                # After the pools are down so the leaked-thread check
                # sees the post-shutdown state; emits run_end and
                # closes the sink even when setup or a phase raised.
                # A kept (keep_warm) prefetcher's warming threads are
                # carried state, not leaks -- excluded by ident.
                telemetry_summary = telem.finish(
                    iteration,
                    converged,
                    error=repr(run_error) if run_error else None,
                    ignore_threads=(
                        prefetcher.thread_idents() if keep_prefetcher else None
                    ),
                )

        if keep_state:
            # Reached only on success (errors propagate past the
            # finally): stash the warm state for the next run.
            if prefetcher is not None:
                self._warm_prefetch = {
                    "sharded": sharded,
                    "prefetcher": prefetcher,
                    "key": prefetch_key,
                }
            if plans.enabled:
                self._warm_plans = (plans, sharded, plans_key)
        run_span.set(iterations=iteration, converged=converged)
        run_span_cm.__exit__(None, None, None)
        trace = device.trace
        engine_snapshots = None
        if opts.trace:
            engine_snapshots = device.engine_snapshots()
            if movement.ssd is not None:
                engine_snapshots["ssd"] = movement.ssd[0].profile_snapshot()
        pool_snapshot = pool.snapshot() if pool is not None else None
        if pool_snapshot is not None and pool_snapshot.get("plan_cache"):
            # The plan caches live in the workers under this backend;
            # surface their aggregate where tooling expects the stats.
            plan_cache_stats = pool_snapshot["plan_cache"]
        else:
            plan_cache_stats = plans.stats() if plans.enabled else None
        if pool_snapshot is not None and pool_snapshot.get("kernels"):
            # Same story for the kernel layer: the backends doing the
            # fused work live in the workers.
            kernel_stats = pool_snapshot["kernels"]
        else:
            kernel_stats = compute.kernel_stats()
        batch_summary = None
        if hasattr(program, "batch_stats"):
            batch_summary = program.batch_stats()
            if batch_summary and obs.enabled:
                for key, value in batch_summary.items():
                    if isinstance(value, bool) or not isinstance(value, int):
                        continue
                    obs.add(f"batch.{key}", value)
        return GraphReduceResult(
            vertex_values=compute.vertex_values,
            iterations=iteration,
            converged=converged,
            sim_time=sim.now,
            memcpy_time=trace.memcpy_time(),
            kernel_time=trace.kernel_time(),
            memcpy_busy_span=trace.busy_span("h2d", "d2h"),
            stats=movement.stats,
            frontier_history=frontier.history,
            in_memory_mode=in_memory,
            num_partitions=sharded.num_partitions,
            concurrent_shards=movement.k,
            edge_state=compute.edge_state,
            trace=trace,
            iteration_stats=iteration_stats,
            observer=obs if obs.enabled else None,
            engine_snapshots=engine_snapshots,
            plan_cache=plan_cache_stats,
            kernels=kernel_stats,
            prefetch=prefetcher.snapshot() if prefetcher is not None else None,
            procpool=pool_snapshot,
            telemetry=telemetry_summary,
            direction_decisions=(
                controller.decisions if controller is not None else None
            ),
            batch=batch_summary,
        )

    # ------------------------------------------------------------------
    def _open_store(
        self,
        program,
        opts,
        with_weights,
        with_state,
        resident_bytes,
        obs,
        warm=True,
        telemetry=None,
    ):
        """Lazy sharded view + budgeted prefetcher over ``shard_store``.

        The prefetcher's LRU capacity is Eq. (1)/(2) with the host
        ``memory_budget`` in place of device memory: how many whole
        shards (plus their interval's share of vertex staging and the
        resident vertex arrays) fit the budget. No budget -> every
        shard may stay resident, like a host whose RAM fits the graph.
        ``warm=False`` (the process-pool backend) spawns no warming
        threads: the pool's workers memmap their own pinned shards, so
        main-process prefetching would only double-fault the data.
        """
        store = self.shard_store
        if opts.num_partitions and opts.num_partitions != store.num_partitions:
            raise ValueError(
                f"options request {opts.num_partitions} partitions but the "
                f"shard store was built with {store.num_partitions}"
            )
        unit_weights = with_weights and not store.weighted
        carried = self._warm_prefetch
        if carried is not None and carried["key"][0] == unit_weights:
            # Same lazy shard view: its shards stay bound to whichever
            # prefetcher wins below, and the carried dense plans keyed
            # on this object's identity stay eligible for reuse.
            sharded = carried["sharded"]
        else:
            sharded = store.sharded_graph(unit_weights=unit_weights)
        if opts.memory_budget is not None:
            capacity = optimal_concurrent_shards(
                opts.memory_budget,
                resident_bytes,
                store.max_interval_vertices() * 4,
                sharded.max_shard_bytes(with_weights, with_state),
                store.num_partitions,
                hardware_limit=store.num_partitions,
            )
        else:
            capacity = store.num_partitions
        workers = opts.prefetch_workers if (opts.host_prefetch and warm) else 0
        key = (unit_weights, capacity, workers)
        if carried is not None and carried["key"] == key:
            prefetcher = carried["prefetcher"]
            prefetcher.rewarm(
                obs=obs,
                heartbeats=telemetry.heartbeats if telemetry is not None else None,
            )
        else:
            if carried is not None:
                # Configuration changed (capacity/workers/weights): the
                # carried cache no longer matches, and the dense plans
                # alias arrays it holds -- release both.
                carried["prefetcher"].shutdown()
                self._warm_prefetch = None
                self._warm_plans = None
            prefetcher = HostPrefetcher(
                store,
                capacity,
                workers=workers,
                obs=obs,
                unit_weights=unit_weights,
                heartbeats=telemetry.heartbeats if telemetry is not None else None,
            )
            for shard in sharded.shards:
                shard.bind(prefetcher)
        if telemetry is not None:
            telemetry.add_source(
                "prefetch",
                lambda p=prefetcher: {
                    k: v for k, v in p.snapshot().items() if k != "lane"
                },
            )
        return sharded, prefetcher, key

    # ------------------------------------------------------------------
    @staticmethod
    def _select_shards(
        group: PhaseGroup,
        sharded: ShardedGraph,
        frontier: FrontierManager,
        opts: GraphReduceOptions,
    ):
        """Shard work list for one phase (+ how many were skipped)."""
        if not opts.frontier_skipping or group.selector == "all":
            return list(sharded.shards), 0
        if group.selector == "active":
            ids = frontier.active_shards()
        else:
            ids = frontier.changed_shards()
        shards = [sharded.shards[i] for i in ids]
        return shards, sharded.num_partitions - len(shards)

    @staticmethod
    def _resident_buffers(program: GASProgram, n: int) -> dict[str, int]:
        """Static buffers (Section 3.2): uploaded once, device-resident."""
        vdt = np.dtype(program.vertex_dtype).itemsize
        gdt = np.dtype(program.gather_dtype).itemsize
        # Batched programs carry one state column per query, so the
        # resident vertex buffers scale with the batch width (the shard
        # topology does not) -- the partition choice must account for it.
        width = getattr(program, "state_cols", None) or 1
        return {
            "vertex_values": n * vdt * width,
            "vertex_update_array": n * gdt * width,  # the gather result
            "frontier_flags": 3 * (n // 8 + 1),  # current/next/changed bitmaps
            "degrees": n * 4,
        }

    @classmethod
    def _resident_bytes(cls, program: GASProgram, n: int) -> int:
        return sum(cls._resident_buffers(program, n).values())
