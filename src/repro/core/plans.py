"""Host-side gather/scatter plan cache and dense-frontier fast path.

The Compute Engine's phases all start from the same expensive question:
*which edges are incident to this shard's active (or changed) vertices,
and in what segment layout?* The slow path answers it from scratch on
every call -- ``flatnonzero`` over the mask, :func:`ragged_gather`, then
O(E) fancy gathers of ``indices``/``edge_ids``/weights. This module
memoizes those answers per shard as index *plans*, with two host-only
optimizations (Gunrock-style frontier-density specialization, applied to
our NumPy kernels):

* **Dense fast path** -- when a mask covers a shard's whole interval
  (the steady state of PageRank/SpMV and every ``always_active``
  program), the plan is a function of topology alone: ``seg``/``starts``
  come from :func:`~repro.graph.csr.dense_gather` and the per-edge
  arrays are the shard's flat CSR/CSC arrays *by reference*, no fancy
  gather at all. Dense plans are built once per shard and reused for the
  rest of the run.
* **Plan cache** -- sparse plans are keyed on a cheap frontier
  fingerprint: :class:`~repro.core.frontier.FrontierManager` bumps a
  per-(mask, interval) epoch on every mutation, so an epoch match proves
  the cached plan fresh without touching the mask; on an epoch miss the
  plan revalidates by comparing the recomputed row set (``array_equal``)
  before falling back to a rebuild.
* **Sparse bypass** -- traversal frontiers (BFS/SSSP waves) never
  repeat, so for them the cache is all misses and pure overhead. When a
  query's frontier covers at most ``1/SPARSE_BYPASS_FACTOR`` of the
  shard's interval, the plan is built directly from the CSR/CSC rows --
  the same arrays the slow path would produce -- skipping epoch
  bookkeeping, ``array_equal`` revalidation and LRU accounting entirely.
  Counted as ``plans.sparse_bypass`` (neither hit nor miss).

Both paths are semantics-preserving and invisible to the simulated cost
model: plans reproduce bit-identical index sets, in the same order, with
the same dtypes as the slow path, and the WorkItems censuses that drive
kernel cost count exactly the same edges/vertices. Mutable per-edge and
per-vertex values are never cached -- plans hold *indices*, and the
Compute Engine re-gathers values through them on every use. Callers must
treat plan arrays as read-only: dense plans alias the shard's CSR/CSC
storage.

Hit/miss/invalidation totals are mirrored into the observability layer
(``plans.hits`` / ``plans.misses`` / ``plans.invalidations``) and
surfaced by ``repro profile``. Anything that mutates frontier masks
without going through the FrontierManager update methods must call
``FrontierManager.invalidate_plans()``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.frontier import FrontierManager
from repro.core.partition import Shard, ShardedGraph
from repro.graph.csr import dense_gather, ragged_gather
from repro.obs.span import NULL_OBSERVER

#: Sparse-plan bypass threshold: a frontier covering at most 1/8 of a
#: shard's interval skips the epoch-keyed cache entirely and builds its
#: plan directly (see :meth:`PlanCache.gather_plan`). Tiny traversal
#: frontiers never repeat, so caching them is pure overhead -- the
#: BFS-regression pathology this bypass exists to kill.
SPARSE_BYPASS_FACTOR = 8


@dataclass
class GatherPlan:
    """Index plan for one shard's gather phases (CSC, active rows)."""

    #: global active vertex ids the plan was built from (None = dense)
    rows: np.ndarray | None
    #: source vertex per selected in-edge (vid dtype)
    indices: np.ndarray
    #: edge-list id per selected in-edge
    eids: np.ndarray
    #: weight per selected in-edge (None when the graph is unweighted)
    weights: np.ndarray | None
    #: destination vertex per selected in-edge (vid dtype, global)
    row_ids: np.ndarray
    #: segment starts into the per-edge arrays (one per destination
    #: with at least one selected in-edge)
    starts: np.ndarray
    #: destination vertex per segment (int64, global)
    verts: np.ndarray
    n_edges: int
    dense: bool
    epoch: int


@dataclass
class OutPlan:
    """Index plan over a shard's out-edges (CSR, changed rows)."""

    rows: np.ndarray | None
    #: out-neighbor per selected out-edge (vid dtype)
    indices: np.ndarray
    #: edge-list id per selected out-edge (None on a lite plan)
    eids: np.ndarray | None
    weights: np.ndarray | None
    #: source vertex per selected out-edge (vid dtype, global; None on
    #: a lite plan)
    row_ids: np.ndarray | None
    n_edges: int
    dense: bool
    epoch: int
    #: frontier_activate only needs ``indices``; scatter needs the per-
    #: edge identity/weight columns too. A full plan serves both.
    full: bool
    #: bool mask over the global vertex set with ``indices`` deduplicated
    #: (dense plans only): ``next[...] = True`` is idempotent, so
    #: frontier_activate may OR this mask in instead of issuing one
    #: write per out-edge. None on sparse plans.
    targets: np.ndarray | None = None


def _build_gather_plan(shard: Shard, rows, dense: bool, epoch: int) -> GatherPlan:
    csc = shard.csc
    if dense:
        seg, starts, verts_local = dense_gather(csc.indptr)
        indices = csc.indices
        eids = csc.edge_ids
        weights = shard.csc_weights
    else:
        pos, seg = ragged_gather(csc.indptr, rows - shard.start)
        indices = csc.indices[pos]
        eids = csc.edge_ids[pos]
        weights = None if shard.csc_weights is None else shard.csc_weights[pos]
        if len(seg):
            starts = np.flatnonzero(np.r_[True, seg[1:] != seg[:-1]])
            verts_local = seg[starts]
        else:
            starts = np.empty(0, dtype=np.int64)
            verts_local = np.empty(0, dtype=np.int64)
    return GatherPlan(
        rows=None if dense else rows,
        indices=indices,
        eids=eids,
        weights=weights,
        row_ids=(seg + shard.start).astype(csc.indices.dtype),
        starts=starts,
        verts=verts_local + shard.start,
        n_edges=len(seg),
        dense=dense,
        epoch=epoch,
    )


def _build_out_plan(
    shard: Shard, rows, dense: bool, epoch: int, full: bool, num_vertices: int = 0
) -> OutPlan:
    csr = shard.csr
    targets = None
    if dense:
        seg, _starts, _verts = dense_gather(csr.indptr)
        indices = csr.indices
        eids = csr.edge_ids
        weights = shard.csr_weights
        targets = np.zeros(num_vertices, dtype=bool)
        targets[csr.indices] = True
    else:
        pos, seg = ragged_gather(csr.indptr, rows - shard.start)
        indices = csr.indices[pos]
        eids = csr.edge_ids[pos] if full else None
        weights = None
        if full and shard.csr_weights is not None:
            weights = shard.csr_weights[pos]
    return OutPlan(
        rows=None if dense else rows,
        indices=indices,
        eids=eids if full else None,
        weights=weights if full else None,
        row_ids=(seg + shard.start).astype(csr.indices.dtype) if full else None,
        n_edges=len(seg),
        dense=dense,
        epoch=epoch,
        full=full,
        targets=targets,
    )


class _RowsEntry:
    """Canonical row set of one (mask, shard) at a known epoch."""

    __slots__ = ("rows", "epoch")

    def __init__(self, rows, epoch: int):
        self.rows = rows  # int64 global vids, or None for a dense interval
        self.epoch = epoch


def _plan_nbytes(plan) -> int:
    """Bytes a cached plan *references* (owned or aliased).

    Dense plans alias the shard's CSR/CSC arrays by reference, and that
    is exactly the point of counting them: the budget bounds what the
    cache can keep pinned (for memmapped shards, the mapped pages), so
    aliased bytes must weigh the same as owned ones.
    """
    total = 0
    for name in ("rows", "indices", "eids", "weights", "row_ids", "starts", "verts", "targets"):
        arr = getattr(plan, name, None)
        if arr is not None and hasattr(arr, "nbytes"):
            total += arr.nbytes
    return total


class PlanCache:
    """Per-shard index-plan memoization over one frontier's epochs.

    ``dense``/``cache`` toggle the two fast paths independently; with
    both off every query falls through to a fresh slow-path build, so a
    disabled cache is an exact stand-in for the pre-plan Compute Engine
    (multi-GPU and unit-test call sites rely on that default).

    Thread safety: concurrent queries for *different* shards (the
    parallel shard compute case) are safe -- per-shard state lives in
    dict slots only one worker touches, and the shared counters are
    guarded by a lock. Two concurrent queries for the same shard are
    never issued by the runtime.
    """

    def __init__(
        self,
        sharded: ShardedGraph,
        frontier: FrontierManager,
        obs=None,
        dense: bool = True,
        cache: bool = True,
        budget: int | None = None,
        sparse: bool = True,
    ):
        self.sharded = sharded
        self.frontier = frontier
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.dense_enabled = dense
        self.cache_enabled = cache
        #: sparse-frontier bypass: queries whose frontier covers at most
        #: 1/SPARSE_BYPASS_FACTOR of the shard's interval build their
        #: plan directly (bit-identical to the slow path) and never
        #: touch the epoch/LRU machinery. Only active on the fast path.
        self.sparse_enabled = sparse
        #: LRU byte budget over the cached plans (see :func:`_plan_nbytes`
        #: for what counts). None -> unbounded, the pre-budget behavior.
        #: The canonical row sets (``_rows``) and the tiny dense-vid
        #: aranges are frontier state, not plan storage, and stay exempt.
        self.budget = budget
        self._rows: dict[str, dict[int, _RowsEntry]] = {"active": {}, "changed": {}}
        self._gather: dict[int, GatherPlan] = {}
        self._out: dict[int, OutPlan] = {}
        self._dense_gather: dict[int, GatherPlan] = {}
        self._dense_out: dict[int, OutPlan] = {}
        self._dense_vids: dict[int, np.ndarray] = {}
        self._stores = {
            "gather": self._gather,
            "out": self._out,
            "dense_gather": self._dense_gather,
            "dense_out": self._dense_out,
        }
        #: (kind, shard index) -> plan bytes, in least-recently-used order
        self._lru: OrderedDict[tuple[str, int], int] = OrderedDict()
        self._held_bytes = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.sparse_bypass = 0
        #: dense plans carried into later runs via :meth:`rebind`
        #: (``keep_warm``): cumulative count of plan builds later runs
        #: did not have to repeat.
        self.carried_plans = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.dense_enabled or self.cache_enabled

    def stats(self) -> dict:
        with self._lock:
            hits, misses, inv = self.hits, self.misses, self.invalidations
            evictions, held = self.evictions, self._held_bytes
            bypass = self.sparse_bypass
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "invalidations": inv,
            "hit_rate": hits / total if total else 0.0,
            "evictions": evictions,
            "sparse_bypass": bypass,
            "carried_plans": self.carried_plans,
            "budget_bytes": self.budget,
            "held_bytes": held,
        }

    def rebind(self, frontier: FrontierManager, obs=None) -> int:
        """Re-aim a carried cache at a new run's frontier (``keep_warm``).

        Dense plans (and the dense-vid aranges) are functions of shard
        topology alone -- the lookup path never consults frontier epochs
        for them -- so they survive across runs over the same
        :class:`ShardedGraph`. Everything keyed to the old frontier's
        epoch counters is dropped: the canonical row sets and the sparse
        gather/out plans, which a fresh frontier restarting at epoch 0
        could otherwise alias incorrectly. Returns the number of dense
        plans carried over (also accumulated in ``carried_plans``).
        """
        self.frontier = frontier
        if obs is not None:
            self.obs = obs
        carried = len(self._dense_gather) + len(self._dense_out)
        for store in self._rows.values():
            store.clear()
        self._gather.clear()
        self._out.clear()
        with self._lock:
            self.carried_plans += carried
            if self.budget is not None:
                for key in [k for k in self._lru if k[0] in ("gather", "out")]:
                    self._held_bytes -= self._lru.pop(key)
        self.obs.add("plans.carried", carried)
        return carried

    # ------------------------------------------------------------------
    # LRU byte accounting (no-ops when ``budget`` is None)
    # ------------------------------------------------------------------
    def _account(self, kind: str, index: int, plan) -> None:
        """Charge a freshly stored plan and evict over-budget entries."""
        if self.budget is None:
            return
        evicted: list[tuple[str, int]] = []
        with self._lock:
            key = (kind, index)
            self._held_bytes -= self._lru.pop(key, 0)
            size = _plan_nbytes(plan)
            self._lru[key] = size
            self._held_bytes += size
            # Never evict the entry just stored: the caller holds it.
            while self._held_bytes > self.budget and len(self._lru) > 1:
                old_key, old_size = next(iter(self._lru.items()))
                if old_key == key:
                    break
                del self._lru[old_key]
                self._held_bytes -= old_size
                self.evictions += 1
                evicted.append(old_key)
        for old_kind, old_index in evicted:
            self._stores[old_kind].pop(old_index, None)
            self.obs.add("plans.evictions")

    def _touch(self, kind: str, index: int) -> None:
        if self.budget is None:
            return
        with self._lock:
            key = (kind, index)
            if key in self._lru:
                self._lru.move_to_end(key)

    # ------------------------------------------------------------------
    def _record(self, hit: bool, invalidated: bool = False) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
            if invalidated:
                self.invalidations += 1
        self.obs.add("plans.hits" if hit else "plans.misses")
        if invalidated:
            self.obs.add("plans.invalidations")

    def _sparse_rows(self, shard: Shard, mask: str):
        """Rows for a bypass-eligible tiny frontier, else None.

        The pre-check is a cheap count (compacted frontier / one
        vectorized scan); only eligible queries pay the row extraction.
        """
        if not self.sparse_enabled:
            return None
        count = self.frontier.sparse_count(mask, shard.start, shard.stop)
        if count is None or count * SPARSE_BYPASS_FACTOR > shard.num_interval_vertices:
            return None
        fr = self.frontier
        rows = (
            fr.active_in(shard.start, shard.stop)
            if mask == "active"
            else fr.changed_in(shard.start, shard.stop)
        )
        with self._lock:
            self.sparse_bypass += 1
        self.obs.add("plans.sparse_bypass")
        return rows

    def sparse_rows(self, shard: Shard, mask: str):
        """Public bypass query for the fused kernel paths.

        Returns the global row ids when the (mask, shard) frontier is
        bypass-eligible, else None -- counting ``plans.sparse_bypass``
        exactly as :meth:`gather_plan`/:meth:`out_plan` would, so a
        fused caller that consumes the rows directly (no plan built)
        leaves the cache counters identical to the generic path.
        """
        return self._sparse_rows(shard, mask)

    def _resolve_rows(self, shard: Shard, mask: str):
        """(rows | None-if-dense, fresh) for the current mask contents.

        ``fresh`` means the caller may keep using anything derived from
        this exact rows object: either the interval's epoch still
        matches the stored entry (no mutation since), or the recomputed
        row set compared equal and the entry was revalidated in place.
        """
        fr = self.frontier
        idx = shard.index
        if mask == "active":
            epoch = int(fr.active_epochs[idx])
            dense_q, rows_q = fr.dense_active_in, fr.active_in
        else:
            epoch = int(fr.changed_epochs[idx])
            dense_q, rows_q = fr.dense_changed_in, fr.changed_in
        store = self._rows[mask]
        entry = store.get(idx)
        if entry is not None and entry.epoch == epoch:
            return entry.rows, True
        if self.dense_enabled and shard.num_interval_vertices and dense_q(
            shard.start, shard.stop
        ):
            if entry is not None and entry.rows is None:
                entry.epoch = epoch  # still dense: revalidate in place
                return None, True
            store[idx] = _RowsEntry(None, epoch)
            return None, False
        rows = rows_q(shard.start, shard.stop)
        if (
            entry is not None
            and entry.rows is not None
            and np.array_equal(entry.rows, rows)
        ):
            entry.epoch = epoch
            return entry.rows, True
        if self.cache_enabled:
            store[idx] = _RowsEntry(rows, epoch)
        return rows, False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def gather_plan(self, shard: Shard) -> GatherPlan:
        """The in-edge plan for the shard's currently active rows."""
        if not self.enabled:
            rows = self.frontier.active_in(shard.start, shard.stop)
            return _build_gather_plan(shard, rows, dense=False, epoch=0)
        bypass = self._sparse_rows(shard, "active")
        if bypass is not None:
            return _build_gather_plan(shard, bypass, dense=False, epoch=0)
        rows, fresh = self._resolve_rows(shard, "active")
        epoch = int(self.frontier.active_epochs[shard.index])
        if rows is None:  # dense: the plan is static per shard topology
            plan = self._dense_gather.get(shard.index)
            if plan is None:
                plan = _build_gather_plan(shard, None, dense=True, epoch=epoch)
                self._dense_gather[shard.index] = plan
                self._account("dense_gather", shard.index, plan)
                self._record(hit=False)
            else:
                self._touch("dense_gather", shard.index)
                self._record(hit=True)
            return plan
        cached = self._gather.get(shard.index) if self.cache_enabled else None
        if cached is not None and fresh and cached.rows is rows:
            cached.epoch = epoch
            self._touch("gather", shard.index)
            self._record(hit=True)
            return cached
        plan = _build_gather_plan(shard, rows, dense=False, epoch=epoch)
        if self.cache_enabled:
            self._gather[shard.index] = plan
            self._account("gather", shard.index, plan)
        self._record(hit=False, invalidated=cached is not None)
        return plan

    def out_plan(self, shard: Shard, full: bool = False) -> OutPlan:
        """The out-edge plan for the shard's currently changed rows.

        ``full`` (scatter) adds the per-edge identity/weight columns; a
        cached full plan also serves lite (frontier_activate) queries.
        """
        if not self.enabled:
            rows = self.frontier.changed_in(shard.start, shard.stop)
            return _build_out_plan(shard, rows, dense=False, epoch=0, full=full)
        bypass = self._sparse_rows(shard, "changed")
        if bypass is not None:
            return _build_out_plan(shard, bypass, dense=False, epoch=0, full=full)
        rows, fresh = self._resolve_rows(shard, "changed")
        epoch = int(self.frontier.changed_epochs[shard.index])
        if rows is None:
            plan = self._dense_out.get(shard.index)
            if plan is None or (full and not plan.full):
                plan = _build_out_plan(
                    shard, None, dense=True, epoch=epoch, full=full,
                    num_vertices=self.sharded.num_vertices,
                )
                self._dense_out[shard.index] = plan
                self._account("dense_out", shard.index, plan)
                self._record(hit=False)
            else:
                self._touch("dense_out", shard.index)
                self._record(hit=True)
            return plan
        cached = self._out.get(shard.index) if self.cache_enabled else None
        if (
            cached is not None
            and fresh
            and cached.rows is rows
            and (cached.full or not full)
        ):
            cached.epoch = epoch
            self._touch("out", shard.index)
            self._record(hit=True)
            return cached
        plan = _build_out_plan(shard, rows, dense=False, epoch=epoch, full=full)
        if self.cache_enabled:
            self._out[shard.index] = plan
            self._account("out", shard.index, plan)
        self._record(hit=False, invalidated=cached is not None)
        return plan

    def drop_shard(self, index: int) -> None:
        """Release every cached plan holding a shard's arrays.

        Dense plans alias the shard's CSR/CSC storage *by reference*, so
        when the out-of-core prefetcher evicts a memmapped shard it calls
        this hook -- otherwise the cached plans would pin the evicted
        mappings (and their address space) for the rest of the run. The
        row-set entries survive: they are frontier state, not shard
        data, so a re-faulted shard revalidates instead of rebuilding
        from the mask.

        Thread safety matches the class contract: each dict entry is
        touched by at most one worker's shard, and per-key ``pop`` is
        atomic under the GIL.
        """
        for store in (self._gather, self._out, self._dense_gather, self._dense_out):
            store.pop(index, None)
        if self.budget is not None:
            with self._lock:
                for kind in self._stores:
                    size = self._lru.pop((kind, index), None)
                    if size is not None:
                        self._held_bytes -= size

    def active_rows(self, shard: Shard):
        """(rows, dense) for the apply phase.

        ``rows`` are the active global vids (the dense case returns a
        cached per-shard ``arange``); ``dense`` tells the caller it may
        use contiguous slices of the vertex-indexed buffers instead of
        fancy gathers. Callers must not mutate ``rows``.
        """
        if not self.enabled:
            return self.frontier.active_in(shard.start, shard.stop), False
        bypass = self._sparse_rows(shard, "active")
        if bypass is not None:
            return bypass, False
        rows, fresh = self._resolve_rows(shard, "active")
        self._record(hit=fresh)
        if rows is None:
            vids = self._dense_vids.get(shard.index)
            if vids is None:
                vids = np.arange(shard.start, shard.stop, dtype=np.int64)
                self._dense_vids[shard.index] = vids
            return vids, True
        return rows, False
