"""The Compute Engine (Section 4.4).

Executes the five phases over one shard at a time with the *hybrid*
programming model of Section 3.1:

* ``gather_map``, ``scatter`` and ``frontier_activate`` are
  **edge-centric** -- one (virtual) hardware thread per active edge,
  enumerated via :func:`~repro.graph.csr.ragged_gather`, so real-world
  graphs' edge surplus maps to parallelism and no per-vertex atomics
  order the receives.
* ``gather_reduce`` and ``apply`` are **vertex-centric** -- gathered
  contributions arrive consecutively per destination (the CSC layout
  guarantees it), so the reduction is a segmented ``ufunc.reduceat``.

Each call returns a :class:`WorkItems` census that the Data Movement
Engine turns into kernel cost; with frontier skipping disabled
(the Figure-15 baseline) the census counts the full shard instead of the
active subset, while the *semantic* computation is identical either way
(inactive vertices are no-ops).

CTA load balancing from ModernGPU (which the paper plugs in) is modeled
by the occupancy term of :class:`repro.sim.stream.Kernel`: work per
kernel is proportional to *active* items, not to the worst vertex.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.api import GASProgram
from repro.core.frontier import FrontierManager
from repro.core.kernels import layout
from repro.core.partition import Shard, ShardedGraph
from repro.core.plans import PlanCache
from repro.graph.csr import segment_reduce
from repro.obs.span import NULL_OBSERVER


@dataclass
class WorkItems:
    """Edge- and vertex-centric work launched for one (shard, group)."""

    edge_items: int = 0
    vertex_items: int = 0

    def __iadd__(self, other: "WorkItems") -> "WorkItems":
        self.edge_items += other.edge_items
        self.vertex_items += other.vertex_items
        return self

    @property
    def total(self) -> int:
        return self.edge_items + self.vertex_items


@dataclass
class _PendingGather:
    """gatherMap output parked between the two unfused gather phases."""

    starts: np.ndarray
    verts: np.ndarray
    contributions: np.ndarray


def _spec_trustworthy(cls: type, method: str, spec_method: str) -> bool:
    """Whether a kernel spec still describes the method it was written for.

    A subclass that overrides ``apply``/``gather_map`` without also
    overriding the matching ``*_kernel_spec`` hook would otherwise
    inherit a spec describing the *parent's* arithmetic -- and the fused
    kernel would silently skip the override. The spec is only honored
    when the class defining it sits at or below the class defining the
    method in the MRO.
    """
    mro = cls.__mro__

    def definer(name):
        for c in mro:
            if name in c.__dict__:
                return c
        return None

    m, s = definer(method), definer(spec_method)
    return m is not None and s is not None and mro.index(s) <= mro.index(m)


@dataclass
class _FusedGather:
    """Marker parked when a fused kernel already reduced the gather.

    The fused pass wrote ``gather_temp``/``gather_has`` during
    gather_map, so gather_reduce has no arithmetic left -- but it must
    still report the same vertex-centric census the unfused reduction
    would have (one item per destination segment).
    """

    n_segments: int


class ComputeEngine:
    """Phase execution over the runtime's resident vertex buffers."""

    def __init__(
        self,
        sharded: ShardedGraph,
        program: GASProgram,
        ctx,
        frontier: FrontierManager,
        obs=None,
        plans: PlanCache | None = None,
        kernels=None,
    ):
        self.sharded = sharded
        self.program = program
        self.ctx = ctx
        self.frontier = frontier
        self.obs = obs if obs is not None else NULL_OBSERVER
        # Default to a disabled cache: every query rebuilds from the
        # frontier masks, exactly the slow path. The runtime passes an
        # enabled cache; call sites that mutate masks directly (unit
        # tests, multi-GPU) keep slow-path semantics untouched.
        self.plans = plans if plans is not None else PlanCache(
            sharded, frontier, obs=self.obs, dense=False, cache=False
        )
        n = sharded.num_vertices
        cols = getattr(program, "state_cols", None)
        state_shape = (n,) if cols is None else (n, int(cols))
        self.vertex_values = np.asarray(program.init_vertices(ctx))
        if self.vertex_values.shape != state_shape:
            raise ValueError(
                f"init_vertices must return shape {state_shape}, "
                f"got {self.vertex_values.shape}"
            )
        self.vertex_values = self.vertex_values.astype(program.vertex_dtype, copy=False)
        # Batched programs widen the gather result to one column per
        # query; gather_has stays a single vertex-level mask (a vertex
        # either received contributions this iteration or did not --
        # identical across columns because topology is shared).
        self.gather_temp = np.full(
            state_shape, program.gather_identity, dtype=program.gather_dtype
        )
        self.gather_has = np.zeros(n, dtype=bool)
        self.edge_state = program.init_edge_state(ctx)
        self.iteration = 0
        self._pending: dict[int, _PendingGather | _FusedGather] = {}
        self._setup_kernels(kernels)

    def _setup_kernels(self, kernels) -> None:
        """Adopt a kernel backend and the program's fusable specs.

        Fusion is opt-in twice over: the runtime must pass a backend
        (direct engine construction keeps the generic path, so unit
        tests that pin plan-cache counters see no behavior change), and
        the program must declare specs in the float32 shapes the
        kernels implement. Programs without specs -- or with edge state,
        which the fused gather cannot stamp -- run the generic path and
        count one ``kernels.fallbacks``.
        """
        self.kernels = kernels
        self._backend_name = None if kernels is None else kernels.name
        self._gather_spec = None
        self._apply_spec = None
        self._deg32 = None
        self.fused_calls = 0
        self.fallbacks = 0
        if kernels is None:
            return
        f32 = np.dtype(np.float32)
        u64 = np.dtype(np.uint64)
        vdt = np.dtype(self.program.vertex_dtype)
        gdt = np.dtype(self.program.gather_dtype)
        cols = getattr(self.program, "state_cols", None)
        if cols is None:
            dtypes_ok = vdt == f32 and gdt == f32
        else:
            # Matrix-state (batched) programs fuse only when the backend
            # implements the columnar variants; float32 query columns
            # and uint64 bitmask words are the two supported layouts.
            dtypes_ok = getattr(kernels, "supports_matrix", False) and (
                (vdt == f32 and gdt == f32) or (vdt == u64 and gdt == u64)
            )
        cls = type(self.program)
        if dtypes_ok:
            if _spec_trustworthy(cls, "gather_map", "gather_kernel_spec"):
                self._gather_spec = self.program.gather_kernel_spec()
            if _spec_trustworthy(cls, "apply", "apply_kernel_spec"):
                self._apply_spec = self.program.apply_kernel_spec()
        if self._gather_spec is None and self._apply_spec is None:
            self.fallbacks += 1
            self.obs.add("kernels.fallbacks")

    def _deg_table(self) -> np.ndarray:
        """float32 out-degree table (clamped to 1) for div_degree gathers."""
        if self._deg32 is None:
            self._deg32 = layout.aligned_copy(
                np.maximum(self.ctx.out_degrees.astype(np.float32), 1.0)
            )
        return self._deg32

    def _kernel_fallback(self, phase: str, exc: Exception) -> None:
        """Disable fusion after a kernel failure; the caller reruns generic."""
        self.kernels = None
        self._gather_spec = None
        self._apply_spec = None
        self.fallbacks += 1
        self.obs.add("kernels.fallbacks")
        warnings.warn(
            f"kernel backend {self._backend_name!r} failed during {phase} "
            f"({exc!r}); falling back to the generic NumPy path",
            RuntimeWarning,
            stacklevel=3,
        )

    def _count_fused(self) -> None:
        self.fused_calls += 1
        if self.obs.enabled:
            self.obs.add("kernels.fused_calls")

    def kernel_stats(self) -> dict | None:
        """Backend name + fused/fallback counters (None: no backend)."""
        if self._backend_name is None:
            return None
        stats = {
            "backend": self._backend_name,
            "fused_calls": self.fused_calls,
            "fallbacks": self.fallbacks,
        }
        if self.kernels is not None:
            stats.update(self.kernels.arena.stats())
        return stats

    # ------------------------------------------------------------------
    def begin_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self.gather_has[:] = False
        self._pending.clear()

    def run_group(self, phases: tuple[str, ...], shard: Shard, count_full: bool) -> WorkItems:
        """Execute the given (possibly fused) phases on one shard."""
        work = WorkItems()
        record = self.obs.enabled
        for phase in phases:
            fn = getattr(self, "_" + phase)
            w = fn(shard, count_full)
            if record:
                self.obs.add(f"compute.{phase}.edge_items", w.edge_items)
                self.obs.add(f"compute.{phase}.vertex_items", w.vertex_items)
            work += w
        return work

    # ------------------------------------------------------------------
    # Edge-centric phases
    # ------------------------------------------------------------------
    def _gather_map(self, shard: Shard, count_full: bool) -> WorkItems:
        if not self.program.has_gather:
            return WorkItems(edge_items=shard.num_in_edges if count_full else 0)
        spec = self._gather_spec
        if (
            spec is not None
            and self.edge_state is None
            and self.plans.enabled
            and (not spec.needs_weights or shard.csc_weights is not None)
        ):
            work = self._fused_gather_map(shard, count_full, spec)
            if work is not None:
                return work
        plan = self.plans.gather_plan(shard)
        n_edges = shard.num_in_edges if count_full else plan.n_edges
        if plan.n_edges == 0:
            return WorkItems(edge_items=n_edges)
        # np.take beats values[indices] advanced indexing on the hot
        # O(E) gathers (same result, same dtype).
        states = None if self.edge_state is None else np.take(self.edge_state, plan.eids)
        contrib = self.program.gather_map(
            self.ctx,
            plan.indices,
            plan.row_ids,
            np.take(self.vertex_values, plan.indices, axis=0),
            plan.weights,
            states,
        )
        self._pending[shard.index] = _PendingGather(plan.starts, plan.verts, contrib)
        return WorkItems(edge_items=n_edges)

    def _fused_gather_map(self, shard: Shard, count_full: bool, spec) -> WorkItems | None:
        """Single fused pass: per-edge map + segment reduce + has-mark.

        The sparse-bypass branch reads the shard's CSC sub-arrays
        directly (no plan at all); the dense/cached branch reuses the
        plan's index layout but skips the contribution temporaries.
        Plan-cache counters stay identical to the generic path: the
        bypass query counts through :meth:`PlanCache.sparse_rows`, and
        non-bypass queries still go through ``gather_plan``. Returns
        None on kernel failure (caller reruns the generic path).
        """
        deg = self._deg_table() if spec.kind == "div_degree" else None
        try:
            rows = self.plans.sparse_rows(shard, "active")
            if rows is not None:
                n_edges, n_segments = self.kernels.gather_rows(
                    shard.index, spec, self.vertex_values, deg,
                    shard.csc.indptr, shard.csc.indices, shard.csc_weights,
                    rows, shard.start, self.gather_temp, self.gather_has,
                )
            else:
                plan = self.plans.gather_plan(shard)
                n_edges = plan.n_edges
                n_segments = len(plan.verts)
                if n_edges:
                    self.kernels.gather_segments(
                        shard.index, spec, self.vertex_values, deg,
                        plan.indices, plan.weights, plan.starts, plan.verts,
                        self.gather_temp, self.gather_has,
                    )
        except Exception as exc:  # pragma: no cover - exercised via tests
            self._kernel_fallback("gather", exc)
            return None
        if n_edges:
            self._pending[shard.index] = _FusedGather(n_segments)
            self._count_fused()
        return WorkItems(edge_items=shard.num_in_edges if count_full else n_edges)

    def _gather_reduce(self, shard: Shard, count_full: bool) -> WorkItems:
        n_vert = shard.num_interval_vertices if count_full else 0
        pending = self._pending.pop(shard.index, None)
        if pending is None:
            return WorkItems(vertex_items=n_vert)
        if isinstance(pending, _FusedGather):
            # The fused kernel already reduced; report the same census.
            if not count_full:
                n_vert = pending.n_segments
            return WorkItems(vertex_items=n_vert)
        reduced = segment_reduce(
            self.program.gather_reduce, pending.contributions, pending.starts
        )
        self.gather_temp[pending.verts] = reduced.astype(
            self.program.gather_dtype, copy=False
        )
        self.gather_has[pending.verts] = True
        if not count_full:
            n_vert = len(pending.verts)
        return WorkItems(vertex_items=n_vert)

    def _scatter(self, shard: Shard, count_full: bool) -> WorkItems:
        if not self.program.has_scatter:
            return WorkItems(edge_items=shard.num_out_edges if count_full else 0)
        plan = self.plans.out_plan(shard, full=True)
        n_edges = shard.num_out_edges if count_full else plan.n_edges
        if plan.n_edges == 0:
            return WorkItems(edge_items=n_edges)
        states = None if self.edge_state is None else np.take(self.edge_state, plan.eids)
        new_states = self.program.scatter(
            self.ctx,
            plan.row_ids,
            np.take(self.vertex_values, plan.row_ids, axis=0),
            plan.weights,
            states,
        )
        if self.edge_state is not None:
            self._write_edge_state(plan.eids, new_states)
        return WorkItems(edge_items=n_edges)

    def _frontier_activate(self, shard: Shard, count_full: bool) -> WorkItems:
        if (
            self.kernels is not None
            and not self.program.has_scatter
            and self.plans.enabled
        ):
            work = self._fused_activate(shard, count_full)
            if work is not None:
                return work
        plan = self.plans.out_plan(shard, full=self.program.has_scatter)
        n_edges = shard.num_out_edges if count_full else plan.n_edges
        if plan.n_edges:
            if plan.targets is not None:
                # Dense plan: OR in the deduplicated target mask; the
                # resulting frontier is identical (idempotent writes)
                # and the recorded count stays per-out-edge.
                self.frontier.activate_next_mask(plan.targets, count=plan.n_edges)
            else:
                self.frontier.activate_next(plan.indices)
        return WorkItems(edge_items=n_edges)

    def _fused_activate(self, shard: Shard, count_full: bool) -> WorkItems | None:
        """Fused activation for bypass-eligible sparse frontiers.

        Emits the changed rows' out-neighbors straight off the shard's
        CSR sub-arrays into a scratch buffer and ORs them into the next
        frontier -- no out plan is built or cached. Dense frontiers
        (and every scatter program, whose full plan the generic path
        shares) return None and take the plan route.
        """
        rows = self.plans.sparse_rows(shard, "changed")
        if rows is None:
            return None
        try:
            targets = self.kernels.activate_targets(
                shard.index, shard.csr.indptr, shard.csr.indices, rows, shard.start
            )
        except Exception as exc:  # pragma: no cover - exercised via tests
            self._kernel_fallback("frontier_activate", exc)
            return None
        if len(targets):
            self.frontier.activate_next(self._capture_targets(targets))
        self._count_fused()
        return WorkItems(
            edge_items=shard.num_out_edges if count_full else len(targets)
        )

    # ------------------------------------------------------------------
    # Vertex-centric phase
    # ------------------------------------------------------------------
    def _apply(self, shard: Shard, count_full: bool) -> WorkItems:
        rows, dense = self.plans.active_rows(shard)
        n_vert = shard.num_interval_vertices if count_full else len(rows)
        if len(rows) == 0:
            return WorkItems(vertex_items=n_vert)
        if (
            self._apply_spec is not None
            and self.plans.enabled
            and self._fused_apply(shard, rows, dense)
        ):
            return WorkItems(vertex_items=n_vert)
        if dense:
            # Whole interval active: contiguous slice copies of the
            # vertex-indexed buffers instead of O(V) fancy gathers. The
            # copies keep apply's inputs private, as the slow path does.
            lo, hi = shard.start, shard.stop
            old_vals = self.vertex_values[lo:hi].copy()
            gathered = self.gather_temp[lo:hi].copy()
            has = self.gather_has[lo:hi].copy()
        else:
            old_vals = self.vertex_values[rows]
            gathered = self.gather_temp[rows]
            has = self.gather_has[rows]
        new_vals, changed = self.program.apply(
            self.ctx, rows, old_vals, gathered, has, self.iteration
        )
        changed = np.asarray(changed, dtype=bool)
        if changed.shape != rows.shape:
            raise ValueError(
                f"{type(self.program).__name__}.apply returned a changed mask "
                f"of shape {changed.shape}; expected {rows.shape}"
            )
        out = np.asarray(new_vals).astype(self.program.vertex_dtype, copy=False)
        self._write_vertex_values(shard, rows, dense, out)
        self.frontier.mark_changed(rows[changed])
        return WorkItems(vertex_items=n_vert)

    def _fused_apply(self, shard: Shard, rows, dense: bool) -> bool:
        """Fused apply: update + changed mask in one kernel pass.

        Results land in arena buffers (``out`` is copied by the write
        hook's consumer before the next reuse; the worker engine's
        delta capture copies explicitly). The min_improve source seed
        is positional: the generic ``vids == source`` comparison
        reduces to at most one index on iteration 0.
        """
        spec = self._apply_spec
        lo, hi = shard.start, shard.stop
        src_pos = -1
        if spec.source is not None and self.iteration == 0:
            if dense:
                if lo <= spec.source < hi:
                    src_pos = spec.source - lo
            else:
                j = int(np.searchsorted(rows, spec.source))
                if j < len(rows) and rows[j] == spec.source:
                    src_pos = j
        try:
            out, changed = self.kernels.apply_block(
                shard.index, spec, self.vertex_values, self.gather_temp,
                self.gather_has, None if dense else rows, lo, hi,
                self.iteration, src_pos,
            )
        except Exception as exc:  # pragma: no cover - exercised via tests
            self._kernel_fallback("apply", exc)
            return False
        changed_vids = np.flatnonzero(changed) + lo if dense else rows[changed]
        self._write_vertex_values(shard, rows, dense, out)
        self.frontier.mark_changed(changed_vids)
        self._count_fused()
        return True

    # ------------------------------------------------------------------
    # Mutable-state write points. The process-pool worker engine
    # overrides these two hooks to *capture* writes as deltas instead of
    # applying them -- the main process replays the captured deltas in
    # shard order, so parallel workers never race on shared state.
    # ------------------------------------------------------------------
    def _write_vertex_values(self, shard: Shard, rows, dense: bool, out) -> None:
        if dense:
            self.vertex_values[shard.start : shard.stop] = out
        else:
            self.vertex_values[rows] = out

    def _write_edge_state(self, eids, new_states) -> None:
        self.edge_state[eids] = new_states

    def _capture_targets(self, targets: np.ndarray) -> np.ndarray:
        """Hand fused-activation targets (an arena view) to the frontier.

        The serial frontier consumes them synchronously, so the view is
        safe; the pool worker engine overrides this with a copy because
        its captured deltas are pickled *after* the arena is reused.
        """
        return targets
