"""The Compute Engine (Section 4.4).

Executes the five phases over one shard at a time with the *hybrid*
programming model of Section 3.1:

* ``gather_map``, ``scatter`` and ``frontier_activate`` are
  **edge-centric** -- one (virtual) hardware thread per active edge,
  enumerated via :func:`~repro.graph.csr.ragged_gather`, so real-world
  graphs' edge surplus maps to parallelism and no per-vertex atomics
  order the receives.
* ``gather_reduce`` and ``apply`` are **vertex-centric** -- gathered
  contributions arrive consecutively per destination (the CSC layout
  guarantees it), so the reduction is a segmented ``ufunc.reduceat``.

Each call returns a :class:`WorkItems` census that the Data Movement
Engine turns into kernel cost; with frontier skipping disabled
(the Figure-15 baseline) the census counts the full shard instead of the
active subset, while the *semantic* computation is identical either way
(inactive vertices are no-ops).

CTA load balancing from ModernGPU (which the paper plugs in) is modeled
by the occupancy term of :class:`repro.sim.stream.Kernel`: work per
kernel is proportional to *active* items, not to the worst vertex.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.api import GASProgram
from repro.core.frontier import FrontierManager
from repro.core.partition import Shard, ShardedGraph
from repro.core.plans import PlanCache
from repro.graph.csr import segment_reduce
from repro.obs.span import NULL_OBSERVER


@dataclass
class WorkItems:
    """Edge- and vertex-centric work launched for one (shard, group)."""

    edge_items: int = 0
    vertex_items: int = 0

    def __iadd__(self, other: "WorkItems") -> "WorkItems":
        self.edge_items += other.edge_items
        self.vertex_items += other.vertex_items
        return self

    @property
    def total(self) -> int:
        return self.edge_items + self.vertex_items


@dataclass
class _PendingGather:
    """gatherMap output parked between the two unfused gather phases."""

    starts: np.ndarray
    verts: np.ndarray
    contributions: np.ndarray


class ComputeEngine:
    """Phase execution over the runtime's resident vertex buffers."""

    def __init__(
        self,
        sharded: ShardedGraph,
        program: GASProgram,
        ctx,
        frontier: FrontierManager,
        obs=None,
        plans: PlanCache | None = None,
    ):
        self.sharded = sharded
        self.program = program
        self.ctx = ctx
        self.frontier = frontier
        self.obs = obs if obs is not None else NULL_OBSERVER
        # Default to a disabled cache: every query rebuilds from the
        # frontier masks, exactly the slow path. The runtime passes an
        # enabled cache; call sites that mutate masks directly (unit
        # tests, multi-GPU) keep slow-path semantics untouched.
        self.plans = plans if plans is not None else PlanCache(
            sharded, frontier, obs=self.obs, dense=False, cache=False
        )
        n = sharded.num_vertices
        self.vertex_values = np.asarray(program.init_vertices(ctx))
        if self.vertex_values.shape != (n,):
            raise ValueError(
                f"init_vertices must return shape ({n},), got {self.vertex_values.shape}"
            )
        self.vertex_values = self.vertex_values.astype(program.vertex_dtype, copy=False)
        self.gather_temp = np.full(n, program.gather_identity, dtype=program.gather_dtype)
        self.gather_has = np.zeros(n, dtype=bool)
        self.edge_state = program.init_edge_state(ctx)
        self.iteration = 0
        self._pending: dict[int, _PendingGather] = {}

    # ------------------------------------------------------------------
    def begin_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self.gather_has[:] = False
        self._pending.clear()

    def run_group(self, phases: tuple[str, ...], shard: Shard, count_full: bool) -> WorkItems:
        """Execute the given (possibly fused) phases on one shard."""
        work = WorkItems()
        record = self.obs.enabled
        for phase in phases:
            fn = getattr(self, "_" + phase)
            w = fn(shard, count_full)
            if record:
                self.obs.add(f"compute.{phase}.edge_items", w.edge_items)
                self.obs.add(f"compute.{phase}.vertex_items", w.vertex_items)
            work += w
        return work

    # ------------------------------------------------------------------
    # Edge-centric phases
    # ------------------------------------------------------------------
    def _gather_map(self, shard: Shard, count_full: bool) -> WorkItems:
        if not self.program.has_gather:
            return WorkItems(edge_items=shard.num_in_edges if count_full else 0)
        plan = self.plans.gather_plan(shard)
        n_edges = shard.num_in_edges if count_full else plan.n_edges
        if plan.n_edges == 0:
            return WorkItems(edge_items=n_edges)
        # np.take beats values[indices] advanced indexing on the hot
        # O(E) gathers (same result, same dtype).
        states = None if self.edge_state is None else np.take(self.edge_state, plan.eids)
        contrib = self.program.gather_map(
            self.ctx,
            plan.indices,
            plan.row_ids,
            np.take(self.vertex_values, plan.indices),
            plan.weights,
            states,
        )
        self._pending[shard.index] = _PendingGather(plan.starts, plan.verts, contrib)
        return WorkItems(edge_items=n_edges)

    def _gather_reduce(self, shard: Shard, count_full: bool) -> WorkItems:
        n_vert = shard.num_interval_vertices if count_full else 0
        pending = self._pending.pop(shard.index, None)
        if pending is None:
            return WorkItems(vertex_items=n_vert)
        reduced = segment_reduce(
            self.program.gather_reduce, pending.contributions, pending.starts
        )
        self.gather_temp[pending.verts] = reduced.astype(
            self.program.gather_dtype, copy=False
        )
        self.gather_has[pending.verts] = True
        if not count_full:
            n_vert = len(pending.verts)
        return WorkItems(vertex_items=n_vert)

    def _scatter(self, shard: Shard, count_full: bool) -> WorkItems:
        if not self.program.has_scatter:
            return WorkItems(edge_items=shard.num_out_edges if count_full else 0)
        plan = self.plans.out_plan(shard, full=True)
        n_edges = shard.num_out_edges if count_full else plan.n_edges
        if plan.n_edges == 0:
            return WorkItems(edge_items=n_edges)
        states = None if self.edge_state is None else np.take(self.edge_state, plan.eids)
        new_states = self.program.scatter(
            self.ctx, plan.row_ids, np.take(self.vertex_values, plan.row_ids), plan.weights, states
        )
        if self.edge_state is not None:
            self._write_edge_state(plan.eids, new_states)
        return WorkItems(edge_items=n_edges)

    def _frontier_activate(self, shard: Shard, count_full: bool) -> WorkItems:
        plan = self.plans.out_plan(shard, full=self.program.has_scatter)
        n_edges = shard.num_out_edges if count_full else plan.n_edges
        if plan.n_edges:
            if plan.targets is not None:
                # Dense plan: OR in the deduplicated target mask; the
                # resulting frontier is identical (idempotent writes)
                # and the recorded count stays per-out-edge.
                self.frontier.activate_next_mask(plan.targets, count=plan.n_edges)
            else:
                self.frontier.activate_next(plan.indices)
        return WorkItems(edge_items=n_edges)

    # ------------------------------------------------------------------
    # Vertex-centric phase
    # ------------------------------------------------------------------
    def _apply(self, shard: Shard, count_full: bool) -> WorkItems:
        rows, dense = self.plans.active_rows(shard)
        n_vert = shard.num_interval_vertices if count_full else len(rows)
        if len(rows) == 0:
            return WorkItems(vertex_items=n_vert)
        if dense:
            # Whole interval active: contiguous slice copies of the
            # vertex-indexed buffers instead of O(V) fancy gathers. The
            # copies keep apply's inputs private, as the slow path does.
            lo, hi = shard.start, shard.stop
            old_vals = self.vertex_values[lo:hi].copy()
            gathered = self.gather_temp[lo:hi].copy()
            has = self.gather_has[lo:hi].copy()
        else:
            old_vals = self.vertex_values[rows]
            gathered = self.gather_temp[rows]
            has = self.gather_has[rows]
        new_vals, changed = self.program.apply(
            self.ctx, rows, old_vals, gathered, has, self.iteration
        )
        changed = np.asarray(changed, dtype=bool)
        if changed.shape != rows.shape:
            raise ValueError(
                f"{type(self.program).__name__}.apply returned a changed mask "
                f"of shape {changed.shape}; expected {rows.shape}"
            )
        out = np.asarray(new_vals).astype(self.program.vertex_dtype, copy=False)
        self._write_vertex_values(shard, rows, dense, out)
        self.frontier.mark_changed(rows[changed])
        return WorkItems(vertex_items=n_vert)

    # ------------------------------------------------------------------
    # Mutable-state write points. The process-pool worker engine
    # overrides these two hooks to *capture* writes as deltas instead of
    # applying them -- the main process replays the captured deltas in
    # shard order, so parallel workers never race on shared state.
    # ------------------------------------------------------------------
    def _write_vertex_values(self, shard: Shard, rows, dense: bool, out) -> None:
        if dense:
            self.vertex_values[shard.start : shard.stop] = out
        else:
            self.vertex_values[rows] = out

    def _write_edge_state(self, eids, new_states) -> None:
        self.edge_state[eids] = new_states
