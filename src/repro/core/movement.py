"""The Data Movement Engine (Sections 4.3 and 5.1).

Owns the simulated device's streams and turns each phase of each
iteration into asynchronous transfer + kernel schedules:

* **Static Stream Creator** -- K long-lived streams process shards
  round-robin, overlapping one shard's H2D with another's kernel
  (compute-transfer) and concurrent sub-saturating kernels
  (compute-compute). K comes from the paper's Equations (1)/(2):
  ``K * (V/P) + K * B <= M`` with ``B = alpha*|E| + beta*|V|`` the
  per-shard streaming-buffer footprint.
* **Spray Stream Creator** -- a shard is many sub-arrays, each needing
  its own deep copy; spraying them over dynamically created streams
  overlaps the per-``cudaMemcpyAsync`` driver setup with in-flight DMA
  and keeps the hardware queues busy (Figure 11(b)).
* **Double buffering** falls out of K >= 2 staged shard slots.
* Buffer characterization (Section 3.2): resident read-only buffers are
  uploaded once and never copied back; mutable streamed buffers are the
  only D2H traffic.

In the *unoptimized* configuration everything collapses to one stream
with synchronous full-shard copies -- the Figure 15 baseline.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.compute import WorkItems
from repro.core.fusion import PhaseGroup
from repro.core.partition import Shard, ShardedGraph
from repro.obs.span import NULL_OBSERVER
from repro.sim.device import GPUDevice
from repro.sim.resources import FluidResource
from repro.sim.stream import Kernel, Memcpy, ResourceOp, StreamEvent


@dataclass
class MovementConfig:
    """Optimization switches (each is one Section-5 technique)."""

    async_streams: bool = True  # K > 1 streams, asynchronous execution
    spray: bool = True          # per-sub-array deep copies on spray streams
    max_concurrent_shards: int = 32  # the paper's K <= 32 bound on Kepler


@dataclass
class MovementStats:
    """Counters the benchmarks report (Figure 15's memcpy accounting

    comes from the device trace; these are structural counts)."""

    h2d_count: int = 0
    d2h_count: int = 0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    kernel_launches: int = 0
    kernel_items: int = 0
    shards_processed: int = 0
    shards_skipped: int = 0
    phase_barriers: int = 0
    per_group_bytes: dict = field(default_factory=dict)


def optimal_concurrent_shards(
    device_memory: int,
    resident_bytes: int,
    interval_bytes: int,
    shard_bytes: int,
    num_partitions: int,
    hardware_limit: int = 32,
) -> int:
    """Equations (1)/(2): the number of concurrently staged shards.

    ``K * (V/P) + K * B <= M_available`` where ``B`` is the streaming
    buffer size of the largest shard and ``V/P`` its interval's share of
    vertex-indexed staging. Clamped to [1, min(P, hardware_limit)].
    """
    avail = device_memory - resident_bytes
    per_slot = interval_bytes + shard_bytes
    if per_slot <= 0:
        return min(num_partitions, hardware_limit) or 1
    k = avail // per_slot
    return int(max(1, min(k, num_partitions, hardware_limit)))


class HostPrefetcher:
    """Asynchronous disk-to-RAM shard staging for out-of-core runs.

    The host-side mirror of this module's device streaming: shards live
    in an on-disk :class:`~repro.core.shardstore.ShardStore` and fault
    into RAM through an LRU cache whose capacity comes from the same
    Eq. (1)/(2) resident-set formula, applied to a *host* memory budget
    instead of device memory. A small thread pool keeps the next shards
    of the runtime's schedule warm (pages touched, CSR views built)
    while the current shard computes -- double buffering against disk.

    Frontier awareness falls out of the integration point: the runtime
    calls :meth:`schedule` with exactly the shards the FrontierManager
    selected for the phase, so skipped shards are neither prefetched nor
    faulted in -- the paper's shard-skip optimization applied to I/O.

    Everything here is wall-clock only and invisible to the simulated
    timeline (counters + the ``lane`` intervals are observability).
    Thread safety: all mutable state is guarded by one lock; loads run
    outside it. ``on_evict`` (the runtime hooks the PlanCache's
    ``drop_shard``) is called under the lock and must not call back in.
    """

    def __init__(
        self,
        store,
        capacity: int,
        workers: int = 2,
        obs=None,
        unit_weights: bool = False,
        heartbeats=None,
    ):
        self.store = store
        self.capacity = max(1, int(capacity))
        self.workers = max(0, int(workers))
        self.obs = obs if obs is not None else NULL_OBSERVER
        self.unit_weights = unit_weights
        #: optional health-watchdog hookup (repro.obs.health): the
        #: prefetcher beats on every completed load and is marked busy
        #: only while loads are outstanding, so an idle cache between
        #: phases never reads as a stall.
        self.heartbeats = heartbeats
        if heartbeats is not None:
            heartbeats.register("prefetcher", kind="prefetcher")
        #: eviction hook: called with the shard index being dropped
        self.on_evict = None
        #: runs served (>1 when carried across runs via ``keep_warm``)
        self.runs = 1
        self.hits = 0
        self.waits = 0
        self.faults = 0
        self.evictions = 0
        self.prefetched = 0
        self.bytes_loaded = 0
        self.wait_seconds = 0.0
        #: wall-clock activity intervals: (kind, shard, t0, t1) seconds
        #: relative to construction; feeds the Chrome-trace host lane
        self.lane: list[tuple] = []
        self._cache: "OrderedDict[int, object]" = OrderedDict()
        self._futures: dict[int, object] = {}
        self._order: list[int] = []
        self._pos: dict[int, int] = {}
        self._cursor = 0
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._pool = None
        if self.workers > 0:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="shard-prefetch"
            )

    # -- scheduling ----------------------------------------------------
    def schedule(self, shard_ids) -> None:
        """Set the phase's shard order and start warming ahead."""
        with self._lock:
            self._order = list(shard_ids)
            self._pos = {idx: i for i, idx in enumerate(self._order)}
            self._cursor = 0
            self._top_up()

    def _top_up(self) -> None:
        """(lock held) Submit loads so cache + in-flight covers the next
        ``capacity - 1`` scheduled shards (one slot stays for the shard
        currently computing)."""
        if self._pool is None or self.capacity < 2:
            return
        ahead, j = 0, self._cursor
        while j < len(self._order) and ahead < self.capacity - 1:
            idx = self._order[j]
            if idx not in self._cache and idx not in self._futures:
                self._futures[idx] = self._pool.submit(self._load_async, idx)
            ahead += 1
            j += 1
        if self.heartbeats is not None:
            self.heartbeats.busy("prefetcher", bool(self._futures))

    def _load_async(self, index: int):
        t0 = time.perf_counter()
        arrays = self.store.load_arrays(index, unit_weights=self.unit_weights)
        self._warm(arrays)
        t1 = time.perf_counter()
        with self._lock:
            self._futures.pop(index, None)
            self._insert(index, arrays)
            self.prefetched += 1
            self.bytes_loaded += arrays.nbytes
            self.lane.append(("prefetch", index, t0 - self._t0, t1 - self._t0))
            outstanding = bool(self._futures)
        if self.heartbeats is not None:
            self.heartbeats.beat("prefetcher")
            self.heartbeats.busy("prefetcher", outstanding)
        self.obs.add("prefetch.prefetched")
        self.obs.add("prefetch.bytes", arrays.nbytes)
        return arrays

    @staticmethod
    def _warm(arrays) -> None:
        """Fault the mapped pages in (one touch per page)."""
        for a in (
            arrays.csc.indptr, arrays.csc.indices, arrays.csc.edge_ids,
            arrays.csr.indptr, arrays.csr.indices, arrays.csr.edge_ids,
            arrays.csc_weights, arrays.csr_weights,
        ):
            if a is not None and len(a):
                a[:: max(1, 4096 // a.itemsize)].max()

    # -- acquisition ---------------------------------------------------
    def get(self, index: int):
        """Acquire one shard's arrays for compute (counts hit/wait/fault).

        Called once per (shard, phase) by the runtime's compute wrapper,
        possibly from worker threads under parallel shard compute.
        """
        t0 = time.perf_counter()
        with self._lock:
            self._advance(index)
            arrays = self._cache.get(index)
            if arrays is not None:
                self._cache.move_to_end(index)
                self.hits += 1
                self._top_up()
                self.obs.add("prefetch.hits")
                return arrays
            fut = self._futures.get(index)
        if fut is not None:
            arrays = fut.result()  # _load_async inserts into the cache
            t1 = time.perf_counter()
            with self._lock:
                self.waits += 1
                self.wait_seconds += t1 - t0
                self.lane.append(("wait", index, t0 - self._t0, t1 - self._t0))
                self._top_up()
            self.obs.add("prefetch.waits")
            self.obs.observe("prefetch.wait_seconds", t1 - t0)
            return arrays
        arrays = self.store.load_arrays(index, unit_weights=self.unit_weights)
        t1 = time.perf_counter()
        with self._lock:
            self.faults += 1
            self.bytes_loaded += arrays.nbytes
            self.lane.append(("fault", index, t0 - self._t0, t1 - self._t0))
            self._insert(index, arrays)
            self._top_up()
        self.obs.add("prefetch.faults")
        self.obs.add("prefetch.bytes", arrays.nbytes)
        return arrays

    def arrays(self, index: int):
        """Uncounted access for lazy-shard properties: serve from cache,
        fall back to a counted :meth:`get` if the shard was evicted
        between acquisition and use."""
        with self._lock:
            got = self._cache.get(index)
            if got is not None:
                return got
        return self.get(index)

    def _advance(self, index: int) -> None:
        p = self._pos.get(index)
        if p is not None and p + 1 > self._cursor:
            self._cursor = p + 1

    def _insert(self, index: int, arrays) -> None:
        if index in self._cache:
            self._cache.move_to_end(index)
            return
        self._cache[index] = arrays
        while len(self._cache) > self.capacity:
            old, _dropped = self._cache.popitem(last=False)
            self.evictions += 1
            self.obs.add("prefetch.evictions")
            if self.on_evict is not None:
                self.on_evict(old)

    # -- lifecycle / reporting -----------------------------------------
    def rewarm(self, obs=None, heartbeats=None) -> None:
        """Attach a carried (``keep_warm``) prefetcher to a new run.

        The LRU cache, warming pool and counters all survive -- resident
        shards from the previous run serve the new run's first touches as
        hits -- but the per-run integrations are re-aimed: the observer,
        the health-watchdog registry (the old run's telemetry is gone)
        and the phase schedule, which the runtime re-derives from the new
        run's frontier before any shard is acquired.
        """
        if obs is not None:
            self.obs = obs
        self.heartbeats = heartbeats
        if heartbeats is not None:
            heartbeats.register("prefetcher", kind="prefetcher")
        with self._lock:
            self._order = []
            self._pos = {}
            self._cursor = 0
            self.runs += 1

    def thread_idents(self) -> set:
        """Idents of the live warming threads (leak-check baseline when
        the runtime keeps this prefetcher across runs)."""
        if self._pool is None:
            return set()
        return {
            t.ident for t in getattr(self._pool, "_threads", ()) if t.is_alive()
        }

    def __enter__(self) -> "HostPrefetcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Context-manager form of shutdown(): guarantees the warming
        # threads die even when an iteration raises mid-run (the
        # runtime's try/finally uses shutdown() directly; this is for
        # ad-hoc callers).
        self.shutdown()
        return False

    def shutdown(self) -> None:
        if self._pool is not None:
            for fut in list(self._futures.values()):
                fut.cancel()
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._lock:
            self._futures.clear()
            self._cache.clear()
        if self.heartbeats is not None:
            # Clean teardown: an unregistered component can never be
            # flagged by a post-shutdown watchdog pass.
            self.heartbeats.unregister("prefetcher")

    def snapshot(self) -> dict:
        """Counters + the host activity lane (the result's ``prefetch``)."""
        with self._lock:
            total = self.hits + self.waits + self.faults
            return {
                "capacity": self.capacity,
                "workers": self.workers,
                "runs": self.runs,
                "hits": self.hits,
                "waits": self.waits,
                "faults": self.faults,
                "evictions": self.evictions,
                "prefetched": self.prefetched,
                "bytes_loaded": self.bytes_loaded,
                "wait_seconds": self.wait_seconds,
                "hit_rate": self.hits / total if total else 0.0,
                "lane": list(self.lane),
            }


class DataMovementEngine:
    """Schedules shard movement and kernels on the simulated device."""

    def __init__(
        self,
        device: GPUDevice,
        sharded: ShardedGraph,
        config: MovementConfig,
        with_weights: bool,
        with_edge_state: bool,
        obs=None,
    ):
        self.device = device
        self.sharded = sharded
        self.config = config
        self.with_weights = with_weights
        self.with_edge_state = with_edge_state
        self.obs = obs if obs is not None else NULL_OBSERVER
        #: SSD backing: (shared FluidResource, spilled fraction of every
        #: host read) or None when the graph fits host DRAM.
        self.ssd: tuple[FluidResource, float] | None = None
        self.stats = MovementStats()
        self._resident_named: list[str] = []
        self._cached = False  # all shards resident (in-memory mode)
        self._lru: "OrderedDict[int, int] | None" = None  # shard -> bytes
        self._lru_touch: dict[int, int] = {}  # shard -> last iteration
        self.current_iteration = 0

        max_shard = sharded.max_shard_bytes(with_weights, with_edge_state)
        max_interval = max(
            (s.num_interval_vertices for s in sharded.shards), default=0
        )
        self._max_shard_bytes = max_shard
        self._interval_bytes = max_interval * 4  # staged vertex-update slice

        if config.async_streams:
            self.k = optimal_concurrent_shards(
                device.memory.capacity,
                0,  # residents are allocated before stage_slots reserves
                self._interval_bytes,
                max_shard,
                sharded.num_partitions,
                config.max_concurrent_shards,
            )
        else:
            self.k = 1
        self.streams = [device.create_stream(f"shard{i}") for i in range(self.k)]
        # Spray streams are created dynamically per main stream on use.
        self._spray_pools: list[list] = [[] for _ in range(self.k)]

    @property
    def max_shard_bytes(self) -> int:
        """B in Eq. (2): streaming-buffer footprint of the largest shard."""
        return self._max_shard_bytes

    @property
    def interval_bytes(self) -> int:
        """V/P staging share per slot in Eq. (1)."""
        return self._interval_bytes

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def upload_resident(self, buffers: dict[str, int]) -> None:
        """Allocate + one-time H2D of the static buffers (vertex values,

        gather temp, frontier flags...). Static buffers stay on device
        for the lifetime of the execution (Section 3.2).
        """
        stream = self.streams[0]
        for name, nbytes in buffers.items():
            self.device.memory.alloc(f"resident:{name}", nbytes)
            self._resident_named.append(f"resident:{name}")
            stream.memcpy_h2d(nbytes, label=f"resident:{name}")
            self.stats.h2d_count += 1
            self.stats.h2d_bytes += nbytes
            self.obs.add("movement.h2d.bytes", nbytes)
            self.obs.add("movement.h2d.copies")
        self.device.synchronize()

    def reserve_stage_slots(self) -> int:
        """Reserve K staging slots of max-shard size; shrinks K when the

        device is too full (re-deriving Eq. (1) against what is left
        after residents). Returns the final K.
        """
        while self.k > 1:
            need = self.k * (self._max_shard_bytes + self._interval_bytes)
            if need <= self.device.memory.free_bytes:
                break
            self.k -= 1
        for i in range(self.k):
            self.device.memory.alloc(
                f"stage:{i}", self._max_shard_bytes + self._interval_bytes
            )
        self.streams = self.streams[: self.k]
        self._spray_pools = self._spray_pools[: self.k]
        return self.k

    def cache_all_shards(self) -> bool:
        """In-memory mode: upload every shard once; later phases launch

        kernels with no per-iteration PCIe traffic. Returns False (and
        uploads nothing) when the shards do not all fit.
        """
        total = sum(
            s.total_bytes(self.with_weights, self.with_edge_state)
            for s in self.sharded.shards
        )
        if total > self.device.memory.free_bytes:
            return False
        stream_i = 0
        for shard in self.sharded.shards:
            nbytes = shard.total_bytes(self.with_weights, self.with_edge_state)
            self.device.memory.alloc(f"shardcache:{shard.index}", nbytes)
            self._issue_copies(
                self.streams[stream_i % self.k],
                stream_i % self.k,
                shard.sub_array_bytes(self.with_weights, self.with_edge_state),
                "h2d",
                f"cache:{shard.index}",
            )
            stream_i += 1
        self.device.synchronize()
        self._cached = True
        return True

    @property
    def cached(self) -> bool:
        return self._cached

    def enable_lru_cache(self) -> None:
        """Partial shard caching (extension beyond the paper): whatever

        device memory is left after residents and staging slots becomes
        an LRU cache of whole shards. Useful for graphs that *almost*
        fit -- the paper's all-or-nothing regimes leave that memory idle.
        """
        self._lru = OrderedDict()

    def _lru_acquire(self, shard: Shard, stream, stream_i: int) -> bool:
        """Make the shard device-resident through the LRU cache.

        Hit: nothing moves. Miss with room (possibly after evicting cold
        shards): the *whole* shard uploads once on the shard's stream --
        later phases and iterations then skip all transfers. Miss with
        no room even after eviction: returns False and the caller
        streams this phase's buffers normally.
        """
        if self._lru is None:
            return False
        if shard.index in self._lru:
            self._lru.move_to_end(shard.index)
            self._lru_touch[shard.index] = self.current_iteration
            self.stats.cache_hits += 1
            self.obs.add("movement.cache.hits")
            return True
        self.stats.cache_misses += 1
        self.obs.add("movement.cache.misses")
        nbytes = shard.total_bytes(self.with_weights, self.with_edge_state)
        # Evict only *cold* shards (untouched for two iterations, i.e.
        # the frontier genuinely moved away). Evicting recently used
        # entries to admit new ones would thrash on cyclic access --
        # full-shard uploads every phase instead of the smaller
        # per-phase buffers -- so a hot working set larger than the
        # cache keeps its cached prefix and streams the rest.
        while self._lru and self.device.memory.free_bytes < nbytes:
            oldest = next(iter(self._lru))
            if self._lru_touch.get(oldest, -1) >= self.current_iteration - 1:
                return False
            self._lru.popitem(last=False)
            self._lru_touch.pop(oldest, None)
            self.device.memory.free(f"lru:{oldest}")
            self.stats.cache_evictions += 1
            self.obs.add("movement.cache.evictions")
        if self.device.memory.free_bytes < nbytes:
            return False
        self.device.memory.alloc(f"lru:{shard.index}", nbytes)
        self._lru[shard.index] = nbytes
        self._lru_touch[shard.index] = self.current_iteration
        self._issue_copies(
            stream,
            stream_i,
            shard.sub_array_bytes(self.with_weights, self.with_edge_state),
            "h2d",
            f"lrufill:{shard.index}",
        )
        return True

    # ------------------------------------------------------------------
    # Phase execution
    # ------------------------------------------------------------------
    def run_phase(
        self,
        group: PhaseGroup,
        shards: list[Shard],
        skipped: int,
        compute,  # Callable[[Shard], WorkItems]
        barrier: bool = True,
        executor=None,
    ) -> None:
        """Stream the selected shards through the phase, then barrier.

        ``compute`` runs the actual NumPy work eagerly (shard results
        within one phase are independent, so host-side order does not
        matter); the simulator accounts for when the transfers and the
        kernel would have executed.

        With ``executor`` (a ThreadPoolExecutor) the NumPy work of all
        shards runs concurrently -- the heavy kernels release the GIL --
        but results are consumed in the original shard order, so the
        simulated copies/kernels are issued in exactly the sequential
        schedule and the device timeline stays bit-identical. The main
        thread steals the first shard instead of idling on the pool.
        """
        self.stats.shards_skipped += skipped
        if skipped:
            self.obs.add("movement.shards.skipped", skipped)
        results = None
        if executor is not None and len(shards) > 1:
            futures = [executor.submit(compute, shard) for shard in shards[1:]]
            results = [compute(shards[0])] + [f.result() for f in futures]
        for i, shard in enumerate(shards):
            stream_i = i % self.k
            stream = self.streams[stream_i]
            work = results[i] if results is not None else compute(shard)
            with self.obs.span(
                "shard",
                category="shard",
                shard=shard.index,
                group=group.name,
                stream=stream_i,
            ) as shard_span:
                resident = self._cached or self._lru_acquire(shard, stream, stream_i)
                if not resident:
                    h2d = shard.expand_buffers(
                        group.h2d_buffers, self.with_weights, self.with_edge_state
                    )
                    self._issue_copies(stream, stream_i, h2d, "h2d", f"{group.name}:{shard.index}")
                self._issue_kernel(stream, group, shard, work)
                if not resident:
                    d2h = shard.expand_buffers(
                        group.d2h_buffers, self.with_weights, self.with_edge_state
                    )
                    self._issue_copies(stream, stream_i, d2h, "d2h", f"{group.name}:{shard.index}")
                shard_span.set(resident=resident, items=work.total)
                self.stats.shards_processed += 1
                self.obs.add("movement.shards.processed")
                if not self.config.async_streams:
                    self.device.synchronize()  # fully synchronous baseline
        if barrier:
            # BSP barrier between phases. Multi-device callers pass
            # barrier=False, issue every device's work, then synchronize
            # all devices so per-device phases overlap.
            self.device.synchronize()
            self.stats.phase_barriers += 1

    def iteration_sync(self, frontier_bytes: int) -> None:
        """Per-iteration frontier copy-back (tiny, vertex-bitmap sized)."""
        self.streams[0].memcpy_d2h(frontier_bytes, label="frontier")
        self.stats.d2h_count += 1
        self.stats.d2h_bytes += frontier_bytes
        self.obs.add("movement.d2h.bytes", frontier_bytes)
        self.obs.add("movement.d2h.copies")
        self.device.synchronize()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _issue_copies(self, stream, stream_i: int, buffers: dict[str, int], direction: str, label: str) -> None:
        buffers = {k: v for k, v in buffers.items() if v > 0}
        if not buffers:
            return
        nbytes = sum(buffers.values())
        if direction == "h2d":
            self.stats.h2d_count += len(buffers)
            self.stats.h2d_bytes += nbytes
        else:
            self.stats.d2h_count += len(buffers)
            self.stats.d2h_bytes += nbytes
        self.obs.add(f"movement.{direction}.bytes", nbytes)
        self.obs.add(f"movement.{direction}.copies", len(buffers))
        agg = self.stats.per_group_bytes
        agg[label.split(":")[0]] = agg.get(label.split(":")[0], 0) + sum(buffers.values())
        def ssd_fetch(target_stream, name: str, nbytes: int) -> None:
            """The spilled fraction of a host buffer lives on flash;

            fetch it (contending with every other stream's reads) on the
            same stream, so the DMA cannot start before the read lands."""
            if self.ssd is None or direction != "h2d":
                return
            resource, spill = self.ssd
            if spill > 0:
                target_stream.enqueue(
                    ResourceOp(resource, nbytes * spill, label=f"ssd:{label}:{name}")
                )

        if self.config.spray and len(buffers) > 1:
            self.obs.add("movement.spray.batches")
            self.obs.add("movement.spray.copies", len(buffers))
            # Deep copies sprayed over dynamically created streams; the
            # issuing stream joins them via events (Figure 11(b)). D2H
            # sprays additionally gate on the issuing stream (the kernel
            # must finish before results copy back).
            pool = self._spray_pools[stream_i]
            gate = None
            if direction == "d2h":
                gate = StreamEvent(f"{label}:gate")
                stream.record_event(gate)
            joins = []
            for j, (name, nbytes) in enumerate(buffers.items()):
                while j >= len(pool):
                    pool.append(self.device.create_stream(f"spray{stream_i}.{len(pool)}"))
                ev = StreamEvent(f"{label}:{name}")
                if gate is not None:
                    pool[j].wait_event(gate)
                ssd_fetch(pool[j], name, nbytes)
                pool[j].enqueue(Memcpy(nbytes, direction, f"{label}:{name}"))
                pool[j].record_event(ev)
                joins.append(ev)
            for ev in joins:
                stream.wait_event(ev)
        else:
            for name, nbytes in buffers.items():
                ssd_fetch(stream, name, nbytes)
                stream.enqueue(Memcpy(nbytes, direction, f"{label}:{name}"))

    def _issue_kernel(self, stream, group: PhaseGroup, shard: Shard, work: WorkItems) -> None:
        spec = self.device.spec
        seconds = (
            work.edge_items / spec.edge_rate_seq
            + work.vertex_items / spec.vertex_rate
        )
        stream.enqueue(
            Kernel(
                items=work.total,
                kind="edge_seq",
                label=f"{group.name}:{shard.index}",
                work_seconds=seconds,
            )
        )
        self.stats.kernel_launches += 1
        self.stats.kernel_items += work.total
        self.obs.add("movement.kernel.launches")
        self.obs.add("movement.kernel.items", work.total)
