"""The Phase Fusion Engine (Section 5.3).

Builds the per-iteration *phase plan*: which phase groups run, over
which shard selection, moving which streaming buffers. Two optimizations
shape the plan:

* **Dynamic phase elimination** -- a phase the user did not define still
  costs shard movement in the naive pipeline; eliminating it drops both
  the kernel launches and the buffers only it needed (e.g. no
  ``gather_map`` -> in-edge arrays never cross PCIe; out-edges still move
  because FrontierActivate always runs).
* **Dynamic phase fusion** -- adjacent phases with shard-local data flow
  merge into one group, sharing one transfer and one kernel launch:
  ``gatherMap``+``gatherReduce`` always fuse (every in-edge of an
  interval vertex lives in that interval's shard, so the edge update
  array never leaves the device); ``scatter``+``FrontierActivate`` fuse
  (both iterate the out-edges of changed vertices); and when gather and
  scatter are both absent -- the paper's BFS example -- ``apply`` fuses
  with ``FrontierActivate``.

The *unoptimized* plan models the baseline of Figure 15: all five phases
run separately over every shard, each moving the full shard in and the
mutable buffers back out, with no frontier skipping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.api import GASProgram
from repro.obs.span import NULL_OBSERVER

#: Canonical phase order within one iteration (Figure 12).
PHASES = ("gather_map", "gather_reduce", "apply", "scatter", "frontier_activate")


def _record_plan(obs, plan: "list[PhaseGroup]", mode: str) -> None:
    """Fusion-decision telemetry: how many groups the plan collapsed to,
    how many phases were fused away and how many eliminated outright."""
    total_phases = sum(len(g.phases) for g in plan)
    obs.add("fusion.groups", len(plan))
    obs.add("fusion.fused_phases", sum(len(g.phases) - 1 for g in plan))
    obs.add("fusion.eliminated_phases", max(0, len(PHASES) - total_phases))
    obs.event(
        "fusion.plan",
        category="fusion",
        mode=mode,
        groups=[g.name for g in plan],
        phases=[list(g.phases) for g in plan],
    )


@dataclass(frozen=True)
class PhaseGroup:
    """One fused group of phases executed per shard under one transfer."""

    name: str
    phases: tuple[str, ...]
    #: 'active' (frontier vertices), 'changed' (post-apply), or 'all'
    selector: str
    #: streaming buffers moved host->device for each selected shard
    h2d_buffers: tuple[str, ...]
    #: streaming buffers copied back device->host afterwards
    d2h_buffers: tuple[str, ...]
    #: device-only scratch buffers (allocated while the shard is staged,
    #: never crossing PCIe -- e.g. the fused gather's edge update array)
    scratch_buffers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        unknown = set(self.phases) - set(PHASES)
        if unknown:
            raise ValueError(f"unknown phases {sorted(unknown)}")
        if self.selector not in ("active", "changed", "all"):
            raise ValueError(f"unknown selector {self.selector!r}")


def _in_buffers(program: GASProgram) -> tuple[str, ...]:
    bufs = ["in_topology"]
    if program.needs_weights:
        bufs.append("in_weights")
    if program.edge_dtype is not None:
        bufs.append("in_edge_state")
    return tuple(bufs)


def _out_buffers(program: GASProgram, for_scatter: bool) -> tuple[str, ...]:
    bufs = ["out_topology"]
    if for_scatter and program.needs_weights:
        bufs.append("out_weights")
    if for_scatter and program.edge_dtype is not None:
        bufs.append("out_edge_state")
    return tuple(bufs)


def build_async_plan(program: GASProgram, obs=None) -> list[PhaseGroup]:
    """The asynchronous-execution sweep (Section 2.1's alternative to BSP

    "for faster convergence"): one fused group runs every phase shard by
    shard, so a later shard's gather sees the vertex values an earlier
    shard's apply just wrote *within the same sweep*. For monotone
    min/max programs (BFS, SSSP, CC, widest-path) the fixed point is
    unchanged and convergence takes fewer sweeps; PageRank becomes the
    Gauss-Seidel iteration, converging to the same ranks by a different
    trajectory. All shard buffers move under a single transfer per shard
    per sweep.
    """
    phases = tuple(
        p
        for p in PHASES
        if (p not in ("gather_map", "gather_reduce") or program.has_gather)
        and (p != "scatter" or program.has_scatter)
    )
    h2d = tuple(dict.fromkeys(_in_buffers(program) + _out_buffers(program, program.has_scatter))) if program.has_gather else _out_buffers(program, program.has_scatter)
    d2h = ("out_edge_state",) if (program.has_scatter and program.edge_dtype is not None) else ()
    scratch = ("edge_update_array",) if program.has_gather else ()
    plan = [
        PhaseGroup(
            "async_sweep",
            phases,
            selector="active",
            h2d_buffers=h2d,
            d2h_buffers=d2h,
            scratch_buffers=scratch,
        )
    ]
    _record_plan(obs if obs is not None else NULL_OBSERVER, plan, "async")
    return plan


def build_plan(
    program: GASProgram, optimized: bool = True, fuse_gather: bool = False, obs=None
) -> list[PhaseGroup]:
    """The iteration's phase plan for ``program``.

    ``fuse_gather`` merges gatherMap and gatherReduce under one shard
    transfer so the edge update array never crosses PCIe. The paper's GR
    keeps them separate (Figure 12 moves every phase's shards), so this
    is off by default and measured as an extension ablation.
    """
    obs = obs if obs is not None else NULL_OBSERVER
    if not optimized:
        plan = _unoptimized_plan(program)
        _record_plan(obs, plan, "unoptimized")
        return plan

    plan: list[PhaseGroup] = []
    if program.has_gather and fuse_gather:
        plan.append(
            PhaseGroup(
                "gather",
                ("gather_map", "gather_reduce"),
                selector="active",
                h2d_buffers=_in_buffers(program),
                d2h_buffers=(),
                scratch_buffers=("edge_update_array",),
            )
        )
    elif program.has_gather:
        # Paper-faithful: gatherMap writes the per-in-edge update array
        # back to the host; gatherReduce streams it in again.
        plan.append(
            PhaseGroup(
                "gather_map",
                ("gather_map",),
                selector="active",
                h2d_buffers=_in_buffers(program),
                d2h_buffers=("edge_update_array",),
            )
        )
        plan.append(
            PhaseGroup(
                "gather_reduce",
                ("gather_reduce",),
                selector="active",
                h2d_buffers=("edge_update_array",),
                d2h_buffers=(),
            )
        )
    if program.has_gather or program.has_scatter:
        # apply stands alone: it touches only resident vertex arrays.
        plan.append(
            PhaseGroup("apply", ("apply",), selector="active", h2d_buffers=(), d2h_buffers=())
        )
        if program.has_scatter:
            d2h = ("out_edge_state",) if program.edge_dtype is not None else ()
            plan.append(
                PhaseGroup(
                    "scatter_fa",
                    ("scatter", "frontier_activate"),
                    selector="changed",
                    h2d_buffers=_out_buffers(program, for_scatter=True),
                    d2h_buffers=d2h,
                )
            )
        else:
            plan.append(
                PhaseGroup(
                    "frontier_activate",
                    ("frontier_activate",),
                    selector="changed",
                    h2d_buffers=_out_buffers(program, for_scatter=False),
                    d2h_buffers=(),
                )
            )
    else:
        # The BFS case: only apply defined -> apply fuses with
        # FrontierActivate under a single out-edge transfer.
        plan.append(
            PhaseGroup(
                "apply_fa",
                ("apply", "frontier_activate"),
                selector="active",
                h2d_buffers=_out_buffers(program, for_scatter=False),
                d2h_buffers=(),
            )
        )
    _record_plan(obs, plan, "bsp")
    return plan


def _unoptimized_plan(program: GASProgram) -> list[PhaseGroup]:
    """Five separate phases, full shard both ways, every shard."""
    all_in = _in_buffers(program)
    all_out = _out_buffers(program, for_scatter=True)
    full = tuple(dict.fromkeys(all_in + all_out + ("edge_update_array", "vertex_update_array")))
    mutable = ("edge_update_array", "vertex_update_array") + (
        ("in_edge_state", "out_edge_state") if program.edge_dtype is not None else ()
    )
    return [
        PhaseGroup(name, (name,), selector="all", h2d_buffers=full, d2h_buffers=mutable)
        for name in PHASES
    ]


def movement_savings(program: GASProgram) -> dict[str, bool]:
    """Which Section-5.3 savings apply to this program (for reporting)."""
    return {
        "eliminates_gather_buffers": not program.has_gather,
        "eliminates_scatter_values": not program.has_scatter,
        "fuses_gather_map_reduce": program.has_gather,
        "fuses_scatter_frontier": program.has_scatter,
        "fuses_apply_frontier": not program.has_gather and not program.has_scatter,
    }
