"""Multi-GPU GraphReduce (the paper's future work, Section 8 item 1).

Scales the single-device engine to N accelerators on one host: shards
are distributed round-robin across devices, each device owns its shards
for every phase of every iteration (so edge data never migrates), and
the resident vertex arrays are *replicated* -- after each iteration the
devices exchange their changed vertex values and frontier flags through
host memory (an all-gather over PCIe), which is the standard replicated-
vertex design for multi-GPU GAS systems of that era.

Each device has its own PCIe copy engines (as on dual-socket boards with
one switch per device), so shard streaming scales; the replication
all-gather is the part that does not, which is exactly the scaling
behaviour the ablation benchmark shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import GASProgram
from repro.core.compute import ComputeEngine
from repro.core.frontier import FrontierManager
from repro.core.fusion import build_plan
from repro.core.movement import DataMovementEngine, MovementConfig
from repro.core.partition import PartitionEngine
from repro.core.runtime import GraphReduce, GraphReduceOptions, RuntimeContext
from repro.graph.edgelist import EdgeList
from repro.sim.device import GPUDevice
from repro.sim.engine import Simulator
from repro.sim.specs import MachineSpec, default_machine
from repro.sim.trace import TraceRecorder


@dataclass
class MultiGPUResult:
    vertex_values: np.ndarray
    iterations: int
    converged: bool
    sim_time: float
    num_devices: int
    num_partitions: int
    #: summed transfer time across all devices
    memcpy_time: float
    #: per-iteration vertex-replication traffic, bytes
    replication_bytes: int


class MultiGPUGraphReduce:
    """GraphReduce across ``num_devices`` simulated accelerators."""

    def __init__(
        self,
        edges: EdgeList,
        num_devices: int = 2,
        machine: MachineSpec | None = None,
        options: GraphReduceOptions | None = None,
    ):
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices!r}")
        self.edges = edges
        self.num_devices = num_devices
        self.machine = machine or default_machine()
        self.options = options or GraphReduceOptions()

    def run(self, program: GASProgram, max_iterations: int | None = None) -> MultiGPUResult:
        opts = self.options
        program.validate()
        edges = self.edges
        if program.needs_weights and edges.weights is None:
            edges = edges.with_unit_weights()
        ctx = RuntimeContext(edges)
        with_weights = program.needs_weights
        with_state = program.edge_dtype is not None

        resident_bytes = GraphReduce._resident_bytes(program, edges.num_vertices)
        p_per_device = opts.num_partitions or PartitionEngine.choose_num_partitions(
            edges,
            self.machine.device.memory_bytes,
            with_weights,
            with_state,
            resident_bytes,
        )
        # At least one shard per device.
        p = max(p_per_device, self.num_devices)
        sharded = PartitionEngine().partition(edges, p, opts.partition_logic)

        sim = Simulator()
        devices = [
            GPUDevice(sim, self.machine.device, TraceRecorder())
            for _ in range(self.num_devices)
        ]
        movements = [
            DataMovementEngine(
                dev,
                sharded,
                MovementConfig(async_streams=opts.async_streams, spray=opts.spray),
                with_weights,
                with_state,
            )
            for dev in devices
        ]
        resident = GraphReduce._resident_buffers(program, edges.num_vertices)
        for movement in movements:
            movement.upload_resident(resident)  # replicated vertex arrays
            movement.reserve_stage_slots()

        frontier = FrontierManager(
            sharded, np.asarray(program.init_frontier(ctx), dtype=bool)
        )
        compute = ComputeEngine(sharded, program, ctx, frontier)
        plan = build_plan(program, optimized=opts.fusion, fuse_gather=opts.fuse_gather)

        owner = {s.index: s.index % self.num_devices for s in sharded.shards}
        limit = max_iterations if max_iterations is not None else opts.max_iterations
        # Replication payload: changed vertex values + frontier bitmap,
        # exchanged D2H then H2D on the N-1 other devices.
        vdt = np.dtype(program.vertex_dtype).itemsize
        frontier_bytes = edges.num_vertices // 8 + 1
        replication_bytes = 0
        converged = False
        iteration = 0
        while iteration < limit:
            if frontier.size == 0:
                converged = True
                break
            if program.converged(ctx, iteration, frontier.size):
                converged = True
                break
            compute.begin_iteration(iteration)
            for group in plan:
                shards, skipped = GraphReduce._select_shards(group, sharded, frontier, opts)
                per_device: list[list] = [[] for _ in range(self.num_devices)]
                for shard in shards:
                    per_device[owner[shard.index]].append(shard)
                for d, dev_shards in enumerate(per_device):
                    movements[d].run_phase(
                        group,
                        dev_shards,
                        skipped if d == 0 else 0,
                        lambda shard, g=group: compute.run_group(
                            g.phases, shard, count_full=not opts.frontier_skipping
                        ),
                        barrier=False,  # devices proceed concurrently
                    )
                for dev in devices:
                    dev.synchronize()  # BSP barrier across all devices
            # Vertex replication: every device publishes its intervals'
            # changed values; every other device ingests them.
            changed = int(frontier.changed.sum())
            payload = changed * vdt + frontier_bytes
            for d, movement in enumerate(movements):
                movement.streams[0].memcpy_d2h(payload, label="replicate-out")
                for other, m2 in enumerate(movements):
                    if other != d:
                        m2.streams[0].memcpy_h2d(payload, label="replicate-in")
            for dev in devices:
                dev.synchronize()
            replication_bytes += payload * self.num_devices * self.num_devices
            frontier.advance()
            iteration += 1
        else:
            converged = frontier.size == 0

        return MultiGPUResult(
            vertex_values=compute.vertex_values,
            iterations=iteration,
            converged=converged,
            sim_time=sim.now,
            num_devices=self.num_devices,
            num_partitions=sharded.num_partitions,
            memcpy_time=sum(d.trace.memcpy_time() for d in devices),
            replication_bytes=replication_bytes,
        )
