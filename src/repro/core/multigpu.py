"""Multi-device GraphReduce scheduler (the paper's future work, Section 8).

Scales the single-device engine to N simulated accelerators on one
host. Shard ownership comes from the shared partitioned-ownership
abstraction (:mod:`repro.core.ownership`): each device owns a
contiguous block of shards for the whole run, so edge data never
migrates and each device's vertex intervals form one contiguous range.

The resident vertex arrays are logically replicated, but the
iteration-end exchange is *sparse*: each producer device publishes only
the vertices **it owns that changed this iteration** (value + index),
never the full array, and never other devices' changes (the legacy
design all-gathered every changed vertex from every device to every
device, an N^2 blow-up of redundant bytes). Two frontier policies
govern what rides along:

* ``replicated`` -- each producer ships the full frontier bitmap with
  its changed values, keeping complete bitmaps on every device (the
  classic multi-GPU GAS design).
* ``partitioned`` -- a producer ships consumer ``e`` only the changed
  vertices ``e`` actually reads across the ownership boundary
  (``boundary_matrix[(e, d)]``), plus that pair's boundary bits.

Transfer routing follows the node's switch topology
(:class:`repro.sim.specs.LinkSpec` via
:class:`repro.sim.transfer.InterconnectModel`): same-switch pairs use a
single peer-DMA link crossing; cross-switch pairs stage through host
DRAM as a D2H + H2D pair. Both routes are enqueued on the simulated
streams, so the scaling curve reflects the topology.

Semantics are exact: one shared :class:`ComputeEngine` executes every
shard, so vertex values, iteration counts, and convergence are
bit-identical regardless of device count or frontier policy -- only the
performance plane (sim time, transfer bytes) changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.api import GASProgram
from repro.core.compute import ComputeEngine
from repro.core.frontier import FrontierManager
from repro.core.fusion import build_plan
from repro.core.movement import DataMovementEngine, MovementConfig
from repro.core.ownership import (
    OwnershipMap,
    boundary_matrix,
    check_frontier_policy,
    owned_vertex_mask,
)
from repro.core.partition import IDX_BYTES, PartitionEngine
from repro.core.runtime import GraphReduce, GraphReduceOptions, RuntimeContext
from repro.graph.edgelist import EdgeList
from repro.sim.device import GPUDevice
from repro.sim.engine import Simulator
from repro.sim.specs import MachineSpec, default_machine
from repro.sim.trace import TraceRecorder
from repro.sim.transfer import InterconnectModel


@dataclass
class DeviceReport:
    """Per-device accounting for one multi-device run."""

    device: int
    owned_shards: int
    owned_vertices: int
    #: replication bytes this device produced (sent to peers/host)
    bytes_sent: int = 0
    #: replication bytes this device ingested
    bytes_received: int = 0


@dataclass
class MultiGPUResult:
    vertex_values: np.ndarray
    iterations: int
    converged: bool
    sim_time: float
    num_devices: int
    num_partitions: int
    frontier_policy: str
    #: summed transfer time across all devices
    memcpy_time: float
    #: total vertex-replication traffic, bytes (sum over ordered pairs)
    replication_bytes: int
    #: replication bytes that moved over peer DMA (same-switch pairs)
    p2p_bytes: int
    #: replication bytes that staged through host DRAM (cross-switch)
    host_staged_bytes: int
    per_device: list = field(default_factory=list)


class MultiGPUGraphReduce:
    """GraphReduce across ``num_devices`` simulated accelerators."""

    def __init__(
        self,
        edges: EdgeList,
        num_devices: int = 2,
        machine: MachineSpec | None = None,
        options: GraphReduceOptions | None = None,
        frontier_policy: str | None = None,
    ):
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices!r}")
        self.edges = edges
        self.num_devices = num_devices
        self.machine = machine or default_machine()
        self.options = options or GraphReduceOptions()
        self.frontier_policy = check_frontier_policy(
            frontier_policy if frontier_policy is not None
            else self.options.frontier_policy
        )

    def run(self, program: GASProgram, max_iterations: int | None = None) -> MultiGPUResult:
        opts = self.options
        program.validate()
        edges = self.edges
        if program.needs_weights and edges.weights is None:
            edges = edges.with_unit_weights()
        ctx = RuntimeContext(edges)
        with_weights = program.needs_weights
        with_state = program.edge_dtype is not None

        resident_bytes = GraphReduce._resident_bytes(program, edges.num_vertices)
        p_per_device = opts.num_partitions or PartitionEngine.choose_num_partitions(
            edges,
            self.machine.device.memory_bytes,
            with_weights,
            with_state,
            resident_bytes,
        )
        # At least one shard per device.
        p = max(p_per_device, self.num_devices)
        sharded = PartitionEngine().partition(edges, p, opts.partition_logic)

        ownership = OwnershipMap.contiguous(p, self.num_devices)
        ownership.validate()
        owner = ownership.owner_of
        owned_masks = [
            owned_vertex_mask(sharded, ownership, d)
            for d in range(self.num_devices)
        ]
        partitioned = self.frontier_policy == "partitioned"
        pair_vids = boundary_matrix(sharded, ownership) if partitioned else {}

        sim = Simulator()
        devices = [
            GPUDevice(sim, self.machine.device, TraceRecorder())
            for _ in range(self.num_devices)
        ]
        movements = [
            DataMovementEngine(
                dev,
                sharded,
                MovementConfig(async_streams=opts.async_streams, spray=opts.spray),
                with_weights,
                with_state,
            )
            for dev in devices
        ]
        resident = GraphReduce._resident_buffers(program, edges.num_vertices)
        for movement in movements:
            movement.upload_resident(resident)  # replicated vertex arrays
            movement.reserve_stage_slots()

        frontier = FrontierManager(
            sharded, np.asarray(program.init_frontier(ctx), dtype=bool)
        )
        compute = ComputeEngine(sharded, program, ctx, frontier)
        plan = build_plan(program, optimized=opts.fusion, fuse_gather=opts.fuse_gather)
        interconnect = InterconnectModel(self.machine.device, self.machine.link)

        reports = [
            DeviceReport(
                device=d,
                owned_shards=len(ownership.shards_of(d)),
                owned_vertices=int(owned_masks[d].sum()),
            )
            for d in range(self.num_devices)
        ]
        limit = max_iterations if max_iterations is not None else opts.max_iterations
        vdt = np.dtype(program.vertex_dtype).itemsize
        full_bitmap_bytes = edges.num_vertices // 8 + 1
        replication_bytes = 0
        p2p_bytes = 0
        host_staged_bytes = 0
        converged = False
        iteration = 0
        while iteration < limit:
            if frontier.size == 0:
                converged = True
                break
            if program.converged(ctx, iteration, frontier.size):
                converged = True
                break
            compute.begin_iteration(iteration)
            for group in plan:
                shards, skipped = GraphReduce._select_shards(group, sharded, frontier, opts)
                per_device: list[list] = [[] for _ in range(self.num_devices)]
                for shard in shards:
                    per_device[owner[shard.index]].append(shard)
                for d, dev_shards in enumerate(per_device):
                    movements[d].run_phase(
                        group,
                        dev_shards,
                        skipped if d == 0 else 0,
                        lambda shard, g=group: compute.run_group(
                            g.phases, shard, count_full=not opts.frontier_skipping
                        ),
                        barrier=False,  # devices proceed concurrently
                    )
                for dev in devices:
                    dev.synchronize()  # BSP barrier across all devices
            # Sparse replication: each producer device publishes only the
            # vertices it owns that changed this iteration. Routing and
            # payload per ordered (producer, consumer) pair follow the
            # switch topology and the frontier policy.
            changed = frontier.changed
            for d in range(self.num_devices):
                changed_owned = int(np.count_nonzero(changed[owned_masks[d]]))
                for e in range(self.num_devices):
                    if e == d:
                        continue
                    if partitioned:
                        vids = pair_vids.get((e, d))
                        if vids is None:
                            continue  # no edge crosses this pair
                        k = int(np.count_nonzero(changed[vids]))
                        payload = k * (vdt + IDX_BYTES) + (len(vids) + 7) // 8
                    else:
                        payload = (
                            changed_owned * (vdt + IDX_BYTES) + full_bitmap_bytes
                        )
                    if interconnect.peer_capable(d, e):
                        # One link crossing: peer DMA from d straight
                        # into e's memory.
                        movements[d].streams[0].memcpy_d2h(
                            payload, label="replicate-peer"
                        )
                        p2p_bytes += payload
                    else:
                        # Two crossings through host DRAM.
                        movements[d].streams[0].memcpy_d2h(
                            payload, label="replicate-out"
                        )
                        movements[e].streams[0].memcpy_h2d(
                            payload, label="replicate-in"
                        )
                        host_staged_bytes += payload
                    replication_bytes += payload
                    reports[d].bytes_sent += payload
                    reports[e].bytes_received += payload
            for dev in devices:
                dev.synchronize()
            frontier.advance()
            iteration += 1
        else:
            converged = frontier.size == 0

        return MultiGPUResult(
            vertex_values=compute.vertex_values,
            iterations=iteration,
            converged=converged,
            sim_time=sim.now,
            num_devices=self.num_devices,
            num_partitions=sharded.num_partitions,
            frontier_policy=self.frontier_policy,
            memcpy_time=sum(d.trace.memcpy_time() for d in devices),
            replication_bytes=replication_bytes,
            p2p_bytes=p2p_bytes,
            host_staged_bytes=host_staged_bytes,
            per_device=reports,
        )
