"""Benchmark harness regenerating every table and figure of Section 6.

One runner function per experiment lives in :mod:`repro.bench.runners`;
:mod:`repro.bench.reporting` formats the paper-style tables and series
and persists them under ``results/``. The ``benchmarks/`` pytest files
wrap these runners with pytest-benchmark so wall-clock of the harness is
tracked too, but the *reported* numbers are always simulated seconds
from the machine model.

Expensive artifacts (datasets, semantic execution traces, Table-3 cell
times) are cached in-process so Figures 13/14/15/16/17 reuse the Table-3
work within one pytest session.
"""

from repro.bench.reporting import format_series, format_table, save_results

__all__ = ["format_table", "format_series", "save_results"]
