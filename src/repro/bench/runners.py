"""Experiment drivers: one function per paper table/figure.

All heavy intermediates are cached in-process and keyed by
(dataset, algorithm): the semantic execution trace feeds both CPU
baselines, and the optimized/unoptimized GraphReduce runs feed Table 3,
Figures 13-17 without re-execution.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms import BFS, SSSP, ConnectedComponents, PageRank
from repro.baselines import CuSha, GraphChi, HostGASExecutor, MapGraph, XStream
from repro.baselines.executor import ExecutionTrace
from repro.bench import matmul
from repro.bench.paper_values import TABLE2, TABLE3, TABLE4
from repro.core.runtime import GraphReduce, GraphReduceOptions, GraphReduceResult
from repro.graph.datasets import (
    DATASETS,
    IN_MEMORY_TABLE4,
    OUT_OF_MEMORY,
    TABLE2 as TABLE2_GRAPHS,
    load_dataset,
)
from repro.graph.edgelist import EdgeList
from repro.graph.properties import footprint_bytes
from repro.sim.specs import DeviceSpec, SCALE
from repro.sim.transfer import TransferModel

#: Column order of Tables 3 and 4.
ALGORITHMS = ("BFS", "SSSP", "Pagerank", "CC")

#: Census partitions shared by the CPU baselines and the executor cache.
CENSUS_PARTITIONS = 16

_prepared: dict[tuple, EdgeList] = {}
_sources: dict[str, int] = {}
_traces: dict[tuple, ExecutionTrace] = {}
_gr_runs: dict[tuple, GraphReduceResult] = {}


def clear_caches() -> None:
    _prepared.clear()
    _sources.clear()
    _traces.clear()
    _gr_runs.clear()


# ----------------------------------------------------------------------
# Shared preparation
# ----------------------------------------------------------------------
def source_vertex(name: str) -> int:
    """Deterministic BFS/SSSP source: the max-out-degree vertex."""
    if name not in _sources:
        g = load_dataset(name)
        _sources[name] = int(np.argmax(g.out_degrees()))
    return _sources[name]


def make_program(alg: str, name: str):
    src = source_vertex(name) if alg in ("BFS", "SSSP") else 0
    factories: dict[str, Callable] = {
        "BFS": lambda: BFS(source=src),
        "SSSP": lambda: SSSP(source=src),
        "Pagerank": lambda: PageRank(tolerance=1e-3),
        "CC": lambda: ConnectedComponents(),
    }
    return factories[alg]()


def prepared_graph(name: str, alg: str) -> EdgeList:
    """The dataset as stored for this algorithm: SSSP gets weights, CC

    gets undirected storage (Section 6.1)."""
    key = (name, alg)
    if key in _prepared:
        return _prepared[key]
    g = load_dataset(name)
    if alg == "SSSP":
        g = g.with_random_weights(low=1.0, high=10.0, seed=hash(name) % 2**31)
    elif alg == "CC" and not g.undirected:
        g = g.symmetrized()
        g.name = name
    _prepared[key] = g
    return g


def get_trace(name: str, alg: str) -> ExecutionTrace:
    key = (name, alg)
    if key not in _traces:
        g = prepared_graph(name, alg)
        _traces[key] = HostGASExecutor(g, make_program(alg, name), CENSUS_PARTITIONS).run()
    return _traces[key]


def get_gr(name: str, alg: str, optimized: bool = True) -> GraphReduceResult:
    key = (name, alg, optimized)
    if key not in _gr_runs:
        g = prepared_graph(name, alg)
        opts = GraphReduceOptions() if optimized else GraphReduceOptions.unoptimized()
        _gr_runs[key] = GraphReduce(g, options=opts).run(make_program(alg, name))
    return _gr_runs[key]


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def table1_datasets() -> list[dict]:
    device = DeviceSpec()
    rows = []
    for name, info in DATASETS.items():
        g = load_dataset(name)
        fp = footprint_bytes(g)
        rows.append(
            {
                "graph": name,
                "vertices": g.num_vertices,
                "edges": g.num_edges,
                "in_memory_size_mb": fp / 2**20,
                "classified_in_memory": fp <= device.memory_bytes,
                "paper_vertices": info.paper_vertices,
                "paper_edges": info.paper_edges,
                "paper_size": info.paper_size,
                "scale": info.scale,
                "family": info.family,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
def table2_gpu_vs_cpu() -> list[dict]:
    rows = []
    for name in TABLE2_GRAPHS:
        g = prepared_graph(name, "BFS")
        prog = make_program("BFS", name)
        trace = get_trace(name, "BFS")
        xs = XStream().run(g, prog, trace=trace)
        cu = CuSha().run(g, prog, trace=trace)
        paper = TABLE2[name]
        rows.append(
            {
                "graph": name,
                "xstream_ms": xs.sim_time * 1e3,
                "cusha_ms": cu.sim_time * 1e3,
                "speedup": xs.sim_time / cu.sim_time,
                "paper_xstream_ms": paper["X-Stream"],
                "paper_cusha_ms": paper["CuSha"],
                "paper_speedup": paper["X-Stream"] / paper["CuSha"],
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 3 (frontier dynamics, four cases)
# ----------------------------------------------------------------------
FIG3_CASES = [
    ("cage15", "Pagerank"),
    ("nlpkkt160", "Pagerank"),
    ("cage15", "BFS"),
    ("orkut", "CC"),
]


def fig3_frontier() -> dict[str, list[int]]:
    return {
        f"{name}-{alg}": get_gr(name, alg).frontier_history
        for name, alg in FIG3_CASES
    }


# ----------------------------------------------------------------------
# Figure 4 (transfer mechanisms)
# ----------------------------------------------------------------------
def fig4_transfer(n_elements: int = 100_000_000) -> dict:
    model = TransferModel(spec=DeviceSpec())
    table = model.compare(n_elements)
    return {
        pattern: {
            mech: {
                "seconds": t,
                "gbps": n_elements * 8 / t / 1e9,
            }
            for mech, t in row.items()
        }
        for pattern, row in table.items()
    }


# ----------------------------------------------------------------------
# Figure 5 (overlap schemes on out-of-core matmul)
# ----------------------------------------------------------------------
def fig5_overlap(sizes=(512, 1024, 2048, 4096, 8192)) -> dict:
    data = matmul.sweep(list(sizes), stripe_rows=50)
    return {
        "sizes": list(sizes),
        "times": data,
        "speedups": {
            scheme: {
                n: data["unoptimized"][n] / data[scheme][n] for n in sizes
            }
            for scheme in matmul.SCHEMES
        },
    }


# ----------------------------------------------------------------------
# Table 3 + Figures 13/14
# ----------------------------------------------------------------------
def table3_out_of_memory() -> dict[str, dict[str, dict[str, float]]]:
    """graph -> framework -> algorithm -> simulated seconds."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for name in OUT_OF_MEMORY:
        out[name] = {"GraphChi": {}, "X-Stream": {}, "GR": {}}
        for alg in ALGORITHMS:
            g = prepared_graph(name, alg)
            trace = get_trace(name, alg)
            prog = make_program(alg, name)
            out[name]["GraphChi"][alg] = GraphChi().run(g, prog, trace=trace).sim_time
            out[name]["X-Stream"][alg] = XStream().run(g, prog, trace=trace).sim_time
            out[name]["GR"][alg] = get_gr(name, alg).sim_time
    return out


def fig13_14_speedups(table3: dict | None = None) -> dict:
    """GR speedups over GraphChi (Fig 13) and X-Stream (Fig 14)."""
    data = table3 or table3_out_of_memory()
    speedups = {"GraphChi": {}, "X-Stream": {}}
    for baseline in speedups:
        for name, cols in data.items():
            speedups[baseline][name] = {
                alg: cols[baseline][alg] / cols["GR"][alg] for alg in ALGORITHMS
            }
    flat = {
        b: [v for per_g in speedups[b].values() for v in per_g.values()]
        for b in speedups
    }
    return {
        "speedups": speedups,
        "average": {b: float(np.mean(flat[b])) for b in flat},
        "max": {b: float(np.max(flat[b])) for b in flat},
        "gr_losses": {
            b: [
                (name, alg)
                for name, per_g in speedups[b].items()
                for alg, v in per_g.items()
                if v < 1.0
            ]
            for b in speedups
        },
    }


# ----------------------------------------------------------------------
# Table 4
# ----------------------------------------------------------------------
def table4_in_memory() -> dict[str, dict[str, dict[str, float]]]:
    """graph -> framework -> algorithm -> simulated milliseconds."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for name in IN_MEMORY_TABLE4:
        out[name] = {"MapGraph": {}, "CuSha": {}, "GR": {}}
        for alg in ALGORITHMS:
            g = prepared_graph(name, alg)
            trace = get_trace(name, alg)
            prog = make_program(alg, name)
            out[name]["MapGraph"][alg] = MapGraph().run(g, prog, trace=trace).sim_time * 1e3
            out[name]["CuSha"][alg] = CuSha().run(g, prog, trace=trace).sim_time * 1e3
            out[name]["GR"][alg] = get_gr(name, alg).sim_time * 1e3
    return out


# ----------------------------------------------------------------------
# Figure 15 (memcpy optimization)
# ----------------------------------------------------------------------
def fig15_memcpy() -> dict:
    """Per (graph, algorithm): unoptimized vs optimized memcpy seconds."""
    rows = {}
    for name in OUT_OF_MEMORY:
        rows[name] = {}
        for alg in ALGORITHMS:
            opt = get_gr(name, alg, optimized=True)
            unopt = get_gr(name, alg, optimized=False)
            rows[name][alg] = {
                "unoptimized_memcpy_s": unopt.memcpy_time,
                "optimized_memcpy_s": opt.memcpy_time,
                "improvement_pct": 100.0 * (1.0 - opt.memcpy_time / unopt.memcpy_time),
                "optimized_total_s": opt.sim_time,
                "unoptimized_total_s": unopt.sim_time,
                "memcpy_fraction": unopt.memcpy_fraction,
            }
    improvements = [c["improvement_pct"] for per_g in rows.values() for c in per_g.values()]
    return {
        "cells": rows,
        "average_improvement_pct": float(np.mean(improvements)),
        "max_improvement_pct": float(np.max(improvements)),
    }


# ----------------------------------------------------------------------
# Figures 16 / 17 (frontier dynamics on the large graphs)
# ----------------------------------------------------------------------
FIG16_ALGS = ("BFS", "Pagerank", "CC")


def fig16_frontier_large() -> dict[str, dict[str, list[int]]]:
    return {
        name: {alg: get_gr(name, alg).frontier_history for alg in FIG16_ALGS}
        for name in OUT_OF_MEMORY
    }


def fig17_low_activity(threshold: float = 0.5) -> dict[str, dict[str, float]]:
    """% iterations below `threshold` of the max lifetime frontier."""
    out: dict[str, dict[str, float]] = {}
    for name in OUT_OF_MEMORY:
        out[name] = {}
        for alg in FIG16_ALGS:
            history = get_gr(name, alg).frontier_history
            peak = max(history) if history else 0
            below = sum(1 for s in history if s < threshold * peak) if peak else len(history)
            out[name][alg] = 100.0 * below / max(len(history), 1)
    return out


# ----------------------------------------------------------------------
# Ablations (beyond the paper's figures)
# ----------------------------------------------------------------------
def ablation_optimizations(name: str = "kron_g500-logn21", algs=("BFS", "Pagerank")) -> dict:
    """One-at-a-time optimization knockouts plus the fuse-gather extension."""
    variants = {
        "optimized": GraphReduceOptions(),
        "no_frontier_skipping": GraphReduceOptions(frontier_skipping=False),
        "no_fusion_elimination": GraphReduceOptions(fusion=False),
        "no_async_spray": GraphReduceOptions(async_streams=False, spray=False),
        "no_spray_only": GraphReduceOptions(spray=False),
        "unoptimized": GraphReduceOptions.unoptimized(),
        "fuse_gather_extension": GraphReduceOptions(fuse_gather=True),
        "greedy_cache_extension": GraphReduceOptions(cache_policy="greedy"),
        "lru_cache_extension": GraphReduceOptions(cache_policy="lru"),
        "async_mode_extension": GraphReduceOptions(execution_mode="async"),
    }
    out: dict[str, dict[str, dict[str, float]]] = {}
    for alg in algs:
        g = prepared_graph(name, alg)
        out[alg] = {}
        for label, opts in variants.items():
            r = GraphReduce(g, options=opts).run(make_program(alg, name))
            out[alg][label] = {
                "total_s": r.sim_time,
                "memcpy_s": r.memcpy_time,
                "h2d_bytes": float(r.stats.h2d_bytes),
                "kernel_launches": float(r.stats.kernel_launches),
            }
    return out
