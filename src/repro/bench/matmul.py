"""Out-of-core striped matrix multiplication (Figure 5).

The Section-3.3 motivating experiment: multiply two N x N matrices when
A does not fit on the device. A streams through in stripes of
``stripe_rows`` contiguous rows (the paper uses 50); B stays resident;
each stripe is H2D-copied, multiplied, and its C stripe copied back.

Three schedules, all on the simulated device:

* ``unoptimized`` -- one stream, fully synchronous: copy, compute, copy
  back, repeat.
* ``compute_transfer`` -- two streams with double buffering: stripe
  k+1's transfer overlaps stripe k's kernel.
* ``compute_compute`` -- additionally several concurrent kernels soak up
  occupancy left by stripes too small to fill the machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.device import GPUDevice
from repro.sim.engine import Simulator
from repro.sim.specs import DeviceSpec
from repro.sim.stream import Kernel, Memcpy

#: Sustained SGEMM throughput of the modeled K20c, FLOP/s.
GEMM_FLOPS = 1.0e12

SCHEMES = ("unoptimized", "compute_transfer", "compute_compute")


@dataclass(frozen=True)
class MatmulCase:
    n: int
    stripe_rows: int = 50
    elem_bytes: int = 4  # float, as in the paper's experiments


def stripe_ops(case: MatmulCase):
    """Per-stripe (h2d_bytes, kernel_seconds, d2h_bytes)."""
    rows = case.stripe_rows
    h2d = rows * case.n * case.elem_bytes
    flops = 2.0 * rows * case.n * case.n
    return h2d, flops / GEMM_FLOPS, h2d


def run_scheme(case: MatmulCase, scheme: str, spec: DeviceSpec | None = None) -> float:
    """Simulated seconds to multiply under the given schedule."""
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
    sim = Simulator()
    device = GPUDevice(sim, spec or DeviceSpec())
    n_stripes = -(-case.n // case.stripe_rows)
    h2d, kernel_s, d2h = stripe_ops(case)
    if scheme == "unoptimized":
        streams = [device.create_stream("s0")]
    elif scheme == "compute_transfer":
        streams = [device.create_stream(f"s{i}") for i in range(2)]
    else:
        streams = [device.create_stream(f"s{i}") for i in range(4)]
    # One thread per output element of the stripe: a stripe narrower
    # than the machine width leaves SMs idle, which only the
    # compute_compute schedule's concurrent kernels can use.
    threads = case.stripe_rows * case.n
    machine_width = device.spec.sm_count * 2048
    occupancy = min(1.0, threads / machine_width)
    for i in range(n_stripes):
        stream = streams[i % len(streams)]
        stream.enqueue(Memcpy(h2d, "h2d", f"A[{i}]"))
        stream.enqueue(
            Kernel(threads, "vertex", f"gemm[{i}]", work_seconds=kernel_s, occupancy=occupancy)
        )
        stream.enqueue(Memcpy(d2h, "d2h", f"C[{i}]"))
        if scheme == "unoptimized":
            device.synchronize()
    device.synchronize()
    return sim.now


def sweep(sizes: list[int], stripe_rows: int = 50) -> dict[str, dict[int, float]]:
    """Figure-5 data: scheme -> size -> simulated seconds."""
    out: dict[str, dict[int, float]] = {s: {} for s in SCHEMES}
    for n in sizes:
        case = MatmulCase(n=n, stripe_rows=stripe_rows)
        for scheme in SCHEMES:
            out[scheme][n] = run_scheme(case, scheme)
    return out
