"""Calibration ledger: every cost-model constant, with its derivation.

Single source of truth for *why* each number in the specs and baseline
configs has its value. The test suite asserts the ledger matches the
live defaults, so a recalibration cannot silently drift away from its
documentation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Constant:
    name: str
    value: float
    unit: str
    derivation: str


LEDGER: list[Constant] = [
    Constant(
        "DeviceSpec.pcie_peak_bandwidth", 6.0e9, "B/s",
        "PCIe gen2 x16 effective peak on the K20c era platforms; what "
        "pinned zero-copy streaming approaches in Figure 4.",
    ),
    Constant(
        "DeviceSpec.pcie_bandwidth", 3.3e9, "B/s",
        "Explicit cudaMemcpy from *pageable* host memory runs at ~55% of "
        "peak (driver staging buffer); GR chose explicit transfers "
        "(Section 3.2), so shard streaming pays this rate.",
    ),
    Constant(
        "DeviceSpec.memcpy_setup", 10e-6, "s",
        "cudaMemcpyAsync driver/launch latency; the overhead the spray "
        "operation overlaps (Section 5.1).",
    ),
    Constant(
        "DeviceSpec.kernel_launch_overhead", 6e-6, "s",
        "Kepler-era kernel launch latency; what dynamic frontier "
        "management saves by skipping empty shards (Section 5.2).",
    ),
    Constant(
        "DeviceSpec.edge_rate_seq", 2.0e9, "edges/s",
        "Coalesced edge-centric phase throughput: K20c frameworks "
        "sustain 1-3 GTEPS on resident graphs (CuSha/MapGraph papers).",
    ),
    Constant(
        "DeviceSpec.memory_bytes", float(int(4.8 * 2**30 / 64 / 2.75)), "B",
        "4.8 GB K20c scaled by the 1/64 dataset factor and the 2.75x "
        "byte-density ratio between the paper's ~54 B/edge accounting "
        "and this reproduction's ~20 B/edge layout (preserves Table 1's "
        "in-/out-of-memory split).",
    ),
    Constant(
        "XStreamConfig.scan_rate", 80e6, "edges/s",
        "16-thread sequential edge streaming with update generation; "
        "calibrated so Table-3 X-Stream rows keep the paper's flat "
        "profile across algorithms.",
    ),
    Constant(
        "XStreamConfig.remote_update_rate", 3e6, "updates/s",
        "Cross-partition shuffle = random writes; makes X-Stream's "
        "kron/web costs shuffle-dominated (GR's biggest wins) while "
        "meshes stay scan-dominated (GR's smallest wins), matching the "
        "Table-3 ordering.",
    ),
    Constant(
        "XStreamConfig.local_update_rate", 60e6, "updates/s",
        "Partition-local updates stay cache-resident.",
    ),
    Constant(
        "GraphChiConfig.edge_work_rate", 5e6, "edges/s",
        "PSW vertex-centric callback cost, charged on reads of active "
        "in-edges AND sorted write-back of changed out-edges; yields "
        "X-Stream < GraphChi everywhere as in Table 3, with the largest "
        "gap on update-heavy mesh CC (paper: 1560 s vs 133 s).",
    ),
    Constant(
        "GraphChiConfig.stream_rate", 3e9, "B/s",
        "PSW shard load + rewrite bandwidth (below raw DRAM bandwidth).",
    ),
    Constant(
        "CuShaConfig.edge_rate", 3.0e9, "edges/s",
        "G-Shards fully coalesced sweeps -- the best per-edge rate of "
        "the GPU frameworks (Table 2's 389x over X-Stream on kron).",
    ),
    Constant(
        "MapGraphConfig.edge_rate", 1.5e9, "edges/s",
        "Frontier-restricted expansion, half of CuSha's coalesced rate.",
    ),
    Constant(
        "MapGraphConfig.scheduling_rate", 50e6, "vertices/s",
        "Frontier compaction + adjacency scans + strategy dispatch; "
        "makes MapGraph ~3-4x slower than CuSha on all-active PageRank "
        "over kron (Table 4: 6789 ms vs 1852 ms) while it wins "
        "small-frontier road BFS.",
    ),
]


def ledger_by_name() -> dict[str, Constant]:
    return {c.name: c for c in LEDGER}


def live_values() -> dict[str, float]:
    """The currently configured defaults for every ledger entry."""
    from repro.baselines.cusha import CuShaConfig
    from repro.baselines.graphchi import GraphChiConfig
    from repro.baselines.mapgraph import MapGraphConfig
    from repro.baselines.xstream import XStreamConfig
    from repro.sim.specs import DeviceSpec

    dev = DeviceSpec()
    xs = XStreamConfig()
    chi = GraphChiConfig()
    cusha = CuShaConfig()
    mg = MapGraphConfig()
    return {
        "DeviceSpec.pcie_peak_bandwidth": dev.pcie_peak_bandwidth,
        "DeviceSpec.pcie_bandwidth": dev.pcie_bandwidth,
        "DeviceSpec.memcpy_setup": dev.memcpy_setup,
        "DeviceSpec.kernel_launch_overhead": dev.kernel_launch_overhead,
        "DeviceSpec.edge_rate_seq": dev.edge_rate_seq,
        "DeviceSpec.memory_bytes": float(dev.memory_bytes),
        "XStreamConfig.scan_rate": xs.scan_rate,
        "XStreamConfig.remote_update_rate": xs.remote_update_rate,
        "XStreamConfig.local_update_rate": xs.local_update_rate,
        "GraphChiConfig.edge_work_rate": chi.edge_work_rate,
        "GraphChiConfig.stream_rate": chi.stream_rate,
        "CuShaConfig.edge_rate": cusha.edge_rate,
        "MapGraphConfig.edge_rate": mg.edge_rate,
        "MapGraphConfig.scheduling_rate": mg.scheduling_rate,
    }


def render() -> str:
    lines = ["Calibration ledger", "==================", ""]
    for c in LEDGER:
        lines.append(f"{c.name} = {c.value:g} {c.unit}")
        lines.append(f"    {c.derivation}")
        lines.append("")
    return "\n".join(lines)
