"""Formatting and persistence for benchmark outputs.

Every experiment produces (a) a human-readable table/series printed to
stdout and mirrored to ``results/<name>.txt`` and (b) the raw numbers in
``results/<name>.json`` for EXPERIMENTS.md and downstream analysis.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Default output directory (repo-root/results when run from the repo).
RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"


def format_table(title: str, headers: list[str], rows: list[list], note: str = "") -> str:
    """Fixed-width table in the style of the paper's Tables 1-4."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    for j, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"


SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: list, width: int = 60) -> str:
    """A text sparkline of the series, peak-normalized.

    >>> sparkline([0, 5, 10], width=3)
    ' =@'
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    peak = max(vals)
    if peak <= 0:
        return " " * len(vals)
    top = len(SPARK_LEVELS) - 1
    return "".join(SPARK_LEVELS[int(round(v / peak * top))] for v in vals)


def format_series(title: str, series: dict[str, list], max_points: int = 60) -> str:
    """Per-iteration series (the Figure 3/16 frontier plots) as text,

    with a sparkline rendering of each curve's shape."""
    lines = [title, "=" * len(title)]
    for name, values in series.items():
        vals = list(values)
        shown = vals
        if len(vals) > max_points:
            step = len(vals) / max_points
            shown = [vals[int(i * step)] for i in range(max_points)]
        peak = max(vals) if vals else 0
        lines.append(f"{name}  (iterations={len(vals)}, peak={peak})")
        lines.append("  |" + sparkline(vals, max_points) + "|")
        lines.append("  " + " ".join(_fmt(v) for v in shown))
    return "\n".join(lines) + "\n"


def save_results(name: str, text: str, data, results_dir: Path | None = None) -> Path:
    """Write ``<name>.txt`` and ``<name>.json`` under the results dir."""
    out = Path(results_dir) if results_dir is not None else RESULTS_DIR
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{name}.txt").write_text(text)
    (out / f"{name}.json").write_text(json.dumps(data, indent=2, default=_json_default))
    return out / f"{name}.txt"


def emit(name: str, text: str, data) -> None:
    """Print and persist one experiment's output."""
    print()
    print(text)
    save_results(name, text, data)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3g}"
        return f"{v:.4g}"
    return str(v)


def _json_default(obj):
    try:
        return float(obj)
    except (TypeError, ValueError):
        return str(obj)
