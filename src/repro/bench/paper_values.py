"""The paper's published numbers, for side-by-side reporting.

Transcribed from Tables 2, 3 and 4 and the Section 6.2 prose. Table 3 is
in seconds, Tables 2 and 4 in milliseconds. These are the targets the
reproduction's *shape* is judged against in EXPERIMENTS.md; absolute
magnitudes differ by the documented dataset/device scaling.
"""

#: Table 2: BFS, X-Stream (16-core CPU) vs CuSha (K20c), milliseconds.
TABLE2 = {
    "ak2010": {"X-Stream": 215.155, "CuSha": 7.75},
    "belgium_osm": {"X-Stream": 2695.88, "CuSha": 791.299},
    "coAuthorsDBLP": {"X-Stream": 1275.0, "CuSha": 11.553},
    "delaunay_n13": {"X-Stream": 80.89, "CuSha": 5.184},
    "kron_g500-logn20": {"X-Stream": 46550.7, "CuSha": 119.824},
    "webbase-1M": {"X-Stream": 3909.12, "CuSha": 13.515},
}

#: Table 3: out-of-memory frameworks, wall seconds.
TABLE3 = {
    "kron_g500-logn21": {
        "GraphChi": {"BFS": 365, "SSSP": 442, "Pagerank": 328, "CC": 236},
        "X-Stream": {"BFS": 95, "SSSP": 97, "Pagerank": 98, "CC": 97},
        "GR": {"BFS": 4, "SSSP": 7, "Pagerank": 93, "CC": 9},
    },
    "nlpkkt160": {
        "GraphChi": {"BFS": 503, "SSSP": 510, "Pagerank": 447, "CC": 1560},
        "X-Stream": {"BFS": 128, "SSSP": 136, "Pagerank": 144, "CC": 133},
        "GR": {"BFS": 60, "SSSP": 92, "Pagerank": 140, "CC": 183},
    },
    "uk-2002": {
        "GraphChi": {"BFS": 1100, "SSSP": 1283, "Pagerank": 1091, "CC": 1073},
        "X-Stream": {"BFS": 330, "SSSP": 374, "Pagerank": 335, "CC": 348},
        "GR": {"BFS": 49, "SSSP": 80, "Pagerank": 153, "CC": 162},
    },
    "orkut": {
        "GraphChi": {"BFS": 311, "SSSP": 320, "Pagerank": 285, "CC": 268},
        "X-Stream": {"BFS": 124, "SSSP": 131, "Pagerank": 127, "CC": 127},
        "GR": {"BFS": 6, "SSSP": 10, "Pagerank": 84, "CC": 16},
    },
    "cage15": {
        "GraphChi": {"BFS": 262, "SSSP": 265, "Pagerank": 240, "CC": 389},
        "X-Stream": {"BFS": 114, "SSSP": 119, "Pagerank": 115, "CC": 143},
        "GR": {"BFS": 18, "SSSP": 25, "Pagerank": 19, "CC": 41},
    },
}

#: Table 4: in-memory frameworks, milliseconds. MG = MapGraph.
TABLE4 = {
    "ak2010": {
        "MapGraph": {"BFS": 7.94, "SSSP": 79.01, "Pagerank": 23.86, "CC": 19.03},
        "CuSha": {"BFS": 7.75, "SSSP": 31.99, "Pagerank": 12.08, "CC": 10.16},
        "GR": {"BFS": 9.26, "SSSP": 3.81, "Pagerank": 14.61, "CC": 17.78},
    },
    "coAuthorsDBLP": {
        "MapGraph": {"BFS": 5.28, "SSSP": 8.75, "Pagerank": 68.92, "CC": 30.26},
        "CuSha": {"BFS": 11.55, "SSSP": 12.75, "Pagerank": 79.84, "CC": 13.99},
        "GR": {"BFS": 5.31, "SSSP": 5.42, "Pagerank": 53.14, "CC": 16.43},
    },
    "kron_g500-logn20": {
        "MapGraph": {"BFS": 51.81, "SSSP": 139.43, "Pagerank": 6789, "CC": 308.91},
        "CuSha": {"BFS": 119.82, "SSSP": 269.88, "Pagerank": 1852, "CC": 138.7},
        "GR": {"BFS": 27.88, "SSSP": 28.34, "Pagerank": 4365, "CC": 266.86},
    },
    "webbase-1M": {
        "MapGraph": {"BFS": 8.71, "SSSP": 13.56, "Pagerank": 72.86, "CC": 50.97},
        "CuSha": {"BFS": 13.52, "SSSP": 12.65, "Pagerank": 270.83, "CC": 317.41},
        "GR": {"BFS": 1.4, "SSSP": 6.07, "Pagerank": 57.76, "CC": 37.45},
    },
    "belgium_osm": {
        "MapGraph": {"BFS": 195.79, "SSSP": 261.32, "Pagerank": 102.64, "CC": 2219},
        "CuSha": {"BFS": 791.3, "SSSP": 897.03, "Pagerank": 45.8, "CC": 920.7},
        "GR": {"BFS": 279.8, "SSSP": 281.39, "Pagerank": 71.33, "CC": 40.63},
    },
}

#: Section 6.2.1 headline aggregates.
HEADLINES = {
    "avg_speedup_over_graphchi": 13.4,
    "avg_speedup_over_xstream": 5.0,
    "max_speedup_over_graphchi": 79.0,
    "max_speedup_over_xstream": 21.0,
    # Section 6.2.3:
    "avg_memcpy_reduction_pct": 51.5,
    "max_memcpy_reduction_pct": 78.8,
    "memcpy_fraction_of_total": 0.95,
}
