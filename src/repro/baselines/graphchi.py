"""GraphChi: vertex-centric parallel sliding windows (PSW).

GraphChi (Kyrola et al., OSDI'12) shards edges by destination interval,
sorted by source, and processes one interval's *subgraph* at a time: the
memory shard is read fully and a sliding window of every other shard
supplies the interval's out-edges. Originally designed for SSD-resident
graphs, run here (as in the paper) with everything in host memory, so
the "I/O" is memory streaming and the per-edge CPU work -- building the
subgraph objects and updating vertices through them -- dominates.

Cost model (per iteration):

* interval-selective streaming: intervals with no active vertex are
  skipped (GraphChi's selective scheduling), but an interval with *any*
  active vertex streams its full subgraph -- in+out edges -- at
  ``stream_rate`` bytes/s (PSW re-writes shards, so this is well below
  raw memory bandwidth);
* per-edge update work through the vertex-centric callbacks: the
  in-edges of active vertices are *read* and the out-edges of changed
  vertices are *written back to the shards* (PSW's defining cost -- the
  written windows must land back in sorted shard order), both at
  ``edge_work_rate``. This double charge is the reason GraphChi trails
  X-Stream's sequential scans everywhere in Table 3 and falls furthest
  behind on update-heavy runs like nlpkkt160 CC (1560 s vs 133 s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Framework
from repro.baselines.executor import ExecutionTrace
from repro.core.api import GASProgram
from repro.graph.edgelist import EdgeList
from repro.sim.specs import HostSpec, XEON_E5_2670

#: PSW edge record: src, dst, value and in/out bookkeeping.
EDGE_RECORD_BYTES = 16


@dataclass
class GraphChiConfig:
    """Calibrated against Table 3 (see EXPERIMENTS.md)."""

    #: shard streaming bandwidth, bytes/s (PSW load + sorted write-back)
    stream_rate: float = 3e9
    #: vertex-centric per-edge callback work, edges/s
    edge_work_rate: float = 5e6
    #: fixed cost per interval touched per iteration (subgraph build)
    interval_overhead: float = 5e-4
    #: number of intervals (shards)
    num_intervals: int = 16


class GraphChi(Framework):
    name = "GraphChi"

    def __init__(self, config: GraphChiConfig | None = None, host: HostSpec = XEON_E5_2670):
        self.config = config or GraphChiConfig()
        self.host = host
        self.census_partitions = self.config.num_intervals

    def cost(self, edges: EdgeList, program: GASProgram, trace: ExecutionTrace):
        cfg = self.config
        stream = work = overhead = 0.0
        for prof in trace.profiles:
            # Intervals containing >= 1 active vertex (exact census) --
            # GraphChi's selective scheduling skips the rest.
            frac = prof.touched_fraction
            touched = prof.touched_partitions
            stream += (
                frac * 2 * edges.num_edges * EDGE_RECORD_BYTES / cfg.stream_rate
            )
            # The vertex-centric update function reads every in-edge of
            # every scheduled vertex (whether or not the program's GAS
            # form gathers), and the changed vertices' out-edges are
            # written back into the sliding windows.
            work += prof.incident_in_edges / cfg.edge_work_rate
            work += prof.changed_out_edges / cfg.edge_work_rate
            overhead += touched * cfg.interval_overhead
        total = stream + work + overhead
        return total, {"shard_stream": stream, "edge_work": work, "overhead": overhead}
