"""Common framework interface and result type for the baselines."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.executor import ExecutionTrace, HostGASExecutor
from repro.core.api import GASProgram
from repro.graph.edgelist import EdgeList


@dataclass
class BaselineResult:
    """Output + simulated performance of one framework run."""

    framework: str
    vertex_values: np.ndarray
    iterations: int
    converged: bool
    #: simulated execution time, seconds
    sim_time: float
    #: named cost components summing (approximately) to sim_time
    breakdown: dict[str, float] = field(default_factory=dict)


class Framework(ABC):
    """A graph-processing system modeled over the Section-6.1 testbed.

    Subclasses implement :meth:`cost` -- the per-run cost model over the
    shared executor's activity census -- and may override
    :meth:`check_capacity` to enforce memory limits (the in-GPU-memory
    frameworks raise :class:`repro.sim.memory.DeviceOOMError` on Table
    1's out-of-memory graphs).
    """

    name: str = "framework"
    #: partition count used for the locality census
    census_partitions: int = 16

    def run(
        self,
        edges: EdgeList,
        program: GASProgram,
        max_iterations: int = 100_000,
        trace: ExecutionTrace | None = None,
    ) -> BaselineResult:
        """Execute ``program`` on ``edges`` under this framework's model.

        ``trace`` lets callers share one semantic execution between
        frameworks with the same census partition count (the benchmark
        harness does this; results are identical either way).
        """
        self.check_capacity(edges, program)
        if trace is None:
            executor = HostGASExecutor(edges, program, self.census_partitions)
            trace = executor.run(max_iterations)
        sim_time, breakdown = self.cost(edges, program, trace)
        return BaselineResult(
            framework=self.name,
            vertex_values=trace.vertex_values,
            iterations=trace.iterations,
            converged=trace.converged,
            sim_time=sim_time,
            breakdown=breakdown,
        )

    def check_capacity(self, edges: EdgeList, program: GASProgram) -> None:
        """Raise when the input cannot be processed (default: no limit)."""

    @abstractmethod
    def cost(self, edges: EdgeList, program: GASProgram, trace: ExecutionTrace) -> tuple[float, dict]:
        """Simulated seconds + named breakdown for this execution."""
