"""Totem: static hybrid CPU+GPU partitioning (Gharaibeh et al., PACT'12).

Totem places high-degree vertices (and their edges) on the GPU up to its
memory capacity and the remainder on the CPU; each BSP superstep runs
both sides in parallel and exchanges boundary messages over PCIe.
Section 2.2's critique, which this model reproduces: as graphs grow,
only a fixed subgraph fits on the GPU, so the CPU side becomes the
bottleneck and the GPU idles -- the motivation for GraphReduce's
streaming approach. Included as an extension beyond the paper's
evaluated set (it appears in the related-work discussion, not the
tables).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import Framework
from repro.baselines.executor import ExecutionTrace
from repro.core.api import GASProgram
from repro.graph.edgelist import EdgeList
from repro.graph.properties import BYTES_PER_EDGE, BYTES_PER_VERTEX
from repro.sim.specs import DeviceSpec, HostSpec, K20C, XEON_E5_2670


@dataclass
class TotemConfig:
    #: GPU-side edge rate, edges/s
    gpu_edge_rate: float = 2.0e9
    #: CPU-side edge rate, edges/s
    cpu_edge_rate: float = 40e6
    #: fraction of device memory usable for the subgraph
    memory_fraction: float = 0.9


class Totem(Framework):
    name = "Totem"

    def __init__(
        self,
        config: TotemConfig | None = None,
        device: DeviceSpec = K20C,
        host: HostSpec = XEON_E5_2670,
    ):
        self.config = config or TotemConfig()
        self.device = device
        self.host = host

    def _split(self, edges: EdgeList) -> tuple[float, float]:
        """Fraction of edges on GPU and the boundary-edge fraction."""
        degrees = edges.out_degrees() + edges.in_degrees()
        order = np.argsort(degrees)[::-1]  # high degree first -> GPU
        budget = self.device.memory_bytes * self.config.memory_fraction
        edge_budget = max(budget - edges.num_vertices * BYTES_PER_VERTEX, 0)
        cum_edges = np.cumsum(degrees[order]) / 2  # each edge counted ~twice
        can_host = int(np.searchsorted(cum_edges, edge_budget / BYTES_PER_EDGE))
        gpu_vertices = np.zeros(edges.num_vertices, dtype=bool)
        gpu_vertices[order[:can_host]] = True
        src_on_gpu = gpu_vertices[edges.src]
        dst_on_gpu = gpu_vertices[edges.dst]
        gpu_fraction = float(np.count_nonzero(src_on_gpu & dst_on_gpu)) / max(edges.num_edges, 1)
        boundary_fraction = float(np.count_nonzero(src_on_gpu ^ dst_on_gpu)) / max(edges.num_edges, 1)
        return gpu_fraction, boundary_fraction

    def cost(self, edges: EdgeList, program: GASProgram, trace: ExecutionTrace):
        cfg = self.config
        gpu_frac, boundary_frac = self._split(edges)
        cpu_frac = 1.0 - gpu_frac - boundary_frac
        gpu_time = cpu_time = sync_time = total = 0.0
        for prof in trace.profiles:
            work = max(prof.active_in_edges, prof.changed_out_edges)
            gpu_i = work * gpu_frac / cfg.gpu_edge_rate
            cpu_i = work * (cpu_frac + boundary_frac) / cfg.cpu_edge_rate
            # Boundary messages cross PCIe each superstep (8 B each).
            sync_i = (
                work * boundary_frac * 8 / self.device.pcie_bandwidth
                + self.device.memcpy_setup
            )
            gpu_time += gpu_i
            cpu_time += cpu_i
            sync_time += sync_i
            # Sides run in parallel; the superstep takes the slower side.
            total += max(gpu_i, cpu_i) + sync_i
        return total, {
            "gpu_side": gpu_time,
            "cpu_side": cpu_time,
            "boundary_sync": sync_time,
            "gpu_edge_fraction": gpu_frac,
        }

    def gpu_utilization(self, edges: EdgeList) -> float:
        """Fraction of edges the GPU gets to process -- shrinks as the

        graph outgrows device memory (the Section 2.2 critique)."""
        gpu_frac, _ = self._split(edges)
        return gpu_frac
