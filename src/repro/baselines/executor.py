"""Shared host-side GAS executor.

Every baseline framework runs the same bulk-synchronous GAS semantics as
GraphReduce -- what differs between GraphChi, X-Stream, CuSha and
MapGraph is *how* the data is laid out and moved, i.e. the cost model.
This executor performs the semantic computation once per framework run
(on global CSC/CSR with frontier tracking, mirroring
:class:`repro.core.compute.ComputeEngine`) and records the per-iteration
activity census each framework's cost model consumes:

* how many vertices were active / changed,
* how many in-edges were gathered,
* how many out-edges carried updates,
* and how many of those updates stayed *partition-local* -- the quantity
  that makes X-Stream's shuffle cheap on meshes and expensive on
  Kronecker graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import GASProgram
from repro.core.runtime import RuntimeContext
from repro.graph.csr import build_csc, build_csr, ragged_gather
from repro.graph.edgelist import EdgeList


@dataclass(frozen=True)
class IterationProfile:
    """Activity census of one BSP iteration."""

    active_vertices: int
    #: in-edges actually gathered (0 for apply-only programs)
    active_in_edges: int
    #: in-edges *incident* to active vertices, regardless of phases --
    #: what a vertex-centric subgraph loader (GraphChi) must materialize
    incident_in_edges: int
    changed_vertices: int
    changed_out_edges: int
    local_out_edges: int  # changed out-edges with dst in src's partition
    touched_partitions: int  # partitions holding >= 1 active vertex
    num_partitions: int

    @property
    def touched_fraction(self) -> float:
        return self.touched_partitions / max(self.num_partitions, 1)


@dataclass
class ExecutionTrace:
    vertex_values: np.ndarray
    profiles: list[IterationProfile]
    converged: bool

    @property
    def iterations(self) -> int:
        return len(self.profiles)


def expected_touched_fraction(active: int, num_partitions: int) -> float:
    """Expected fraction of partitions holding >= 1 of ``active`` vertices

    under uniform placement -- the selectivity both GraphChi's intervals
    and X-Stream's streaming partitions get from skipping quiet regions.
    """
    if active <= 0:
        return 0.0
    p_untouched = (1.0 - 1.0 / num_partitions) ** min(active, 10**6)
    return float(1.0 - p_untouched)


class HostGASExecutor:
    """Reference BSP execution with activity profiling.

    ``num_partitions`` only affects the locality census (frameworks with
    partitioned layouts pass their own partition count); results are
    partition-independent.
    """

    def __init__(self, edges: EdgeList, program: GASProgram, num_partitions: int = 16):
        program.validate()
        if program.needs_weights and edges.weights is None:
            edges = edges.with_unit_weights()
        self.edges = edges
        self.program = program
        self.ctx = RuntimeContext(edges)
        self.csc = build_csc(edges)
        self.csr = build_csr(edges)
        n = edges.num_vertices
        p = max(1, min(num_partitions, max(n, 1)))
        self.num_partitions = p
        bounds = np.linspace(0, n, p + 1).astype(np.int64)
        self._partition_of = np.searchsorted(bounds, np.arange(n), side="right") - 1
        self._csc_w = None if edges.weights is None else edges.weights[self.csc.edge_ids]

    def run(self, max_iterations: int = 100_000) -> ExecutionTrace:
        prog, ctx = self.program, self.ctx
        n = self.edges.num_vertices
        values = np.asarray(prog.init_vertices(ctx)).astype(prog.vertex_dtype, copy=False)
        frontier = np.asarray(prog.init_frontier(ctx), dtype=bool)
        edge_state = prog.init_edge_state(ctx)
        profiles: list[IterationProfile] = []
        converged = False
        for iteration in range(max_iterations):
            if prog.always_active:
                frontier[:] = True
            active = np.flatnonzero(frontier)
            if len(active) == 0:
                converged = True
                break
            if prog.converged(ctx, iteration, len(active)):
                converged = True
                break
            # ---- gather -------------------------------------------------
            gathered = np.full(len(active), prog.gather_identity, dtype=prog.gather_dtype)
            has = np.zeros(len(active), dtype=bool)
            gathered_edges = 0
            if prog.has_gather:
                pos, seg = ragged_gather(self.csc.indptr, active)
                gathered_edges = len(pos)
                if gathered_edges:
                    src = self.csc.indices[pos]
                    w = None if self._csc_w is None else self._csc_w[pos]
                    st = None if edge_state is None else edge_state[self.csc.edge_ids[pos]]
                    contrib = prog.gather_map(ctx, src, seg.astype(src.dtype), values[src], w, st)
                    starts = np.flatnonzero(np.r_[True, seg[1:] != seg[:-1]])
                    red = prog.gather_reduce.reduceat(contrib, starts)
                    # seg values are *global* vertex ids; map back to the
                    # position inside `active` (active is sorted).
                    slot = np.searchsorted(active, seg[starts])
                    gathered[slot] = red.astype(prog.gather_dtype, copy=False)
                    has[slot] = True
            # ---- apply --------------------------------------------------
            new_vals, changed = prog.apply(ctx, active, values[active], gathered, has, iteration)
            changed = np.asarray(changed, dtype=bool)
            values[active] = np.asarray(new_vals).astype(prog.vertex_dtype, copy=False)
            changed_ids = active[changed]
            # ---- scatter + frontier activate ----------------------------
            pos, seg = ragged_gather(self.csr.indptr, changed_ids)
            dsts = self.csr.indices[pos]
            if prog.has_scatter and len(pos):
                eids = self.csr.edge_ids[pos]
                w = None if self.edges.weights is None else self.edges.weights[eids]
                st = None if edge_state is None else edge_state[eids]
                out = prog.scatter(ctx, seg.astype(dsts.dtype), values[seg], w, st)
                if edge_state is not None:
                    edge_state[eids] = out
            frontier = np.zeros(n, dtype=bool)
            frontier[dsts] = True
            local = int(
                np.count_nonzero(self._partition_of[dsts] == self._partition_of[seg])
            ) if len(pos) else 0
            touched = int(len(np.unique(self._partition_of[active])))
            incident = int((self.csc.indptr[active + 1] - self.csc.indptr[active]).sum())
            profiles.append(
                IterationProfile(
                    active_vertices=len(active),
                    active_in_edges=gathered_edges,
                    incident_in_edges=incident,
                    changed_vertices=len(changed_ids),
                    changed_out_edges=len(pos),
                    local_out_edges=local,
                    touched_partitions=touched,
                    num_partitions=self.num_partitions,
                )
            )
        return ExecutionTrace(values, profiles, converged)
