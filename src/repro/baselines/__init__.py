"""The comparison frameworks of Section 6.

Out-of-memory CPU frameworks (Table 3, Figures 13/14):

* :mod:`repro.baselines.graphchi` -- GraphChi's vertex-centric parallel
  sliding windows (PSW) over host memory.
* :mod:`repro.baselines.xstream` -- X-Stream's edge-centric streaming
  partitions with scatter/shuffle/gather passes.

In-GPU-memory frameworks (Tables 2 and 4):

* :mod:`repro.baselines.cusha` -- CuSha's G-Shards: fully coalesced
  whole-graph kernels with no frontier awareness.
* :mod:`repro.baselines.mapgraph` -- MapGraph's frontier-adaptive
  dynamic scheduling.

Hybrid (Section 2.2 discussion, implemented as an extension):

* :mod:`repro.baselines.totem` -- Totem's static CPU/GPU degree split.

All frameworks execute the *same* :class:`repro.core.api.GASProgram`
instances through the shared host executor, so vertex values agree
bit-for-bit across frameworks and only the performance models differ.
Each model's constants are documented inline and calibrated against the
paper's published tables (see EXPERIMENTS.md for the fit).
"""

from repro.baselines.base import BaselineResult, Framework
from repro.baselines.cusha import CuSha
from repro.baselines.executor import HostGASExecutor, IterationProfile
from repro.baselines.graphchi import GraphChi
from repro.baselines.mapgraph import MapGraph
from repro.baselines.totem import Totem
from repro.baselines.xstream import XStream

__all__ = [
    "BaselineResult",
    "Framework",
    "HostGASExecutor",
    "IterationProfile",
    "GraphChi",
    "XStream",
    "CuSha",
    "MapGraph",
    "Totem",
]
