"""X-Stream: edge-centric scatter-gather over streaming partitions.

X-Stream (Roy et al., SOSP'13) trades random access for sequential
streaming: every iteration the *scatter* pass streams the full edge list
(there is no per-edge frontier index -- the weakness GraphReduce's
frontier management exploits on traversal workloads), generating an
update record per out-edge of an active source; a *shuffle* distributes
updates to their destination's streaming partition; the *gather* pass
then streams the updates. The paper runs it with 16 threads on the host
(Section 6.2.1).

Cost model (per iteration):

* edge scan at ``scan_rate`` over every streaming partition holding an
  active source -- X-Stream has no per-edge frontier index, so one
  active vertex costs its whole partition a sequential sweep, but fully
  quiet partitions are skipped;
* update shuffle at a locality-dependent rate: an update whose
  destination lives in the same streaming partition as its source stays
  cache-resident (``local_update_rate``); a cross-partition update pays
  a random write into a remote partition buffer
  (``remote_update_rate``). Meshes and banded matrices are almost
  entirely local; Kronecker/web graphs are almost entirely remote --
  which is why X-Stream's relative standing improves so much on
  nlpkkt160 (where it beats GR on CC, Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Framework
from repro.baselines.executor import ExecutionTrace
from repro.core.api import GASProgram
from repro.graph.edgelist import EdgeList
from repro.sim.specs import HostSpec, XEON_E5_2670


@dataclass
class XStreamConfig:
    """Calibrated against Tables 2/3 (see EXPERIMENTS.md)."""

    #: sequential edge streaming, edges/s (16 threads, ~16 B records)
    scan_rate: float = 80e6
    #: partition-local update application, updates/s
    local_update_rate: float = 60e6
    #: cross-partition update shuffle, updates/s (random writes)
    remote_update_rate: float = 3e6
    #: per-iteration pass setup (thread fork/join, partition bookkeeping)
    iteration_overhead: float = 5e-5
    #: number of streaming partitions
    num_partitions: int = 16


class XStream(Framework):
    name = "X-Stream"

    def __init__(self, config: XStreamConfig | None = None, host: HostSpec = XEON_E5_2670):
        self.config = config or XStreamConfig()
        self.host = host
        self.census_partitions = self.config.num_partitions

    def cost(self, edges: EdgeList, program: GASProgram, trace: ExecutionTrace):
        cfg = self.config
        scan = gather = shuffle = 0.0
        for prof in trace.profiles:
            # Scatter: stream every partition with an active source --
            # all of its edges, active or not.
            scan += prof.touched_fraction * edges.num_edges / cfg.scan_rate
            local = prof.local_out_edges
            remote = prof.changed_out_edges - local
            shuffle += local / cfg.local_update_rate + remote / cfg.remote_update_rate
            # Gather: stream the generated updates back in.
            gather += prof.changed_out_edges / cfg.scan_rate
        overhead = len(trace.profiles) * cfg.iteration_overhead
        total = scan + shuffle + gather + overhead
        return total, {
            "scatter_scan": scan,
            "update_shuffle": shuffle,
            "gather_scan": gather,
            "overhead": overhead,
        }
