"""MapGraph: frontier-adaptive GAS on the GPU.

MapGraph (Fu et al., GRADES'14) keeps the whole graph in device memory
and picks a scheduling strategy each iteration from the frontier size
and its adjacency volume (dynamic CTA / scan-based gather). That makes
it excellent on traversal workloads (best belgium_osm BFS in Table 4)
but the per-frontier-vertex scheduling machinery -- frontier
compaction, adjacency-length scans, strategy dispatch -- costs real time
when the frontier stays huge for many iterations, which is why its
PageRank on kron_g500-logn20 is ~3.7x slower than CuSha (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Framework
from repro.baselines.executor import ExecutionTrace
from repro.core.api import GASProgram
from repro.graph.edgelist import EdgeList
from repro.graph.properties import footprint_bytes
from repro.sim.memory import DeviceOOMError
from repro.sim.specs import DeviceSpec, K20C


@dataclass
class MapGraphConfig:
    """Calibrated against Tables 2/4 (see EXPERIMENTS.md)."""

    #: frontier-restricted edge expansion, edges/s
    edge_rate: float = 1.5e9
    #: frontier compaction + adjacency scan + strategy dispatch,
    #: frontier-vertices/s
    scheduling_rate: float = 50e6
    #: kernel launches per iteration (advance, filter, compact)
    kernels_per_iteration: int = 3


class MapGraph(Framework):
    name = "MapGraph"

    def __init__(self, config: MapGraphConfig | None = None, device: DeviceSpec = K20C):
        self.config = config or MapGraphConfig()
        self.device = device

    def check_capacity(self, edges: EdgeList, program: GASProgram) -> None:
        need = footprint_bytes(edges)
        if need > self.device.memory_bytes:
            raise DeviceOOMError(need, self.device.memory_bytes, self.device.memory_bytes)

    def cost(self, edges: EdgeList, program: GASProgram, trace: ExecutionTrace):
        cfg, dev = self.config, self.device
        upload = footprint_bytes(edges) / dev.pcie_bandwidth + dev.memcpy_setup
        expand = scheduling = launches = 0.0
        for prof in trace.profiles:
            work_edges = prof.active_in_edges if prof.active_in_edges else prof.changed_out_edges
            expand += work_edges / cfg.edge_rate
            scheduling += prof.active_vertices / cfg.scheduling_rate
            launches += cfg.kernels_per_iteration * dev.kernel_launch_overhead
        total = upload + expand + scheduling + launches
        return total, {
            "upload": upload,
            "edge_expand": expand,
            "frontier_scheduling": scheduling,
            "kernel_launches": launches,
        }
