"""CuSha: G-Shards in GPU memory.

CuSha (Khorasani et al., HPDC'14) reshapes CSR into *G-Shards* --
edge-entry arrays laid out so warps read and write fully coalesced --
plus Concatenated Windows for the writeback. Its defining costs:

* the whole graph must fit in device memory (it raises
  :class:`~repro.sim.memory.DeviceOOMError` on Table 1's out-of-memory
  graphs, which is the gap GraphReduce fills);
* every iteration processes **every edge** -- there is no frontier, so
  high-diameter inputs (belgium_osm BFS: 791 ms vs MapGraph's 196 ms in
  Table 2/4) pay thousands of full-graph sweeps;
* in exchange, the per-edge rate is the best of the GPU frameworks
  (fully coalesced G-Shard entries), which is why it crushes X-Stream
  by up to 389x on kron_g500-logn20 (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import Framework
from repro.baselines.executor import ExecutionTrace
from repro.core.api import GASProgram
from repro.graph.edgelist import EdgeList
from repro.graph.properties import footprint_bytes
from repro.sim.memory import DeviceOOMError
from repro.sim.specs import DeviceSpec, K20C


@dataclass
class CuShaConfig:
    """Calibrated against Tables 2/4 (see EXPERIMENTS.md)."""

    #: coalesced G-Shard edge processing, edges/s
    edge_rate: float = 3.0e9
    #: per-vertex writeback through Concatenated Windows, vertices/s
    vertex_rate: float = 2.0e9
    #: kernels per iteration (shard sweep + CW update)
    kernels_per_iteration: int = 2


class CuSha(Framework):
    name = "CuSha"

    def __init__(self, config: CuShaConfig | None = None, device: DeviceSpec = K20C):
        self.config = config or CuShaConfig()
        self.device = device

    def check_capacity(self, edges: EdgeList, program: GASProgram) -> None:
        need = footprint_bytes(edges)
        if need > self.device.memory_bytes:
            raise DeviceOOMError(need, self.device.memory_bytes, self.device.memory_bytes)

    def cost(self, edges: EdgeList, program: GASProgram, trace: ExecutionTrace):
        cfg, dev = self.config, self.device
        # One-time H2D of the G-Shards.
        upload = footprint_bytes(edges) / dev.pcie_bandwidth + dev.memcpy_setup
        per_iter = (
            cfg.kernels_per_iteration * dev.kernel_launch_overhead
            + edges.num_edges / cfg.edge_rate  # every edge, every iteration
            + edges.num_vertices / cfg.vertex_rate
        )
        compute = len(trace.profiles) * per_iter
        total = upload + compute
        return total, {"upload": upload, "compute": compute}
