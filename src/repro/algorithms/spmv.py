"""Sparse matrix-vector multiplication as a single GAS iteration.

The paper lists sparse linear algebra among the GAS-expressible workloads
(Section 2.1). Treating the weighted graph as the matrix A with
``A[u, v] = w(u -> v)``, one gather+apply pass computes

    y[v] = sum over in-edges (u -> v) of w(u, v) * x[u],

i.e. ``y = A^T x`` in matrix terms. Apply stores the gathered dot
product and reports no changes, so the frontier empties and the runtime
stops after exactly one iteration.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram
from repro.core.kernels import ApplySpec, GatherSpec


class SpMV(GASProgram):
    name = "spmv"
    gather_reduce = np.add
    gather_identity = 0.0
    needs_weights = True

    def __init__(self, x: np.ndarray):
        self.x = np.asarray(x, dtype=np.float32)

    def init_vertices(self, ctx):
        if self.x.shape != (ctx.num_vertices,):
            raise ValueError(
                f"input vector must have shape ({ctx.num_vertices},), got {self.x.shape}"
            )
        # Vertex value layout: the input vector; apply overwrites it with
        # the output component once gathered.
        return self.x.copy()

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return src_vals * weights

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        y = np.where(has_gather, gathered, np.float32(0.0)).astype(old_vals.dtype)
        return y, np.zeros(len(vids), dtype=bool)

    # Fused shapes: w * x summed per row; the identity affine (scale 1,
    # base 0 -- both skipped by the kernels, so y passes through exactly).
    def gather_kernel_spec(self):
        return GatherSpec(kind="mul_weight", reduce="add")

    def apply_kernel_spec(self):
        return ApplySpec(kind="affine", changed_mode="none")
