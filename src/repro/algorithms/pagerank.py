"""PageRank under GAS (Section 2.1's worked example).

Gather: each active vertex accumulates ``rank(u) / out_degree(u)`` over
its in-edges, reduced with +. Apply: ``R = 0.15 + 0.85 * G`` (the paper
prints the constants swapped; we use the standard damping so ranks
converge to the usual stationary values). Scatter is empty -- out-edge
values never change -- so GR eliminates the phase.

A vertex stays in the frontier while its rank still moves more than
``tolerance``; the frontier therefore starts at |V| and decays
(Figure 3(b)/(16)), fastest on meshes like nlpkkt160.

``tolerance=None`` selects the classic *power iteration* formulation
instead: every vertex recomputes and broadcasts on every round
(``always_active``) for exactly ``max_iterations`` rounds. That is the
standard fixed-iteration PageRank benchmark shape (what GPU frameworks
time), and the steady state the host fast paths are built for -- the
active and changed sets are the full vertex set each iteration, so
gather/out plans are reused verbatim.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram
from repro.core.kernels import ApplySpec, GatherSpec


class PageRank(GASProgram):
    name = "pagerank"
    gather_reduce = np.add
    gather_identity = 0.0

    def __init__(
        self,
        damping: float = 0.85,
        tolerance: float | None = 1e-3,
        max_iterations: int = 200,
    ):
        self.damping = np.float32(damping)
        self.base = np.float32(1.0 - damping)
        self.tolerance = None if tolerance is None else np.float32(tolerance)
        self.max_iterations = max_iterations
        # Power iteration: the whole vertex set is active every round.
        self.always_active = tolerance is None
        # Lazily built float32 out-degree table (see gather_map).
        self._deg32 = None
        self._deg32_ctx = None

    def init_vertices(self, ctx):
        return np.full(ctx.num_vertices, 1.0, dtype=self.vertex_dtype)

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        # Convert the out-degree table to float32 once per run instead of
        # per call: max(float32(d), 1) gathered per edge is bit-identical
        # to gathering d then converting. Rebuilding on a ctx change (and
        # the benign first-call race under parallel shard compute) both
        # produce the same table.
        deg = self._deg32
        if deg is None or self._deg32_ctx is not ctx:
            deg = np.maximum(ctx.out_degrees.astype(np.float32), 1.0)
            self._deg32, self._deg32_ctx = deg, ctx
        return src_vals / np.take(deg, src_ids)

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        g = np.where(has_gather, gathered, np.float32(0.0)).astype(old_vals.dtype)
        new_vals = self.base + self.damping * g
        if self.tolerance is None:
            changed = np.ones(len(vids), dtype=bool)
        else:
            changed = np.abs(new_vals - old_vals) > self.tolerance
        return new_vals, changed

    def converged(self, ctx, iteration, frontier_size):
        return iteration >= self.max_iterations

    # Fused shapes: rank/deg summed per destination, then an affine
    # update -- the same float32 ops apply() performs, in the same order.
    def gather_kernel_spec(self):
        return GatherSpec(kind="div_degree", reduce="add")

    def apply_kernel_spec(self):
        if self.tolerance is None:
            return ApplySpec(kind="affine", base=float(self.base),
                             scale=float(self.damping), changed_mode="all")
        return ApplySpec(kind="affine", base=float(self.base),
                         scale=float(self.damping), tol=float(self.tolerance),
                         changed_mode="tol")
