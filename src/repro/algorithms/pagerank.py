"""PageRank under GAS (Section 2.1's worked example).

Gather: each active vertex accumulates ``rank(u) / out_degree(u)`` over
its in-edges, reduced with +. Apply: ``R = 0.15 + 0.85 * G`` (the paper
prints the constants swapped; we use the standard damping so ranks
converge to the usual stationary values). Scatter is empty -- out-edge
values never change -- so GR eliminates the phase.

A vertex stays in the frontier while its rank still moves more than
``tolerance``; the frontier therefore starts at |V| and decays
(Figure 3(b)/(16)), fastest on meshes like nlpkkt160.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram


class PageRank(GASProgram):
    name = "pagerank"
    gather_reduce = np.add
    gather_identity = 0.0

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-3, max_iterations: int = 200):
        self.damping = np.float32(damping)
        self.base = np.float32(1.0 - damping)
        self.tolerance = np.float32(tolerance)
        self.max_iterations = max_iterations

    def init_vertices(self, ctx):
        return np.full(ctx.num_vertices, 1.0, dtype=self.vertex_dtype)

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        deg = ctx.out_degrees[src_ids].astype(np.float32)
        return src_vals / np.maximum(deg, 1.0)

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        g = np.where(has_gather, gathered, np.float32(0.0)).astype(old_vals.dtype)
        new_vals = self.base + self.damping * g
        changed = np.abs(new_vals - old_vals) > self.tolerance
        return new_vals, changed

    def converged(self, ctx, iteration, frontier_size):
        return iteration >= self.max_iterations
