"""Breadth-First Search.

Two formulations:

* :class:`BFS` -- the paper's apply-only form (Section 5.3): "BFS only
  requires users to define the apply phase, in which the BFS tree depth
  for every vertex is marked to be the iteration number." With neither
  gather nor scatter defined, the Phase Fusion Engine merges apply with
  FrontierActivate and eliminates all in-edge movement -- the biggest
  beneficiary of dynamic phase fusion/elimination.
* :class:`BFSGather` -- the conventional pull formulation (gather the
  min parent depth + 1), used by the ablation benchmarks to quantify
  what the fused form saves.

Vertex value: the BFS tree depth (UNREACHED = +inf until visited).
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram
from repro.core.kernels import ApplySpec, GatherSpec

#: Depth marker for vertices not yet reached.
UNREACHED = np.float32(np.inf)


class BFS(GASProgram):
    """Apply-only BFS (depth = iteration number when first activated).

    Push-only (``pull_compatible`` stays False): apply treats activation
    itself as the signal -- every active unvisited vertex is stamped
    with the iteration number -- so running with a superset frontier
    would mark unreached vertices. Use :class:`BFSGather` when the
    runtime should be free to pull.
    """

    name = "bfs"
    gather_reduce = np.minimum
    gather_identity = np.inf

    def __init__(self, source: int = 0):
        self.source = source

    def init_vertices(self, ctx):
        # The source too starts UNREACHED; apply marks it with depth 0 on
        # iteration 0, which flags it "changed" and seeds FrontierActivate.
        return np.full(ctx.num_vertices, UNREACHED, dtype=self.vertex_dtype)

    def init_frontier(self, ctx):
        frontier = np.zeros(ctx.num_vertices, dtype=bool)
        frontier[self.source] = True
        return frontier

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        # A vertex enters the frontier only via FrontierActivate from a
        # changed neighbor, so "unvisited and active" means depth is the
        # current iteration number (source is iteration 0).
        unvisited = np.isinf(old_vals)
        new_vals = np.where(unvisited, np.float32(iteration), old_vals)
        return new_vals, unvisited

    def apply_kernel_spec(self):
        return ApplySpec(kind="mark_level")


class BFSGather(GASProgram):
    """Pull-style BFS: gather min(parent depth) + 1 over in-edges."""

    name = "bfs-gather"
    gather_reduce = np.minimum
    gather_identity = np.inf
    #: improvement-driven apply: extra active vertices whose in-
    #: neighbors did not improve gather no better candidate and stay
    #: unchanged, so the runtime may execute bottom-up iterations.
    pull_compatible = True

    def __init__(self, source: int = 0):
        self.source = source

    def init_vertices(self, ctx):
        vals = np.full(ctx.num_vertices, UNREACHED, dtype=self.vertex_dtype)
        vals[self.source] = 0.0
        return vals

    def init_frontier(self, ctx):
        frontier = np.zeros(ctx.num_vertices, dtype=bool)
        frontier[self.source] = True
        return frontier

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return src_vals + np.float32(1.0)

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        candidate = np.where(has_gather, gathered, np.inf).astype(old_vals.dtype)
        if self.source in vids:
            # The source has no gathered depth on iteration 0; keep it.
            candidate[vids == self.source] = np.minimum(
                candidate[vids == self.source], old_vals[vids == self.source]
            )
        improved = candidate < old_vals
        new_vals = np.where(improved, candidate, old_vals)
        # The source must report "changed" once to seed FrontierActivate.
        changed = improved | ((vids == self.source) & (iteration == 0))
        return new_vals, changed

    # Fused shapes: depth + 1 reduced with min, then keep-the-improvement.
    # The source clamp above is outcome-neutral (every gathered candidate
    # is >= 1 > 0 = the source's depth, so ``improved`` is False at the
    # source either way); plain min_improve with the iteration-0 seed
    # reproduces apply() bit-for-bit.
    def gather_kernel_spec(self):
        return GatherSpec(kind="add_one", reduce="min")

    def apply_kernel_spec(self):
        return ApplySpec(kind="min_improve", source=self.source)
