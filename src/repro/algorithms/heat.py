"""Heat simulation -- one of the GAS-expressible applications the paper

cites (Section 2.1). Discrete diffusion on the graph: each step a vertex
relaxes toward the mean temperature of its in-neighbors,

    T'(v) = (1 - alpha) * T(v) + alpha * mean_{u -> v} T(u).

Gather sums neighbor temperatures (vertex-count normalization happens in
apply via the resident in-degree array). A vertex leaves the frontier
once its temperature moves less than ``tolerance`` per step.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram


class HeatSimulation(GASProgram):
    name = "heat"
    gather_reduce = np.add
    gather_identity = 0.0

    def __init__(
        self,
        hot_vertices=(0,),
        hot_temperature: float = 100.0,
        alpha: float = 0.5,
        tolerance: float = 1e-2,
        max_iterations: int = 500,
    ):
        self.hot_vertices = np.asarray(hot_vertices, dtype=np.int64)
        self.hot_temperature = np.float32(hot_temperature)
        self.alpha = np.float32(alpha)
        self.tolerance = np.float32(tolerance)
        self.max_iterations = max_iterations

    def init_vertices(self, ctx):
        vals = np.zeros(ctx.num_vertices, dtype=self.vertex_dtype)
        vals[self.hot_vertices] = self.hot_temperature
        return vals

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return src_vals

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        # Heat sources are held at fixed temperature (Dirichlet boundary).
        deg = ctx.in_degrees[vids].astype(np.float32)
        mean = np.where(has_gather, gathered / np.maximum(deg, 1.0), old_vals)
        new_vals = (1.0 - self.alpha) * old_vals + self.alpha * mean.astype(old_vals.dtype)
        is_source = np.isin(vids, self.hot_vertices)
        new_vals = np.where(is_source, old_vals, new_vals)
        changed = np.abs(new_vals - old_vals) > self.tolerance
        # Sources keep driving their neighborhood until the field settles.
        changed |= is_source & (iteration == 0)
        return new_vals, changed

    def converged(self, ctx, iteration, frontier_size):
        return iteration >= self.max_iterations
