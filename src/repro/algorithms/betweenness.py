"""Betweenness centrality via Brandes' algorithm, staged on GraphReduce.

A non-trivial composition of GAS programs -- exactly the kind of
"data mining / machine learning" pipeline the paper says programmers
should be able to assemble from sequential-looking pieces (Section 4.1):

1. **Depths**: a BFS from the source (levels of the shortest-path DAG).
2. **Path counts** (:class:`SigmaPhase`): level-synchronous forward
   sweep; a vertex at depth d gathers the sigma of in-neighbors at
   depth d-1 (edges of the shortest-path DAG) and fixes its own count
   exactly at iteration d, so the frontier mechanics enforce Brandes'
   level order for free.
3. **Dependencies** (:class:`DeltaPhase`): the backward accumulation
   runs on the *transposed* graph, so "gather over my out-edges" is
   again an in-edge gather; a vertex at depth d accepts its delta at
   iteration (max_depth - d), summing sigma_v / sigma_w * (1 + delta_w)
   over its DAG children w.

``betweenness_centrality`` drives the three stages per source and
accumulates deltas; validated against networkx on directed graphs.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.bfs import BFS
from repro.core.api import GASProgram
from repro.core.runtime import GraphReduce
from repro.graph.edgelist import EdgeList


class SigmaPhase(GASProgram):
    """Shortest-path counts over a fixed BFS level structure."""

    name = "brandes-sigma"
    gather_reduce = np.add
    gather_identity = 0.0

    def __init__(self, source: int, depths: np.ndarray):
        self.source = source
        self.depths = np.asarray(depths)

    def init_vertices(self, ctx):
        sigma = np.zeros(ctx.num_vertices, dtype=self.vertex_dtype)
        sigma[self.source] = 1.0
        return sigma

    def init_frontier(self, ctx):
        frontier = np.zeros(ctx.num_vertices, dtype=bool)
        frontier[self.source] = True
        return frontier

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        # Only DAG edges (parent one level up) contribute path counts.
        on_dag = self.depths[src_ids] + 1 == self.depths[dst_ids]
        return np.where(on_dag, src_vals, np.float32(0.0))

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        # A vertex's count becomes final exactly at its own BFS level.
        at_level = self.depths[vids] == iteration
        if iteration == 0:
            # The source is final immediately and must propagate.
            return old_vals, at_level
        g = np.where(has_gather, gathered, np.float32(0.0)).astype(old_vals.dtype)
        new_vals = np.where(at_level, g, old_vals)
        return new_vals, at_level & (new_vals > 0)


class DeltaPhase(GASProgram):
    """Backward dependency accumulation (runs on the transposed graph).

    Level-scheduled rather than change-driven: a zero-dependency leaf in
    the middle of the DAG never *changes*, yet its parents' sums still
    need it finalized on time -- so the phase declares ``always_active``
    and terminates by level count.
    """

    name = "brandes-delta"
    gather_reduce = np.add
    gather_identity = 0.0
    always_active = True

    def __init__(self, depths: np.ndarray, sigma: np.ndarray, max_depth: int):
        self.depths = np.asarray(depths)
        self.sigma = np.asarray(sigma)
        self.max_depth = int(max_depth)

    def init_vertices(self, ctx):
        return np.zeros(ctx.num_vertices, dtype=self.vertex_dtype)

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def converged(self, ctx, iteration, frontier_size):
        # Level max_depth finalizes at iteration 0; level 1 (the
        # source's children) at max_depth - 1.
        return iteration > self.max_depth

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        # Transposed graph: src is the DAG *child* w (one level deeper in
        # the original); its delta is src_vals.
        child_depth = self.depths[src_ids]
        on_dag = child_depth == self.depths[dst_ids] + 1
        sigma_w = self.sigma[src_ids]
        sigma_v = self.sigma[dst_ids]
        contrib = np.where(
            on_dag & (sigma_w > 0),
            sigma_v / np.maximum(sigma_w, 1.0) * (1.0 + src_vals),
            np.float32(0.0),
        )
        return contrib.astype(np.float32)

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        # Level max_depth finalizes at iteration 0, max_depth-1 at 1, ...
        at_level = self.depths[vids] == self.max_depth - iteration
        reachable = np.isfinite(self.depths[vids])
        final = at_level & reachable
        g = np.where(has_gather, gathered, np.float32(0.0)).astype(old_vals.dtype)
        new_vals = np.where(final, g, old_vals)
        return new_vals, final


def betweenness_centrality(
    edges: EdgeList,
    sources=None,
    engine_factory=None,
) -> np.ndarray:
    """Unnormalized betweenness over shortest paths from ``sources``

    (all vertices by default -- exact Brandes; a sample gives the usual
    approximation). ``engine_factory(graph)`` builds the executor per
    stage, defaulting to :class:`GraphReduce`; every stage therefore
    runs through the paper's out-of-core machinery.
    """
    if engine_factory is None:
        engine_factory = GraphReduce
    n = edges.num_vertices
    if sources is None:
        sources = range(n)
    transposed = EdgeList(
        n, edges.dst, edges.src, edges.weights, edges.undirected, f"{edges.name}-T"
    )
    forward_engine = engine_factory(edges)
    backward_engine = engine_factory(transposed)
    centrality = np.zeros(n, dtype=np.float64)
    for source in sources:
        depths = forward_engine.run(BFS(source=source)).vertex_values
        reached = np.isfinite(depths)
        if reached.sum() <= 1:
            continue
        max_depth = int(depths[reached].max())
        sigma = forward_engine.run(SigmaPhase(source, depths)).vertex_values
        delta = backward_engine.run(
            DeltaPhase(depths, sigma, max_depth)
        ).vertex_values
        delta = np.where(reached, delta, 0.0)
        delta[source] = 0.0
        centrality += delta
    return centrality
