"""k-core decomposition by iterative peeling, expressed in GAS.

A vertex is *in* the k-core while at least k of its in-neighbors are in.
Vertex value: 1.0 (alive) or 0.0 (peeled). Gather counts live neighbors
(sum of neighbor liveness); apply peels vertices whose count drops below
k, and the change propagates through FrontierActivate until a fixed
point -- the standard peeling cascade. On undirected storage this is
exactly the k-core of the undirected graph (validated against
networkx.k_core in the tests).

Mutable edge state is not needed; like CC, this is a gather+apply
program, so GraphReduce eliminates scatter movement.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram


class KCore(GASProgram):
    name = "kcore"
    gather_reduce = np.add
    gather_identity = 0.0

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        self.k = k

    def init_vertices(self, ctx):
        return np.ones(ctx.num_vertices, dtype=self.vertex_dtype)

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return src_vals  # 1 per live in-neighbor

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        live_neighbors = np.where(has_gather, gathered, np.float32(0.0))
        alive = old_vals > 0.5
        survives = alive & (live_neighbors >= self.k)
        new_vals = np.where(survives, np.float32(1.0), np.float32(0.0))
        changed = alive & ~survives  # just peeled -> wake the neighbors
        return new_vals, changed

    def core_members(self, values: np.ndarray) -> np.ndarray:
        """Vertex ids remaining in the k-core."""
        return np.flatnonzero(values > 0.5)
