"""Community detection by synchronous max-label propagation.

Each vertex starts in its own community; every round an active vertex
adopts the largest label among its in-neighbors if it exceeds its own
(max-reduce keeps the update a ufunc and the program deterministic,
unlike frequency-based LPA tie-breaking). On undirected storage the
labels flood exactly like CC but toward the *maximum* id, so connected
components converge to their max vertex id -- a useful cross-check --
while early termination (``max_rounds``) yields the coarse community
structure LPA is used for in practice.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram


class LabelPropagation(GASProgram):
    name = "labelprop"
    gather_reduce = np.maximum
    gather_identity = -np.inf

    def __init__(self, max_rounds: int | None = None):
        self.max_rounds = max_rounds

    def init_vertices(self, ctx):
        return np.arange(ctx.num_vertices, dtype=self.vertex_dtype)

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return src_vals

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        candidate = np.where(has_gather, gathered, -np.inf).astype(old_vals.dtype)
        changed = candidate > old_vals
        new_vals = np.where(changed, candidate, old_vals)
        return new_vals, changed

    def converged(self, ctx, iteration, frontier_size):
        return self.max_rounds is not None and iteration >= self.max_rounds
