"""Maximal independent set by Luby's algorithm under GAS.

Vertex state encodes the three-way status: UNDECIDED, IN (the set) or
OUT (dominated). Each vertex draws a fixed random priority; gather
returns, per in-edge, a sentinel encoding of the source's status and
priority; apply then decides:

* any neighbor IN  -> OUT;
* my priority beats every undecided neighbor's -> IN;
* otherwise stay undecided and wait for neighbors to change.

Activation is change-driven, exactly the frontier machinery's sweet
spot: a vertex can only become decidable when a neighbor decided.
Requires undirected (symmetrized) storage so "neighbor" is symmetric.

The encoding packs status into the float contribution: an IN neighbor
contributes +inf (forces OUT), an OUT neighbor -inf (ignorable), an
undecided neighbor its priority in (0, 1); max-reduce then yields
exactly the one number apply needs.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram

UNDECIDED = np.float32(0.0)
IN_SET = np.float32(1.0)
OUT = np.float32(2.0)


class MaximalIndependentSet(GASProgram):
    name = "mis"
    gather_reduce = np.maximum
    gather_identity = -np.inf

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._priorities: np.ndarray | None = None

    def priorities(self, n: int) -> np.ndarray:
        if self._priorities is None or len(self._priorities) != n:
            rng = np.random.default_rng(self.seed)
            # Strictly positive, all-distinct priorities in (0, 1).
            self._priorities = (
                (rng.permutation(n).astype(np.float64) + 1.0) / (n + 2.0)
            ).astype(np.float32)
        return self._priorities

    def init_vertices(self, ctx):
        self.priorities(ctx.num_vertices)
        return np.full(ctx.num_vertices, UNDECIDED, dtype=self.vertex_dtype)

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        prio = self.priorities(ctx.num_vertices)[src_ids]
        out = np.where(src_vals == IN_SET, np.float32(np.inf), prio)
        return np.where(src_vals == OUT, np.float32(-np.inf), out)

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        strongest = np.where(has_gather, gathered, np.float32(-np.inf))
        undecided = old_vals == UNDECIDED
        my_prio = self.priorities(ctx.num_vertices)[vids]
        dominated = undecided & np.isposinf(strongest)
        wins = undecided & ~dominated & (my_prio > strongest)
        new_vals = np.where(dominated, OUT, np.where(wins, IN_SET, old_vals))
        return new_vals, dominated | wins

    def members(self, values: np.ndarray) -> np.ndarray:
        return np.flatnonzero(values == IN_SET)
