"""Single-Source Shortest Paths (label-correcting / Bellman-Ford style).

Gather: candidate distance ``dist(u) + w(u, v)`` over in-edges, reduced
with min. Apply: keep the improvement and mark changed. No scatter (edge
weights are immutable), so the Phase Fusion Engine skips out-edge value
movement while FrontierActivate still propagates the frontier.

"BFS is essentially SSSP with equal edge weights" (Section 6.2.3); the
frontier dynamics of the two match, which Figure 16 exploits by plotting
only one of them.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram
from repro.core.kernels import ApplySpec, GatherSpec

UNREACHED = np.float32(np.inf)


class SSSP(GASProgram):
    name = "sssp"
    gather_reduce = np.minimum
    gather_identity = np.inf
    needs_weights = True
    #: min-distance apply is improvement-driven, so pull iterations
    #: (superset frontiers) cannot change results.
    pull_compatible = True

    def __init__(self, source: int = 0):
        self.source = source

    def init_vertices(self, ctx):
        vals = np.full(ctx.num_vertices, UNREACHED, dtype=self.vertex_dtype)
        vals[self.source] = 0.0
        return vals

    def init_frontier(self, ctx):
        frontier = np.zeros(ctx.num_vertices, dtype=bool)
        frontier[self.source] = True
        return frontier

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return src_vals + weights

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        candidate = np.where(has_gather, gathered, np.inf).astype(old_vals.dtype)
        improved = candidate < old_vals
        new_vals = np.where(improved, candidate, old_vals)
        # Seed: the source must fire FrontierActivate once even though
        # nothing improves its distance of zero.
        changed = improved | ((vids == self.source) & (iteration == 0))
        return new_vals, changed

    # Fused shapes: dist + w reduced with min per destination, then a
    # keep-the-improvement apply with the iteration-0 source seed.
    def gather_kernel_spec(self):
        return GatherSpec(kind="add_weight", reduce="min")

    def apply_kernel_spec(self):
        return ApplySpec(kind="min_improve", source=self.source)


class DeltaSSSP(GASProgram):
    """Delta-stepping SSSP (Meyer & Sanders): bucketed label correcting.

    Plain :class:`SSSP` relaxes every improvement immediately, so one
    long cheap path can drag wavefronts of corrections behind it. This
    variant *stores* every improvement but only propagates (marks
    changed, hence activates out-neighbors) vertices whose tentative
    distance falls inside the currently open bucket ``[0, threshold)``.
    When the frontier drains, :meth:`reseed_frontier` opens the bucket
    containing the smallest still-unpropagated finite distance and
    re-activates its vertices.

    Key invariant making one threshold (not a per-bucket queue) enough:
    a vertex whose distance *improves* is re-propagated regardless of
    the ledger, and an already-finite vertex can only improve to a value
    below the open threshold's bucket or be rediscovered later by
    reseed -- so no settled-too-early misses occur and the fixed point
    is the exact SSSP distance vector (bit-identical: both solve the
    same float32 min equations).

    ``process_safe = False``: the propagation ledger is mutable Python
    state the process-pool workers would each mutate privately.
    ``pull_compatible = False``: propagation depends on the ledger, not
    only on improvement, so superset frontiers would propagate early.
    """

    name = "sssp-delta"
    gather_reduce = np.minimum
    gather_identity = np.inf
    needs_weights = True
    pull_compatible = False
    process_safe = False

    def __init__(self, source: int = 0, delta: float = 1.0):
        if not delta > 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.source = source
        self.delta = float(delta)
        self._threshold = float(delta)
        self._propagated: np.ndarray | None = None

    def init_vertices(self, ctx):
        # Reset the bucket state so one program instance can be re-run.
        self._threshold = self.delta
        self._propagated = np.zeros(ctx.num_vertices, dtype=bool)
        vals = np.full(ctx.num_vertices, UNREACHED, dtype=self.vertex_dtype)
        vals[self.source] = 0.0
        return vals

    def init_frontier(self, ctx):
        frontier = np.zeros(ctx.num_vertices, dtype=bool)
        frontier[self.source] = True
        return frontier

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return src_vals + weights

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        candidate = np.where(has_gather, gathered, np.inf).astype(old_vals.dtype)
        improved = candidate < old_vals
        new_vals = np.where(improved, candidate, old_vals)
        # Propagate inside the open bucket: fresh improvements always,
        # reseeded (never-propagated) vertices once. Discoveries beyond
        # the threshold keep their value but stay silent until their
        # bucket opens.
        in_bucket = new_vals < self._threshold
        fresh = in_bucket & (improved | ~self._propagated[vids])
        fresh |= (vids == self.source) & (iteration == 0)
        self._propagated[vids[fresh]] = True
        return new_vals, fresh

    def reseed_frontier(self, ctx, values):
        pending = np.isfinite(values) & ~self._propagated
        if not pending.any():
            return None
        # Jump straight to the bucket holding the closest pending vertex
        # (skipping empty buckets) and re-activate everything in it.
        lo = float(values[pending].min())
        self._threshold = (np.floor(lo / self.delta) + 1.0) * self.delta
        return pending & (values < self._threshold)
