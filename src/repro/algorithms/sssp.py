"""Single-Source Shortest Paths (label-correcting / Bellman-Ford style).

Gather: candidate distance ``dist(u) + w(u, v)`` over in-edges, reduced
with min. Apply: keep the improvement and mark changed. No scatter (edge
weights are immutable), so the Phase Fusion Engine skips out-edge value
movement while FrontierActivate still propagates the frontier.

"BFS is essentially SSSP with equal edge weights" (Section 6.2.3); the
frontier dynamics of the two match, which Figure 16 exploits by plotting
only one of them.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram

UNREACHED = np.float32(np.inf)


class SSSP(GASProgram):
    name = "sssp"
    gather_reduce = np.minimum
    gather_identity = np.inf
    needs_weights = True

    def __init__(self, source: int = 0):
        self.source = source

    def init_vertices(self, ctx):
        vals = np.full(ctx.num_vertices, UNREACHED, dtype=self.vertex_dtype)
        vals[self.source] = 0.0
        return vals

    def init_frontier(self, ctx):
        frontier = np.zeros(ctx.num_vertices, dtype=bool)
        frontier[self.source] = True
        return frontier

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        return src_vals + weights

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        candidate = np.where(has_gather, gathered, np.inf).astype(old_vals.dtype)
        improved = candidate < old_vals
        new_vals = np.where(improved, candidate, old_vals)
        # Seed: the source must fire FrontierActivate once even though
        # nothing improves its distance of zero.
        changed = improved | ((vids == self.source) & (iteration == 0))
        return new_vals, changed
