"""Connected Components by label propagation (the paper's Figure 6).

gatherMap forwards the source label, gatherReduce takes the min, apply
keeps the smaller label and reports whether it changed; there is no
scatter. Undirected inputs are stored as pairs of directed edges
(Section 6.1), so min-labels flood whole weakly connected components.
Every vertex starts active with its own id as label.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import GASProgram
from repro.core.kernels import ApplySpec, GatherSpec


class ConnectedComponents(GASProgram):
    name = "cc"
    gather_reduce = np.minimum
    gather_identity = np.inf
    #: min-label apply is improvement-driven, so pull iterations
    #: (superset frontiers) cannot change results.
    pull_compatible = True

    def init_vertices(self, ctx):
        return np.arange(ctx.num_vertices, dtype=self.vertex_dtype)

    def init_frontier(self, ctx):
        return np.ones(ctx.num_vertices, dtype=bool)

    def gather_map(self, ctx, src_ids, dst_ids, src_vals, weights, edge_states):
        # Figure 6's gatherMap: "return *srcLabel".
        return src_vals

    def apply(self, ctx, vids, old_vals, gathered, has_gather, iteration):
        # Figure 6's apply: label = min(curLabel, gathered); changed when
        # the gathered label is strictly smaller.
        candidate = np.where(has_gather, gathered, np.inf).astype(old_vals.dtype)
        changed = candidate < old_vals
        new_vals = np.where(changed, candidate, old_vals)
        return new_vals, changed

    # Fused shapes: forward the label, min-reduce, keep the smaller one.
    def gather_kernel_spec(self):
        return GatherSpec(kind="copy", reduce="min")

    def apply_kernel_spec(self):
        return ApplySpec(kind="min_improve")
