"""Graph algorithms expressed as GAS programs (Section 6.1).

The four evaluated algorithms -- BFS, SSSP, PageRank and Connected
Components -- plus two of the GAS-expressible extensions the paper cites
(heat simulation and sparse matrix-vector multiplication).

Each program is a :class:`repro.core.api.GASProgram`; the same instances
drive GraphReduce and every baseline framework, so cross-framework
results are directly comparable.
"""

from repro.algorithms.betweenness import betweenness_centrality
from repro.algorithms.bfs import BFS, BFSGather
from repro.algorithms.cc import ConnectedComponents
from repro.algorithms.heat import HeatSimulation
from repro.algorithms.kcore import KCore
from repro.algorithms.labelprop import LabelPropagation
from repro.algorithms.mis import MaximalIndependentSet
from repro.algorithms.pagerank import PageRank
from repro.algorithms.spmv import SpMV
from repro.algorithms.sssp import SSSP, DeltaSSSP

#: The paper's Table-3/Table-4 algorithm suite, in column order.
PAPER_ALGORITHMS = {
    "BFS": lambda: BFS(source=0),
    "SSSP": lambda: SSSP(source=0),
    "Pagerank": lambda: PageRank(),
    "CC": lambda: ConnectedComponents(),
}

__all__ = [
    "BFS",
    "BFSGather",
    "SSSP",
    "DeltaSSSP",
    "PageRank",
    "ConnectedComponents",
    "HeatSimulation",
    "SpMV",
    "KCore",
    "LabelPropagation",
    "MaximalIndependentSet",
    "betweenness_centrality",
    "PAPER_ALGORITHMS",
]
