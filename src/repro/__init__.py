"""GraphReduce (SC '15) reproduction.

Out-of-GPU-memory graph processing on a simulated accelerator-based
system: the paper's Gather-Apply-Scatter framework (``repro.core``), the
graph substrate and Table-1 dataset stand-ins (``repro.graph``), the
machine model (``repro.sim``), the comparison frameworks
(``repro.baselines``), the evaluated algorithms (``repro.algorithms``)
and the benchmark harness for every paper table and figure
(``repro.bench``).

Quickstart::

    from repro.core import GraphReduce
    from repro.algorithms import PageRank
    from repro.graph.generators import social_graph

    result = GraphReduce(social_graph(12, 40_000)).run(PageRank())
    result.vertex_values   # exact values
    result.sim_time        # simulated seconds on the modeled K20c node
"""

__version__ = "1.0.0"

from repro.core import GraphReduce, GraphReduceOptions, GraphReduceResult

__all__ = ["GraphReduce", "GraphReduceOptions", "GraphReduceResult", "__version__"]
