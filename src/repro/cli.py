"""Command-line interface.

    python -m repro datasets
    python -m repro info
    python -m repro run --graph orkut --algorithm bfs
    python -m repro run --graph path/to/edges.txt --algorithm pagerank
    python -m repro partition edges.npz --out store/ --partitions 8
    python -m repro run --shard-store store/ --algorithm pagerank --memory-budget 8000000
    python -m repro compare --graph kron_g500-logn21 --algorithm bfs
    python -m repro trace --algo pagerank --out trace.json
    python -m repro profile --algo pagerank --out profile.json
    python -m repro bench-check --snapshot benchmarks/BENCH_baseline.json
    python -m repro bench-wallclock --update
    python -m repro bench-diff old.json new.json
    python -m repro run --graph orkut --algorithm pagerank --telemetry-out run.jsonl
    python -m repro monitor run.jsonl
    python -m repro telemetry-report run.jsonl --out report.json

``run`` executes one algorithm under GraphReduce and prints the result
summary plus the simulated performance profile; ``compare`` adds every
baseline framework; ``trace`` writes a Chrome ``trace_event`` JSON
(open in chrome://tracing or Perfetto) plus the phase report;
``profile`` runs the bottleneck-attribution profiler (per-engine
occupancy, overlap efficiency, a bottleneck verdict and the cost-model
validation pass) and writes ``profile.json``; ``bench-check`` reruns
the standard benchmark suite against a committed timing snapshot,
exiting non-zero on regression; ``bench-wallclock`` measures the host
fast-path wall-clock speedups (fast vs slow configuration, same
machine) against ``benchmarks/BENCH_wallclock.json``, gating both the
recorded simulated metrics and the per-case speedup floors; and
``bench-diff`` prints per-phase / per-counter deltas between any two
bench, profile, or telemetry-report snapshots; ``monitor`` tails a
run's ``--telemetry-out`` JSONL stream as a live terminal view (or
``--once`` for CI health checks); and ``telemetry-report`` folds a
finished stream into a diffable report document. Graphs
are either Table-1 dataset names or paths to edge-list / ``.npz`` /
MatrixMarket files.

``partition`` builds an on-disk shard store (streaming two-pass
external partitioner for ``.txt``/``.npz`` inputs -- the full edge set
never resides in RAM); ``run`` and ``profile`` then execute straight
from the store with ``--shard-store``, memory-mapping shards behind the
host prefetch pipeline, optionally capped by ``--memory-budget``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.algorithms import (
    BFS,
    BFSGather,
    ConnectedComponents,
    DeltaSSSP,
    KCore,
    LabelPropagation,
    PageRank,
    SSSP,
)
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.edgelist import EdgeList
from repro.graph.io import load_edgelist_txt, load_matrix_market, load_npz
from repro.graph.properties import footprint_bytes
from repro.sim.specs import DeviceSpec, HostSpec, SCALE

def _parse_id_list(text: str) -> list[int]:
    """Vertex ids from a comma/whitespace-separated spec."""
    ids = []
    for token in text.replace(",", " ").split():
        try:
            ids.append(int(token))
        except ValueError:
            raise SystemExit(
                f"error: invalid vertex id {token!r} in source list"
            ) from None
    return ids


def _source_ids(args, default=(0,)) -> list[int]:
    """Every source id the flags name: ``--sources-file`` lines first,
    then the ``--source``/``--sources`` comma list; ``default`` when
    neither is given."""
    ids: list[int] = []
    file_spec = getattr(args, "sources_file", None)
    if file_spec:
        path = Path(file_spec)
        if not path.exists():
            raise SystemExit(f"error: sources file {file_spec!r} does not exist")
        ids.extend(_parse_id_list(path.read_text()))
    raw = getattr(args, "sources", None)
    if raw is None:
        raw = getattr(args, "source", None)
    if raw is not None:
        ids.extend(_parse_id_list(str(raw)))
    if not ids and default is not None:
        ids = list(default)
    return ids


def _single_source(args) -> int:
    ids = _source_ids(args)
    if len(ids) != 1:
        raise SystemExit(
            "error: this command takes exactly one --source; "
            "run multi-source traversals with `repro batch --sources` "
            "(or `repro run` with a comma list for bfs/sssp)"
        )
    return ids[0]


def _check_sources(ids, num_vertices: int) -> None:
    """Fail fast on out-of-range ids -- before any numpy indexing."""
    bad = [i for i in ids if i < 0 or i >= num_vertices]
    if bad:
        raise SystemExit(
            f"error: source {bad[0]} out of range for a graph with "
            f"{num_vertices} vertices (valid ids: 0..{num_vertices - 1})"
        )


ALGORITHMS = {
    # A non-push direction needs a pull-compatible program; the gather
    # formulation computes the same float32 levels as the fused form.
    "bfs": lambda args: (
        BFSGather(source=_single_source(args))
        if getattr(args, "direction", "push") != "push"
        else BFS(source=_single_source(args))
    ),
    "bfs-gather": lambda args: BFSGather(source=_single_source(args)),
    "sssp": lambda args: SSSP(source=_single_source(args)),
    "sssp-delta": lambda args: DeltaSSSP(source=_single_source(args), delta=args.delta),
    "pagerank": lambda args: PageRank(tolerance=args.tolerance),
    # Fixed-iteration power formulation: every vertex active/changed
    # each round (the classic PageRank benchmark shape, and the steady
    # state the host fast paths reuse plans across).
    "pagerank-power": lambda args: PageRank(
        tolerance=None, max_iterations=args.power_iterations
    ),
    "cc": lambda args: ConnectedComponents(),
    "kcore": lambda args: KCore(k=args.k),
    "labelprop": lambda args: LabelPropagation(),
}


def _fastpath_options(args) -> dict:
    """GraphReduceOptions kwargs from the host fast-path toggles."""
    backend = args.parallel_backend
    workers = args.workers if args.workers is not None else args.parallel_shards
    if backend == "serial":
        workers = 0
    elif workers <= 0:
        # A parallel backend was requested without a worker count.
        workers = 2 if backend in ("processes", "cluster") else 0
    opts = {
        "dense_fast_path": not args.no_dense_path,
        "plan_cache": not args.no_plan_cache,
        "sparse_bypass": not args.no_sparse_bypass,
        "direction": args.direction,
        "direction_alpha": args.direction_alpha,
        "direction_beta": args.direction_beta,
        "parallel_shards": workers,
        "parallel_backend": backend,
        "frontier_policy": getattr(args, "frontier_policy", "replicated"),
        "kernel_backend": args.kernel_backend,
    }
    if args.plan_cache_budget is not None:
        # 0 means unbounded (the pre-budget behavior); otherwise bytes.
        opts["plan_cache_budget"] = args.plan_cache_budget or None
    return opts


def _telemetry_config(args):
    """TelemetryConfig from the ``--telemetry-*`` flags, or None when off."""
    if not args.telemetry_out and not args.flight_recorder:
        return None
    from repro.obs.telemetry import TelemetryConfig

    if args.telemetry_out:
        # The bus appends (the serial fallback reopens the sink
        # mid-run); a fresh invocation starts from a clean stream.
        Path(args.telemetry_out).write_text("")
    return TelemetryConfig(
        out=args.telemetry_out,
        interval=args.telemetry_interval,
        budget_bytes=args.telemetry_budget,
        flight_recorder=args.flight_recorder,
        stall_timeout=args.stall_timeout,
    )


def load_graph(spec: str) -> EdgeList:
    """A Table-1 dataset name or a graph file path."""
    if spec in DATASETS:
        return load_dataset(spec)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"error: {spec!r} is neither a dataset ({', '.join(sorted(DATASETS))}) "
            "nor an existing file"
        )
    if path.suffix == ".npz":
        return load_npz(path)
    if path.suffix in (".mtx", ".mm"):
        return load_matrix_market(path, name=path.stem)
    return load_edgelist_txt(path)


def prepare(graph: EdgeList, args) -> EdgeList:
    if args.algorithm in ("sssp", "sssp-delta") and graph.weights is None:
        graph = graph.with_random_weights(seed=0)
    if args.algorithm in ("cc", "kcore", "labelprop") and not graph.undirected:
        sym = graph.symmetrized()
        sym.name = graph.name
        graph = sym
    return graph


def cmd_datasets(args) -> int:
    device = DeviceSpec()
    print(f"{'name':20s} {'family':18s} {'V':>9s} {'E':>10s} {'size':>9s}  class")
    for name, info in DATASETS.items():
        g = load_dataset(name)
        fp = footprint_bytes(g)
        cls = "in-memory" if fp <= device.memory_bytes else "out-of-memory"
        print(
            f"{name:20s} {info.family:18s} {g.num_vertices:9d} "
            f"{g.num_edges:10d} {fp / 2**20:7.1f}MB  {cls}"
        )
    return 0


def cmd_info(args) -> int:
    dev, host = DeviceSpec(), HostSpec()
    print(f"simulated machine (paper testbed at 1/{SCALE} scale):")
    print(f"  device : {dev.name}, {dev.memory_bytes / 2**20:.1f} MiB, "
          f"{dev.sm_count} SMX, {dev.hyperq} hardware queues")
    print(f"  PCIe   : {dev.pcie_bandwidth / 1e9:.1f} GB/s effective "
          f"({dev.pcie_peak_bandwidth / 1e9:.1f} GB/s peak), "
          f"{dev.memcpy_setup * 1e6:.0f} us setup/copy")
    print(f"  host   : {host.name}, {host.cores} cores, "
          f"{host.memory_bytes / 2**20:.0f} MiB DRAM, "
          f"SSD {host.ssd_bandwidth / 1e6:.0f} MB/s")
    return 0


def _make_engine(args, opts) -> tuple:
    """(engine, printable-graph) for the in-RAM or ``--shard-store`` path.

    Store runs use the graph exactly as stored -- ``prepare``'s
    symmetrize/random-weight conveniences apply only to in-RAM inputs
    (an unweighted store running SSSP gets unit weights).
    """
    if getattr(args, "shard_store", None):
        from repro.core.shardstore import ShardStore

        store = ShardStore.open(args.shard_store)
        return GraphReduce(shard_store=store, options=opts), store.edgelist()
    if not args.graph:
        raise SystemExit("error: provide --graph or --shard-store")
    graph = prepare(load_graph(args.graph), args)
    return GraphReduce(graph, options=opts), graph


def _print_prefetch(result) -> None:
    pf = result.prefetch
    if not pf:
        return
    acquired = pf["hits"] + pf["waits"] + pf["faults"]
    line = (f"prefetch   : {pf['hits']}/{acquired} warm, {pf['waits']} waits "
            f"({pf['wait_seconds']:.3f} s), {pf['faults']} faults, "
            f"{pf['evictions']} evictions, "
            f"{pf['bytes_loaded'] / 2**20:.2f} MiB faulted in "
            f"(cache capacity {pf['capacity']})")
    if pf.get("runs", 1) > 1:
        line += f", kept warm across {pf['runs']} runs"
    print(line)


def _run_multidevice(args, opts) -> int:
    """`repro run --devices N`: the simulated multi-device scheduler."""
    from repro.core.multigpu import MultiGPUGraphReduce

    if getattr(args, "shard_store", None):
        raise SystemExit(
            "error: --devices needs an in-RAM --graph (the multi-device "
            "scheduler partitions and distributes the graph itself)"
        )
    if not args.graph:
        raise SystemExit("error: provide --graph")
    graph = prepare(load_graph(args.graph), args)
    sources = _source_ids(args)
    if args.algorithm in ("bfs", "bfs-gather", "sssp", "sssp-delta"):
        _check_sources(sources, graph.num_vertices)
        if len(sources) > 1:
            raise SystemExit(
                "error: --devices runs a single query; multi-source "
                "batches use `repro batch` on one device"
            )
    program = ALGORITHMS[args.algorithm](args)
    result = MultiGPUGraphReduce(
        graph, num_devices=args.devices, options=opts
    ).run(program, max_iterations=args.max_iterations)
    vals = result.vertex_values
    print(f"graph      : {graph}")
    print(f"algorithm  : {program.name}")
    print(f"devices    : {result.num_devices} "
          f"({result.num_partitions} shards, "
          f"frontier {result.frontier_policy})")
    print("ownership  : " + ", ".join(
        f"dev{d.device}={d.owned_shards} shards/{d.owned_vertices} vertices"
        for d in result.per_device))
    print(f"iterations : {result.iterations} (converged={result.converged})")
    print(f"sim time   : {result.sim_time:.6f} s "
          f"(memcpy {result.memcpy_time:.6f} s summed over devices)")
    print(f"replication: {result.replication_bytes / 2**20:.2f} MiB "
          f"(peer DMA {result.p2p_bytes / 2**20:.2f} MiB, "
          f"host-staged {result.host_staged_bytes / 2**20:.2f} MiB)")
    finite = vals[np.isfinite(vals)]
    if len(finite):
        print(f"values     : min {finite.min():.4g}, max {finite.max():.4g}, "
              f"finite {len(finite)}/{len(vals)}")
    return 0


def cmd_run(args) -> int:
    opts = (
        GraphReduceOptions.unoptimized()
        if args.unoptimized
        else GraphReduceOptions(
            num_partitions=args.partitions,
            cache_policy=args.cache_policy,
            host_backing=args.host_backing,
            execution_mode=args.execution_mode,
            memory_budget=args.memory_budget,
            **_fastpath_options(args),
        )
    )
    telemetry_cfg = _telemetry_config(args)
    if telemetry_cfg is not None:
        opts = replace(opts, telemetry=telemetry_cfg)
    if getattr(args, "devices", 1) > 1:
        return _run_multidevice(args, opts)
    engine, graph = _make_engine(args, opts)
    sources = _source_ids(args)
    if args.algorithm in ("bfs", "bfs-gather", "sssp", "sssp-delta"):
        _check_sources(sources, graph.num_vertices)
    if len(sources) > 1:
        if args.algorithm not in ("bfs", "sssp"):
            raise SystemExit(
                "error: a multi-source --source list batches bfs/sssp only; "
                "use `repro batch` for other families"
            )
        return _print_batch(args, engine, graph, args.algorithm, sources)
    program = ALGORITHMS[args.algorithm](args)
    result = engine.run(program, max_iterations=args.max_iterations)
    vals = result.vertex_values
    print(f"graph      : {graph}")
    print(f"algorithm  : {program.name}")
    print(f"iterations : {result.iterations} (converged={result.converged})")
    print(f"mode       : {'in-GPU-memory' if result.in_memory_mode else 'streaming'}"
          f" with {result.num_partitions} shards, K={result.concurrent_shards}")
    print(f"sim time   : {result.sim_time:.6f} s "
          f"(memcpy {result.memcpy_time:.6f} s, "
          f"{100 * result.memcpy_fraction:.1f}% of execution)")
    print(f"H2D / D2H  : {result.stats.h2d_bytes / 2**20:.2f} / "
          f"{result.stats.d2h_bytes / 2**20:.2f} MiB, "
          f"{result.stats.kernel_launches} kernels")
    if result.plan_cache is not None:
        pc = result.plan_cache
        queries = pc["hits"] + pc["misses"]
        line = (f"plan cache : {pc['hits']}/{queries} hits "
                f"({100 * pc['hit_rate']:.1f}%), {pc['invalidations']} invalidations, "
                f"{pc.get('sparse_bypass', 0)} sparse bypasses")
        if pc.get("carried_plans"):
            line += f", {pc['carried_plans']} plans carried warm"
        print(line)
    if result.kernels is not None:
        k = result.kernels
        print(f"kernels    : {k['backend']} backend, "
              f"{k.get('fused_calls', 0)} fused calls, "
              f"{k.get('fallbacks', 0)} fallbacks, "
              f"arena {k.get('reuses', 0)} reuses")
    if result.direction_decisions is not None:
        pulls = sum(1 for d in result.direction_decisions if d.direction == "pull")
        print(f"direction  : {args.direction} "
              f"({pulls}/{len(result.direction_decisions)} pull iterations)")
    _print_prefetch(result)
    if result.telemetry is not None:
        t = result.telemetry
        line = f"telemetry  : {t['records']} records"
        if t.get("out"):
            line += f" -> {t['out']}"
        line += f", {len(t['incidents'])} incidents"
        fr = t.get("flight_recorder")
        if fr:
            line += (f", flight recorder {fr['spans']['recorded']} spans "
                     f"({fr['spans']['dropped']} dropped)")
        print(line)
    finite = vals[np.isfinite(vals)]
    if len(finite):
        print(f"values     : min {finite.min():.4g}, max {finite.max():.4g}, "
              f"finite {len(finite)}/{len(vals)}")
    return 0


def cmd_trace(args) -> int:
    from repro.core.report import build_report
    from repro.obs.export import memcpy_duration_us, result_to_chrome_trace

    graph = prepare(load_graph(args.graph), args)
    program = ALGORITHMS[args.algorithm](args)
    opts = (
        GraphReduceOptions.unoptimized()
        if args.unoptimized
        else GraphReduceOptions(num_partitions=args.partitions, **_fastpath_options(args))
    )
    result = GraphReduce(graph, options=opts).run(program, max_iterations=args.max_iterations)
    doc = result_to_chrome_trace(result)
    Path(args.out).write_text(json.dumps(doc, separators=(",", ":")))
    report = build_report(result)
    trace_memcpy = memcpy_duration_us(doc) / 1e6
    print(f"wrote {args.out}: {len(doc['traceEvents'])} events "
          f"({result.iterations} iterations, {result.num_partitions} shards)")
    print(f"open in chrome://tracing or https://ui.perfetto.dev (legacy trace)")
    print(f"memcpy: trace {trace_memcpy:.6f} s vs report {report.memcpy_time:.6f} s")
    print()
    print(report.to_text())
    # Defensive consistency gate: the trace must agree with the report.
    if report.memcpy_time > 0 and abs(trace_memcpy - report.memcpy_time) > 0.01 * report.memcpy_time:
        print("error: trace/report memcpy mismatch exceeds 1%", file=sys.stderr)
        return 1
    return 0


def cmd_profile(args) -> int:
    from repro.obs.export import write_chrome_trace
    from repro.obs.profile import build_profile, write_profile

    program = ALGORITHMS[args.algorithm](args)
    opts = (
        GraphReduceOptions.unoptimized()
        if args.unoptimized
        else GraphReduceOptions(
            num_partitions=args.partitions,
            cache_policy=args.cache_policy,
            memory_budget=args.memory_budget,
            **_fastpath_options(args),
        )
    )
    engine, graph = _make_engine(args, opts)
    result = engine.run(program, max_iterations=args.max_iterations)
    report = build_profile(result)
    if getattr(args, "devices", 1) > 1:
        from repro.core.multigpu import MultiGPUGraphReduce

        mg = MultiGPUGraphReduce(
            graph, num_devices=args.devices, options=opts
        ).run(ALGORITHMS[args.algorithm](args), max_iterations=args.max_iterations)
        report.devices = {
            "num_devices": mg.num_devices,
            "frontier_policy": mg.frontier_policy,
            "sim_time": mg.sim_time,
            "speedup_vs_profiled": report.sim_time / mg.sim_time if mg.sim_time else 0.0,
            "replication_bytes": mg.replication_bytes,
            "p2p_bytes": mg.p2p_bytes,
            "host_staged_bytes": mg.host_staged_bytes,
        }
    print(report.to_text())
    path = write_profile(args.out, report)
    print(f"\nwrote {path}")
    if args.trace_out:
        print(f"wrote {write_chrome_trace(args.trace_out, result=result)}")
    # Consistency gate: per-engine busy time must reconcile with the
    # device trace (they observe the same service windows), and the
    # cost-model validation pass must hold.
    for name, cats in (("h2d", ("h2d",)), ("d2h", ("d2h",)), ("sm", ("kernel",))):
        eng = report.engines.get(name)
        if eng is None:
            continue
        trace_busy = result.trace.service_busy_span(*cats)
        if trace_busy > 0 and abs(eng.busy_seconds - trace_busy) > 0.01 * trace_busy:
            print(f"error: engine {name} busy time disagrees with the trace "
                  f"({eng.busy_seconds:.9f}s vs {trace_busy:.9f}s)", file=sys.stderr)
            return 1
    if not report.validation_ok:
        print("error: cost-model validation failed (see table above)", file=sys.stderr)
        return 1
    return 0


def _print_batch(args, engine, graph, family, sources=None) -> int:
    """Execute and summarize one batched query set (`repro batch`, and
    `repro run` handed a multi-source traversal)."""
    from repro.core.batch import BatchRunner

    runner = BatchRunner(
        engine,
        batch_size=getattr(args, "batch_size", 64),
        layout=getattr(args, "layout", "auto"),
    )
    t0 = time.perf_counter()
    if family == "bfs":
        report = runner.run_bfs(sources, max_iterations=args.max_iterations)
    elif family == "sssp":
        report = runner.run_sssp(sources, max_iterations=args.max_iterations)
    elif family == "cc":
        report = runner.run_cc(
            count=getattr(args, "count", 1), max_iterations=args.max_iterations
        )
    else:  # pagerank
        dampings = [
            float(tok)
            for tok in str(getattr(args, "damping", "0.85")).replace(",", " ").split()
        ]
        report = runner.run_pagerank(
            dampings,
            iterations=getattr(args, "power_iterations", 25),
            max_iterations=args.max_iterations,
        )
    wall = time.perf_counter() - t0
    st = report.stats
    last = report.runs[-1]
    print(f"graph      : {graph}")
    print(f"batch      : {st['queries']} {family} queries in {st['chunks']} "
          f"chunk(s), {st['batch_iterations']} batched iterations "
          f"({st['retired_early']} retired early)")
    iters = sorted(q.iterations for q in report.queries)
    print(f"per-query  : iterations min {iters[0]} / "
          f"p50 {iters[len(iters) // 2]} / max {iters[-1]}")
    print(f"wall clock : {wall:.3f} s total, {wall / st['queries'] * 1e3:.1f} ms "
          f"per query amortized")
    if last.batch:
        b = last.batch
        line = (f"last chunk : layout {b.get('layout', '?')}, "
                f"{b.get('queries', 0)} queries, "
                f"{b.get('retired', 0)} retired")
        if "words" in b:
            line += f", {b['words']} uint64 words"
        print(line)
    if last.plan_cache is not None:
        pc = last.plan_cache
        queries = pc["hits"] + pc["misses"]
        print(f"plan cache : {pc['hits']}/{queries} hits "
              f"({100 * pc['hit_rate']:.1f}%), "
              f"{pc.get('carried_plans', 0)} plans carried warm")
    _print_prefetch(last)
    finite_counts = [int(np.isfinite(q.values).sum()) for q in report.queries]
    print(f"values     : finite per query min {min(finite_counts)} / "
          f"max {max(finite_counts)} of {graph.num_vertices}")
    return 0


def cmd_batch(args) -> int:
    opts = GraphReduceOptions(
        num_partitions=args.partitions,
        cache_policy=args.cache_policy,
        memory_budget=args.memory_budget,
        keep_warm=args.keep_warm,
        **_fastpath_options(args),
    )
    telemetry_cfg = _telemetry_config(args)
    if telemetry_cfg is not None:
        opts = replace(opts, telemetry=telemetry_cfg)
    engine, graph = _make_engine(args, opts)
    sources = None
    if args.algorithm in ("bfs", "sssp"):
        sources = _source_ids(args, default=None)
        if not sources:
            raise SystemExit(
                "error: bfs/sssp batches need --sources and/or --sources-file"
            )
        _check_sources(sources, graph.num_vertices)
    try:
        return _print_batch(args, engine, graph, args.algorithm, sources)
    except ValueError as exc:
        # Batch-layer validation (layout/family conflicts, bad params)
        # surfaces as a clean CLI error, not a traceback.
        raise SystemExit(f"error: {exc}") from None
    finally:
        engine.close()


def cmd_partition(args) -> int:
    from repro.core.shardstore import ShardStore, build_store_streaming

    out = Path(args.out)
    path = Path(args.input)
    if args.input in DATASETS or path.suffix in (".mtx", ".mm"):
        # No streaming reader for datasets / MatrixMarket: partition in
        # RAM (they fit by construction) and serialize the result.
        from repro.core.partition import PartitionEngine

        edges = load_graph(args.input)
        store = ShardStore.save(
            PartitionEngine().partition(edges, args.partitions), out
        )
    elif path.exists():
        store = build_store_streaming(
            path,
            out,
            args.partitions,
            chunk_edges=args.chunk_edges,
            num_vertices=args.num_vertices,
            name=args.name,
        )
    else:
        raise SystemExit(
            f"error: {args.input!r} is neither a dataset "
            f"({', '.join(sorted(DATASETS))}) nor an existing file"
        )
    print(f"wrote {store.path}: {store.num_partitions} shards, "
          f"V={store.num_vertices}, E={store.num_edges}, "
          f"{'weighted' if store.weighted else 'unweighted'}, "
          f"{store.disk_bytes() / 2**20:.2f} MiB on disk")
    return 0


def cmd_bench_diff(args) -> int:
    from repro.obs import bench

    docs = []
    for p in (args.baseline, args.fresh):
        path = Path(p)
        if not path.exists():
            print(f"error: snapshot {path} not found", file=sys.stderr)
            return 2
        docs.append(json.loads(path.read_text()))
    tolerance = args.tolerance if args.tolerance is not None else docs[0].get(
        "tolerance", bench.DEFAULT_TOLERANCE
    )
    try:
        rows, regressions = bench.diff_documents(docs[0], docs[1], tolerance=tolerance)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print("no comparable metrics between the two snapshots", file=sys.stderr)
        return 2
    shown = 0
    for row in sorted(rows, key=lambda r: -abs(r.ratio - 1.0)):
        if row.delta == 0 and not args.all:
            continue
        flag = " REGRESSION" if row in regressions else ""
        print(f"{row.benchmark:24s} {row.metric:28s} {row.before:12.6g} -> "
              f"{row.after:12.6g}  {row.ratio:6.2f}x{flag}")
        shown += 1
    if shown == 0:
        print(f"identical: {len(rows)} metrics compared, no deltas")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {100 * tolerance:.0f}%:",
              file=sys.stderr)
        for reg in regressions:
            print(f"  {reg}", file=sys.stderr)
        return 1
    print(f"\nok: no timing metric regressed beyond {100 * tolerance:.0f}% "
          f"({len(rows)} compared)")
    return 0


def cmd_bench_check(args) -> int:
    from repro.obs import bench

    if args.update:
        fresh = bench.run_suite()
        # Preserve the committed snapshot's tolerance on refresh unless
        # one is given explicitly -- `--update` must not silently reset
        # a tuned gate back to the default.
        tolerance = args.tolerance
        if tolerance is None:
            snapshot_path = Path(args.snapshot)
            if snapshot_path.exists():
                try:
                    tolerance = bench.load_snapshot(snapshot_path).get("tolerance")
                except ValueError:
                    tolerance = None
        if tolerance is None:
            tolerance = bench.DEFAULT_TOLERANCE
        path = bench.save_snapshot(args.snapshot, fresh, tolerance=tolerance)
        print(f"wrote {path} ({len(fresh)} benchmarks, tolerance {tolerance:g})")
        return 0
    snapshot_path = Path(args.snapshot)
    if not snapshot_path.exists():
        print(f"error: snapshot {snapshot_path} not found "
              "(run `repro bench-check --update` to create it)", file=sys.stderr)
        return 2
    doc = bench.load_snapshot(snapshot_path)
    tolerance = args.tolerance if args.tolerance is not None else doc.get(
        "tolerance", bench.DEFAULT_TOLERANCE
    )
    fresh = bench.run_suite(names=sorted(doc["benchmarks"]))
    regressions = bench.compare(doc["benchmarks"], fresh, tolerance=tolerance)
    for name in sorted(doc["benchmarks"]):
        base = doc["benchmarks"][name].get("sim_time", 0.0)
        cur = fresh[name].get("sim_time", 0.0)
        ratio = cur / base if base else float("inf")
        print(f"{name:20s} {base:12.6f}s -> {cur:12.6f}s  {ratio:6.2f}x")
    # The wall-clock snapshot's *simulated* metrics are deterministic
    # too; gate them alongside the baseline (the machine-dependent wall
    # times and speedups are bench-wallclock's concern, never compared
    # here).
    wallclock_path = Path(args.wallclock_snapshot)
    if wallclock_path.exists():
        wdoc = bench.load_snapshot(wallclock_path)
        wfresh = bench.run_wallclock_suite(repeats=1)
        regressions += bench.compare(wdoc["benchmarks"], wfresh, tolerance=tolerance)
        for name in sorted(wdoc["benchmarks"]):
            base = wdoc["benchmarks"][name].get("sim_time", 0.0)
            cur = wfresh.get(name, {}).get("sim_time", 0.0)
            ratio = cur / base if base else float("inf")
            print(f"{name:20s} {base:12.6f}s -> {cur:12.6f}s  {ratio:6.2f}x")
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {100 * tolerance:.0f}%:",
              file=sys.stderr)
        for reg in regressions:
            print(f"  {reg}", file=sys.stderr)
        return 1
    print(f"\nok: no phase regressed beyond {100 * tolerance:.0f}%")
    return 0


def cmd_bench_wallclock(args) -> int:
    from repro.obs import bench

    fresh = bench.run_wallclock_suite(
        repeats=args.repeats,
        warmup=args.warmup,
        shard_store=args.shard_store,
        memory_budget=args.memory_budget,
    )
    for name, m in sorted(fresh.items()):
        pc = m.get("plan_cache") or {}
        print(f"{name:22s} fast {m['wall_seconds_fast'] * 1e3:8.1f} ms  "
              f"slow {m['wall_seconds_slow'] * 1e3:8.1f} ms  "
              f"speedup {m['speedup']:5.2f}x (floor {m['min_speedup']:.1f}x)  "
              f"plan hits {100 * pc.get('hit_rate', 0.0):5.1f}%")
        vs = {k[len("speedup_vs_"):]: v for k, v in m.items()
              if k.startswith("speedup_vs_")}
        if vs:
            ratios = "  ".join(f"{k} {v:5.2f}x" for k, v in sorted(vs.items()))
            print(f"{'':22s} auto vs fixed: {ratios} "
                  f"(floor {m.get('min_variant_ratio', 0.0):.2f}x)")
        probe = m.get("ooc_probe")
        if probe:
            print(f"{'':22s} ooc probe: peak RSS +"
                  f"{probe['rss_delta_bytes'] / 2**20:.1f} MiB "
                  f"(in-RAM footprint {m['in_ram_bytes'] / 2**20:.1f} MiB)")
    if args.out:
        bench.save_snapshot(args.out, fresh)
        print(f"wrote {args.out}")
    # Speedup floors are same-machine, same-moment ratios -- enforce
    # them on every invocation, including --update, so a regressed
    # fast path cannot be silently baked into the snapshot.
    failures = bench.floor_failures(fresh)
    snapshot_path = Path(args.snapshot)
    if args.update:
        tolerance = args.tolerance
        if tolerance is None and snapshot_path.exists():
            try:
                tolerance = bench.load_snapshot(snapshot_path).get("tolerance")
            except ValueError:
                tolerance = None
        if tolerance is None:
            tolerance = bench.DEFAULT_TOLERANCE
        path = bench.save_snapshot(snapshot_path, fresh, tolerance=tolerance)
        print(f"wrote {path} ({len(fresh)} benchmarks, tolerance {tolerance:g})")
    elif not snapshot_path.exists():
        print(f"error: snapshot {snapshot_path} not found "
              "(run `repro bench-wallclock --update` to create it)", file=sys.stderr)
        return 2
    else:
        doc = bench.load_snapshot(snapshot_path)
        tolerance = args.tolerance if args.tolerance is not None else doc.get(
            "tolerance", bench.DEFAULT_TOLERANCE
        )
        regressions, failures = bench.check_wallclock(
            doc["benchmarks"], fresh, tolerance=tolerance
        )
        if regressions:
            print(f"\n{len(regressions)} simulated-metric regression(s) beyond "
                  f"{100 * tolerance:.0f}%:", file=sys.stderr)
            for reg in regressions:
                print(f"  {reg}", file=sys.stderr)
    if failures:
        for name, speedup, floor in failures:
            print(f"error: {name} speedup {speedup:.2f}x below the "
                  f"{floor:.2f}x floor", file=sys.stderr)
        return 1
    if not args.update:
        if regressions:
            return 1
        print("\nok: speedup floors hold and no simulated metric regressed")
    return 0


def _monitor_problems(args, state) -> int:
    problems = state.problems(
        expect_workers=args.expect_workers,
        fail_on_incident=args.fail_on_incident,
    )
    for problem in problems:
        print(f"problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_monitor(args) -> int:
    from repro.obs.monitor import MonitorState, follow, read_records, render

    path = Path(args.stream)
    state = MonitorState()
    if args.once:
        if not path.exists():
            print(f"error: telemetry stream {path} not found", file=sys.stderr)
            return 2
        try:
            for record in read_records(str(path)):
                state.ingest(record)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render(state))
        return _monitor_problems(args, state)
    waited = 0.0
    while not path.exists():
        if waited >= args.wait:
            print(f"error: telemetry stream {path} did not appear within "
                  f"{args.wait:g}s", file=sys.stderr)
            return 2
        time.sleep(min(args.poll, 0.2))
        waited += min(args.poll, 0.2)
    repaint = sys.stdout.isatty()
    try:
        for record in follow(str(path), poll=args.poll):
            state.ingest(record)
            if record.get("kind") in ("run_start", "snapshot", "incident",
                                      "run_end"):
                view = render(state)
                if repaint:
                    print("\x1b[2J\x1b[H" + view, flush=True)
                else:
                    print(view + "\n", flush=True)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return _monitor_problems(args, state)


def cmd_telemetry_report(args) -> int:
    from repro.obs.monitor import fold_stream, read_records, report_text

    path = Path(args.stream)
    if not path.exists():
        print(f"error: telemetry stream {path} not found", file=sys.stderr)
        return 2
    try:
        records = read_records(str(path))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not records:
        print("error: stream holds no telemetry records", file=sys.stderr)
        return 2
    doc = fold_stream(records)
    print(report_text(doc))
    if args.out:
        Path(args.out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out}")
    return 0


def cmd_compare(args) -> int:
    from repro.baselines import CuSha, GraphChi, MapGraph, Totem, XStream
    from repro.sim.memory import DeviceOOMError

    graph = prepare(load_graph(args.graph), args)
    program_factory = ALGORITHMS[args.algorithm]
    gr = GraphReduce(graph).run(program_factory(args), max_iterations=args.max_iterations)
    print(f"{'framework':14s} {'sim time (s)':>14s} {'vs GR':>9s}")
    print(f"{'GraphReduce':14s} {gr.sim_time:14.6f} {'1.0x':>9s}")
    for framework in (GraphChi(), XStream(), Totem(), CuSha(), MapGraph()):
        try:
            r = framework.run(graph, program_factory(args), max_iterations=args.max_iterations)
        except DeviceOOMError:
            print(f"{framework.name:14s} {'device OOM':>14s} {'-':>9s}")
            continue
        if not np.array_equal(r.vertex_values, gr.vertex_values):
            print(f"{framework.name:14s} RESULT MISMATCH", file=sys.stderr)
            return 1
        print(f"{framework.name:14s} {r.sim_time:14.6f} {r.sim_time / gr.sim_time:8.1f}x")
    return 0


def _add_store_args(p) -> None:
    p.add_argument(
        "--shard-store", default=None,
        help="run out-of-core from this shard-store directory "
             "(see `repro partition`); --graph is then ignored",
    )
    p.add_argument(
        "--memory-budget", type=int, default=None,
        help="host RAM budget (bytes) for the out-of-core shard cache; "
             "sets the resident-set size via the Eq. (1)/(2) formula",
    )


def _add_fastpath_args(p) -> None:
    p.add_argument("--no-dense-path", action="store_true",
                   help="disable the dense-frontier host fast path")
    p.add_argument("--no-plan-cache", action="store_true",
                   help="disable the gather/scatter plan cache")
    p.add_argument("--no-sparse-bypass", action="store_true",
                   help="disable the sparse-frontier plan bypass (always "
                        "consult the epoch-keyed plan cache)")
    p.add_argument(
        "--direction", choices=("push", "pull", "auto"), default="push",
        help="traversal direction: natural frontier (push), bottom-up "
             "(pull), or per-iteration Beamer alpha/beta switching "
             "(auto); pull/auto need a pull-compatible gather program",
    )
    p.add_argument(
        "--direction-alpha", type=float, default=14.0,
        help="push->pull threshold: switch when frontier out-edges "
             "exceed unexplored-edges/alpha",
    )
    p.add_argument(
        "--direction-beta", type=float, default=24.0,
        help="pull->push threshold: switch back when the frontier "
             "shrinks below vertices/beta",
    )
    p.add_argument(
        "--parallel-shards", type=int, default=0,
        help="workers for parallel shard compute (0 = off; bsp only)",
    )
    p.add_argument(
        "--parallel-backend",
        choices=("serial", "threads", "processes", "cluster"),
        default="threads",
        help="how parallel shard workers execute: GIL-releasing threads "
             "(default), a spawn-safe process pool attaching the shard "
             "arrays zero-copy (processes), or partitioned-ownership "
             "workers that each attach only their owned shard slice and "
             "exchange sparse boundary deltas through shared-memory "
             "mailboxes (cluster); 'serial' disables shard parallelism",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="alias for --parallel-shards (with --parallel-backend "
             "processes or cluster, defaults to 2 when neither is given)",
    )
    p.add_argument(
        "--frontier-policy", choices=("replicated", "partitioned"),
        default="replicated",
        help="boundary-exchange policy for the cluster backend and the "
             "multi-device scheduler: full frontier bitmaps everywhere "
             "(replicated, default) or owned-slice/pairwise-boundary "
             "bits only (partitioned); results are bit-identical",
    )
    p.add_argument(
        "--plan-cache-budget", type=int, default=None,
        help="LRU byte budget for the gather/scatter plan cache "
             "(default 256 MiB; 0 = unbounded)",
    )
    p.add_argument(
        "--kernel-backend", choices=("auto", "numpy", "numba", "off"),
        default="auto",
        help="fused gather/apply/activate kernel backend: whole-array "
             "NumPy primitives (numpy), compiled single-pass @njit "
             "kernels (numba; falls back to numpy with a warning when "
             "Numba is not installed), pick numba when importable "
             "(auto, default), or disable the kernel layer (off); "
             "results are bit-identical across backends",
    )


def _add_telemetry_args(p) -> None:
    p.add_argument(
        "--telemetry-out", default=None,
        help="stream live telemetry (JSONL, schema-versioned) to this "
             "file; tail it with `repro monitor`",
    )
    p.add_argument(
        "--telemetry-interval", type=float, default=0.5,
        help="minimum wall seconds between snapshot records (default 0.5; "
             "0 emits one per iteration)",
    )
    p.add_argument(
        "--telemetry-budget", type=int, default=1 << 20,
        help="flight-recorder ring-buffer budget in bytes (default 1 MiB)",
    )
    p.add_argument(
        "--flight-recorder", action="store_true",
        help="record spans into bounded rings (O(budget) memory) instead "
             "of the unbounded observer tree",
    )
    p.add_argument(
        "--stall-timeout", type=float, default=30.0,
        help="seconds without a heartbeat before the watchdog declares a "
             "busy worker/prefetcher stalled (default 30)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="GraphReduce (SC'15) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("datasets", help="list the Table-1 dataset stand-ins")
    sub.add_parser("info", help="show the simulated machine")
    for name, help_text in (
        ("run", "run one algorithm under GraphReduce"),
        ("compare", "run GraphReduce and every baseline framework"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--graph", required=(name == "compare"),
            help="dataset name or graph file",
        )
        p.add_argument("--algorithm", required=True, choices=sorted(ALGORITHMS))
        p.add_argument(
            "--source", default=None,
            help="BFS/SSSP source vertex (default 0); `repro run` also "
                 "accepts a comma-separated list, which executes the "
                 "sources as one batched traversal (see `repro batch`)",
        )
        p.add_argument("--tolerance", type=float, default=1e-3, help="PageRank tolerance")
        p.add_argument("--k", type=int, default=3, help="k for k-core")
        p.add_argument("--power-iterations", type=int, default=25,
                       help="rounds for pagerank-power")
        p.add_argument("--delta", type=float, default=1.0,
                       help="bucket width for sssp-delta")
        p.add_argument("--max-iterations", type=int, default=100_000)
    run_p = next(a for a in sub.choices.values() if a.prog.endswith("run"))
    run_p.add_argument("--unoptimized", action="store_true",
                       help="disable every Section-5 optimization (Figure 15 baseline)")
    _add_fastpath_args(run_p)
    run_p.add_argument("--partitions", type=int, default=None, help="shard count override")
    run_p.add_argument(
        "--cache-policy", choices=("auto", "never", "greedy", "lru"), default="auto"
    )
    run_p.add_argument("--host-backing", choices=("dram", "ssd"), default="dram")
    run_p.add_argument(
        "--execution-mode", choices=("bsp", "async"), default="bsp",
        help="bulk-synchronous phases (paper) or asynchronous sweeps",
    )
    run_p.add_argument(
        "--devices", type=int, default=1,
        help="run on N simulated accelerators via the multi-device "
             "scheduler (in-RAM graphs only; results stay bit-identical "
             "to one device, only the performance plane changes)",
    )
    run_p.add_argument(
        "--sources-file", default=None,
        help="file of whitespace/comma-separated source ids appended to "
             "--source (bfs/sssp; multiple ids run as one batch)",
    )
    _add_store_args(run_p)
    _add_telemetry_args(run_p)

    batch_p = sub.add_parser(
        "batch",
        help="run many queries of one family as a single batched shard "
             "stream (scan sharing; bit-parallel multi-source BFS)",
    )
    batch_p.add_argument("--graph", default=None, help="dataset name or graph file")
    batch_p.add_argument(
        "--algorithm", required=True, choices=("bfs", "sssp", "cc", "pagerank"),
        help="query family; every query in a batch shares one family",
    )
    batch_p.add_argument(
        "--sources", default=None,
        help="comma-separated source vertices, one query each (bfs/sssp), "
             "e.g. --sources 0,17,42",
    )
    batch_p.add_argument(
        "--sources-file", default=None,
        help="file of whitespace/comma-separated source ids appended to "
             "--sources",
    )
    batch_p.add_argument(
        "--batch-size", type=int, default=64,
        help="queries fused per shard stream; more queries split into "
             "consecutive chunks (default 64)",
    )
    batch_p.add_argument(
        "--layout", choices=("auto", "columns", "bits"), default="auto",
        help="state layout: float32 column matrix (columns), packed "
             "uint64 reachability words -- 64 BFS sources per word "
             "(bits, bfs only), or bits-for-bfs/columns-otherwise (auto)",
    )
    batch_p.add_argument("--count", type=int, default=1,
                         help="number of cc queries (they are identical; "
                              "exercises the batch path)")
    batch_p.add_argument(
        "--damping", default="0.85",
        help="comma-separated pagerank damping factors, one query each",
    )
    batch_p.add_argument("--power-iterations", type=int, default=25,
                         help="pagerank power-iteration rounds per query")
    batch_p.add_argument(
        "--keep-warm", action="store_true",
        help="carry the prefetcher LRU and dense plans across chunks "
             "(GraphReduceOptions.keep_warm)",
    )
    batch_p.add_argument("--partitions", type=int, default=None)
    batch_p.add_argument(
        "--cache-policy", choices=("auto", "never", "greedy", "lru"), default="auto"
    )
    batch_p.add_argument("--max-iterations", type=int, default=100_000)
    _add_fastpath_args(batch_p)
    _add_store_args(batch_p)
    _add_telemetry_args(batch_p)

    mon_p = sub.add_parser(
        "monitor", help="live terminal view of a run's telemetry stream"
    )
    mon_p.add_argument(
        "stream", help="telemetry JSONL path (a run's --telemetry-out)"
    )
    mon_p.add_argument("--poll", type=float, default=0.2,
                       help="tail poll interval in seconds (default 0.2)")
    mon_p.add_argument(
        "--once", action="store_true",
        help="render the stream's current state once and exit instead of "
             "tailing until run_end",
    )
    mon_p.add_argument(
        "--expect-workers", type=int, default=None,
        help="exit 1 unless heartbeats from at least this many workers "
             "appear in the latest snapshot",
    )
    mon_p.add_argument(
        "--fail-on-incident", action="store_true",
        help="exit 1 if the stream recorded any incident",
    )
    mon_p.add_argument(
        "--wait", type=float, default=30.0,
        help="seconds to wait for the stream file to appear when tailing "
             "(default 30)",
    )

    rep_p = sub.add_parser(
        "telemetry-report",
        help="fold a finished telemetry stream into a diffable report",
    )
    rep_p.add_argument("stream", help="telemetry JSONL path")
    rep_p.add_argument(
        "--out", default=None,
        help="also write the report document (telemetry_version JSON, "
             "diffable with `repro bench-diff`) here",
    )

    part_p = sub.add_parser(
        "partition", help="build an on-disk shard store from a graph"
    )
    part_p.add_argument("input", help="dataset name or graph file (.txt/.npz/.mtx)")
    part_p.add_argument("--out", required=True, help="store directory to create")
    part_p.add_argument("--partitions", type=int, default=8,
                        help="shard count (default 8)")
    part_p.add_argument(
        "--chunk-edges", type=int, default=1 << 20,
        help="edges per streaming chunk for .txt/.npz ingestion",
    )
    part_p.add_argument(
        "--num-vertices", type=int, default=None,
        help="vertex-count override (text inputs carry no vertex count)",
    )
    part_p.add_argument("--name", default=None,
                        help="graph name recorded in the manifest")

    trace_p = sub.add_parser(
        "trace", help="run one algorithm and write a Chrome trace_event JSON"
    )
    trace_p.add_argument(
        "--algo", "--algorithm", dest="algorithm", required=True,
        choices=sorted(ALGORITHMS),
    )
    trace_p.add_argument("--graph", default="delaunay_n13",
                         help="dataset name or graph file (default: delaunay_n13)")
    trace_p.add_argument("--out", default="trace.json", help="output trace path")
    trace_p.add_argument("--unoptimized", action="store_true",
                         help="trace the Figure-15 baseline configuration")
    _add_fastpath_args(trace_p)
    trace_p.add_argument("--partitions", type=int, default=None)
    trace_p.add_argument("--source", default=None)
    trace_p.add_argument("--tolerance", type=float, default=1e-3)
    trace_p.add_argument("--k", type=int, default=3)
    trace_p.add_argument("--power-iterations", type=int, default=25)
    trace_p.add_argument("--max-iterations", type=int, default=100_000)

    prof_p = sub.add_parser(
        "profile",
        help="run one algorithm under the bottleneck-attribution profiler",
    )
    prof_p.add_argument(
        "--algo", "--algorithm", dest="algorithm", required=True,
        choices=sorted(ALGORITHMS),
    )
    prof_p.add_argument("--graph", default="delaunay_n13",
                        help="dataset name or graph file (default: delaunay_n13)")
    prof_p.add_argument("--out", default="profile.json",
                        help="machine-readable output path")
    prof_p.add_argument("--trace-out", default=None,
                        help="also write a Chrome trace_event JSON here")
    prof_p.add_argument("--unoptimized", action="store_true",
                        help="profile the Figure-15 baseline configuration")
    _add_fastpath_args(prof_p)
    prof_p.add_argument("--partitions", type=int, default=None)
    prof_p.add_argument(
        "--cache-policy", choices=("auto", "never", "greedy", "lru"), default="auto"
    )
    prof_p.add_argument("--source", default=None)
    prof_p.add_argument("--tolerance", type=float, default=1e-3)
    prof_p.add_argument("--k", type=int, default=3)
    prof_p.add_argument("--power-iterations", type=int, default=25)
    prof_p.add_argument("--max-iterations", type=int, default=100_000)
    prof_p.add_argument(
        "--devices", type=int, default=1,
        help="also project the run onto N simulated accelerators and "
             "report the multi-device scaling row",
    )
    _add_store_args(prof_p)

    diff_p = sub.add_parser(
        "bench-diff",
        help="per-phase/per-counter deltas between two bench or profile snapshots",
    )
    diff_p.add_argument("baseline", help="the older snapshot (bench or profile JSON)")
    diff_p.add_argument("fresh", help="the newer snapshot to compare against it")
    diff_p.add_argument(
        "--tolerance", type=float, default=None,
        help="relative slowdown that counts as a regression "
             "(default: the baseline's recorded tolerance, else 10%%)",
    )
    diff_p.add_argument("--all", action="store_true",
                        help="also print metrics with no delta")

    bench_p = sub.add_parser(
        "bench-check",
        help="rerun the benchmark suite against a committed timing snapshot",
    )
    bench_p.add_argument(
        "--snapshot", default="benchmarks/BENCH_baseline.json",
        help="snapshot path (default: benchmarks/BENCH_baseline.json)",
    )
    bench_p.add_argument(
        "--tolerance", type=float, default=None,
        help="relative slowdown that counts as a regression "
             "(default: the snapshot's recorded tolerance)",
    )
    bench_p.add_argument("--update", action="store_true",
                         help="rewrite the snapshot from a fresh run")
    bench_p.add_argument(
        "--wallclock-snapshot", default="benchmarks/BENCH_wallclock.json",
        help="also gate this wall-clock snapshot's simulated metrics "
             "when it exists (default: benchmarks/BENCH_wallclock.json)",
    )

    wall_p = sub.add_parser(
        "bench-wallclock",
        help="measure host fast-path wall-clock speedups against the committed snapshot",
    )
    wall_p.add_argument(
        "--snapshot", default="benchmarks/BENCH_wallclock.json",
        help="snapshot path (default: benchmarks/BENCH_wallclock.json)",
    )
    wall_p.add_argument(
        "--tolerance", type=float, default=None,
        help="relative simulated-metric slowdown that counts as a regression "
             "(default: the snapshot's recorded tolerance)",
    )
    wall_p.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per configuration (best-of)")
    wall_p.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup runs per configuration before "
                             "the timed repetitions")
    wall_p.add_argument("--out", default=None,
                        help="also write the fresh measurements here (CI artifact)")
    wall_p.add_argument("--update", action="store_true",
                        help="rewrite the snapshot from this run's measurements")
    wall_p.add_argument(
        "--shard-store", default=None,
        help="reuse this store for the out-of-core scenario instead of "
             "building a temporary one",
    )
    wall_p.add_argument(
        "--memory-budget", type=int, default=None,
        help="shard-cache budget (bytes) for the out-of-core scenario's "
             "warm configuration and RSS probe",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "datasets": cmd_datasets,
        "info": cmd_info,
        "run": cmd_run,
        "batch": cmd_batch,
        "partition": cmd_partition,
        "compare": cmd_compare,
        "trace": cmd_trace,
        "profile": cmd_profile,
        "bench-check": cmd_bench_check,
        "bench-wallclock": cmd_bench_wallclock,
        "bench-diff": cmd_bench_diff,
        "monitor": cmd_monitor,
        "telemetry-report": cmd_telemetry_report,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
