"""Health watchdog: heartbeats, stall detection, incident events.

Long-lived runs (and the planned query daemon) need to know that every
moving part is still moving: the main iteration loop, the procpool
workers, the prefetcher's warming threads. Each component registers a
**heartbeat** in a :class:`HeartbeatRegistry` and beats it whenever it
makes progress; the :class:`Watchdog` periodically inspects the
registry and raises a structured :class:`Incident` when a *busy*
component has not beaten within the stall timeout.

Two design points keep false positives out:

* A component is only eligible for stall detection while its ``busy``
  flag is set. Idle pool workers block on their task queue and beat
  nothing -- that is healthy, not a hang -- so the pool marks a worker
  busy at dispatch and idle when its result arrives. Clean shutdown
  unregisters the component entirely.
* Incidents are edge-triggered: one ``stall`` incident when a component
  crosses the timeout, one ``recovered`` when it beats again. A stalled
  worker does not spam one incident per poll.

The watchdog publishes every incident to the telemetry bus (when one is
attached) as an ``incident`` record, keeps them all in ``incidents``
for post-hoc inspection, and exposes :meth:`Watchdog.check` so tests
can drive detection with a fake clock instead of sleeping.

Escalation is the caller's job: the process pool performs its own
stall check at the one place it can act on it (the blocking result
wait), raising :class:`~repro.core.procpool.WorkerCrashed` so the
runtime's existing serial-fallback path takes over.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


@dataclass
class Heartbeat:
    """Liveness record for one component."""

    name: str
    kind: str = "component"
    last: float = 0.0
    beats: int = 0
    busy: bool = False


@dataclass(frozen=True)
class Incident:
    """One structured health event (stall, recovery, leaked thread)."""

    kind: str  # 'stall' | 'recovered' | 'leaked-thread'
    component: str
    component_kind: str
    age: float
    wall_time: float
    details: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "component": self.component,
            "component_kind": self.component_kind,
            "age": self.age,
            "wall_time": self.wall_time,
            "details": self.details,
        }


class HeartbeatRegistry:
    """Thread-safe name-addressed heartbeats.

    ``beat`` is the hot call (once per iteration / task / shard load):
    one lock acquire and two attribute writes. ``clock`` is injectable
    so watchdog tests advance time instead of sleeping.
    """

    def __init__(self, clock=time.monotonic):
        self.clock = clock
        self._beats: dict[str, Heartbeat] = {}
        self._lock = threading.Lock()

    def register(self, name: str, kind: str = "component", busy: bool = False) -> None:
        with self._lock:
            hb = self._beats.get(name)
            if hb is None:
                self._beats[name] = Heartbeat(name, kind, self.clock(), busy=busy)
            else:
                hb.kind = kind
                hb.busy = busy

    def beat(self, name: str) -> None:
        now = self.clock()
        with self._lock:
            hb = self._beats.get(name)
            if hb is None:
                hb = self._beats[name] = Heartbeat(name)
            hb.last = now
            hb.beats += 1

    def busy(self, name: str, flag: bool = True) -> None:
        with self._lock:
            hb = self._beats.get(name)
            if hb is None:
                hb = self._beats[name] = Heartbeat(name)
                hb.last = self.clock()
            hb.busy = flag

    def unregister(self, name: str) -> None:
        with self._lock:
            self._beats.pop(name, None)

    def age(self, name: str, now: float | None = None) -> float | None:
        now = self.clock() if now is None else now
        with self._lock:
            hb = self._beats.get(name)
            return None if hb is None else now - hb.last

    def ages(self, now: float | None = None) -> dict[str, float]:
        now = self.clock() if now is None else now
        with self._lock:
            return {name: now - hb.last for name, hb in sorted(self._beats.items())}

    def stalled(self, timeout: float, now: float | None = None) -> list[Heartbeat]:
        """Busy components whose heartbeat age exceeds ``timeout``."""
        now = self.clock() if now is None else now
        with self._lock:
            return [
                Heartbeat(hb.name, hb.kind, hb.last, hb.beats, hb.busy)
                for hb in self._beats.values()
                if hb.busy and now - hb.last > timeout
            ]

    def snapshot(self, now: float | None = None) -> dict:
        """``{name: {age, busy, kind, beats}}`` for telemetry records."""
        now = self.clock() if now is None else now
        with self._lock:
            return {
                name: {
                    "age": now - hb.last,
                    "busy": hb.busy,
                    "kind": hb.kind,
                    "beats": hb.beats,
                }
                for name, hb in sorted(self._beats.items())
            }


#: Thread-name prefixes the leak check knows about: every thread the
#: runtime spawns uses one of these (ThreadPoolExecutor prefixes and
#: the watchdog's own poll thread).
OWNED_THREAD_PREFIXES = ("shard-prefetch", "shard-compute", "repro-watchdog")


class Watchdog:
    """Periodic stall detection over one :class:`HeartbeatRegistry`.

    ``check`` is synchronous and side-effect-complete (tests call it
    directly with a pinned ``now``); ``start`` runs it from a daemon
    poll thread for live runs. Incidents go to ``incidents`` and -- when
    a telemetry bus is attached -- onto the stream as ``incident``
    records.
    """

    def __init__(
        self,
        registry: HeartbeatRegistry,
        bus=None,
        stall_timeout: float = 30.0,
        poll: float = 1.0,
    ):
        self.registry = registry
        self.bus = bus
        self.stall_timeout = stall_timeout
        self.poll = poll
        self.incidents: list[Incident] = []
        self._stalled: set[str] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- detection -----------------------------------------------------
    def check(self, now: float | None = None) -> list[Incident]:
        """One detection pass; returns (and records) the new incidents."""
        now = self.registry.clock() if now is None else now
        fresh: list[Incident] = []
        stalled_now = {hb.name: hb for hb in self.registry.stalled(self.stall_timeout, now)}
        with self._lock:
            for name, hb in stalled_now.items():
                if name not in self._stalled:
                    self._stalled.add(name)
                    fresh.append(
                        Incident(
                            kind="stall",
                            component=name,
                            component_kind=hb.kind,
                            age=now - hb.last,
                            wall_time=now,
                            details=(
                                f"no heartbeat for {now - hb.last:.3f}s "
                                f"(timeout {self.stall_timeout:.3f}s)"
                            ),
                        )
                    )
            for name in sorted(self._stalled - set(stalled_now)):
                self._stalled.discard(name)
                age = self.registry.age(name, now)
                if age is None:
                    continue  # unregistered while stalled: clean shutdown
                fresh.append(
                    Incident(
                        kind="recovered",
                        component=name,
                        component_kind="component",
                        age=age,
                        wall_time=now,
                        details="heartbeat resumed",
                    )
                )
            self.incidents.extend(fresh)
        self._publish(fresh)
        return fresh

    def check_threads(self, baseline: set[int] | None = None) -> list[Incident]:
        """Flag still-running runtime-owned threads (leak detection).

        Call after the run's pools and prefetchers have shut down: any
        surviving thread whose name carries one of the known prefixes
        (minus ``baseline`` idents, captured before the run) leaked.
        """
        now = self.registry.clock()
        fresh = [
            Incident(
                kind="leaked-thread",
                component=t.name,
                component_kind="thread",
                age=0.0,
                wall_time=now,
                details="thread still alive after shutdown",
            )
            for t in threading.enumerate()
            if t.name.startswith(OWNED_THREAD_PREFIXES[:2])
            and t.is_alive()
            and (baseline is None or t.ident not in baseline)
        ]
        with self._lock:
            self.incidents.extend(fresh)
        self._publish(fresh)
        return fresh

    def _publish(self, incidents: list[Incident]) -> None:
        if self.bus is None:
            return
        for inc in incidents:
            # The record's ``kind`` is the stream-level discriminator
            # ("incident"); the incident's own type travels as
            # ``incident_kind`` (stall | recovered | leaked-thread).
            fields = inc.to_dict()
            fields["incident_kind"] = fields.pop("kind")
            self.bus.emit("incident", **fields)

    def incident(self, incident: Incident) -> None:
        """Record (and publish) an externally detected incident --
        the process pool's escalation path reports through this."""
        with self._lock:
            self.incidents.append(incident)
        self._publish([incident])

    # -- background polling --------------------------------------------
    def start(self) -> "Watchdog":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-watchdog", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:  # pragma: no cover - timing-dependent
        while not self._stop.wait(self.poll):
            self.check()

    def shutdown(self) -> None:
        """Stop polling. No final check runs: components a clean
        shutdown already tore down must not be flagged post-mortem."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
