"""Bottleneck attribution and cost-model validation.

Two consumers of a finished run's evidence:

* :func:`diagnose` turns the occupancy/overlap numbers into a
  **bottleneck verdict** -- transfer-bound, compute-bound,
  launch-overhead or skip-dominated -- with the single
  highest-leverage tuning recommendation and an estimated speedup,
  the way a human reads a Perfetto timeline (Figure 5, Figure 15).
* :func:`validate_cost_model` **replays the cost model** -- the
  Eq. (1)/(2) resident-shard derivation of K and the per-op models of
  ``docs/cost-model.md`` -- against the observed run and flags any
  divergence beyond tolerance. The simulator and the analytic model
  share their constants, so the expected error is ~0; a check that
  fails means the model in the docs and the model in the code have
  drifted apart.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Relative error beyond which a model check fails. The DES implements
#: the analytic model directly, so agreement should be near-exact; 2%
#: leaves room only for float accumulation order.
MODEL_TOLERANCE = 0.02


@dataclass(frozen=True)
class ModelCheck:
    """One predicted-vs-observed comparison of the cost model."""

    name: str
    predicted: float
    observed: float
    tolerance: float
    detail: str = ""

    @property
    def rel_error(self) -> float:
        scale = max(abs(self.predicted), abs(self.observed))
        if scale == 0:
            return 0.0
        return abs(self.predicted - self.observed) / scale

    @property
    def ok(self) -> bool:
        return self.rel_error <= self.tolerance

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "predicted": self.predicted,
            "observed": self.observed,
            "rel_error": self.rel_error,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class Verdict:
    """Where the time went, and the one knob most worth turning."""

    bottleneck: str  # transfer-bound | compute-bound | launch-overhead | skip-dominated
    share: float  # fraction of the makespan attributed to the bottleneck
    reason: str
    recommendation: str
    estimated_speedup: float

    def to_dict(self) -> dict:
        return {
            "bottleneck": self.bottleneck,
            "share": self.share,
            "reason": self.reason,
            "recommendation": self.recommendation,
            "estimated_speedup": self.estimated_speedup,
        }


# ----------------------------------------------------------------------
# Eq. (1)/(2) replay
# ----------------------------------------------------------------------
def predict_concurrent_shards(cache_attrs: dict) -> int | None:
    """Re-derive K from the Eq. (1)/(2) inputs the runtime recorded.

    ``cache_attrs`` is the attribute dict of the runtime's ``cache``
    span. Returns None when the run kept every shard resident (K is
    not meaningful in the Table-4 in-memory mode) or the span predates
    the profiler and lacks the inputs.
    """
    needed = ("max_shard_bytes", "interval_bytes", "resident_bytes",
              "device_memory", "num_partitions")
    if cache_attrs.get("in_memory") or any(k not in cache_attrs for k in needed):
        return None
    if not cache_attrs.get("async_streams", True):
        return 1
    from repro.core.movement import optimal_concurrent_shards

    shard = int(cache_attrs["max_shard_bytes"])
    interval = int(cache_attrs["interval_bytes"])
    memory = int(cache_attrs["device_memory"])
    # Initial Eq. (2) choice, made before the resident buffers land...
    k = optimal_concurrent_shards(
        memory, 0, interval, shard, int(cache_attrs["num_partitions"])
    )
    # ...then shrunk against what the residents actually left free,
    # exactly mirroring DataMovementEngine.reserve_stage_slots.
    free = memory - int(cache_attrs["resident_bytes"])
    while k > 1 and k * (shard + interval) > free:
        k -= 1
    return k


def validate_cost_model(result, machine=None, tolerance: float = MODEL_TOLERANCE) -> list[ModelCheck]:
    """Predicted-vs-observed checks of the Eq. (1)/(2) and per-op models.

    Requires a result carrying the span tree, the device trace and the
    engine snapshots (the defaults). ``machine`` is the
    :class:`~repro.sim.specs.MachineSpec` the run executed on; omit it
    for runs on the default machine.
    """
    from repro.sim.specs import default_machine

    if result.observer is None or result.trace is None or not result.trace.enabled:
        raise ValueError("model validation needs observe=True and trace=True")
    spec = (machine or default_machine()).device
    engines = result.engine_snapshots or {}
    metrics = result.observer.metrics
    checks: list[ModelCheck] = []

    # -- Eq. (1)/(2): concurrently staged shards ------------------------
    cache_spans = list(result.observer.find(category="phase", name="cache"))
    if cache_spans:
        k_pred = predict_concurrent_shards(cache_spans[0].attrs)
        if k_pred is not None:
            checks.append(ModelCheck(
                "eq2_concurrent_shards",
                predicted=float(k_pred),
                observed=float(result.concurrent_shards),
                tolerance=0.0,
                detail="K from Eq. (1)/(2) replayed over the cache span's "
                       "memory inputs vs the K the Data Movement Engine used",
            ))

    # -- PCIe transfer model: bytes / effective bandwidth ---------------
    for direction, nbytes in (
        ("h2d", result.stats.h2d_bytes),
        ("d2h", result.stats.d2h_bytes),
    ):
        observed = result.trace.total_duration(direction)
        if observed == 0 and nbytes == 0:
            continue
        checks.append(ModelCheck(
            f"pcie_{direction}_seconds",
            predicted=nbytes / spec.pcie_bandwidth,
            observed=observed,
            tolerance=tolerance,
            detail=f"{direction} DMA service time vs bytes / "
                   f"{spec.pcie_bandwidth / 1e9:.1f} GB/s (docs/cost-model.md t_copy)",
        ))

    # -- Transfer volume: structural counters vs DMA work served --------
    dma_bytes = sum(
        engines[e]["served_work"] for e in ("h2d", "d2h") if e in engines
    )
    if engines:
        checks.append(ModelCheck(
            "transfer_volume_bytes",
            predicted=float(result.stats.h2d_bytes + result.stats.d2h_bytes),
            observed=float(dma_bytes),
            tolerance=tolerance,
            detail="bytes the movement engine issued vs bytes the copy "
                   "engines actually served",
        ))

    # -- Kernel work census: phase counters vs SM work served -----------
    if "sm" in engines:
        edge_items = sum(
            c.value for n, c in metrics.counters.items()
            if n.startswith("compute.") and n.endswith(".edge_items")
        )
        vertex_items = sum(
            c.value for n, c in metrics.counters.items()
            if n.startswith("compute.") and n.endswith(".vertex_items")
        )
        predicted = edge_items / spec.edge_rate_seq + vertex_items / spec.vertex_rate
        if predicted > 0 or engines["sm"]["served_work"] > 0:
            checks.append(ModelCheck(
                "kernel_work_seconds",
                predicted=predicted,
                observed=engines["sm"]["served_work"],
                tolerance=tolerance,
                detail="machine-seconds from the compute census at the "
                       "calibrated rates vs work the SM pool served",
            ))
    return checks


# ----------------------------------------------------------------------
# Bottleneck verdict
# ----------------------------------------------------------------------
def diagnose(
    *,
    makespan: float,
    transfer_busy: float,
    kernel_busy: float,
    hidden_transfer: float,
    device_busy: float,
    skip_rate: float,
    kernel_launches: float,
    copies: float,
    concurrent_shards: int,
    eq2_optimum: int | None,
    spray_batches: float,
    sm_occupancy: float,
    cache_policy: str = "",
    machine=None,
) -> Verdict:
    """One bottleneck verdict over a run's occupancy evidence.

    All times in simulated seconds; ``device_busy`` is the union of all
    device activity (any engine serving), so ``makespan - device_busy``
    is time the device sat idle waiting on launches, setups and host
    synchronization.
    """
    from repro.sim.specs import default_machine

    spec = (machine or default_machine()).device
    makespan = max(makespan, 1e-30)
    exposed_transfer = max(0.0, transfer_busy - hidden_transfer)
    idle = max(0.0, makespan - device_busy)
    overhead_est = (
        kernel_launches * spec.kernel_launch_overhead + copies * spec.memcpy_setup
    )

    buckets = {
        "transfer-bound": exposed_transfer,
        "compute-bound": kernel_busy,
        "launch-overhead": idle,
    }
    bottleneck = max(buckets, key=buckets.get)
    if bottleneck == "launch-overhead" and skip_rate >= 0.5:
        bottleneck = "skip-dominated"
    share = buckets.get(bottleneck, idle) / makespan

    # Best case achievable by scheduling alone: perfect overlap leaves
    # max(transfer, kernel) on the critical path plus the idle gaps.
    ideal = max(transfer_busy, kernel_busy) + idle
    estimated = max(1.0, makespan / max(ideal, 1e-30))

    if bottleneck == "transfer-bound":
        reason = (
            f"PCIe transfers occupy {100 * transfer_busy / makespan:.0f}% of the "
            f"run and only {100 * hidden_transfer / max(transfer_busy, 1e-30):.0f}% "
            "of that is hidden under kernels"
        )
        if eq2_optimum is not None and concurrent_shards < eq2_optimum:
            recommendation = (
                f"raise K from {concurrent_shards} toward the Eq. (2) optimum of "
                f"{eq2_optimum} (options.async_streams staging slots): estimated "
                f"{estimated:.2f}x"
            )
        elif spray_batches == 0 and copies > kernel_launches:
            recommendation = (
                "enable spray streams (options.spray) so per-copy setups overlap "
                f"in-flight DMA: estimated {estimated:.2f}x"
            )
        elif cache_policy == "never":
            recommendation = (
                "enable shard caching (cache_policy='lru' or 'auto') to stop "
                "re-streaming hot shards every iteration"
            )
        else:
            recommendation = (
                "reduce PCIe volume: phase fusion/elimination and frontier "
                "skipping cut the buffers moved per iteration"
            )
    elif bottleneck == "compute-bound":
        reason = (
            f"kernels keep the SM pool busy {100 * kernel_busy / makespan:.0f}% "
            "of the run; transfers are largely hidden"
        )
        if sm_occupancy < 0.5:
            recommendation = (
                f"kernels fill only {100 * sm_occupancy:.0f}% of the machine -- "
                "run more shards concurrently (larger K) so sub-saturating "
                "kernels share the idle SMs (compute-compute overlap)"
            )
        else:
            recommendation = (
                "the machine is saturated; only less work helps -- fuse phases "
                "and skip inactive shards to shrink the kernel census"
            )
    elif bottleneck == "skip-dominated":
        reason = (
            f"frontier skipping removes {100 * skip_rate:.0f}% of shard work; "
            "the remaining time is per-iteration fixed cost, not data movement"
        )
        recommendation = (
            "the sparse tail is latency-bound: consider per-iteration CPU "
            "placement (AdaptiveEngine) for the low-activity iterations"
        )
    else:  # launch-overhead
        reason = (
            f"the device is idle {100 * idle / makespan:.0f}% of the run "
            f"(~{overhead_est:.6f}s of launch/setup overhead across "
            f"{int(kernel_launches)} kernels and {int(copies)} copies)"
        )
        recommendation = (
            "cut per-operation overheads: enable phase fusion (fewer launches) "
            "and spray/async streams (setups overlap DMA)"
        )
    return Verdict(
        bottleneck=bottleneck,
        share=share,
        reason=reason,
        recommendation=recommendation,
        estimated_speedup=estimated,
    )
