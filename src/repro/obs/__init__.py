"""Structured observability: spans, metrics, exporters, regression checks.

The paper's evaluation is built on per-phase measurement -- Figure 15's
memcpy/kernel breakdown, Figure 5's compute-transfer overlap, Figures
16-17's frontier-skip savings. This package gives the runtime a
first-class version of that instrumentation:

* :mod:`repro.obs.span` -- hierarchical spans (run -> iteration ->
  phase -> shard) over the simulated clock, recorded through a
  context-manager API with a zero-overhead no-op recorder when disabled;
* :mod:`repro.obs.metrics` -- typed counters and histograms (bytes
  moved, kernels launched, shards skipped, fusion decisions);
* :mod:`repro.obs.export` -- JSON and Chrome ``trace_event`` exporters,
  so a run opens directly in ``chrome://tracing`` / Perfetto;
* :mod:`repro.obs.bench` -- phase-timing snapshots, the
  ``repro bench-check`` regression comparison and the
  ``repro bench-diff`` snapshot differ;
* :mod:`repro.obs.profile` -- the bottleneck-attribution profiler
  (per-engine occupancy, overlap efficiency, frontier-skip
  effectiveness) behind ``repro profile``;
* :mod:`repro.obs.attribution` -- bottleneck verdicts with tuning
  recommendations, and the Eq. (1)/(2) + cost-model validation pass;
* :mod:`repro.obs.telemetry` -- the live telemetry bus (schema-versioned
  JSONL streaming, bounded flight recorder) behind ``--telemetry-out``;
* :mod:`repro.obs.health` -- heartbeat registry and stall watchdog for
  long-lived runs (workers, prefetcher threads, the main loop);
* :mod:`repro.obs.monitor` -- the ``repro monitor`` live view and the
  ``repro telemetry-report`` stream folder.
"""

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.span import NULL_OBSERVER, NoopObserver, Observer, Span
from repro.obs.export import (
    observer_to_json,
    result_to_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.attribution import ModelCheck, Verdict, diagnose, validate_cost_model
from repro.obs.health import HeartbeatRegistry, Incident, Watchdog
from repro.obs.monitor import MonitorState, fold_stream, follow, read_records
from repro.obs.profile import ProfileReport, build_profile, write_profile
from repro.obs.telemetry import (
    FlightRecorder,
    RunTelemetry,
    TelemetryBus,
    TelemetryConfig,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "HeartbeatRegistry",
    "Histogram",
    "Incident",
    "MetricsRegistry",
    "ModelCheck",
    "MonitorState",
    "NULL_OBSERVER",
    "NoopObserver",
    "Observer",
    "ProfileReport",
    "RunTelemetry",
    "Span",
    "TelemetryBus",
    "TelemetryConfig",
    "Verdict",
    "Watchdog",
    "build_profile",
    "diagnose",
    "fold_stream",
    "follow",
    "observer_to_json",
    "read_records",
    "result_to_chrome_trace",
    "to_chrome_trace",
    "validate_cost_model",
    "write_chrome_trace",
    "write_profile",
]
