"""Structured observability: spans, metrics, exporters, regression checks.

The paper's evaluation is built on per-phase measurement -- Figure 15's
memcpy/kernel breakdown, Figure 5's compute-transfer overlap, Figures
16-17's frontier-skip savings. This package gives the runtime a
first-class version of that instrumentation:

* :mod:`repro.obs.span` -- hierarchical spans (run -> iteration ->
  phase -> shard) over the simulated clock, recorded through a
  context-manager API with a zero-overhead no-op recorder when disabled;
* :mod:`repro.obs.metrics` -- typed counters and histograms (bytes
  moved, kernels launched, shards skipped, fusion decisions);
* :mod:`repro.obs.export` -- JSON and Chrome ``trace_event`` exporters,
  so a run opens directly in ``chrome://tracing`` / Perfetto;
* :mod:`repro.obs.bench` -- phase-timing snapshots and the
  ``repro bench-check`` regression comparison.
"""

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.span import NULL_OBSERVER, NoopObserver, Observer, Span
from repro.obs.export import (
    observer_to_json,
    result_to_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NoopObserver",
    "Observer",
    "Span",
    "observer_to_json",
    "result_to_chrome_trace",
    "to_chrome_trace",
    "write_chrome_trace",
]
