"""Hierarchical spans over the simulated clock.

A :class:`Span` is one timed region of execution -- the whole run, one
iteration, one phase group, one shard's streaming -- with free-form
attributes and child spans. The :class:`Observer` records them through
a context-manager API::

    obs = Observer(clock=lambda: sim.now)
    with obs.span("iteration", category="iteration", index=3) as sp:
        ...
        sp.set(frontier=frontier.size)

Spans nest by dynamic scope: a span opened while another is active
becomes its child, so the runtime's ``run -> iteration -> phase ->
shard`` hierarchy falls out of plain ``with`` statements.

When observability is disabled the runtime uses :data:`NULL_OBSERVER`,
whose ``span``/``event``/``add``/``observe`` all return shared
singletons and touch no state -- the instrumented hot paths cost a
method call and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.metrics import MetricsRegistry


@dataclass
class Span:
    """One timed region; ``end`` is None while the span is open."""

    name: str
    category: str = "span"
    start: float = 0.0
    end: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def set(self, **attrs) -> "Span":
        """Attach or update attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, category: str | None = None, name: str | None = None):
        """Descendants (and self) matching category and/or name."""
        for sp in self.walk():
            if category is not None and sp.category != category:
                continue
            if name is not None and sp.name != name:
                continue
            yield sp

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d


class _OpenSpan:
    """Context manager binding one Span to the observer's stack."""

    __slots__ = ("_obs", "span")

    def __init__(self, obs: "Observer", span: Span):
        self._obs = obs
        self.span = span

    def __enter__(self) -> Span:
        self._obs._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._obs._pop(self.span)
        return False


class Observer:
    """Span recorder + metrics registry over one clock.

    ``clock`` is any zero-argument callable returning monotone seconds;
    the runtime passes the simulator's ``lambda: sim.now`` so spans line
    up with the device trace on the same timeline.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock or (lambda: 0.0)
        self.roots: list[Span] = []
        self.metrics = MetricsRegistry()
        self._stack: list[Span] = []

    # -- spans ----------------------------------------------------------
    def span(self, name: str, category: str = "span", **attrs) -> _OpenSpan:
        return _OpenSpan(self, Span(name, category, attrs=attrs))

    def event(self, name: str, category: str = "event", **attrs) -> Span:
        """A zero-duration span attached at the current position."""
        now = self.clock()
        sp = Span(name, category, start=now, end=now, attrs=attrs)
        self._attach(sp)
        return sp

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _push(self, span: Span) -> None:
        span.start = self.clock()
        self._attach(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.clock()
        # Tolerate exits out of order (exceptions unwinding): pop
        # everything above the span too, closing it at the same instant.
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = span.end
            if top is span:
                break

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- metrics pass-through -------------------------------------------
    def add(self, name: str, n: float = 1.0) -> None:
        self.metrics.add(name, n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- queries --------------------------------------------------------
    def iter_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def find(self, category: str | None = None, name: str | None = None):
        for root in self.roots:
            yield from root.find(category, name)


class _NoopSpan:
    """Shared do-nothing span: context manager + attribute sink."""

    __slots__ = ()
    name = ""
    category = "noop"
    start = 0.0
    end = 0.0
    duration = 0.0
    attrs: dict = {}
    children: list = []

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def walk(self):
        return iter(())

    def find(self, category=None, name=None):
        return iter(())


_NOOP_SPAN = _NoopSpan()


class NoopObserver:
    """Zero-overhead recorder: every call is a constant-time no-op."""

    enabled = False
    roots: list = []

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()  # stays empty; kept for duck typing

    def span(self, name: str, category: str = "span", **attrs) -> _NoopSpan:
        return _NOOP_SPAN

    def event(self, name: str, category: str = "event", **attrs) -> _NoopSpan:
        return _NOOP_SPAN

    def add(self, name: str, n: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def iter_spans(self):
        return iter(())

    def find(self, category=None, name=None):
        return iter(())

    @property
    def current(self):
        return None


#: The shared disabled recorder; instrumented code defaults to it.
NULL_OBSERVER = NoopObserver()
