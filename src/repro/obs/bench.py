"""Phase-timing snapshots and the ``repro bench-check`` regression gate.

The simulator is deterministic: the same graph, program and options
produce bit-identical phase timings on every machine and Python
version. A committed ``BENCH_*.json`` snapshot therefore acts as a
golden performance baseline -- any change that slows a phase by more
than the tolerance is a real modeling/scheduling regression, not noise.

``run_suite`` executes the small standard workload set, ``compare``
diffs a fresh run against the snapshot, and the CLI wires both into
``repro bench-check`` (non-zero exit on regression) so CI can gate on
it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

#: Default relative slowdown that counts as a regression (10%).
DEFAULT_TOLERANCE = 0.10
#: Phases shorter than this (seconds) are ignored: relative comparisons
#: on near-zero timings amplify representation noise into false alarms.
MIN_SECONDS = 1e-7

SNAPSHOT_VERSION = 1

#: Default committed snapshot, relative to a repo checkout.
DEFAULT_SNAPSHOT = Path("benchmarks") / "BENCH_baseline.json"


def _suite_cases() -> dict[str, Callable]:
    """name -> zero-arg callable returning (edges, program, options).

    Imports live inside the function so ``repro.obs`` stays importable
    without pulling the whole runtime in.
    """
    from repro.algorithms import BFS, ConnectedComponents, PageRank, SSSP
    from repro.core.runtime import GraphReduceOptions
    from repro.graph.generators import erdos_renyi, rmat

    streaming = GraphReduceOptions(cache_policy="never")
    return {
        "pagerank_rmat12": lambda: (rmat(12, 40_000, seed=7), PageRank(tolerance=1e-3), streaming),
        "bfs_rmat12": lambda: (rmat(12, 40_000, seed=7), BFS(source=0), streaming),
        "sssp_er": lambda: (
            erdos_renyi(2_000, 16_000, seed=11).with_random_weights(seed=11),
            SSSP(source=0),
            streaming,
        ),
        "cc_er": lambda: (
            erdos_renyi(2_000, 16_000, seed=13).symmetrized(),
            ConnectedComponents(),
            streaming,
        ),
    }


def measure(result) -> dict:
    """Phase timings of one finished run, in snapshot form."""
    from repro.core.report import build_report

    report = build_report(result)
    return {
        "sim_time": result.sim_time,
        "memcpy_time": result.memcpy_time,
        "kernel_time": result.kernel_time,
        "iterations": result.iterations,
        "phases": {name: ph.total_time for name, ph in sorted(report.phases.items())},
    }


def run_suite(names: list[str] | None = None) -> dict:
    """Run the standard suite; returns ``{name: measurement}``."""
    from repro.core.runtime import GraphReduce

    cases = _suite_cases()
    unknown = set(names or ()) - set(cases)
    if unknown:
        raise KeyError(f"unknown benchmarks {sorted(unknown)}; have {sorted(cases)}")
    out = {}
    for name in names or sorted(cases):
        edges, program, options = cases[name]()
        result = GraphReduce(edges, options=options).run(program)
        out[name] = measure(result)
    return out


@dataclass(frozen=True)
class Regression:
    """One metric that got slower than the snapshot allows."""

    benchmark: str
    metric: str
    baseline: float
    fresh: float

    @property
    def ratio(self) -> float:
        return self.fresh / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.benchmark}/{self.metric}: {self.baseline:.6f}s -> "
            f"{self.fresh:.6f}s ({self.ratio:.2f}x)"
        )


def compare(
    baseline: dict,
    fresh: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = MIN_SECONDS,
) -> list[Regression]:
    """Regressions of ``fresh`` against the ``baseline`` snapshot.

    Compares ``sim_time``, ``memcpy_time``, ``kernel_time`` and every
    per-phase total; a metric regresses when the fresh value exceeds
    baseline * (1 + tolerance) and the baseline is above the noise
    floor. Benchmarks present on only one side are skipped (adding or
    retiring a benchmark is not a regression).
    """
    regressions = []
    for name, base in baseline.items():
        cur = fresh.get(name)
        if cur is None:
            continue
        pairs = [(m, base.get(m), cur.get(m)) for m in ("sim_time", "memcpy_time", "kernel_time")]
        pairs += [
            (f"phase:{ph}", b, cur.get("phases", {}).get(ph))
            for ph, b in base.get("phases", {}).items()
        ]
        for metric, b, f in pairs:
            if b is None or f is None or b < min_seconds:
                continue
            if f > b * (1.0 + tolerance):
                regressions.append(Regression(name, metric, b, f))
    return regressions


def load_snapshot(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot {path} has version {doc.get('version')!r}; "
            f"expected {SNAPSHOT_VERSION}"
        )
    return doc


def save_snapshot(path, benchmarks: dict, tolerance: float = DEFAULT_TOLERANCE) -> Path:
    path = Path(path)
    doc = {"version": SNAPSHOT_VERSION, "tolerance": tolerance, "benchmarks": benchmarks}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
