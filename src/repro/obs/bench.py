"""Phase-timing snapshots and the ``repro bench-check`` regression gate.

The simulator is deterministic: the same graph, program and options
produce bit-identical phase timings on every machine and Python
version. A committed ``BENCH_*.json`` snapshot therefore acts as a
golden performance baseline -- any change that slows a phase by more
than the tolerance is a real modeling/scheduling regression, not noise.

``run_suite`` executes the small standard workload set, ``compare``
diffs a fresh run against the snapshot, and the CLI wires both into
``repro bench-check`` (non-zero exit on regression) so CI can gate on
it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

#: Default relative slowdown that counts as a regression (10%).
DEFAULT_TOLERANCE = 0.10
#: Phases shorter than this (seconds) are ignored: relative comparisons
#: on near-zero timings amplify representation noise into false alarms.
MIN_SECONDS = 1e-7

SNAPSHOT_VERSION = 1

#: Default committed snapshot, relative to a repo checkout.
DEFAULT_SNAPSHOT = Path("benchmarks") / "BENCH_baseline.json"

#: Committed host fast-path wall-clock snapshot (``repro bench-wallclock``).
DEFAULT_WALLCLOCK_SNAPSHOT = Path("benchmarks") / "BENCH_wallclock.json"


def _suite_cases() -> dict[str, Callable]:
    """name -> zero-arg callable returning (edges, program, options).

    Imports live inside the function so ``repro.obs`` stays importable
    without pulling the whole runtime in.
    """
    from repro.algorithms import BFS, ConnectedComponents, PageRank, SSSP
    from repro.core.runtime import GraphReduceOptions
    from repro.graph.generators import erdos_renyi, rmat

    streaming = GraphReduceOptions(cache_policy="never")
    return {
        "pagerank_rmat12": lambda: (rmat(12, 40_000, seed=7), PageRank(tolerance=1e-3), streaming),
        "bfs_rmat12": lambda: (rmat(12, 40_000, seed=7), BFS(source=0), streaming),
        "sssp_er": lambda: (
            erdos_renyi(2_000, 16_000, seed=11).with_random_weights(seed=11),
            SSSP(source=0),
            streaming,
        ),
        "cc_er": lambda: (
            erdos_renyi(2_000, 16_000, seed=13).symmetrized(),
            ConnectedComponents(),
            streaming,
        ),
    }


def measure(result) -> dict:
    """Phase timings of one finished run, in snapshot form."""
    from repro.core.report import build_report

    report = build_report(result)
    return {
        "sim_time": result.sim_time,
        "memcpy_time": result.memcpy_time,
        "kernel_time": result.kernel_time,
        "iterations": result.iterations,
        "phases": {name: ph.total_time for name, ph in sorted(report.phases.items())},
    }


def run_suite(names: list[str] | None = None) -> dict:
    """Run the standard suite; returns ``{name: measurement}``."""
    from repro.core.runtime import GraphReduce

    cases = _suite_cases()
    unknown = set(names or ()) - set(cases)
    if unknown:
        raise KeyError(f"unknown benchmarks {sorted(unknown)}; have {sorted(cases)}")
    out = {}
    for name in names or sorted(cases):
        edges, program, options = cases[name]()
        result = GraphReduce(edges, options=options).run(program)
        out[name] = measure(result)
    return out


# ----------------------------------------------------------------------
# Host fast-path wall-clock suite (``repro bench-wallclock``)
# ----------------------------------------------------------------------


@dataclass
class WallclockCase:
    """One fully constructed ``bench-wallclock`` scenario.

    ``engines`` maps ``"fast"``/``"slow"`` to ready-to-run GraphReduce
    engines that must produce bit-identical results -- only their host-
    side wall clock may differ. When ``same_timeline`` is True the two
    sides must also agree on the simulated timeline and frontier
    history; direction-optimizing cases set it False because pull
    iterations legitimately improve vertices one iteration earlier than
    push (the converged values stay bit-identical, and the harness still
    enforces that).
    ``metrics_engine`` is the traced configuration whose deterministic
    simulated metrics go into the committed snapshot; it mirrors the
    slow side's timeline for same-timeline cases and the fast side's
    otherwise.
    ``variants`` (if set) maps extra labels to engines timed alongside
    fast/slow -- fixed-direction runs, say -- recorded as
    ``wall_seconds_<label>`` and ``speedup_vs_<label>`` (variant time
    over fast time). ``min_variant_ratio`` is the floor those ratios
    are gated against: 1.05 means the fast side must beat every variant
    by at least 5%.
    ``extra`` (if set) runs once after timing -- subprocess probes and
    gates live there -- and its dict is merged into the measurement;
    ``cleanup`` (if set) always runs, even when the case fails.
    """

    engines: dict
    make_program: Callable
    metrics_engine: object
    min_speedup: float
    extra: Callable | None = None
    cleanup: Callable | None = None
    same_timeline: bool = True
    variants: dict | None = None
    min_variant_ratio: float = 0.0


def _ooc_wallclock_case(shard_store=None, memory_budget=None) -> WallclockCase:
    """Out-of-core PageRank: warm prefetch pipeline vs cold shard loads.

    Both sides stream the same on-disk shard store. The fast side keeps
    the whole store warm behind the prefetcher (full-capacity cache);
    the slow side models cold per-shard loading -- a capacity-1 cache
    with no prefetch threads, so every shard acquisition is a fresh
    ``np.load`` + CSR validation and (via the eviction hook) a gather-
    plan rebuild. The OS page cache serves both sides, so the ratio
    isolates the host pipeline, not disk bandwidth.

    ``extra`` re-runs the workload in a fresh interpreter
    (:mod:`repro.obs.ooc_probe`) under a shard-cache budget and gates
    the measured peak-RSS growth below the graph's in-RAM footprint --
    the out-of-core claim itself.
    """
    import shutil
    import tempfile

    from repro.algorithms import PageRank
    from repro.core.partition import PartitionEngine
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.core.shardstore import ShardStore
    from repro.graph.generators import erdos_renyi
    from repro.graph.properties import footprint_bytes

    cleanup = None
    if shard_store is None:
        edges = erdos_renyi(65_536, 1_000_000, seed=7, name="er-wallclock")
        tmp = Path(tempfile.mkdtemp(prefix="repro-ooc-bench-"))
        store = ShardStore.save(PartitionEngine().partition(edges, 8), tmp / "store")
        cleanup = lambda: shutil.rmtree(tmp, ignore_errors=True)
        in_ram_bytes = footprint_bytes(edges)
    else:
        store = ShardStore.open(shard_store)
        in_ram_bytes = footprint_bytes(store.edgelist())

    common = dict(cache_policy="never", observe=False, trace=False)
    fast = GraphReduceOptions(**common, memory_budget=memory_budget)
    slow = GraphReduceOptions(**common, host_prefetch=False, memory_budget=1)
    # No prefetch threads in the metrics pass: the hit/fault split is
    # then deterministic, so the committed snapshot never churns.
    metrics = GraphReduceOptions(
        cache_policy="never", host_prefetch=False, memory_budget=memory_budget
    )
    # An eighth of the in-RAM footprint keeps the probe's shard cache at
    # minimum capacity -- the starkest demonstration that peak RSS is a
    # budget property, not a graph-size property.
    probe_budget = memory_budget if memory_budget is not None else max(1, in_ram_bytes // 8)

    def extra(metrics_result):
        probe = run_ooc_probe(store.path, iterations=8, memory_budget=probe_budget)
        if not probe.get("ok"):
            raise AssertionError(f"ooc probe failed: {probe.get('error', probe)}")
        if probe["rss_delta_bytes"] >= in_ram_bytes:
            raise AssertionError(
                f"out-of-core peak-RSS growth {probe['rss_delta_bytes']} B is not "
                f"below the in-RAM footprint {in_ram_bytes} B"
            )
        return {
            "in_ram_bytes": int(in_ram_bytes),
            "ooc_probe": {
                k: probe[k]
                for k in ("max_rss_bytes", "rss_delta_bytes", "memory_budget")
                if k in probe
            },
        }

    return WallclockCase(
        engines={
            "fast": GraphReduce(shard_store=store, options=fast),
            "slow": GraphReduce(shard_store=store, options=slow),
        },
        make_program=lambda: PageRank(tolerance=None, max_iterations=8),
        metrics_engine=GraphReduce(shard_store=store, options=metrics),
        min_speedup=1.5,
        extra=extra,
        cleanup=cleanup,
    )


def _procpool_wallclock_case() -> WallclockCase:
    """Process pool vs thread pool on GIL-bound per-shard host work.

    Both sides run the same shard-parallel PageRank with the dense fast
    path and plan cache off, so every shard phase rebuilds its sparse
    gather/scatter plans -- host work dominated by many small NumPy and
    Python steps that hold the GIL. Threads serialize on that work; the
    process pool runs it on independent interpreters against zero-copy
    shared-memory shard arrays, so the ratio isolates the GIL escape.

    The floor applies only on multi-core hosts: on a single core the
    pool's publish/IPC overhead has no parallelism to buy it back, so
    the case records the ratio without gating it.
    """
    import os

    from repro.algorithms import PageRank
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import erdos_renyi

    cores = os.cpu_count() or 1
    workers = max(2, min(4, cores))
    common = dict(
        cache_policy="never",
        num_partitions=8,
        observe=False,
        trace=False,
        dense_fast_path=False,
        plan_cache=False,
        parallel_shards=workers,
    )
    fast = GraphReduceOptions(**common, parallel_backend="processes")
    slow = GraphReduceOptions(**common, parallel_backend="threads")
    metrics = GraphReduceOptions(
        cache_policy="never",
        num_partitions=8,
        dense_fast_path=False,
        plan_cache=False,
        parallel_shards=workers,
        parallel_backend="processes",
    )
    edges = erdos_renyi(65_536, 1_000_000, seed=7, name="er-wallclock")
    return WallclockCase(
        engines={
            "fast": GraphReduce(edges, options=fast),
            "slow": GraphReduce(edges, options=slow),
        },
        make_program=lambda: PageRank(tolerance=None, max_iterations=25),
        metrics_engine=GraphReduce(edges, options=metrics),
        min_speedup=1.5 if cores >= 2 else 0.0,
    )


def _cluster_wallclock_case() -> WallclockCase:
    """Partitioned-ownership cluster pool vs the replicated process pool.

    Both sides run the same shard-parallel PageRank; the slow side is
    the PR-5 process pool (every worker attaches the full shard arrays
    and the main process republishes full state each phase), the fast
    side is the cluster backend (each worker holds only its owned shard
    slice and receives sparse boundary deltas through a fixed-slot
    mailbox). Results are bit-identical by contract; the floor applies
    only on multi-core hosts, where skipping the full-state publish is
    the win being gated.

    ``extra`` gates the memory claim -- the peak per-worker resident
    footprint must sit measurably below the single-process footprint --
    and the committed 1->8 multi-device scaling floor: the simulated
    scheduler is deterministic, so the scaling ratio is machine-
    independent and gated on every run, including ``--update``.
    """
    import os

    from repro.algorithms import PageRank
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import erdos_renyi

    cores = os.cpu_count() or 1
    workers = 2
    common = dict(
        cache_policy="never",
        num_partitions=8,
        observe=False,
        trace=False,
        dense_fast_path=False,
        plan_cache=False,
        parallel_shards=workers,
    )
    fast = GraphReduceOptions(**common, parallel_backend="cluster")
    slow = GraphReduceOptions(**common, parallel_backend="processes")
    metrics = GraphReduceOptions(
        cache_policy="never",
        num_partitions=8,
        dense_fast_path=False,
        plan_cache=False,
        parallel_shards=workers,
        parallel_backend="cluster",
    )
    edges = erdos_renyi(65_536, 1_000_000, seed=7, name="er-wallclock")
    make_program = lambda: PageRank(tolerance=None, max_iterations=25)

    def extra(metrics_result):
        pp = metrics_result.procpool or {}
        resident = pp.get("worker_resident_bytes") or []
        single = pp.get("single_process_bytes", 0)
        peak = max(resident) if resident else 0
        if not single or peak >= 0.7 * single:
            raise AssertionError(
                f"cluster peak per-worker resident {peak} B is not below "
                f"70% of the single-process footprint {single} B"
            )
        from repro.core.multigpu import MultiGPUGraphReduce

        mg_opts = GraphReduceOptions(
            cache_policy="never", num_partitions=8, observe=False, trace=False
        )
        one = MultiGPUGraphReduce(edges, num_devices=1, options=mg_opts).run(
            make_program()
        )
        eight = MultiGPUGraphReduce(
            edges, num_devices=8, options=mg_opts, frontier_policy="partitioned"
        ).run(make_program())
        scaling = one.sim_time / eight.sim_time if eight.sim_time else 0.0
        floor = 2.0  # deterministic sim: machine-independent
        if scaling < floor:
            raise AssertionError(
                f"multi-device 1->8 scaling {scaling:.2f}x fell below the "
                f"{floor:.2f}x floor"
            )
        return {
            "worker_resident_peak_bytes": int(peak),
            "single_process_bytes": int(single),
            "boundary_bytes_sent": int(pp.get("boundary_bytes_sent", 0)),
            "mailbox_stalls": int(pp.get("mailbox_stalls", 0)),
            "multigpu_scaling_8": scaling,
            "multigpu_scaling_floor": floor,
            "multigpu_replication_bytes_8": int(eight.replication_bytes),
            "multigpu_p2p_bytes_8": int(eight.p2p_bytes),
            "multigpu_host_staged_bytes_8": int(eight.host_staged_bytes),
        }

    return WallclockCase(
        engines={
            "fast": GraphReduce(edges, options=fast),
            "slow": GraphReduce(edges, options=slow),
        },
        make_program=make_program,
        metrics_engine=GraphReduce(edges, options=metrics),
        min_speedup=0.8 if cores >= 2 else 0.0,
        extra=extra,
    )


def _wallclock_cases(shard_store=None, memory_budget=None) -> dict[str, Callable]:
    """name -> zero-arg factory returning a :class:`WallclockCase`.

    The host fast-path cases differ only in the host fast paths (dense
    plans + plan cache + parallel shard compute on vs all off), so the
    simulated device timeline is identical by construction and the
    wall-clock ratio isolates the host-side win.

    The PageRank case is the classic fixed-iteration power formulation
    (``tolerance=None``): every vertex active and changed each round, so
    dense plans are built once and reused -- the workload the fast paths
    target. The traversal cases (``bfs_wallclock``,
    ``road_sssp_wallclock``) run direction-optimizing frontiers where no
    plan repeats across push iterations; the fast-path win there comes
    from the sparse-plan bypass plus cached dense plans on pull
    iterations -- see :func:`_bfs_wallclock_case` and
    :func:`_road_sssp_wallclock_case`. ``ooc_pagerank_wallclock``
    measures the out-of-core tier instead -- see
    :func:`_ooc_wallclock_case`.
    """
    from repro.algorithms import PageRank
    from repro.core.runtime import GraphReduce, GraphReduceOptions

    common = dict(cache_policy="never", num_partitions=4, observe=False, trace=False)
    fast = GraphReduceOptions(**common, parallel_shards=4)
    slow = GraphReduceOptions(**common, dense_fast_path=False, plan_cache=False)
    metrics = GraphReduceOptions(cache_policy="never", num_partitions=4, parallel_shards=4)

    def graph():
        from repro.graph.generators import erdos_renyi

        return erdos_renyi(65_536, 1_000_000, seed=7, name="er-wallclock")

    def fastpath_case(make_program, min_speedup):
        def factory():
            edges = graph()
            return WallclockCase(
                engines={
                    "fast": GraphReduce(edges, options=fast),
                    "slow": GraphReduce(edges, options=slow),
                },
                make_program=make_program,
                metrics_engine=GraphReduce(edges, options=metrics),
                min_speedup=min_speedup,
            )

        return factory

    return {
        "pagerank_wallclock": fastpath_case(
            lambda: PageRank(tolerance=None, max_iterations=25), 2.0
        ),
        "bfs_wallclock": _bfs_wallclock_case,
        "road_sssp_wallclock": _road_sssp_wallclock_case,
        "ooc_pagerank_wallclock": lambda: _ooc_wallclock_case(shard_store, memory_budget),
        "batch_bfs_wallclock": _batch_bfs_wallclock_case,
        "batch_pagerank_wallclock": _batch_pagerank_wallclock_case,
        "procpool_pagerank_wallclock": _procpool_wallclock_case,
        "cluster_pagerank_wallclock": _cluster_wallclock_case,
        "telemetry_pagerank_wallclock": _telemetry_overhead_wallclock_case,
        "numba_pagerank_wallclock": _numba_wallclock_case,
    }


def _numba_wallclock_case() -> WallclockCase:
    """Compiled kernel backend vs the fused NumPy backend.

    Both sides run the identical serial fast-path configuration (dense
    plans + plan cache on) on power-iteration PageRank; the only
    difference is the kernel backend. The fast side's fused ``@njit``
    kernels do the whole gather (take + degree-divide + segment-reduce
    + has-mark) in one parallel pass over the CSC sub-arrays where the
    NumPy backend makes several whole-array passes through arena
    buffers -- that pass fusion plus compilation is what the >=2x floor
    measures.

    JIT compilation happens in the harness's *untimed* warm-up pass
    (:func:`run_wallclock_suite` runs every engine once before timing,
    and ``@njit(cache=True)`` persists the machine code on disk), so
    measured repeats contain no compilation --
    ``tests/core/test_kernels.py`` pins that invariant via the
    dispatchers' signature sets.

    Without Numba the fast side requests ``"numpy"`` directly (asking
    for ``"numba"`` would just degrade to it with a RuntimeWarning --
    noise on every Numba-free ``bench-check``, which reruns this suite
    for its simulated metrics) and the floor drops to 0.0: the ratio is
    recorded as ~1.0 informational context and never gated. CI's
    ``numba-kernels`` job installs Numba and enforces the floor.
    """
    from repro.algorithms import PageRank
    from repro.core.kernels import numba_available
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import erdos_renyi

    edges = erdos_renyi(65_536, 1_000_000, seed=7, name="er-wallclock")
    common = dict(cache_policy="never", num_partitions=4, observe=False, trace=False)
    fast = GraphReduceOptions(
        **common, kernel_backend="numba" if numba_available() else "numpy"
    )
    slow = GraphReduceOptions(**common, kernel_backend="numpy")
    # Committed sim metrics come from the numpy side so the default
    # (Numba-free) CI lane reproduces them bit for bit; the timeline is
    # backend-invariant anyway.
    metrics = GraphReduceOptions(
        cache_policy="never", num_partitions=4, kernel_backend="numpy"
    )
    return WallclockCase(
        engines={
            "fast": GraphReduce(edges, options=fast),
            "slow": GraphReduce(edges, options=slow),
        },
        make_program=lambda: PageRank(tolerance=None, max_iterations=25),
        metrics_engine=GraphReduce(edges, options=metrics),
        min_speedup=2.0 if numba_available() else 0.0,
    )


def _telemetry_overhead_wallclock_case() -> WallclockCase:
    """Live telemetry enabled vs disabled: the <=5% overhead gate.

    Both sides run the identical PageRank configuration; the *fast*
    side additionally streams live telemetry (per-iteration snapshots
    to a JSONL sink, heartbeat watchdog polling). The harness computes
    ``speedup = slow / fast``, i.e. disabled time over enabled time, so
    the ``min_speedup`` floor of 0.952 caps telemetry overhead at
    ``1/0.952 - 1`` (~5%): if streaming telemetry slows the run more
    than that on this machine, the gate fails. ``interval=0.0`` makes
    every iteration emit a snapshot -- the worst-case publishing rate,
    far denser than the default half-second throttle.

    ``extra`` folds the stream afterwards and asserts it actually
    recorded snapshots and zero incidents -- guarding against the
    degenerate "zero overhead because nothing was written" pass.
    """
    import shutil
    import tempfile

    from repro.algorithms import PageRank
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import erdos_renyi
    from repro.obs.telemetry import TelemetryConfig

    edges = erdos_renyi(65_536, 1_000_000, seed=7, name="er-wallclock")
    tmp = Path(tempfile.mkdtemp(prefix="repro-telemetry-bench-"))
    stream = tmp / "telemetry.jsonl"
    common = dict(cache_policy="never", num_partitions=4, observe=False, trace=False)
    fast = GraphReduceOptions(
        **common,
        telemetry=TelemetryConfig(out=str(stream), interval=0.0),
    )
    slow = GraphReduceOptions(**common)
    metrics = GraphReduceOptions(cache_policy="never", num_partitions=4)

    def extra(metrics_result):
        from repro.obs.monitor import fold_stream, read_records

        doc = fold_stream(read_records(str(stream)))
        if not doc["snapshots"]:
            raise AssertionError("telemetry stream recorded no snapshots")
        if doc["incidents"]:
            raise AssertionError(
                f"telemetry run raised {doc['incidents']} incidents"
            )
        return {
            "telemetry": {
                "records": doc["records"],
                "snapshots": doc["snapshots"],
                "incidents": doc["incidents"],
            }
        }

    return WallclockCase(
        engines={
            "fast": GraphReduce(edges, options=fast),
            "slow": GraphReduce(edges, options=slow),
        },
        make_program=lambda: PageRank(tolerance=None, max_iterations=20),
        metrics_engine=GraphReduce(edges, options=metrics),
        min_speedup=0.952,
        extra=extra,
        cleanup=lambda: shutil.rmtree(tmp, ignore_errors=True),
    )


def _bfs_wallclock_case() -> WallclockCase:
    """Direction-optimizing BFS vs the push-only slow path.

    BFS frontiers never repeat, so the plan cache alone cannot win this
    workload (the 0%-hit-rate pathology the sparse bypass fixed). The
    fast side runs ``direction=auto``: the sparse bypass serves the
    thin wavefronts and the two near-complete peak iterations of the
    Erdos-Renyi wave flip to pull, where one cached dense plan replaces
    a ~45k-row one-shot sparse build per iteration. The slow side is
    the reference push-only engine with every fast path off.

    ``same_timeline=False``: pull improves vertices one iteration
    earlier than push (no activation lag), so simulated timelines
    differ while converged values stay bit-identical. The fixed-
    direction variants document that ``auto`` beats both pure push and
    pure pull on the same engine configuration.
    """
    from repro.algorithms import BFSGather
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import erdos_renyi

    edges = erdos_renyi(65_536, 1_000_000, seed=7, name="er-wallclock")
    common = dict(cache_policy="never", num_partitions=4, observe=False, trace=False)
    fast = GraphReduceOptions(**common, direction="auto")
    slow = GraphReduceOptions(**common, dense_fast_path=False, plan_cache=False)
    metrics = GraphReduceOptions(cache_policy="never", num_partitions=4, direction="auto")
    return WallclockCase(
        engines={
            "fast": GraphReduce(edges, options=fast),
            "slow": GraphReduce(edges, options=slow),
        },
        make_program=lambda: BFSGather(source=0),
        metrics_engine=GraphReduce(edges, options=metrics),
        min_speedup=1.0,
        same_timeline=False,
        variants={
            "push": GraphReduce(edges, options=GraphReduceOptions(**common)),
            "pull": GraphReduce(edges, options=GraphReduceOptions(**common, direction="pull")),
        },
        min_variant_ratio=1.05,
    )


def _road_sssp_wallclock_case() -> WallclockCase:
    """Weighted SSSP on a road grid with a motorway overlay.

    The high-diameter scenario where direction switching matters most:
    highway shortcuts keep rewriting whole regions of the street grid
    (re-relaxation), so the frontier stays broad for many iterations.
    Fixed push rebuilds a tens-of-thousands-row sparse plan every broad
    iteration; fixed pull drags a full dense sweep across the long
    sparse tail. ``auto`` (tight alpha/beta -- the vectorized pull has
    no per-vertex early exit, so its profitable window is narrower than
    Beamer's classic 14/24) pulls only through the broad middle and
    beats both.

    Fast and slow sides both run the ``auto`` schedule -- direction
    decisions derive from the natural frontier only, so the timeline is
    identical and the ratio isolates the host fast paths (cached dense
    plans are exactly what make pull affordable).
    """
    from repro.algorithms import SSSP
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import grid_road

    edges = grid_road(
        256, 256, diagonal_fraction=0.15, seed=9, name="road-hwy", highways=98_304
    ).with_random_weights(seed=11)
    common = dict(cache_policy="never", num_partitions=1, observe=False, trace=False)
    auto = dict(direction="auto", direction_alpha=2.0, direction_beta=3.0)
    fast = GraphReduceOptions(**common, **auto)
    slow = GraphReduceOptions(**common, **auto, dense_fast_path=False, plan_cache=False)
    metrics = GraphReduceOptions(cache_policy="never", num_partitions=1, **auto)
    return WallclockCase(
        engines={
            "fast": GraphReduce(edges, options=fast),
            "slow": GraphReduce(edges, options=slow),
        },
        make_program=lambda: SSSP(source=0),
        metrics_engine=GraphReduce(edges, options=metrics),
        min_speedup=1.3,
        variants={
            "push": GraphReduce(edges, options=GraphReduceOptions(**common)),
            "pull": GraphReduce(edges, options=GraphReduceOptions(**common, direction="pull")),
        },
        min_variant_ratio=1.05,
    )


class _BatchSweepEngine:
    """WallclockCase adapter: one K-query batch per ``run`` call.

    ``run`` takes the sweep spec the case's ``make_program`` produces
    (a family plus per-query parameters), executes the whole batch as a
    single engine run through :class:`repro.core.batch.BatchRunner`,
    and returns that run's result with ``vertex_values`` swapped for
    the stacked ``(n, K)`` per-query matrix -- so the harness's
    bit-equality check compares every query against the slow side's
    solo sweep, column by column. Batch bookkeeping (retirements,
    per-query iteration spread) rides on the result as ``batch`` for
    the snapshot's ``extra`` hook.
    """

    def __init__(self, engine, layout: str = "auto"):
        self.engine = engine
        self.layout = layout

    def run(self, spec):
        import dataclasses

        from repro.core.batch import BatchRunner

        runner = BatchRunner(self.engine, batch_size=64, layout=self.layout)
        if spec["family"] == "bfs":
            report = runner.run_bfs(spec["sources"])
        else:
            report = runner.run_pagerank(
                spec["dampings"], iterations=spec["iterations"]
            )
        run = report.runs[0]
        result = dataclasses.replace(run, vertex_values=report.values_matrix())
        iters = sorted(q.iterations for q in report.queries)
        result.batch = dict(
            run.batch or {},
            chunks=report.stats["chunks"],
            retired_early=report.stats["retired_early"],
            query_iterations={
                "min": iters[0],
                "p50": iters[len(iters) // 2],
                "max": iters[-1],
            },
        )
        return result


class _SoloSweepEngine:
    """WallclockCase adapter: the same sweep as K sequential solo runs.

    Stacks the K solo results into the identical ``(n, K)`` matrix the
    batch side returns, so the harness's equality check is exactly the
    batch-vs-solo equivalence contract. The engine configuration is the
    same as the batch side's -- every host fast path on -- so the
    measured ratio isolates scan sharing, not a crippled baseline.
    """

    def __init__(self, engine):
        self.engine = engine

    def run(self, spec):
        import dataclasses

        import numpy as np

        from repro.algorithms import BFSGather, PageRank

        cols, last = [], None
        if spec["family"] == "bfs":
            for s in spec["sources"]:
                last = self.engine.run(BFSGather(source=int(s)))
                cols.append(last.vertex_values)
        else:
            for d in spec["dampings"]:
                last = self.engine.run(
                    PageRank(
                        damping=float(d),
                        tolerance=None,
                        max_iterations=spec["iterations"],
                    )
                )
                cols.append(last.vertex_values)
        return dataclasses.replace(last, vertex_values=np.stack(cols, axis=1))


def _batch_extra(metrics_result) -> dict:
    batch = dict(metrics_result.batch)
    if batch["retired"] != batch["queries"]:
        raise AssertionError(
            f"batch left {batch['queries'] - batch['retired']} queries unretired"
        )
    return {"batch": batch}


def _batch_bfs_wallclock_case() -> WallclockCase:
    """One MS-BFS batch vs 16 sequential solo BFS runs.

    The fast side packs all 16 traversals into one uint64 word per
    vertex (bit-parallel MS-BFS) and streams the graph once; the slow
    side is the identically configured engine running the 16 sources
    back to back, each paying its own shard stream, plan builds and
    frontier machinery. Per-query depth columns must match the solo
    runs bit for bit -- the harness's cross-engine equality check *is*
    the batch-equivalence gate. ``same_timeline=False``: one fused run
    cannot share a timeline with 16 runs (the slow result carries the
    last solo run's clock). The ``columns`` variant times the float32
    state-matrix layout on the same batch, documenting that bit packing
    beats 16 depth columns.
    """
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import erdos_renyi

    edges = erdos_renyi(65_536, 1_000_000, seed=7, name="er-wallclock")
    sources = [1 + 4099 * k for k in range(16)]
    common = dict(cache_policy="never", num_partitions=4, observe=False, trace=False)
    options = GraphReduceOptions(**common)
    metrics = GraphReduceOptions(cache_policy="never", num_partitions=4)
    return WallclockCase(
        engines={
            "fast": _BatchSweepEngine(GraphReduce(edges, options=options), layout="bits"),
            "slow": _SoloSweepEngine(GraphReduce(edges, options=options)),
        },
        make_program=lambda: {"family": "bfs", "sources": list(sources)},
        metrics_engine=_BatchSweepEngine(
            GraphReduce(edges, options=metrics), layout="bits"
        ),
        min_speedup=2.0,
        same_timeline=False,
        variants={
            "columns": _BatchSweepEngine(
                GraphReduce(edges, options=options), layout="columns"
            ),
        },
        min_variant_ratio=1.05,
        extra=_batch_extra,
    )


def _batch_pagerank_wallclock_case() -> WallclockCase:
    """One columnar PageRank batch vs 16 sequential out-of-core runs.

    A damping-factor sweep over a shard store under a minimal memory
    budget -- the configuration where scan sharing is the whole story.
    Every round must stream all 8 shards through the capacity-1 cache;
    the fast side fuses the 16 queries into one ``(n, 16)`` float32
    state matrix and pays that stream once per round, the slow side
    runs the 16 dampings back to back and pays it 16 times. The
    per-edge arithmetic is identical on both sides (columns broadcast
    the same ops, in the same order, the solo run applies), so the
    ratio measures exactly what the batch executor amortizes: shard
    loads, plan builds and per-phase dispatch. The metrics pass runs
    without prefetch threads so the committed hit/fault split stays
    deterministic, matching ``ooc_pagerank_wallclock``.
    """
    import shutil
    import tempfile

    from repro.core.partition import PartitionEngine
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.core.shardstore import ShardStore
    from repro.graph.generators import erdos_renyi

    edges = erdos_renyi(65_536, 1_000_000, seed=7, name="er-wallclock")
    tmp = Path(tempfile.mkdtemp(prefix="repro-batch-bench-"))
    store = ShardStore.save(PartitionEngine().partition(edges, 8), tmp / "store")
    dampings = [0.80 + 0.01 * k for k in range(16)]
    common = dict(cache_policy="never", observe=False, trace=False, memory_budget=1)
    options = GraphReduceOptions(**common)
    metrics = GraphReduceOptions(
        cache_policy="never", memory_budget=1, host_prefetch=False
    )
    spec = {"family": "pagerank", "dampings": dampings, "iterations": 12}
    return WallclockCase(
        engines={
            "fast": _BatchSweepEngine(GraphReduce(shard_store=store, options=options)),
            "slow": _SoloSweepEngine(GraphReduce(shard_store=store, options=options)),
        },
        make_program=lambda: dict(spec),
        metrics_engine=_BatchSweepEngine(GraphReduce(shard_store=store, options=metrics)),
        min_speedup=2.0,
        same_timeline=False,
        extra=_batch_extra,
        cleanup=lambda: shutil.rmtree(tmp, ignore_errors=True),
    )


def run_wallclock_suite(
    repeats: int = 3, warmup: int = 1, shard_store=None, memory_budget=None
) -> dict:
    """Measure the host fast paths; returns ``{name: measurement}``.

    Each case runs every engine per repeat -- fast, slow and any
    fixed-direction variants, interleaved so machine drift cancels out
    of the ratios -- after ``warmup`` untimed passes per side, and
    keeps the best wall time of each. The warm-up pass is also where
    compiled kernel backends JIT (``numba_pagerank_wallclock``): every
    ``@njit`` dispatcher specializes during the untimed run, so timed
    repeats never contain compilation.
    Every engine must produce bit-identical ``vertex_values`` (the fast
    paths, direction switching and the out-of-core tier are
    value-preserving by contract; the harness enforces it); cases with
    ``same_timeline`` additionally pin the simulated time and frontier
    history. A final traced pass records the deterministic device
    metrics, which ``repro bench-check`` gates like any other snapshot.

    ``shard_store``/``memory_budget`` parameterize the out-of-core case:
    reuse an existing store directory instead of building a temporary
    one, and cap its warm configuration's shard cache.
    """
    import time

    import numpy as np

    out = {}
    for name, factory in sorted(_wallclock_cases(shard_store, memory_budget).items()):
        case = factory()
        try:
            engines = dict(case.engines)
            engines.update(case.variants or {})
            results: dict = {}
            times: dict[str, list[float]] = {key: [] for key in engines}
            for _ in range(max(0, warmup)):  # allocator, caches, page-ins
                for key, eng in engines.items():
                    eng.run(case.make_program())
            for _ in range(max(1, repeats)):
                for key, eng in engines.items():
                    t0 = time.perf_counter()
                    results[key] = eng.run(case.make_program())
                    times[key].append(time.perf_counter() - t0)
            fast_r, slow_r = results["fast"], results["slow"]
            for key, r in results.items():
                if not np.array_equal(fast_r.vertex_values, r.vertex_values):
                    raise AssertionError(
                        f"{name}: fast/{key} paths disagree on vertex values"
                    )
            if case.same_timeline:
                if fast_r.sim_time != slow_r.sim_time:
                    raise AssertionError(
                        f"{name}: fast paths perturbed the simulated timeline "
                        f"({fast_r.sim_time} vs {slow_r.sim_time})"
                    )
                if fast_r.frontier_history != slow_r.frontier_history:
                    raise AssertionError(
                        f"{name}: fast/slow paths disagree on frontier history"
                    )
            metrics_r = case.metrics_engine.run(case.make_program())
            # The traced engine mirrors the slow side's schedule for
            # same-timeline cases and the fast side's otherwise
            # (direction-differing cases trace the auto schedule).
            if metrics_r.sim_time != (slow_r if case.same_timeline else fast_r).sim_time:
                raise AssertionError(f"{name}: traced metrics run diverged from timed runs")
            m = measure(metrics_r)
            best = {key: min(vals) for key, vals in times.items()}
            m.update(
                wall_seconds_fast=best["fast"],
                wall_seconds_slow=best["slow"],
                speedup=best["slow"] / best["fast"],
                min_speedup=case.min_speedup,
                plan_cache=metrics_r.plan_cache,
            )
            for key in case.variants or ():
                m[f"wall_seconds_{key}"] = best[key]
                m[f"speedup_vs_{key}"] = best[key] / best["fast"]
            if case.variants:
                m["min_variant_ratio"] = case.min_variant_ratio
            prefetch = getattr(metrics_r, "prefetch", None)
            if prefetch:
                m["prefetch"] = {k: v for k, v in prefetch.items() if k != "lane"}
            if case.extra is not None:
                m.update(case.extra(metrics_r))
            out[name] = m
        finally:
            if case.cleanup is not None:
                case.cleanup()
    return out


def run_ooc_probe(
    store_path,
    iterations: int = 8,
    memory_budget: int | None = None,
    address_space_cap: int | None = None,
    profile_out=None,
    timeout: float = 600.0,
) -> dict:
    """Run :mod:`repro.obs.ooc_probe` in a fresh interpreter.

    ``ru_maxrss`` is lifetime-monotone, so a run's peak RSS can only be
    measured by a process that has done nothing else -- hence the
    subprocess. Returns the probe's JSON document; on a crash the dict
    has ``ok: False`` plus the captured stderr tail.
    """
    import os
    import subprocess
    import sys

    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro.obs.ooc_probe", str(store_path),
        "--iterations", str(iterations),
    ]
    if memory_budget is not None:
        cmd += ["--memory-budget", str(memory_budget)]
    if address_space_cap is not None:
        cmd += ["--address-space-cap", str(address_space_cap)]
    if profile_out is not None:
        cmd += ["--profile-out", str(profile_out)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout, env=env)
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return {
            "ok": False,
            "returncode": proc.returncode,
            "error": (proc.stderr or proc.stdout).strip()[-2000:],
        }


def check_wallclock(baseline: dict, fresh: dict, tolerance: float = DEFAULT_TOLERANCE):
    """Gate a fresh wall-clock run against the committed snapshot.

    Returns ``(regressions, failures)``: deterministic sim-metric
    regressions via :func:`compare` (wall-clock fields are machine-
    dependent and never compared across machines), plus cases whose
    *fresh, same-machine* speedup fell below their ``min_speedup``
    floor. Cases with direction variants also gate each
    ``speedup_vs_<variant>`` ratio against ``min_variant_ratio`` --
    the "auto beats both fixed directions" claim, re-proved on every
    machine the gate runs on.
    """
    return compare(baseline, fresh, tolerance=tolerance), floor_failures(fresh)


def floor_failures(fresh: dict) -> list[tuple[str, float, float]]:
    """Same-machine speedup-floor violations of a fresh wall-clock run.

    ``(case, measured, floor)`` rows: the fast/slow ``speedup`` against
    ``min_speedup``, and -- for cases with direction variants -- each
    ``speedup_vs_<variant>`` ratio against ``min_variant_ratio``. The
    CLI enforces these on every invocation, including ``--update``, so
    a regressed fast path cannot be silently baked into the snapshot.
    """
    failures = [
        (name, m["speedup"], m["min_speedup"])
        for name, m in sorted(fresh.items())
        if m.get("min_speedup") and m["speedup"] < m["min_speedup"]
    ]
    for name, m in sorted(fresh.items()):
        floor = m.get("min_variant_ratio")
        if not floor:
            continue
        for key, ratio in sorted(m.items()):
            if key.startswith("speedup_vs_") and ratio < floor:
                failures.append((f"{name}[vs_{key[len('speedup_vs_'):]}]", ratio, floor))
    return failures


@dataclass(frozen=True)
class Regression:
    """One metric that got slower than the snapshot allows."""

    benchmark: str
    metric: str
    baseline: float
    fresh: float

    @property
    def ratio(self) -> float:
        return self.fresh / self.baseline if self.baseline else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.benchmark}/{self.metric}: {self.baseline:.6f}s -> "
            f"{self.fresh:.6f}s ({self.ratio:.2f}x)"
        )


def compare(
    baseline: dict,
    fresh: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    min_seconds: float = MIN_SECONDS,
) -> list[Regression]:
    """Regressions of ``fresh`` against the ``baseline`` snapshot.

    Compares ``sim_time``, ``memcpy_time``, ``kernel_time`` and every
    per-phase total; a metric regresses when the fresh value exceeds
    baseline * (1 + tolerance) and the baseline is above the noise
    floor. Benchmarks present on only one side are skipped (adding or
    retiring a benchmark is not a regression).
    """
    regressions = []
    for name, base in baseline.items():
        cur = fresh.get(name)
        if cur is None:
            continue
        pairs = [(m, base.get(m), cur.get(m)) for m in ("sim_time", "memcpy_time", "kernel_time")]
        pairs += [
            (f"phase:{ph}", b, cur.get("phases", {}).get(ph))
            for ph, b in base.get("phases", {}).items()
        ]
        for metric, b, f in pairs:
            if b is None or f is None or b < min_seconds:
                continue
            if f > b * (1.0 + tolerance):
                regressions.append(Regression(name, metric, b, f))
    return regressions


# ----------------------------------------------------------------------
# bench-diff: deltas between two snapshots (bench or profile documents)
# ----------------------------------------------------------------------
#: Metric name prefixes/names where a larger value is a regression.
_HIGHER_IS_WORSE = ("sim_time", "memcpy_time", "kernel_time", "phase:")


@dataclass(frozen=True)
class DiffRow:
    """One metric's before/after across two snapshots."""

    benchmark: str
    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def ratio(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 1.0
        return self.after / self.before

    @property
    def comparable(self) -> bool:
        """Whether growth in this metric counts as a regression."""
        return self.metric in _HIGHER_IS_WORSE or self.metric.startswith("phase:")

    def regressed(self, tolerance: float, min_seconds: float = MIN_SECONDS) -> bool:
        if not self.comparable or self.before < min_seconds:
            return False
        return self.after > self.before * (1.0 + tolerance)

    def __str__(self) -> str:
        return (
            f"{self.benchmark}/{self.metric}: {self.before:.6g} -> "
            f"{self.after:.6g} ({self.ratio:.2f}x)"
        )


def metric_table(doc: dict) -> dict[str, dict[str, float]]:
    """Normalize a snapshot document to ``{case: {metric: value}}``.

    Accepts every format ``repro`` writes: bench snapshots
    (``bench-check``'s ``{"version", "benchmarks": ...}``), profiler
    documents (``repro profile``'s ``profile.json``), and folded
    telemetry reports (``repro telemetry-report``'s
    ``telemetry_version`` docs), so any two of them diff against each
    other. Documents carrying an unsupported schema version are
    rejected with :class:`ValueError` so ``bench-diff`` fails cleanly
    instead of comparing fields it misreads.
    """
    if "benchmarks" in doc:
        out = {}
        for name, m in doc["benchmarks"].items():
            # Wall-clock fields (bench-wallclock snapshots) surface as
            # informational rows: not in _HIGHER_IS_WORSE, so growth in
            # a machine-dependent timing never fails a diff.
            fixed = ("sim_time", "memcpy_time", "kernel_time", "iterations")
            row = {
                k: float(m[k])
                for k in m
                if k in fixed
                or k.startswith("wall_seconds_")
                or k == "speedup"
                or k.startswith("speedup_vs_")
            }
            for ph, v in m.get("phases", {}).items():
                row[f"phase:{ph}"] = float(v)
            out[name] = row
        return out
    if "telemetry_version" in doc:
        if doc["telemetry_version"] != 1:
            raise ValueError(
                "unsupported telemetry report version "
                f"{doc['telemetry_version']!r} (this build reads version 1)"
            )
        run = doc.get("run", {})
        name = (
            f"telemetry:{run.get('algorithm', '?')}/"
            f"{run.get('backend') or 'serial'}"
        )
        row = {
            k: float(doc[k])
            for k in (
                "sim_time",
                "iterations",
                "snapshots",
                "frontier_peak",
                "incidents",
            )
            if doc.get(k) is not None
        }
        # Wall-clock rates are informational (machine-dependent): the
        # wall_seconds_ prefix keeps them out of _HIGHER_IS_WORSE.
        if doc.get("wall_seconds") is not None:
            row["wall_seconds_stream"] = float(doc["wall_seconds"])
        for cname, v in doc.get("counters", {}).items():
            row[f"counter:{cname}"] = float(v)
        return {name: row}
    if "profile_version" in doc:
        if doc["profile_version"] != 1:
            raise ValueError(
                f"unsupported profile version {doc['profile_version']!r} "
                "(this build reads version 1)"
            )
        name = f"{doc.get('algo', '?')}/{doc.get('graph', '?')}"
        row = {
            k: float(doc[k])
            for k in ("sim_time", "memcpy_time", "kernel_time", "iterations")
            if k in doc
        }
        for ph, m in doc.get("phases", {}).items():
            row[f"phase:{ph}"] = float(m["total_time"])
        for cname, v in doc.get("counters", {}).items():
            row[f"counter:{cname}"] = float(v)
        ov = doc.get("overlap", {})
        if "efficiency" in ov:
            row["overlap_efficiency"] = float(ov["efficiency"])
        return {name: row}
    raise ValueError(
        "unrecognized snapshot: expected a bench-check snapshot "
        "('benchmarks'), a profile.json ('profile_version'), or a "
        "telemetry report ('telemetry_version')"
    )


def diff_documents(
    a: dict, b: dict, tolerance: float = DEFAULT_TOLERANCE
) -> tuple[list[DiffRow], list[DiffRow]]:
    """All per-metric deltas of ``b`` against ``a``, plus the regressions.

    Cases or metrics present on only one side are skipped (adding or
    retiring a benchmark is not a regression). Regressions are timing
    metrics that grew beyond ``tolerance``; counters and rates are
    reported as deltas but never fail the diff on their own.
    """
    left, right = metric_table(a), metric_table(b)
    rows: list[DiffRow] = []
    for case in sorted(left):
        if case not in right:
            continue
        for metric in sorted(left[case]):
            if metric not in right[case]:
                continue
            rows.append(DiffRow(case, metric, left[case][metric], right[case][metric]))
    regressions = [r for r in rows if r.regressed(tolerance)]
    return rows, regressions


def load_snapshot(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot {path} has version {doc.get('version')!r}; "
            f"expected {SNAPSHOT_VERSION}"
        )
    return doc


def save_snapshot(path, benchmarks: dict, tolerance: float = DEFAULT_TOLERANCE) -> Path:
    path = Path(path)
    doc = {"version": SNAPSHOT_VERSION, "tolerance": tolerance, "benchmarks": benchmarks}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
