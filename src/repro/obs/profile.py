"""The bottleneck-attribution profiler.

Consumes a finished run's span tree (:mod:`repro.obs.span`), device
interval trace (:mod:`repro.sim.trace`) and per-engine utilization
timelines (:meth:`repro.sim.resources.FluidResource.profile_snapshot`)
and produces a structured :class:`ProfileReport`:

* **per-engine occupancy** -- busy/idle timelines for the h2d/d2h copy
  engines and the SM pool, plus per-stream activity (spray streams
  included), reconciling exactly with the Chrome trace export because
  both read the same service windows;
* **overlap efficiency** -- the fraction of PCIe transfer time hidden
  under kernels (the paper's Figure-5 argument), overall and per
  iteration;
* **frontier-skip effectiveness** -- shards skipped, the traffic that
  skipping avoided (Figures 16-17);
* a **bottleneck verdict** with the single highest-leverage tuning
  recommendation (:mod:`repro.obs.attribution`); and
* a **model-validation pass** replaying Eq. (1)/(2) and the
  ``docs/cost-model.md`` per-op models against observed timings.

``repro profile`` wires this into the CLI (human-readable table +
machine-readable ``profile.json``); ``repro bench-diff`` compares two
such documents.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.attribution import (
    MODEL_TOLERANCE,
    ModelCheck,
    Verdict,
    diagnose,
    predict_concurrent_shards,
    validate_cost_model,
)

PROFILE_VERSION = 1


# ----------------------------------------------------------------------
# Interval algebra (plain (start, end) pairs)
# ----------------------------------------------------------------------
def merge_intervals(pairs) -> list[tuple[float, float]]:
    """Union of (start, end) pairs as a sorted, disjoint list."""
    merged: list[list[float]] = []
    for start, end in sorted(pairs):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(s, e) for s, e in merged]


def intersect_intervals(a, b) -> list[tuple[float, float]]:
    """Intersection of two disjoint sorted interval lists."""
    out: list[tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def total_length(pairs) -> float:
    return sum(e - s for s, e in pairs)


def clip_intervals(pairs, t0: float, t1: float) -> list[tuple[float, float]]:
    """The part of a disjoint sorted interval list inside [t0, t1]."""
    return [(max(s, t0), min(e, t1)) for s, e in pairs if s < t1 and e > t0]


# ----------------------------------------------------------------------
# Report pieces
# ----------------------------------------------------------------------
@dataclass
class EngineProfile:
    """Busy/idle accounting for one hardware engine."""

    name: str
    #: wall time with at least one job in service (union of windows)
    busy_seconds: float
    #: capacity-weighted integral -- busy_seconds discounts sharing,
    #: this does not (a half-rate second counts 0.5)
    utilization_seconds: float
    #: total work units delivered (bytes for copy engines,
    #: machine-seconds for the SM pool)
    served_work: float
    #: busy_seconds / makespan
    occupancy: float
    #: merged (start, end) busy windows -- the idle gaps between them
    #: are exactly the engine's idle timeline
    busy_intervals: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "busy_seconds": self.busy_seconds,
            "utilization_seconds": self.utilization_seconds,
            "served_work": self.served_work,
            "occupancy": self.occupancy,
            "busy_intervals": [list(p) for p in self.busy_intervals],
        }


@dataclass
class StreamProfile:
    """Activity summary for one simulated stream (spray streams too)."""

    name: str
    busy_seconds: float
    transfers: int
    kernels: int
    bytes: float
    items: float

    def to_dict(self) -> dict:
        return {
            "busy_seconds": self.busy_seconds,
            "transfers": self.transfers,
            "kernels": self.kernels,
            "bytes": self.bytes,
            "items": self.items,
        }


@dataclass
class IterationOverlap:
    """Per-iteration compute/transfer overlap (the Figure-5 view)."""

    index: int
    start: float
    end: float
    frontier: int
    transfer_busy: float
    kernel_busy: float
    hidden_transfer: float
    shards_processed: int
    shards_skipped: int

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of this iteration's transfer time hidden under kernels."""
        return self.hidden_transfer / self.transfer_busy if self.transfer_busy else 0.0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "frontier": self.frontier,
            "transfer_busy": self.transfer_busy,
            "kernel_busy": self.kernel_busy,
            "hidden_transfer": self.hidden_transfer,
            "overlap_efficiency": self.overlap_efficiency,
            "shards_processed": self.shards_processed,
            "shards_skipped": self.shards_skipped,
        }


@dataclass
class OverlapSummary:
    transfer_busy: float
    kernel_busy: float
    hidden_transfer: float
    device_busy: float

    @property
    def efficiency(self) -> float:
        """Overall fraction of PCIe transfer time hidden under kernels."""
        return self.hidden_transfer / self.transfer_busy if self.transfer_busy else 0.0

    def to_dict(self) -> dict:
        return {
            "transfer_busy": self.transfer_busy,
            "kernel_busy": self.kernel_busy,
            "hidden_transfer": self.hidden_transfer,
            "device_busy": self.device_busy,
            "efficiency": self.efficiency,
        }


@dataclass
class FrontierSkipProfile:
    shards_processed: int
    shards_skipped: int
    iterations: int
    iterations_with_skips: int
    #: estimated PCIe bytes that skipping avoided (skipped shards at the
    #: observed average streamed-bytes-per-processed-shard)
    est_bytes_saved: float

    @property
    def skip_rate(self) -> float:
        total = self.shards_processed + self.shards_skipped
        return self.shards_skipped / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "shards_processed": self.shards_processed,
            "shards_skipped": self.shards_skipped,
            "skip_rate": self.skip_rate,
            "iterations": self.iterations,
            "iterations_with_skips": self.iterations_with_skips,
            "est_bytes_saved": self.est_bytes_saved,
        }


@dataclass
class ProfileReport:
    """Everything ``repro profile`` prints and serializes."""

    algo: str
    graph: str
    sim_time: float
    memcpy_time: float
    kernel_time: float
    iterations: int
    concurrent_shards: int
    engines: dict[str, EngineProfile]
    streams: dict[str, StreamProfile]
    overlap: OverlapSummary
    per_iteration: list[IterationOverlap]
    frontier: FrontierSkipProfile
    phases: dict[str, dict]
    counters: dict
    verdict: Verdict
    validation: list[ModelCheck]
    #: gather-plan cache totals of the host fast paths (repro.core.plans)
    plan_cache: dict = field(default_factory=dict)
    #: host shard-prefetch counters of out-of-core runs (repro.core.movement)
    prefetch: dict = field(default_factory=dict)
    #: process-pool backend counters (repro.core.procpool); when the
    #: run used ``--parallel-backend cluster`` this carries the
    #: partitioned-ownership counters too (worker_resident_bytes,
    #: boundary_bytes_sent, mailbox stalls, ...)
    procpool: dict = field(default_factory=dict)
    #: multi-device scaling projection (``repro profile --devices N``):
    #: the same run re-executed on the simulated multi-device scheduler
    devices: dict = field(default_factory=dict)
    #: fused-kernel layer totals (repro.core.kernels): backend name,
    #: fused calls, fallbacks, scratch-arena reuse
    kernels: dict = field(default_factory=dict)
    #: histogram summaries (count/mean/p50/p90/p99 + log2 buckets) of
    #: every observed distribution -- frontier sizes, prefetch waits
    histograms: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_VERSION,
            "profile_version": PROFILE_VERSION,
            "algo": self.algo,
            "graph": self.graph,
            "sim_time": self.sim_time,
            "memcpy_time": self.memcpy_time,
            "kernel_time": self.kernel_time,
            "iterations": self.iterations,
            "concurrent_shards": self.concurrent_shards,
            "engines": {n: e.to_dict() for n, e in self.engines.items()},
            "streams": {n: s.to_dict() for n, s in self.streams.items()},
            "overlap": self.overlap.to_dict(),
            "per_iteration": [it.to_dict() for it in self.per_iteration],
            "frontier": self.frontier.to_dict(),
            "phases": self.phases,
            "counters": self.counters,
            "histograms": self.histograms,
            "plan_cache": self.plan_cache,
            "prefetch": self.prefetch,
            "procpool": self.procpool,
            "devices": self.devices,
            "kernels": self.kernels,
            "verdict": self.verdict.to_dict(),
            "model_validation": [c.to_dict() for c in self.validation],
        }

    def to_text(self) -> str:
        t = self.sim_time or 1e-30
        lines = [
            f"profile: {self.algo} on {self.graph} "
            f"({self.iterations} iterations, K={self.concurrent_shards})",
            f"simulated time     : {self.sim_time:.6f} s",
            "",
            f"{'engine':10s} {'busy (s)':>12s} {'occupancy':>10s} {'served':>14s}",
        ]
        for name in sorted(self.engines):
            e = self.engines[name]
            unit = "items·s" if name == "sm" else "B"
            lines.append(
                f"{name:10s} {e.busy_seconds:12.6f} {100 * e.occupancy:9.1f}% "
                f"{e.served_work:14.3e} {unit}"
            )
        lines += [
            "",
            f"overlap            : transfer busy {self.overlap.transfer_busy:.6f} s, "
            f"kernel busy {self.overlap.kernel_busy:.6f} s",
            f"                     {100 * self.overlap.efficiency:.1f}% of transfer "
            "time hidden under kernels",
            f"frontier skipping  : {self.frontier.shards_skipped}/"
            f"{self.frontier.shards_processed + self.frontier.shards_skipped} shard-"
            f"phases skipped ({100 * self.frontier.skip_rate:.1f}%), "
            f"~{self.frontier.est_bytes_saved / 2**20:.2f} MiB of PCIe avoided",
            self._plan_cache_line(),
            self._kernels_line(),
            self._prefetch_line(),
            self._procpool_line(),
            self._cluster_line(),
            self._devices_line(),
            "",
            f"bottleneck         : {self.verdict.bottleneck} "
            f"({100 * self.verdict.share:.0f}% of makespan)",
            f"  why              : {self.verdict.reason}",
            f"  recommendation   : {self.verdict.recommendation}",
            "",
            "model validation (predicted vs observed):",
        ]
        for c in self.validation:
            mark = "ok " if c.ok else "FAIL"
            lines.append(
                f"  [{mark}] {c.name:24s} {c.predicted:.6e} vs {c.observed:.6e} "
                f"(err {100 * c.rel_error:.2f}%, tol {100 * c.tolerance:.0f}%)"
            )
        busiest = sorted(
            self.streams.values(), key=lambda s: -s.busy_seconds
        )[:8]
        if busiest:
            lines += ["", f"{'stream':14s} {'busy (s)':>12s} {'copies':>7s} {'kernels':>8s}"]
            for s in busiest:
                lines.append(
                    f"{s.name:14s} {s.busy_seconds:12.6f} {s.transfers:7d} {s.kernels:8d}"
                )
        if self.histograms:
            lines += [
                "",
                f"{'distribution':26s} {'count':>8s} {'mean':>11s} "
                f"{'p50':>11s} {'p90':>11s} {'p99':>11s}",
            ]
            for name in sorted(self.histograms):
                h = self.histograms[name]
                p = h.get("percentiles", {})
                lines.append(
                    f"{name:26s} {h.get('count', 0):8d} {h.get('mean', 0.0):11.4g} "
                    f"{p.get('p50', 0.0):11.4g} {p.get('p90', 0.0):11.4g} "
                    f"{p.get('p99', 0.0):11.4g}"
                )
        return "\n".join(lines)

    def _plan_cache_line(self) -> str:
        pc = self.plan_cache
        queries = pc.get("hits", 0) + pc.get("misses", 0)
        bypass = pc.get("sparse_bypass", 0)
        if not queries and not bypass:
            return "plan cache         : disabled (no plan queries recorded)"
        line = (
            f"plan cache         : {pc.get('hits', 0)}/{queries} hits "
            f"({100 * pc.get('hit_rate', 0.0):.1f}%), "
            f"{pc.get('invalidations', 0)} invalidations, "
            f"{pc.get('evictions', 0)} evictions, "
            f"{bypass} sparse bypasses (host fast paths)"
        )
        if pc.get("carried_plans"):
            line += f", {pc['carried_plans']} plans carried warm"
        return line

    def _kernels_line(self) -> str:
        k = self.kernels
        if not k.get("backend"):
            return "kernels            : n/a (kernel backend off)"
        return (
            f"kernels            : {k.get('backend')} backend, "
            f"{k.get('fused_calls', 0)} fused calls, "
            f"{k.get('fallbacks', 0)} fallbacks, "
            f"arena {k.get('reuses', 0)} reuses / "
            f"{k.get('allocations', 0)} allocations "
            f"({k.get('held_bytes', 0) / 2**20:.2f} MiB held)"
        )

    def _prefetch_line(self) -> str:
        pf = self.prefetch
        acquired = pf.get("hits", 0) + pf.get("waits", 0) + pf.get("faults", 0)
        if not acquired:
            return "host prefetch      : n/a (in-RAM run)"
        line = (
            f"host prefetch      : {pf.get('hits', 0)}/{acquired} warm "
            f"({100 * pf.get('hit_rate', 0.0):.1f}%), "
            f"{pf.get('waits', 0)} waits ({pf.get('wait_seconds', 0.0):.3f} s), "
            f"{pf.get('faults', 0)} faults, {pf.get('evictions', 0)} evictions, "
            f"{pf.get('bytes_loaded', 0) / 2**20:.2f} MiB faulted in"
        )
        if pf.get("runs", 1) > 1:
            line += f", kept warm across {pf['runs']} runs"
        return line

    def _procpool_line(self) -> str:
        pp = self.procpool
        if not pp.get("tasks"):
            return "process pool       : n/a (serial or thread backend)"
        return (
            f"process pool       : {pp.get('workers', 0)} workers, "
            f"{pp.get('tasks', 0)} shard tasks "
            f"(max {pp.get('max_inflight', 0)} in flight), "
            f"publish {pp.get('publish_seconds', 0.0):.3f} s, "
            f"wait {pp.get('wait_seconds', 0.0):.3f} s"
        )

    def _cluster_line(self) -> str:
        pp = self.procpool
        if pp.get("backend") != "cluster":
            return "cluster            : n/a (not the cluster backend)"
        resident = pp.get("worker_resident_bytes") or []
        peak = max(resident) if resident else 0
        single = pp.get("single_process_bytes", 0) or 0
        frac = f" ({100 * peak / single:.0f}% of single-process)" if single else ""
        owned = "/".join(str(c) for c in pp.get("owned_shards", []))
        return (
            f"cluster            : {pp.get('workers', 0)} owners "
            f"(shards {owned}), frontier {pp.get('frontier_policy', '?')}, "
            f"peak resident {peak / 2**20:.2f} MiB{frac}; "
            f"boundary {pp.get('boundary_bytes_sent', 0) / 2**20:.2f} MiB sent, "
            f"deltas {pp.get('delta_bytes_merged', 0) / 2**20:.2f} MiB merged, "
            f"{pp.get('mailbox_stalls', 0)}/{pp.get('mailbox_publishes', 0)} "
            "mailbox stalls"
        )

    def _devices_line(self) -> str:
        d = self.devices
        if not d:
            return "devices            : 1 (pass --devices N for a multi-device projection)"
        return (
            f"devices            : {d.get('num_devices', 0)} simulated, "
            f"frontier {d.get('frontier_policy', '?')}, "
            f"sim {d.get('sim_time', 0.0):.6f} s "
            f"({d.get('speedup_vs_profiled', 0.0):.2f}x vs profiled run); "
            f"replication {d.get('replication_bytes', 0) / 2**20:.2f} MiB "
            f"(peer DMA {d.get('p2p_bytes', 0) / 2**20:.2f}, "
            f"host-staged {d.get('host_staged_bytes', 0) / 2**20:.2f})"
        )

    @property
    def validation_ok(self) -> bool:
        return all(c.ok for c in self.validation)


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def build_profile(result, machine=None, tolerance: float = MODEL_TOLERANCE) -> ProfileReport:
    """Profile one :class:`~repro.core.runtime.GraphReduceResult`.

    Needs the default observability switches (``observe=True``,
    ``trace=True``); raises ValueError otherwise. ``machine`` is the
    spec the run executed on (defaults to the standard testbed).
    """
    from repro.core.report import build_report

    if result.trace is None or not result.trace.enabled:
        raise ValueError("profiling needs the device trace (options.trace=True)")
    obs = result.observer
    if obs is None or not obs.enabled:
        raise ValueError("profiling needs the span tree (options.observe=True)")
    makespan = result.sim_time or 1e-30

    # -- engines --------------------------------------------------------
    engines: dict[str, EngineProfile] = {}
    for name, snap in (result.engine_snapshots or {}).items():
        busy = merge_intervals(
            (s, e) for s, e, _frac in snap["timeline"]
        )
        engines[name] = EngineProfile(
            name=name,
            busy_seconds=total_length(busy),
            utilization_seconds=snap["busy_time"],
            served_work=snap["served_work"],
            occupancy=total_length(busy) / makespan,
            busy_intervals=busy,
        )

    # -- streams --------------------------------------------------------
    per_stream: dict[str, list] = {}
    for iv in result.trace.intervals:
        per_stream.setdefault(iv.stream, []).append(iv)
    streams = {}
    for name, ivs in per_stream.items():
        streams[name] = StreamProfile(
            name=name,
            busy_seconds=total_length(
                merge_intervals((iv.service_begin, iv.end) for iv in ivs)
            ),
            transfers=sum(1 for iv in ivs if iv.category in ("h2d", "d2h")),
            kernels=sum(1 for iv in ivs if iv.category == "kernel"),
            bytes=sum(iv.amount for iv in ivs if iv.category in ("h2d", "d2h")),
            items=sum(iv.amount for iv in ivs if iv.category == "kernel"),
        )

    # -- overlap --------------------------------------------------------
    transfer_iv = merge_intervals(
        (iv.service_begin, iv.end)
        for iv in result.trace.intervals
        if iv.category in ("h2d", "d2h")
    )
    kernel_iv = merge_intervals(
        (iv.service_begin, iv.end)
        for iv in result.trace.intervals
        if iv.category == "kernel"
    )
    hidden_iv = intersect_intervals(transfer_iv, kernel_iv)
    device_iv = merge_intervals(
        (iv.service_begin, iv.end) for iv in result.trace.intervals
    )
    overlap = OverlapSummary(
        transfer_busy=total_length(transfer_iv),
        kernel_busy=total_length(kernel_iv),
        hidden_transfer=total_length(hidden_iv),
        device_busy=total_length(device_iv),
    )

    # -- per-iteration overlap -----------------------------------------
    stats_by_index = {st.iteration: st for st in result.iteration_stats}
    per_iteration: list[IterationOverlap] = []
    for sp in obs.find(category="iteration"):
        t0, t1 = sp.start, sp.end if sp.end is not None else sp.start
        tr = clip_intervals(transfer_iv, t0, t1)
        kr = clip_intervals(kernel_iv, t0, t1)
        st = stats_by_index.get(sp.attrs.get("index"))
        per_iteration.append(IterationOverlap(
            index=int(sp.attrs.get("index", len(per_iteration))),
            start=t0,
            end=t1,
            frontier=int(sp.attrs.get("frontier", 0)),
            transfer_busy=total_length(tr),
            kernel_busy=total_length(kr),
            hidden_transfer=total_length(intersect_intervals(tr, kr)),
            shards_processed=st.shards_processed if st else 0,
            shards_skipped=st.shards_skipped if st else 0,
        ))

    # -- frontier skipping ---------------------------------------------
    processed = result.stats.shards_processed
    skipped = result.stats.shards_skipped
    bytes_per_shard = (
        result.stats.h2d_bytes / processed if processed else 0.0
    )
    frontier = FrontierSkipProfile(
        shards_processed=processed,
        shards_skipped=skipped,
        iterations=result.iterations,
        iterations_with_skips=sum(
            1 for st in result.iteration_stats if st.shards_skipped
        ),
        est_bytes_saved=skipped * bytes_per_shard,
    )

    # -- phases ---------------------------------------------------------
    report = build_report(result)
    phases = {
        name: {
            "h2d_bytes": ph.h2d_bytes,
            "d2h_bytes": ph.d2h_bytes,
            "transfer_time": ph.transfer_time,
            "kernel_time": ph.kernel_time,
            "kernel_launches": ph.kernel_launches,
            "wall_time": ph.wall_time,
            "total_time": ph.total_time,
            "shards": ph.shards,
            "skipped": ph.skipped,
        }
        for name, ph in report.phases.items()
    }

    # -- verdict + validation ------------------------------------------
    cache_attrs: dict = {}
    for sp in obs.find(category="phase", name="cache"):
        cache_attrs = sp.attrs
        break
    eq2_optimum = predict_concurrent_shards({**cache_attrs, "async_streams": True})
    metrics = obs.metrics
    sm = engines.get("sm")
    verdict = diagnose(
        makespan=makespan,
        transfer_busy=overlap.transfer_busy,
        kernel_busy=overlap.kernel_busy,
        hidden_transfer=overlap.hidden_transfer,
        device_busy=overlap.device_busy,
        skip_rate=frontier.skip_rate,
        kernel_launches=metrics.value("movement.kernel.launches"),
        copies=metrics.value("movement.h2d.copies")
        + metrics.value("movement.d2h.copies"),
        concurrent_shards=result.concurrent_shards,
        eq2_optimum=eq2_optimum,
        spray_batches=metrics.value("movement.spray.batches"),
        sm_occupancy=sm.occupancy if sm else 0.0,
        cache_policy=str(cache_attrs.get("policy", "")),
        machine=machine,
    )
    validation = validate_cost_model(result, machine=machine, tolerance=tolerance)

    # -- host plan cache (repro.core.plans) ----------------------------
    plan_cache = getattr(result, "plan_cache", None)
    if plan_cache is None:
        hits = metrics.value("plans.hits")
        misses = metrics.value("plans.misses")
        plan_cache = {
            "hits": int(hits),
            "misses": int(misses),
            "invalidations": int(metrics.value("plans.invalidations")),
            "evictions": int(metrics.value("plans.evictions")),
            "sparse_bypass": int(metrics.value("plans.sparse_bypass")),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }

    # -- host shard prefetch (repro.core.movement) ---------------------
    prefetch = getattr(result, "prefetch", None)
    if prefetch is not None:
        # The wall-clock lane belongs in the Chrome trace, not here.
        prefetch = {k: v for k, v in prefetch.items() if k != "lane"}
    else:
        hits = metrics.value("prefetch.hits")
        waits = metrics.value("prefetch.waits")
        faults = metrics.value("prefetch.faults")
        acquired = hits + waits + faults
        prefetch = {}
        if acquired:
            prefetch = {
                "hits": int(hits),
                "waits": int(waits),
                "faults": int(faults),
                "evictions": int(metrics.value("prefetch.evictions")),
                "prefetched": int(metrics.value("prefetch.prefetched")),
                "bytes_loaded": int(metrics.value("prefetch.bytes")),
                "hit_rate": hits / acquired,
            }

    # -- process pool (repro.core.procpool) ----------------------------
    procpool = getattr(result, "procpool", None)
    if procpool is not None:
        # The wall-clock worker lane belongs in the Chrome trace.
        procpool = {k: v for k, v in procpool.items() if k != "lane"}
    else:
        procpool = {}

    # -- fused kernel layer (repro.core.kernels) -----------------------
    kernels = getattr(result, "kernels", None)
    if kernels is None:
        fused = metrics.value("kernels.fused_calls")
        fallbacks = metrics.value("kernels.fallbacks")
        kernels = {}
        if fused or fallbacks:
            kernels = {"fused_calls": int(fused), "fallbacks": int(fallbacks)}

    run_attrs: dict = {}
    for sp in obs.find(category="run"):
        run_attrs = sp.attrs
        break
    return ProfileReport(
        algo=str(run_attrs.get("algo", "?")),
        graph=str(run_attrs.get("graph", "?")),
        sim_time=result.sim_time,
        memcpy_time=result.memcpy_time,
        kernel_time=result.kernel_time,
        iterations=result.iterations,
        concurrent_shards=result.concurrent_shards,
        engines=engines,
        streams=streams,
        overlap=overlap,
        per_iteration=per_iteration,
        frontier=frontier,
        phases=phases,
        counters={n: c.value for n, c in sorted(metrics.counters.items())},
        histograms={
            n: h.to_dict() for n, h in sorted(metrics.histograms.items()) if h.count
        },
        verdict=verdict,
        validation=validation,
        plan_cache=plan_cache,
        prefetch=prefetch,
        procpool=procpool,
        kernels=kernels,
    )


def write_profile(path, report: ProfileReport) -> Path:
    """Serialize a report to ``profile.json`` form; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    return path
