"""Live telemetry: streaming bus, bounded flight recorder, run glue.

Everything else in ``repro.obs`` is post-hoc -- spans, profiles and
bench snapshots only exist once the run has finished, and the span tree
grows with the run. This module adds the live side:

* :class:`TelemetryBus` -- a process-wide publisher. Components emit
  schema-versioned records (``run_start``, ``snapshot``, ``incident``,
  ``run_end``, ...) and the bus appends them as JSONL to a sink file
  that a concurrent ``repro monitor`` tails. Records carry both the
  wall clock and (where meaningful) the simulated clock.
* :class:`FlightRecorder` -- an :class:`~repro.obs.span.Observer`
  drop-in whose storage is two fixed-capacity rings (closed spans,
  events) instead of an unbounded tree: a million-iteration run holds
  O(budget) memory, with exact drop counters for everything evicted.
* :class:`RunTelemetry` -- the runtime's glue object: opens the sink,
  owns the heartbeat registry and watchdog, emits the periodic
  snapshots, and folds everything into a summary dict on the result.

The JSONL schema (version :data:`SCHEMA_VERSION`) is documented in
``docs/observability.md``; every record carries ``schema`` and ``kind``
so readers can reject streams they do not understand.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

from repro.obs.health import HeartbeatRegistry, Watchdog
from repro.obs.span import Observer, Span

#: Version stamped on every record; bump on incompatible layout change.
SCHEMA_VERSION = 1

#: Estimated serialized size of one flight-recorder record, used to
#: turn a byte budget into ring capacities. Deliberately conservative
#: (a span dict with a short name and a couple of attrs is ~150 bytes).
SPAN_RECORD_BYTES = 256


class Ring:
    """Fixed-capacity ring buffer with an exact drop counter.

    Appends are O(1) into a preallocated slot list, so memory is
    bounded by ``capacity`` regardless of how many items pass through.
    ``dropped`` counts evictions exactly: ``appended - len(ring)``.
    """

    __slots__ = ("capacity", "_slots", "_next", "appended")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots: list = [None] * capacity
        self._next = 0
        self.appended = 0

    def append(self, item) -> None:
        self._slots[self._next] = item
        self._next = (self._next + 1) % self.capacity
        self.appended += 1

    @property
    def dropped(self) -> int:
        return max(0, self.appended - self.capacity)

    def __len__(self) -> int:
        return min(self.appended, self.capacity)

    def __iter__(self):
        """Oldest to newest."""
        n = len(self)
        start = (self._next - n) % self.capacity
        for i in range(n):
            yield self._slots[(start + i) % self.capacity]

    def to_list(self) -> list:
        return list(self)

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "recorded": len(self),
            "appended": self.appended,
            "dropped": self.dropped,
        }


class FlightRecorder(Observer):
    """Bounded observer: rings of flat span/event records, no tree.

    Open spans still nest through the observer stack (so ``with
    obs.span(...)`` code is unchanged), but closed spans are recorded
    flat -- ``{name, category, start, end, attrs}`` -- into the spans
    ring instead of being linked into a parent. ``roots`` therefore
    stays empty and ``find``/``iter_spans`` yield nothing: profile and
    trace export need the full :class:`Observer`; the flight recorder
    is the black box for runs too long to hold a tree.

    Metrics are unaffected: the inherited registry is O(instruments),
    not O(run), so counters and histograms stay exact.
    """

    def __init__(self, clock=None, budget_bytes: int = 1 << 20):
        super().__init__(clock=clock)
        self.budget_bytes = budget_bytes
        capacity = max(1, budget_bytes // (2 * SPAN_RECORD_BYTES))
        self.span_ring = Ring(capacity)
        self.event_ring = Ring(capacity)

    # Events bypass the tree entirely: record and forget.
    def _attach(self, span: Span) -> None:
        self.event_ring.append(self._record(span))

    # Open spans only join the stack -- no parent/child links, so a
    # closed span is garbage the moment its flat record is taken.
    def _push(self, span: Span) -> None:
        span.start = self.clock()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.clock()
        while self._stack:
            top = self._stack.pop()
            if top.end is None:
                top.end = span.end
            self.span_ring.append(self._record(top))
            if top is span:
                break

    @staticmethod
    def _record(span: Span) -> dict:
        rec = {
            "name": span.name,
            "category": span.category,
            "start": span.start,
            "end": span.end,
        }
        if span.attrs:
            rec["attrs"] = dict(span.attrs)
        return rec

    def snapshot(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "budget_bytes": self.budget_bytes,
            "spans": self.span_ring.stats(),
            "events": self.event_ring.stats(),
        }


@dataclass(frozen=True)
class TelemetryConfig:
    """Per-run telemetry selection, carried on ``GraphReduceOptions``.

    ``out`` is the JSONL sink path (None streams nothing but still runs
    the watchdog and flight recorder if asked). ``interval`` throttles
    snapshot records on the wall clock; ``sim_interval`` additionally
    forces one whenever the simulated clock advances that far, so slow
    simulated regions still show up in a fast wall-clock run.
    """

    out: str | None = None
    interval: float = 0.5
    sim_interval: float = 0.0
    budget_bytes: int = 1 << 20
    flight_recorder: bool = False
    stall_timeout: float = 30.0
    watchdog_poll: float = 1.0


class TelemetryBus:
    """Process-wide publisher of schema-versioned JSONL records.

    Thread-safe: the main loop, the watchdog thread and prefetcher
    callbacks all emit concurrently. Each record gets a monotone
    ``seq`` so readers detect ordering and loss; the last few records
    are kept in a small ring for in-process consumers (the result
    summary, tests) without re-reading the sink.
    """

    def __init__(self, sink=None, recent: int = 64):
        self._sink = sink
        self._lock = threading.Lock()
        self._seq = 0
        self.recent = Ring(recent)
        self.heartbeats = HeartbeatRegistry()

    @classmethod
    def open(cls, path: str, recent: int = 64) -> "TelemetryBus":
        """Bus appending to ``path`` (created if missing)."""
        return cls(sink=open(path, "a", encoding="utf-8"), recent=recent)

    def emit(self, kind: str, **fields) -> dict:
        record = {"schema": SCHEMA_VERSION, "kind": kind, "pid": os.getpid()}
        record.update(fields)
        record["wall_time"] = time.time()
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            self.recent.append(record)
            if self._sink is not None:
                self._sink.write(json.dumps(record, sort_keys=True) + "\n")
                self._sink.flush()
        return record

    @property
    def emitted(self) -> int:
        return self._seq

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()
                self._sink.close()
                self._sink = None


class RunTelemetry:
    """One run's telemetry lifecycle, driven by the runtime.

    The runtime calls :meth:`start` once, :meth:`iteration` after every
    BSP iteration (which beats the main-loop heartbeat and emits a
    ``snapshot`` record when one is due), and :meth:`finish` from its
    ``finally`` block -- so even a failed setup emits ``run_end`` and
    closes the sink. Components that expose a ``snapshot()`` dict
    (process pool, prefetcher, plan cache) register as *sources* and
    get polled into every snapshot record.
    """

    def __init__(self, config: TelemetryConfig, sim=None, obs=None):
        self.config = config
        self.sim = sim
        self.obs = obs
        self.bus = (
            TelemetryBus.open(config.out) if config.out else TelemetryBus()
        )
        self.heartbeats = self.bus.heartbeats
        self.watchdog = Watchdog(
            self.heartbeats,
            bus=self.bus,
            stall_timeout=config.stall_timeout,
            poll=config.watchdog_poll,
        )
        self._sources: dict = {}
        self._last_wall = 0.0
        self._last_sim = 0.0
        self._rate_wall = 0.0
        self._rate_iter = 0
        self._finished = False

    # -- wiring --------------------------------------------------------
    def add_source(self, name: str, fn) -> None:
        """Register ``fn() -> dict`` to be polled into snapshots."""
        self._sources[name] = fn

    def start(self, **run_fields) -> None:
        self.heartbeats.register("main-loop", kind="loop", busy=True)
        self.watchdog.start()
        now = time.monotonic()
        self._last_wall = self._rate_wall = now
        self.bus.emit(
            "run_start",
            sim_time=0.0 if self.sim is None else self.sim.now,
            config={
                "interval": self.config.interval,
                "sim_interval": self.config.sim_interval,
                "budget_bytes": self.config.budget_bytes,
                "flight_recorder": self.config.flight_recorder,
                "stall_timeout": self.config.stall_timeout,
            },
            **run_fields,
        )

    # -- per-iteration -------------------------------------------------
    def iteration(self, index: int, frontier: int, **fields) -> None:
        self.heartbeats.beat("main-loop")
        now = time.monotonic()
        sim_now = 0.0 if self.sim is None else self.sim.now
        due = now - self._last_wall >= self.config.interval
        if self.config.sim_interval > 0:
            due = due or sim_now - self._last_sim >= self.config.sim_interval
        if not due:
            return
        self.snapshot_now(
            index, frontier, now=now, sim_now=sim_now, **fields
        )

    def snapshot_now(
        self, index: int, frontier: int, now=None, sim_now=None, **fields
    ) -> dict:
        """Emit one snapshot record unconditionally."""
        now = time.monotonic() if now is None else now
        sim_now = (
            (0.0 if self.sim is None else self.sim.now)
            if sim_now is None
            else sim_now
        )
        elapsed = now - self._rate_wall
        done = index + 1 - self._rate_iter
        rate = done / elapsed if elapsed > 0 else 0.0
        self._last_wall, self._last_sim = now, sim_now
        self._rate_wall, self._rate_iter = now, index + 1
        sources = {name: fn() for name, fn in sorted(self._sources.items())}
        counters = {}
        if self.obs is not None and getattr(self.obs, "enabled", False):
            counters = {
                n: c.value
                for n, c in sorted(self.obs.metrics.counters.items())
            }
        return self.bus.emit(
            "snapshot",
            iteration=index,
            frontier=frontier,
            sim_time=sim_now,
            iterations_per_sec=rate,
            counters=counters,
            sources=sources,
            heartbeats=self.heartbeats.snapshot(),
            **fields,
        )

    # -- teardown ------------------------------------------------------
    def finish(
        self,
        iterations: int,
        converged: bool,
        error: str | None = None,
        ignore_threads: set | None = None,
    ) -> dict:
        """Final check + ``run_end``; safe to call exactly once.

        ``ignore_threads`` excludes thread idents from the leak check:
        the runtime passes the warming threads of a prefetcher it keeps
        alive across runs (``keep_warm``), which are carried state, not
        leaks.
        """
        if self._finished:
            return self.summary()
        self._finished = True
        self.heartbeats.unregister("main-loop")
        self.watchdog.shutdown()
        self.watchdog.check_threads(baseline=ignore_threads)
        flight = (
            self.obs.snapshot()
            if isinstance(self.obs, FlightRecorder)
            else None
        )
        self.bus.emit(
            "run_end",
            iterations=iterations,
            converged=converged,
            error=error,
            sim_time=0.0 if self.sim is None else self.sim.now,
            incidents=len(self.watchdog.incidents),
            flight_recorder=flight,
        )
        summary = self.summary()
        self.bus.close()
        return summary

    def summary(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "records": self.bus.emitted,
            "out": self.config.out,
            "incidents": [i.to_dict() for i in self.watchdog.incidents],
            "flight_recorder": (
                self.obs.snapshot()
                if isinstance(self.obs, FlightRecorder)
                else None
            ),
        }
