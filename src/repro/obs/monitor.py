"""Telemetry stream consumers: live monitor view and report folding.

``repro run --telemetry-out run.jsonl`` streams schema-versioned
records (see :mod:`repro.obs.telemetry`); this module reads them back:

* :func:`read_records` / :func:`follow` -- parse a JSONL stream,
  validating the schema version and tolerating a torn final line (the
  writer may be mid-append when we read).
* :class:`MonitorState` -- folds records into the latest view of the
  run (iterations/sec, frontier, plan-cache and prefetch rates,
  per-worker heartbeat age, incident log) and checks health
  expectations for CI (``--expect-workers``, ``--fail-on-incident``).
* :func:`render` -- the terminal view ``repro monitor`` repaints.
* :func:`fold_stream` -- reduce a finished stream to a report document
  (``telemetry_version`` 1) that ``repro bench-diff`` can diff.
"""

from __future__ import annotations

import json
import time

from repro.obs.telemetry import SCHEMA_VERSION


def parse_record(line: str) -> dict | None:
    """One JSONL line -> record dict; None for blank/torn lines."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None  # torn tail: the writer is mid-append
    if not isinstance(record, dict):
        return None
    schema = record.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"telemetry schema mismatch: stream has {schema!r}, "
            f"this reader understands {SCHEMA_VERSION}"
        )
    return record


def read_records(path: str) -> list[dict]:
    """All complete records currently in the stream file."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            record = parse_record(line)
            if record is not None:
                records.append(record)
    return records


def follow(path: str, poll: float = 0.2, stop=None):
    """Yield records as they are appended (like ``tail -f``).

    ``stop`` is an optional zero-argument callable checked between
    polls so callers (and tests) can end the tail without signals.
    Ends on its own when a ``run_end`` record arrives.
    """
    buffer = ""
    position = 0
    while True:
        with open(path, "r", encoding="utf-8") as fh:
            fh.seek(position)
            chunk = fh.read()
            position = fh.tell()
        buffer += chunk
        ended = False
        while "\n" in buffer:
            line, buffer = buffer.split("\n", 1)
            record = parse_record(line)
            if record is not None:
                yield record
                if record.get("kind") == "run_end":
                    ended = True
        if ended:
            return
        if stop is not None and stop():
            return
        time.sleep(poll)


class MonitorState:
    """Latest-view fold over a telemetry record stream."""

    def __init__(self) -> None:
        self.run: dict = {}
        self.last_snapshot: dict = {}
        self.end: dict = {}
        self.incidents: list[dict] = []
        self.records = 0
        self.snapshots = 0

    def ingest(self, record: dict) -> None:
        self.records += 1
        kind = record.get("kind")
        if kind == "run_start":
            self.run = record
        elif kind == "snapshot":
            self.last_snapshot = record
            self.snapshots += 1
        elif kind == "incident":
            self.incidents.append(record)
        elif kind == "run_end":
            self.end = record

    # -- derived views -------------------------------------------------
    @property
    def heartbeats(self) -> dict:
        return self.last_snapshot.get("heartbeats", {})

    def workers(self) -> dict:
        """``{name: age}`` for heartbeat components of kind 'worker'."""
        return {
            name: hb.get("age", 0.0)
            for name, hb in self.heartbeats.items()
            if hb.get("kind") == "worker"
        }

    def problems(self, expect_workers: int | None = None,
                 fail_on_incident: bool = False) -> list[str]:
        """Health-expectation violations, empty when all is well."""
        out = []
        if not self.run and not self.last_snapshot:
            out.append("no telemetry records seen")
        if expect_workers is not None:
            seen = self.workers()
            if len(seen) < expect_workers:
                out.append(
                    f"expected heartbeats from {expect_workers} workers, "
                    f"saw {len(seen)}: {sorted(seen) or 'none'}"
                )
        if fail_on_incident:
            real = [
                i for i in self.incidents
                if i.get("incident_kind") != "recovered"
            ]
            end_count = self.end.get("incidents")
            if end_count:
                out.append(f"run reported {end_count} incidents")
            elif real:
                out.append(f"{len(real)} incidents on the stream")
        return out


def _rate(block: dict, hit_key: str = "hits", miss_key: str = "misses") -> str:
    hits = block.get(hit_key, 0)
    total = hits + block.get(miss_key, 0)
    return f"{hits / total:.2f}" if total else "-"


def render(state: MonitorState) -> str:
    """One repaint of the live terminal view."""
    lines = []
    run = state.run
    snap = state.last_snapshot
    name = run.get("algorithm", "?")
    backend = run.get("backend", "?")
    lines.append(
        f"run: {name}  backend={backend}  workers={run.get('workers', '-')}  "
        f"pid={run.get('pid', '-')}"
    )
    if snap:
        lines.append(
            f"iteration {snap.get('iteration', '-')}  "
            f"frontier {snap.get('frontier', '-')}  "
            f"{snap.get('iterations_per_sec', 0.0):.1f} it/s  "
            f"sim {snap.get('sim_time', 0.0):.3f}s"
        )
        sources = snap.get("sources", {})
        cache = sources.get("plan_cache", {})
        prefetch = sources.get("prefetch", {})
        pool = sources.get("procpool", {})
        parts = []
        if cache:
            parts.append(f"plan-cache hit {_rate(cache)}")
        if prefetch:
            parts.append(
                f"prefetch hit {_rate(prefetch, 'hits', 'faults')} "
                f"waits {prefetch.get('waits', 0)}"
            )
        if pool:
            parts.append(
                f"pool {pool.get('workers', '-')}w "
                f"{pool.get('tasks', 0)} tasks"
            )
        if parts:
            lines.append("  ".join(parts))
        beats = state.heartbeats
        if beats:
            lines.append("heartbeats:")
            for hb_name, hb in sorted(beats.items()):
                busy = "busy" if hb.get("busy") else "idle"
                lines.append(
                    f"  {hb_name:<16} {busy:<5} "
                    f"age {hb.get('age', 0.0):6.2f}s  "
                    f"beats {hb.get('beats', 0)}"
                )
    else:
        lines.append("(waiting for first snapshot...)")
    if state.incidents:
        lines.append(f"incidents ({len(state.incidents)}):")
        for inc in state.incidents[-5:]:
            lines.append(
                f"  [{inc.get('incident_kind')}] {inc.get('component')}: "
                f"{inc.get('details', '')}"
            )
    else:
        lines.append("incidents: none")
    if state.end:
        status = "converged" if state.end.get("converged") else "stopped"
        err = state.end.get("error")
        lines.append(
            f"run ended: {status} after {state.end.get('iterations', '?')} "
            f"iterations" + (f"  error: {err}" if err else "")
        )
    return "\n".join(lines)


def fold_stream(records: list[dict]) -> dict:
    """Reduce a finished stream to a diffable report document.

    The result carries ``telemetry_version`` so the bench tooling's
    ``metric_table`` recognizes it: two streams (say, before and after
    an optimization) diff with ``repro bench-diff a.json b.json``.
    """
    state = MonitorState()
    rates = []
    frontier_peak = 0
    first_wall = last_wall = None
    for record in records:
        state.ingest(record)
        wall = record.get("wall_time")
        if wall is not None:
            first_wall = wall if first_wall is None else first_wall
            last_wall = wall
        if record.get("kind") == "snapshot":
            rates.append(record.get("iterations_per_sec", 0.0))
            frontier_peak = max(frontier_peak, record.get("frontier") or 0)
    counters = dict(state.last_snapshot.get("counters", {}))
    doc = {
        "schema": SCHEMA_VERSION,
        "telemetry_version": 1,
        "run": {
            "algorithm": state.run.get("algorithm"),
            "backend": state.run.get("backend"),
            "workers": state.run.get("workers"),
        },
        "records": state.records,
        "snapshots": state.snapshots,
        "iterations": state.end.get("iterations", 0),
        "converged": bool(state.end.get("converged")),
        "sim_time": state.end.get("sim_time", 0.0),
        "wall_seconds": (
            (last_wall - first_wall) if first_wall is not None else 0.0
        ),
        "iterations_per_sec_mean": (
            sum(rates) / len(rates) if rates else 0.0
        ),
        "frontier_peak": frontier_peak,
        "incidents": len(
            [i for i in state.incidents
             if i.get("incident_kind") != "recovered"]
        ),
        "counters": counters,
    }
    return doc


def report_text(doc: dict) -> str:
    """Human-readable rendering of :func:`fold_stream` output."""
    run = doc.get("run", {})
    lines = [
        f"telemetry report: {run.get('algorithm', '?')} "
        f"[{run.get('backend', '?')}"
        + (f", {run['workers']} workers]" if run.get("workers") else "]"),
        f"  records   {doc['records']} ({doc['snapshots']} snapshots)",
        f"  iterations {doc['iterations']} "
        f"({'converged' if doc['converged'] else 'not converged'})",
        f"  sim time  {doc['sim_time']:.3f}s  "
        f"wall {doc['wall_seconds']:.3f}s",
        f"  rate      {doc['iterations_per_sec_mean']:.2f} it/s mean, "
        f"frontier peak {doc['frontier_peak']}",
        f"  incidents {doc['incidents']}",
    ]
    if doc.get("counters"):
        lines.append("  counters:")
        for name, value in sorted(doc["counters"].items()):
            v = int(value) if float(value).is_integer() else value
            lines.append(f"    {name:<40} {v}")
    return "\n".join(lines)
