"""Out-of-core peak-RSS probe (``python -m repro.obs.ooc_probe``).

Opens a shard store, runs fixed-iteration PageRank out-of-core and
prints one JSON object with the run's peak RSS, prefetch counters and a
vertex-value checksum. It must run in a *fresh* interpreter because
``ru_maxrss`` is lifetime-monotone: a process that has already touched
a large array can never measure a smaller peak again --
:func:`repro.obs.bench.run_ooc_probe` is the subprocess wrapper.

``--address-space-cap`` turns the measurement into an enforced claim:
``resource.setrlimit(RLIMIT_AS)`` hard-caps the address space at the
given headroom *on top of the post-import mapping*, so a cap below the
graph's in-RAM footprint proves the run never materializes the full
graph (memmapped pages count toward RLIMIT_AS too). CI's out-of-core
smoke job runs exactly that.
"""

from __future__ import annotations

import argparse
import json
import resource
import threading


def _vm_bytes() -> int:
    """Current virtual address-space size from /proc (Linux only)."""
    with open("/proc/self/statm") as fh:
        return int(fh.read().split()[0]) * resource.getpagesize()


def _rss_peak_bytes() -> int:
    """Peak RSS of *this* process image, from ``/proc/self/status``.

    Not ``ru_maxrss``: Linux copies that across fork+exec, so a child
    spawned by a fat parent (the bench harness) would inherit the
    parent's peak and report a meaningless delta. VmHWM is per-mm and
    resets on exec.
    """
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) * 1024
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.ooc_probe",
        description="run PageRank from a shard store and report peak RSS as JSON",
    )
    parser.add_argument("store", help="shard store directory (repro partition output)")
    parser.add_argument("--iterations", type=int, default=8,
                        help="PageRank power iterations")
    parser.add_argument("--memory-budget", type=int, default=None,
                        help="host RAM budget (bytes) for the shard cache")
    parser.add_argument("--prefetch-workers", type=int, default=2)
    parser.add_argument(
        "--address-space-cap", type=int, default=None,
        help="enforce RLIMIT_AS at this many bytes above the post-import "
             "address space; the run fails if it ever maps more",
    )
    parser.add_argument("--profile-out", default=None,
                        help="also write the bottleneck profile JSON here")
    args = parser.parse_args(argv)

    # Import the heavy stack before measuring or limiting anything --
    # the probe bounds the *run*, not the interpreter.
    import numpy as np

    from repro.algorithms import PageRank
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.core.shardstore import ShardStore

    # Prefetch worker stacks are address space too (8 MiB each by
    # default); shrink them so the cap measures data, not thread stacks.
    threading.stack_size(512 * 1024)
    rss_floor = _rss_peak_bytes()
    out: dict = {
        "ok": False,
        "store": args.store,
        "rss_floor_bytes": rss_floor,
        "memory_budget": args.memory_budget,
        "address_space_cap_bytes": args.address_space_cap,
    }
    if args.address_space_cap is not None:
        cap = _vm_bytes() + args.address_space_cap
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
    try:
        store = ShardStore.open(args.store)
        opts = GraphReduceOptions(
            cache_policy="never",
            memory_budget=args.memory_budget,
            prefetch_workers=args.prefetch_workers,
        )
        result = GraphReduce(shard_store=store, options=opts).run(
            PageRank(tolerance=None, max_iterations=args.iterations)
        )
    except (MemoryError, OSError) as exc:  # mmap under RLIMIT_AS raises ENOMEM
        out["error"] = f"{type(exc).__name__}: {exc}"
        print(json.dumps(out))
        return 1
    peak = _rss_peak_bytes()
    vals = result.vertex_values
    out.update(
        ok=True,
        algorithm="pagerank-power",
        iterations=result.iterations,
        num_partitions=result.num_partitions,
        max_rss_bytes=peak,
        rss_delta_bytes=peak - rss_floor,
        checksum=float(np.sum(vals[np.isfinite(vals)], dtype=np.float64)),
        prefetch={k: v for k, v in (result.prefetch or {}).items() if k != "lane"},
    )
    if args.profile_out:
        from repro.obs.profile import build_profile, write_profile

        write_profile(args.profile_out, build_profile(result))
    print(json.dumps(out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
