"""Exporters: plain JSON and Chrome ``trace_event`` format.

The Chrome format (one ``traceEvents`` list of complete ``"ph": "X"``
events, timestamps in microseconds) opens directly in
``chrome://tracing`` and in Perfetto's legacy-trace importer. The
export merges two sources onto one timeline:

* the observer's span tree (run / iteration / phase / shard) as the
  *runtime* process, and
* the simulated device's interval trace (every H2D/D2H copy, kernel and
  storage op) as the *device* process with one row per stream.

Summed ``dur`` of the ``h2d``/``d2h`` events therefore equals the
``ExecutionReport`` memcpy time exactly -- both read the same intervals.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Conversion from simulated seconds to trace_event microseconds.
US = 1e6

RUNTIME_PID = 1
DEVICE_PID = 2
#: Out-of-core runs add a third process: the host shard-prefetch lane.
#: Its timestamps are *wall-clock* seconds since the prefetcher started,
#: not simulated seconds -- a separate pid keeps the two clocks apart.
HOST_PID = 3
#: Process-pool runs add a fourth process: one wall-clock row per pool
#: worker, showing which shard task each worker executed and when.
POOL_PID = 4


def _json_safe(value):
    """Coerce NumPy scalars and other oddballs into JSON-native types."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def observer_to_json(observer) -> dict:
    """The span tree plus the metrics snapshot, as one JSON document."""
    return {
        "spans": [_json_safe(root.to_dict()) for root in observer.roots],
        "metrics": observer.metrics.snapshot(),
    }


def _span_events(observer) -> list[dict]:
    events = []
    for span in observer.iter_spans():
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "ph": "X",
                "pid": RUNTIME_PID,
                "tid": 1,
                "ts": span.start * US,
                "dur": (end - span.start) * US,
                "name": span.name,
                "cat": span.category,
                "args": _json_safe(span.attrs),
            }
        )
    return events


def _interval_events(trace) -> list[dict]:
    streams = sorted({i.stream for i in trace.intervals})
    tid_of = {name: tid for tid, name in enumerate(streams, start=1)}
    events = [
        {
            "ph": "M",
            "pid": DEVICE_PID,
            "tid": tid_of[name],
            "name": "thread_name",
            "args": {"name": name},
        }
        for name in streams
    ]
    for iv in trace.intervals:
        args = {"amount": iv.amount, "category": iv.category}
        if iv.service_start is not None:
            # Engine-service entry (kernels: SM entry after launch
            # overhead/queueing) -- lets `repro profile` occupancy be
            # recomputed from the exported document alone.
            args["service_ts"] = iv.service_start * US
        events.append(
            {
                "ph": "X",
                "pid": DEVICE_PID,
                "tid": tid_of[iv.stream],
                "ts": iv.start * US,
                "dur": iv.duration * US,
                "name": iv.label or iv.category,
                "cat": iv.category,
                "args": args,
            }
        )
    return events


def _prefetch_events(prefetch) -> list[dict]:
    """The host prefetch lane: one wall-clock row of loads and waits.

    ``prefetch`` is a :meth:`HostPrefetcher.snapshot` dict whose
    ``"lane"`` entry lists ``(kind, shard, t0, t1)`` tuples in seconds
    since the prefetcher was created (kind is ``prefetch``, ``fault`` or
    ``wait``).
    """
    lane = (prefetch or {}).get("lane") or []
    if not lane:
        return []
    events: list[dict] = [
        {"ph": "M", "pid": HOST_PID, "name": "process_name", "args": {"name": "host"}},
        {
            "ph": "M",
            "pid": HOST_PID,
            "tid": 1,
            "name": "thread_name",
            "args": {"name": "shard prefetch (wall clock)"},
        },
    ]
    for kind, shard, t0, t1 in lane:
        events.append(
            {
                "ph": "X",
                "pid": HOST_PID,
                "tid": 1,
                "ts": float(t0) * US,
                "dur": (float(t1) - float(t0)) * US,
                "name": f"{kind} shard {int(shard)}",
                "cat": f"prefetch.{kind}",
                "args": {"shard": int(shard)},
            }
        )
    return events


def _procpool_events(procpool) -> list[dict]:
    """The process-pool lanes: one wall-clock row per worker.

    ``procpool`` is a :meth:`ProcessPool.snapshot` dict whose ``"lane"``
    entry lists ``(worker_id, shard, t0, t1)`` tuples -- wall-clock
    seconds since the pool started, measured inside the worker around
    one shard task.
    """
    lane = (procpool or {}).get("lane") or []
    if not lane:
        return []
    workers = sorted({int(w) for w, _, _, _ in lane})
    events: list[dict] = [
        {"ph": "M", "pid": POOL_PID, "name": "process_name", "args": {"name": "pool"}},
    ]
    for w in workers:
        events.append(
            {
                "ph": "M",
                "pid": POOL_PID,
                "tid": w + 1,
                "name": "thread_name",
                "args": {"name": f"pool worker {w} (wall clock)"},
            }
        )
    for worker, shard, t0, t1 in lane:
        events.append(
            {
                "ph": "X",
                "pid": POOL_PID,
                "tid": int(worker) + 1,
                "ts": float(t0) * US,
                "dur": (float(t1) - float(t0)) * US,
                "name": f"shard {int(shard)}",
                "cat": "procpool.task",
                "args": {"shard": int(shard), "worker": int(worker)},
            }
        )
    return events


def to_chrome_trace(observer=None, trace=None, prefetch=None, procpool=None) -> dict:
    """Merge an observer's spans and a device trace into one document.

    Either source may be None. The result is a valid trace_event JSON
    object; extra top-level keys (``metrics``) are ignored by viewers.
    ``prefetch`` (a HostPrefetcher snapshot) adds the out-of-core host
    lane as a third process; ``procpool`` (a ProcessPool snapshot) adds
    per-worker lanes as a fourth.
    """
    events: list[dict] = [
        {"ph": "M", "pid": RUNTIME_PID, "name": "process_name", "args": {"name": "runtime"}},
        {"ph": "M", "pid": DEVICE_PID, "name": "process_name", "args": {"name": "device"}},
        {"ph": "M", "pid": RUNTIME_PID, "tid": 1, "name": "thread_name", "args": {"name": "spans"}},
    ]
    doc: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if observer is not None:
        events.extend(_span_events(observer))
        doc["metrics"] = observer.metrics.snapshot()
    if trace is not None:
        events.extend(_interval_events(trace))
    events.extend(_prefetch_events(prefetch))
    events.extend(_procpool_events(procpool))
    return doc


def result_to_chrome_trace(result) -> dict:
    """Chrome trace for one :class:`~repro.core.runtime.GraphReduceResult`."""
    return to_chrome_trace(
        observer=getattr(result, "observer", None),
        trace=getattr(result, "trace", None),
        prefetch=getattr(result, "prefetch", None),
        procpool=getattr(result, "procpool", None),
    )


def write_chrome_trace(path, observer=None, trace=None, result=None) -> Path:
    """Serialize to ``path``; returns the path written."""
    if result is not None:
        doc = result_to_chrome_trace(result)
    else:
        doc = to_chrome_trace(observer=observer, trace=trace)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=None, separators=(",", ":")))
    return path


def memcpy_duration_us(doc: dict) -> float:
    """Summed duration of every transfer event in a trace document.

    The consistency check behind ``repro trace``: this total divided by
    1e6 must match ``ExecutionReport.memcpy_time``.
    """
    return sum(
        ev.get("dur", 0.0)
        for ev in doc.get("traceEvents", ())
        if ev.get("ph") == "X" and ev.get("cat") in ("h2d", "d2h")
    )
