"""Typed counters and histograms.

Counters accumulate monotone totals (bytes over PCIe, kernel launches,
shards skipped by the Frontier Manager, fusion decisions); histograms
summarize distributions (frontier sizes, per-copy bytes) with power-of-
two buckets so the summary stays O(64) regardless of run length.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically growing total."""

    name: str
    value: float = 0.0

    def add(self, n: float = 1.0) -> None:
        self.value += n

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter's total into this one; returns self."""
        self.value += other.value
        return self

    def to_dict(self) -> dict:
        v = self.value
        return {"value": int(v) if float(v).is_integer() else v}

    @classmethod
    def from_dict(cls, name: str, d: dict) -> "Counter":
        return cls(name, value=float(d.get("value", 0.0)))


@dataclass
class Histogram:
    """Summary statistics plus log2 buckets.

    ``buckets[k]`` counts observations ``v`` with
    ``2**(k-1) < v <= 2**k`` (``k == 0`` collects everything <= 1,
    including zeros and negatives).
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        k = 0 if value <= 1 else math.ceil(math.log2(value))
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's observations into this one.

        Exact for count/sum/min/max and the log2 buckets, so summaries
        aggregate across runs and shards losslessly; returns self.
        """
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for k, v in other.buckets.items():
            self.buckets[k] = self.buckets.get(k, 0) + v
        return self

    def to_dict(self) -> dict:
        if not self.count:
            # min/max as null (not +/-inf, which is invalid JSON) so an
            # empty histogram round-trips through json.dumps/loads.
            return {"count": 0, "min": None, "max": None}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, name: str, d: dict) -> "Histogram":
        h = cls(name)
        h.count = int(d.get("count", 0))
        if not h.count:
            return h
        h.total = float(d.get("sum", 0.0))
        h.min = float(d["min"]) if d.get("min") is not None else math.inf
        h.max = float(d["max"]) if d.get("max") is not None else -math.inf
        h.buckets = {int(k): int(v) for k, v in d.get("buckets", {}).items()}
        return h


class MetricsRegistry:
    """Name-addressed counters and histograms.

    ``add``/``observe`` create the instrument on first use, so call
    sites do not need registration boilerplate.

    ``add`` and ``observe`` are thread-safe: the parallel shard compute
    path records counters from worker threads, and the ``+=`` updates
    inside the instruments are not atomic. Everything else (reads,
    merge, snapshot) runs on the main thread between phases.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def add(self, name: str, n: float = 1.0) -> None:
        with self._lock:
            self.counter(name).add(n)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.histogram(name).observe(value)

    def value(self, name: str, default: float = 0.0) -> float:
        c = self.counters.get(name)
        return default if c is None else c.value

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (instrument-wise merge); returns self.

        The aggregation behind multi-run/multi-shard views: counters
        add, histograms combine exactly (``repro bench-diff`` and the
        benchmark replications merge per-run registries this way).
        """
        for name, c in other.counters.items():
            self.counter(name).merge(c)
        for name, h in other.histograms.items():
            self.histogram(name).merge(h)
        return self

    def snapshot(self) -> dict:
        return {
            "counters": {n: c.to_dict() for n, c in sorted(self.counters.items())},
            "histograms": {n: h.to_dict() for n, h in sorted(self.histograms.items())},
        }

    @classmethod
    def from_snapshot(cls, doc: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (JSON round-trip)."""
        reg = cls()
        for name, d in doc.get("counters", {}).items():
            reg.counters[name] = Counter.from_dict(name, d)
        for name, d in doc.get("histograms", {}).items():
            reg.histograms[name] = Histogram.from_dict(name, d)
        return reg
