"""Typed counters and histograms.

Counters accumulate monotone totals (bytes over PCIe, kernel launches,
shards skipped by the Frontier Manager, fusion decisions); histograms
summarize distributions (frontier sizes, per-copy bytes) with power-of-
two buckets so the summary stays O(64) regardless of run length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically growing total."""

    name: str
    value: float = 0.0

    def add(self, n: float = 1.0) -> None:
        self.value += n

    def to_dict(self) -> dict:
        v = self.value
        return {"value": int(v) if float(v).is_integer() else v}


@dataclass
class Histogram:
    """Summary statistics plus log2 buckets.

    ``buckets[k]`` counts observations ``v`` with
    ``2**(k-1) < v <= 2**k`` (``k == 0`` collects everything <= 1,
    including zeros and negatives).
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        k = 0 if value <= 1 else math.ceil(math.log2(value))
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Name-addressed counters and histograms.

    ``add``/``observe`` create the instrument on first use, so call
    sites do not need registration boilerplate.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def add(self, name: str, n: float = 1.0) -> None:
        self.counter(name).add(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default: float = 0.0) -> float:
        c = self.counters.get(name)
        return default if c is None else c.value

    def snapshot(self) -> dict:
        return {
            "counters": {n: c.to_dict() for n, c in sorted(self.counters.items())},
            "histograms": {n: h.to_dict() for n, h in sorted(self.histograms.items())},
        }
