"""Typed counters and histograms.

Counters accumulate monotone totals (bytes over PCIe, kernel launches,
shards skipped by the Frontier Manager, fusion decisions); histograms
summarize distributions (frontier sizes, per-copy bytes) with power-of-
two buckets so the summary stays O(64) regardless of run length.

Histograms also answer streaming quantile queries (p50/p90/p99): the
log2 buckets give each percentile's bucket exactly, and linear
interpolation inside the bucket bounds the error to the bucket width --
no per-observation storage, merge-exact, and stable across a JSON
round-trip because the estimate is a pure function of the buckets.

Thread safety: ``Counter.add`` and ``Histogram.observe`` take a
per-instrument lock -- prefetcher warm threads, parallel shard compute
and the telemetry watchdog all record concurrently, and ``+=`` on a
Python float is not atomic. Instrument creation in the registry is
guarded separately, so the hot path costs one uncontended lock, not
two.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field

#: Version stamped on :meth:`MetricsRegistry.snapshot` documents; bump
#: on incompatible layout change so readers can reject cleanly.
METRICS_SCHEMA_VERSION = 1


def _instrument_lock():
    return field(default_factory=threading.Lock, repr=False, compare=False)


@dataclass
class Counter:
    """A monotonically growing total."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = _instrument_lock()

    def add(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter's total into this one; returns self."""
        with self._lock:
            self.value += other.value
        return self

    def to_dict(self) -> dict:
        v = self.value
        return {"value": int(v) if float(v).is_integer() else v}

    @classmethod
    def from_dict(cls, name: str, d: dict) -> "Counter":
        return cls(name, value=float(d.get("value", 0.0)))


@dataclass
class Histogram:
    """Summary statistics plus log2 buckets.

    ``buckets[k]`` counts observations ``v`` with
    ``2**(k-1) < v <= 2**k`` (``k == 0`` collects everything <= 1,
    including zeros and negatives).
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = _instrument_lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            k = 0 if value <= 1 else math.ceil(math.log2(value))
            self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Streaming quantile estimate from the log2 buckets.

        Walks the cumulative bucket counts to the target rank and
        interpolates linearly inside the owning bucket's value range,
        clamped to the exact observed ``[min, max]``. Error is bounded
        by the bucket width (a factor of two); the estimate depends
        only on buckets/min/max, so it is merge-exact and survives the
        JSON round-trip bit-for-bit.
        """
        if not self.count:
            return None
        q = min(1.0, max(0.0, q))
        target = q * self.count
        cum = 0
        for k in sorted(self.buckets):
            n = self.buckets[k]
            if cum + n >= target:
                lo = 0.0 if k == 0 else float(2 ** (k - 1))
                hi = float(2**k)
                frac = (target - cum) / n if n else 0.0
                return min(max(lo + frac * (hi - lo), self.min), self.max)
            cum += n
        return self.max

    def percentiles(self) -> dict:
        """``{"p50": ..., "p90": ..., "p99": ...}`` (empty if no data)."""
        if not self.count:
            return {}
        return {
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's observations into this one.

        Exact for count/sum/min/max and the log2 buckets, so summaries
        aggregate across runs and shards losslessly; returns self.
        """
        with self._lock:
            self.count += other.count
            self.total += other.total
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            for k, v in other.buckets.items():
                self.buckets[k] = self.buckets.get(k, 0) + v
        return self

    def to_dict(self) -> dict:
        if not self.count:
            # min/max as null (not +/-inf, which is invalid JSON) so an
            # empty histogram round-trips through json.dumps/loads.
            return {"count": 0, "min": None, "max": None}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "percentiles": self.percentiles(),
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, name: str, d: dict) -> "Histogram":
        # "percentiles" is derived output, recomputed from the buckets
        # on the next to_dict -- never parsed back.
        h = cls(name)
        h.count = int(d.get("count", 0))
        if not h.count:
            return h
        h.total = float(d.get("sum", 0.0))
        h.min = float(d["min"]) if d.get("min") is not None else math.inf
        h.max = float(d["max"]) if d.get("max") is not None else -math.inf
        h.buckets = {int(k): int(v) for k, v in d.get("buckets", {}).items()}
        return h


class MetricsRegistry:
    """Name-addressed counters and histograms.

    ``add``/``observe`` create the instrument on first use, so call
    sites do not need registration boilerplate.

    Thread-safe end to end: the registry lock guards instrument
    creation (double-checked, so the common path is a plain dict get),
    and each instrument's own lock guards its updates. Reads, merge
    and snapshot run on the main thread between phases.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.get(name)
                if c is None:
                    c = self.counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.get(name)
                if h is None:
                    h = self.histograms[name] = Histogram(name)
        return h

    def add(self, name: str, n: float = 1.0) -> None:
        self.counter(name).add(n)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str, default: float = 0.0) -> float:
        c = self.counters.get(name)
        return default if c is None else c.value

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (instrument-wise merge); returns self.

        The aggregation behind multi-run/multi-shard views: counters
        add, histograms combine exactly (``repro bench-diff`` and the
        benchmark replications merge per-run registries this way).
        """
        for name, c in other.counters.items():
            self.counter(name).merge(c)
        for name, h in other.histograms.items():
            self.histogram(name).merge(h)
        return self

    def snapshot(self) -> dict:
        """Schema-versioned document with deterministically sorted keys."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {n: c.to_dict() for n, c in sorted(self.counters.items())},
            "histograms": {n: h.to_dict() for n, h in sorted(self.histograms.items())},
        }

    @classmethod
    def from_snapshot(cls, doc: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output (JSON round-trip).

        Pre-versioning documents (no ``schema`` key) are accepted;
        a present-but-different version is rejected so readers never
        silently misparse a future layout.
        """
        schema = doc.get("schema", METRICS_SCHEMA_VERSION)
        if schema != METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"metrics schema mismatch: document has {schema!r}, "
                f"this reader understands {METRICS_SCHEMA_VERSION}"
            )
        reg = cls()
        for name, d in doc.get("counters", {}).items():
            reg.counters[name] = Counter.from_dict(name, d)
        for name, d in doc.get("histograms", {}).items():
            reg.histograms[name] = Histogram.from_dict(name, d)
        return reg
