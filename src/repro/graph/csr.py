"""Compressed sparse row/column adjacency.

Section 4.2: the Graph Layout Engine sorts in-edges by destination and
out-edges by source, stored as CSC and CSR respectively, "so there is no
overhead for runtime data-format transposition". :func:`build_csr` /
:func:`build_csc` are those two layouts; both are plain :class:`CSR`
objects over different axes (a CSC of G is the CSR of G-transpose).

:func:`ragged_gather` is the workhorse of frontier-restricted execution:
given a vertex subset it enumerates exactly the incident edges, giving
the active-edge index sets that the Compute Engine's edge-centric phases
iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList, VID_DTYPE


@dataclass
class CSR:
    """Row-compressed adjacency over ``num_rows`` vertices.

    ``indptr`` has length ``num_rows + 1``; row ``v``'s neighbors are
    ``indices[indptr[v]:indptr[v+1]]``. ``edge_ids`` maps each position
    back to the originating edge-list index so per-edge state (weights,
    mutable edge values) can be carried in either layout without copies
    of the logical edge identity.
    """

    indptr: np.ndarray  # int64, shape (num_rows + 1,)
    indices: np.ndarray  # int32, the neighbor vertex per slot
    edge_ids: np.ndarray  # int64, original edge-list position per slot

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=VID_DTYPE)
        self.edge_ids = np.ascontiguousarray(self.edge_ids, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indptr[-1] != len(self.indices) or len(self.indices) != len(self.edge_ids):
            raise ValueError("indptr/indices/edge_ids sizes disagree")

    @property
    def num_rows(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return int(self.indptr[-1])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def row_slice(self, start: int, stop: int) -> "CSR":
        """The sub-CSR covering rows [start, stop) with rebased indptr."""
        lo, hi = int(self.indptr[start]), int(self.indptr[stop])
        return CSR(
            self.indptr[start : stop + 1] - lo,
            self.indices[lo:hi],
            self.edge_ids[lo:hi],
        )


def _compress(keys: np.ndarray, values: np.ndarray, num_rows: int) -> CSR:
    """Sort (key, value) pairs by key and compress keys into indptr."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    counts = np.bincount(sorted_keys, minlength=num_rows)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSR(indptr, values[order], order.astype(np.int64))


def build_csr(edges: EdgeList) -> CSR:
    """Out-edges sorted by source: row v lists v's out-neighbors."""
    return _compress(edges.src, edges.dst, edges.num_vertices)


def build_csc(edges: EdgeList) -> CSR:
    """In-edges sorted by destination: row v lists v's in-neighbors."""
    return _compress(edges.dst, edges.src, edges.num_vertices)


def ragged_gather(indptr: np.ndarray, rows: np.ndarray):
    """Edge positions incident to a set of rows, with their row of origin.

    Returns ``(edge_pos, seg_rows)`` where ``edge_pos`` indexes into the
    CSR's flat arrays (concatenated slices ``indptr[r]:indptr[r+1]`` for
    each ``r`` in ``rows``, in order) and ``seg_rows`` repeats each row id
    by its degree. Fully vectorized -- no Python-level loop over rows.

    >>> import numpy as np
    >>> indptr = np.array([0, 2, 2, 5])
    >>> pos, seg = ragged_gather(indptr, np.array([0, 2]))
    >>> pos.tolist(), seg.tolist()
    ([0, 1, 2, 3, 4], [0, 0, 2, 2, 2])
    """
    rows = np.asarray(rows)
    starts = indptr[rows].astype(np.int64)
    lengths = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=rows.dtype)
    # Position of each output slot within its row's run, via the
    # repeat/cumsum trick: run_base is where each run starts in the
    # output, so (arange - run_base) counts 0..len-1 inside each run.
    run_base = np.repeat(np.cumsum(lengths) - lengths, lengths)
    within = np.arange(total, dtype=np.int64) - run_base
    edge_pos = np.repeat(starts, lengths) + within
    seg_rows = np.repeat(rows, lengths)
    return edge_pos, seg_rows


def dense_gather(indptr: np.ndarray):
    """The :func:`ragged_gather` answer when *every* row is selected.

    With ``rows == arange(num_rows)`` the edge positions are just
    ``arange(num_edges)`` (the flat arrays in order), so only the
    per-edge row ids and the segment boundaries carry information.
    Returns ``(seg_rows, seg_starts, rows_with_edges)`` where
    ``seg_rows`` repeats each row id by its degree (int64, local ids),
    ``seg_starts`` are the offsets of the non-empty rows' runs and
    ``rows_with_edges`` the corresponding local row ids -- exactly the
    segment layout the Compute Engine's reduceat consumes.

    >>> import numpy as np
    >>> seg, starts, rows = dense_gather(np.array([0, 2, 2, 5]))
    >>> seg.tolist(), starts.tolist(), rows.tolist()
    ([0, 0, 2, 2, 2], [0, 2], [0, 2])
    """
    degrees = np.diff(indptr)
    all_rows = np.arange(len(degrees), dtype=np.int64)
    seg_rows = np.repeat(all_rows, degrees)
    nonempty = degrees > 0
    seg_starts = indptr[:-1][nonempty].astype(np.int64, copy=False)
    return seg_rows, seg_starts, all_rows[nonempty]


def segment_reduce(ufunc: np.ufunc, values: np.ndarray, seg_starts: np.ndarray):
    """Reduce ``values`` over contiguous segments beginning at ``seg_starts``.

    Thin wrapper over ``ufunc.reduceat`` handling the empty-segment quirk
    (reduceat returns the *element* at the start index for empty
    segments). Callers must ensure no segment is empty -- the Compute
    Engine guarantees this by reducing only over vertices with at least
    one gathered edge.
    """
    if len(values) == 0:
        return np.empty(0, dtype=values.dtype)
    return ufunc.reduceat(values, seg_starts)
