"""Graph file formats: edge-list text, NPZ and a MatrixMarket subset.

Table 1's real datasets ship as DIMACS/SNAP edge lists or MatrixMarket
sparse matrices; these readers let a user point the reproduction at the
genuine files when they have them, while the test suite and benchmarks
use the synthetic stand-ins.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.graph.edgelist import EdgeList, VID_DTYPE, WEIGHT_DTYPE


# ----------------------------------------------------------------------
# Plain edge-list text ("src dst [weight]" per line, '#'/'%' comments)
# ----------------------------------------------------------------------
def save_edgelist_txt(edges: EdgeList, path) -> None:
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# {edges.name}: {edges.num_vertices} vertices, {edges.num_edges} edges\n")
        if edges.weights is None:
            np.savetxt(fh, np.stack([edges.src, edges.dst], axis=1), fmt="%d")
        else:
            np.savetxt(
                fh,
                np.stack([edges.src, edges.dst, edges.weights], axis=1),
                fmt=("%d", "%d", "%.6g"),
            )


def load_edgelist_txt(path, num_vertices: int | None = None, name: str | None = None) -> EdgeList:
    path = Path(path)
    rows = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            rows.append(line.split())
    if not rows:
        return EdgeList(num_vertices or 0, np.empty(0, VID_DTYPE), np.empty(0, VID_DTYPE), name=name or path.stem)
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ValueError(f"{path}: inconsistent column counts")
    data = np.asarray(rows, dtype=np.float64)
    src = data[:, 0].astype(VID_DTYPE)
    dst = data[:, 1].astype(VID_DTYPE)
    weights = data[:, 2].astype(WEIGHT_DTYPE) if width >= 3 else None
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    return EdgeList(num_vertices, src, dst, weights, name=name or path.stem)


# ----------------------------------------------------------------------
# NPZ binary
# ----------------------------------------------------------------------
def save_npz(edges: EdgeList, path) -> None:
    arrays = {
        "src": edges.src,
        "dst": edges.dst,
        "num_vertices": np.int64(edges.num_vertices),
        "undirected": np.bool_(edges.undirected),
    }
    if edges.weights is not None:
        arrays["weights"] = edges.weights
    np.savez_compressed(Path(path), **arrays)


def load_npz(path, name: str | None = None) -> EdgeList:
    path = Path(path)
    with np.load(path) as data:
        return EdgeList(
            int(data["num_vertices"]),
            data["src"],
            data["dst"],
            data["weights"] if "weights" in data else None,
            undirected=bool(data["undirected"]),
            name=name or path.stem,
        )


# ----------------------------------------------------------------------
# MatrixMarket coordinate subset (the sparse-matrix datasets' format)
# ----------------------------------------------------------------------
def load_matrix_market(path_or_buf, name: str = "mm") -> EdgeList:
    """Read ``matrix coordinate {real,pattern,integer} {general,symmetric}``.

    Symmetric matrices are expanded to directed pairs, matching the
    paper's storage of undirected inputs. Indices are 1-based on disk.
    """
    if isinstance(path_or_buf, (str, Path)):
        fh = open(path_or_buf)
        close = True
    else:
        fh = path_or_buf
        close = False
    try:
        header = fh.readline().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
            raise ValueError("not a MatrixMarket matrix file")
        fmt, field, symmetry = header[2], header[3], header[4]
        if fmt != "coordinate":
            raise ValueError(f"unsupported MatrixMarket format {fmt!r}")
        if field not in ("real", "pattern", "integer"):
            raise ValueError(f"unsupported MatrixMarket field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"unsupported MatrixMarket symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        n_rows, n_cols, nnz = (int(x) for x in line.split())
        body = np.loadtxt(_io.StringIO(fh.read()), ndmin=2)
        if body.shape[0] != nnz:
            raise ValueError(f"expected {nnz} entries, found {body.shape[0]}")
    finally:
        if close:
            fh.close()
    src = body[:, 0].astype(VID_DTYPE) - 1
    dst = body[:, 1].astype(VID_DTYPE) - 1
    weights = body[:, 2].astype(WEIGHT_DTYPE) if field != "pattern" and body.shape[1] > 2 else None
    edges = EdgeList(max(n_rows, n_cols), src, dst, weights, name=name)
    if symmetry == "symmetric":
        edges = edges.symmetrized()
        edges.name = name
    return edges
