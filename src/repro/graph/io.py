"""Graph file formats: edge-list text, NPZ and a MatrixMarket subset.

Table 1's real datasets ship as DIMACS/SNAP edge lists or MatrixMarket
sparse matrices; these readers let a user point the reproduction at the
genuine files when they have them, while the test suite and benchmarks
use the synthetic stand-ins.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.graph.edgelist import EdgeList, VID_DTYPE, WEIGHT_DTYPE


# ----------------------------------------------------------------------
# Plain edge-list text ("src dst [weight]" per line, '#'/'%' comments)
# ----------------------------------------------------------------------
def save_edgelist_txt(edges: EdgeList, path) -> None:
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# {edges.name}: {edges.num_vertices} vertices, {edges.num_edges} edges\n")
        if edges.weights is None:
            np.savetxt(fh, np.stack([edges.src, edges.dst], axis=1), fmt="%d")
        else:
            np.savetxt(
                fh,
                np.stack([edges.src, edges.dst, edges.weights], axis=1),
                fmt=("%d", "%d", "%.6g"),
            )


#: Lines parsed per ``np.loadtxt`` call in the chunked text reader.
TXT_CHUNK_LINES = 1 << 16


def _iter_txt_blocks(path: Path, chunk_lines: int):
    """Yield ``(m, width)`` float64 blocks of an edge-list text file.

    Comments and blank lines are stripped before parsing, then each
    batch of lines goes through one vectorized ``np.loadtxt`` call --
    no per-line Python lists, and peak memory is one chunk, not the
    whole file.
    """
    width = None

    def parse(lines):
        nonlocal width
        try:
            block = np.loadtxt(_io.StringIO("".join(lines)), dtype=np.float64, ndmin=2)
        except ValueError as exc:
            raise ValueError(f"{path}: inconsistent column counts") from exc
        if width is None:
            width = block.shape[1]
        elif block.shape[1] != width:
            raise ValueError(f"{path}: inconsistent column counts")
        return block

    pending: list[str] = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            pending.append(line + "\n")
            if len(pending) >= chunk_lines:
                yield parse(pending)
                pending = []
    if pending:
        yield parse(pending)


def load_edgelist_txt(path, num_vertices: int | None = None, name: str | None = None) -> EdgeList:
    path = Path(path)
    chunks = list(_iter_txt_blocks(path, TXT_CHUNK_LINES))
    if not chunks:
        return EdgeList(num_vertices or 0, np.empty(0, VID_DTYPE), np.empty(0, VID_DTYPE), name=name or path.stem)
    width = chunks[0].shape[1]
    src = np.concatenate([c[:, 0] for c in chunks]).astype(np.int64)
    dst = np.concatenate([c[:, 1] for c in chunks]).astype(np.int64)
    weights = (
        np.concatenate([c[:, 2] for c in chunks]).astype(WEIGHT_DTYPE)
        if width >= 3
        else None
    )
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    return EdgeList(num_vertices, src, dst, weights, name=name or path.stem)


# ----------------------------------------------------------------------
# NPZ binary
# ----------------------------------------------------------------------
def save_npz(edges: EdgeList, path) -> None:
    src, dst = edges.src, edges.dst
    # Endpoints are validated non-negative, so any graph whose ids fit
    # below 2**32 stores as uint32 -- half the disk and load footprint
    # of the int64 fallback used by >2**31-vertex graphs.
    if int(max(src.max(initial=0), dst.max(initial=0))) < 2**32:
        src = src.astype(np.uint32)
        dst = dst.astype(np.uint32)
    arrays = {
        "src": src,
        "dst": dst,
        "num_vertices": np.int64(edges.num_vertices),
        "undirected": np.bool_(edges.undirected),
    }
    if edges.weights is not None:
        arrays["weights"] = edges.weights
    np.savez_compressed(Path(path), **arrays)


def load_npz(path, name: str | None = None) -> EdgeList:
    path = Path(path)
    with np.load(path) as data:
        # EdgeList coerces the stored uint32 ids back to VID_DTYPE
        # (int64 when the vertex count overflows int32).
        return EdgeList(
            int(data["num_vertices"]),
            data["src"],
            data["dst"],
            data["weights"] if "weights" in data else None,
            undirected=bool(data["undirected"]),
            name=name or path.stem,
        )


# ----------------------------------------------------------------------
# Streaming ingestion (chunked readers for the external partitioner)
# ----------------------------------------------------------------------
def edgelist_metadata(path) -> dict:
    """What an input file declares about itself without reading edges.

    ``num_vertices`` is ``None`` for text inputs (derived from the max
    endpoint during the counting pass instead).
    """
    path = Path(path)
    if path.suffix == ".npz":
        with np.load(path) as data:
            return {
                "num_vertices": int(data["num_vertices"]),
                "undirected": bool(data["undirected"]),
                "weighted": "weights" in data,
                "name": path.stem,
            }
    return {
        "num_vertices": None,
        "undirected": False,
        "weighted": None,
        "name": path.stem,
    }


def iter_edge_chunks(path, chunk_edges: int = 1 << 20):
    """Yield ``(src, dst, weights_or_None)`` chunks from a .txt or .npz
    edge list -- ``src``/``dst`` as int64, weights as float32.

    Peak memory is one chunk; the .npz path memory-maps nothing (NpzFile
    decompresses per member) but slices the member arrays chunkwise so
    downstream bucketing never holds the full edge set either.
    """
    path = Path(path)
    if path.suffix == ".npz":
        with np.load(path) as data:
            src = data["src"]
            dst = data["dst"]
            weights = data["weights"] if "weights" in data else None
            for lo in range(0, len(src), chunk_edges):
                hi = min(lo + chunk_edges, len(src))
                yield (
                    src[lo:hi].astype(np.int64),
                    dst[lo:hi].astype(np.int64),
                    None if weights is None else weights[lo:hi].astype(WEIGHT_DTYPE),
                )
        return
    lines = max(1, chunk_edges)
    for block in _iter_txt_blocks(path, lines):
        yield (
            block[:, 0].astype(np.int64),
            block[:, 1].astype(np.int64),
            block[:, 2].astype(WEIGHT_DTYPE) if block.shape[1] >= 3 else None,
        )


# ----------------------------------------------------------------------
# MatrixMarket coordinate subset (the sparse-matrix datasets' format)
# ----------------------------------------------------------------------
def load_matrix_market(path_or_buf, name: str = "mm") -> EdgeList:
    """Read ``matrix coordinate {real,pattern,integer} {general,symmetric}``.

    Symmetric matrices are expanded to directed pairs, matching the
    paper's storage of undirected inputs. Indices are 1-based on disk.
    """
    if isinstance(path_or_buf, (str, Path)):
        fh = open(path_or_buf)
        close = True
    else:
        fh = path_or_buf
        close = False
    try:
        header = fh.readline().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
            raise ValueError("not a MatrixMarket matrix file")
        fmt, field, symmetry = header[2], header[3], header[4]
        if fmt != "coordinate":
            raise ValueError(f"unsupported MatrixMarket format {fmt!r}")
        if field not in ("real", "pattern", "integer"):
            raise ValueError(f"unsupported MatrixMarket field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"unsupported MatrixMarket symmetry {symmetry!r}")
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        n_rows, n_cols, nnz = (int(x) for x in line.split())
        body = np.loadtxt(_io.StringIO(fh.read()), ndmin=2)
        if body.shape[0] != nnz:
            raise ValueError(f"expected {nnz} entries, found {body.shape[0]}")
    finally:
        if close:
            fh.close()
    src = body[:, 0].astype(VID_DTYPE) - 1
    dst = body[:, 1].astype(VID_DTYPE) - 1
    weights = body[:, 2].astype(WEIGHT_DTYPE) if field != "pattern" and body.shape[1] > 2 else None
    edges = EdgeList(max(n_rows, n_cols), src, dst, weights, name=name)
    if symmetry == "symmetric":
        edges = edges.symmetrized()
        edges.name = name
    return edges
