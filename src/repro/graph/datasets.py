"""Stand-ins for the paper's evaluation datasets (Table 1 + delaunay_n13).

Each registry entry pairs the paper's published statistics with a
synthetic generator from the same structural family, scaled per
DESIGN.md: the five out-of-memory graphs carry 1/64 of the paper's
edges (matching the 1/64 device-memory scaling), while the small
in-memory graphs use gentler factors so they stay non-degenerate. The
in-memory/out-of-memory classification against the scaled K20c is
asserted by the test suite for every entry.

Datasets are deterministic (fixed seeds) and cached in-process, since
several benchmarks share the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph import generators as gen
from repro.graph.edgelist import EdgeList


@dataclass(frozen=True)
class DatasetInfo:
    """Registry metadata for one Table-1 stand-in."""

    name: str
    family: str
    #: factory producing the stand-in EdgeList
    builder: Callable[[], EdgeList]
    #: True if Table 1 lists this as fitting GPU memory
    in_memory: bool
    #: dataset scale factor relative to the paper's graph
    scale: int
    #: the paper's published statistics (vertices, edges, size string)
    paper_vertices: int
    paper_edges: int
    paper_size: str
    #: whether the graph is stored as pairs of directed edges
    undirected: bool = False


def _registry() -> dict[str, DatasetInfo]:
    entries = [
        # ---------------- GPU in-memory (Table 1 top half) ----------------
        DatasetInfo(
            "ak2010", "planar/redistricting",
            lambda: gen.planar_like(45_292, 108_549, seed=11, name="ak2010"),
            in_memory=True, scale=1,
            paper_vertices=45_292, paper_edges=108_549, paper_size="7.9MB",
            undirected=True,
        ),
        DatasetInfo(
            "coAuthorsDBLP", "collaboration",
            lambda: gen.coauthor_graph(16, 244_419, seed=12, name="coAuthorsDBLP"),
            in_memory=True, scale=4,
            paper_vertices=299_067, paper_edges=977_676, paper_size="69.5MB",
            undirected=True,
        ),
        DatasetInfo(
            "kron_g500-logn20", "kronecker",
            lambda: gen.rmat(14, 697_192, seed=13, name="kron_g500-logn20"),
            in_memory=True, scale=64,
            paper_vertices=1_048_576, paper_edges=44_620_272, paper_size="2.4GB",
        ),
        DatasetInfo(
            "webbase-1M", "web crawl",
            lambda: gen.web_graph(17, 388_192, seed=14, name="webbase-1M"),
            in_memory=True, scale=8,
            paper_vertices=1_000_005, paper_edges=3_105_536, paper_size="211.6MB",
        ),
        DatasetInfo(
            "belgium_osm", "road network",
            lambda: gen.road_network(425, 424, 13_547, seed=15, name="belgium_osm"),
            in_memory=True, scale=8,
            paper_vertices=1_441_295, paper_edges=1_549_970, paper_size="5.4MB",
            undirected=True,
        ),
        DatasetInfo(
            "delaunay_n13", "triangulation",
            lambda: gen.delaunay_graph(8_192, seed=16, name="delaunay_n13"),
            in_memory=True, scale=1,
            paper_vertices=8_192, paper_edges=24_576, paper_size="~1MB",
            undirected=True,
        ),
        # ---------------- GPU out-of-memory (Table 1 bottom half) ---------
        DatasetInfo(
            "kron_g500-logn21", "kronecker",
            lambda: gen.rmat(15, 1_480_000, seed=21, name="kron_g500-logn21"),
            in_memory=False, scale=64,
            paper_vertices=2_097_152, paper_edges=91_042_010, paper_size="4.84GB",
        ),
        DatasetInfo(
            "nlpkkt160", "3D mesh (PDE)",
            lambda: gen.mesh3d(51, 51, 51, name="nlpkkt160"),
            in_memory=False, scale=64,
            paper_vertices=8_345_600, paper_edges=221_172_512, paper_size="11.9GB",
            undirected=True,
        ),
        DatasetInfo(
            "uk-2002", "web crawl",
            lambda: gen.web_graph(18, 4_658_027, seed=23, name="uk-2002"),
            in_memory=False, scale=64,
            paper_vertices=18_520_486, paper_edges=298_113_762, paper_size="16.4GB",
        ),
        DatasetInfo(
            "orkut", "social network",
            lambda: gen.social_graph(16, 1_831_016, seed=24, name="orkut"),
            in_memory=False, scale=64,
            paper_vertices=3_072_441, paper_edges=117_185_083, paper_size="6.2GB",
            undirected=True,
        ),
        DatasetInfo(
            "cage15", "banded (DNA walk)",
            # halfwidth 300 gives a BFS diameter of a few hundred, like
            # the real cage15's long-but-not-pathological chain structure
            lambda: gen.banded(80_544, 300, 20, seed=25, name="cage15"),
            in_memory=False, scale=64,
            paper_vertices=5_154_859, paper_edges=99_199_551, paper_size="5.4GB",
        ),
    ]
    return {e.name: e for e in entries}


DATASETS: dict[str, DatasetInfo] = _registry()

#: Datasets used in the out-of-memory comparison (Table 3, Figs 13-17).
OUT_OF_MEMORY = [n for n, e in DATASETS.items() if not e.in_memory]

#: Datasets used in the in-memory comparison (Table 4).
IN_MEMORY_TABLE4 = ["ak2010", "coAuthorsDBLP", "kron_g500-logn20", "webbase-1M", "belgium_osm"]

#: Datasets in the Table-2 BFS comparison.
TABLE2 = ["ak2010", "belgium_osm", "coAuthorsDBLP", "delaunay_n13", "kron_g500-logn20", "webbase-1M"]

_cache: dict[str, EdgeList] = {}


def load_dataset(name: str, cache: bool = True) -> EdgeList:
    """Build (or fetch the cached) stand-in for a Table-1 graph."""
    try:
        info = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    if cache and name in _cache:
        return _cache[name]
    edges = info.builder()
    if cache:
        _cache[name] = edges
    return edges


def clear_cache() -> None:
    _cache.clear()
