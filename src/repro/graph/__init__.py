"""Graph data structures, generators and the Table-1 dataset registry.

This package is the graph substrate beneath GraphReduce and the baseline
frameworks:

* :mod:`repro.graph.edgelist` -- COO edge lists with validation and
  undirected symmetrization (the paper stores undirected inputs as pairs
  of directed edges).
* :mod:`repro.graph.csr` -- CSR/CSC adjacency with vectorized builders
  and the ragged-gather helper used by frontier-restricted phases.
* :mod:`repro.graph.generators` -- synthetic generators for the graph
  families in Table 1 (RMAT/Kronecker, 3D meshes, banded matrices, web
  crawls, social and road networks, Delaunay triangulations).
* :mod:`repro.graph.datasets` -- named stand-ins for the paper's ten
  evaluation graphs (plus delaunay_n13 from Table 2), scaled per
  DESIGN.md so the in-memory / out-of-memory split matches.
* :mod:`repro.graph.io` -- edge-list text, NPZ and MatrixMarket I/O.
* :mod:`repro.graph.properties` -- degree statistics, connectivity and
  the in-memory footprint accounting used for Table 1.
"""

from repro.graph.edgelist import EdgeList
from repro.graph.csr import CSR, build_csr, build_csc, ragged_gather
from repro.graph.datasets import DATASETS, DatasetInfo, load_dataset
from repro.graph.properties import footprint_bytes

__all__ = [
    "EdgeList",
    "CSR",
    "build_csr",
    "build_csc",
    "ragged_gather",
    "DATASETS",
    "DatasetInfo",
    "load_dataset",
    "footprint_bytes",
]
