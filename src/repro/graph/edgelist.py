"""COO edge lists.

The raw dataset format of Section 4.2: "a set of source and destination
vertex pairs (edges) with the associated value for each edge", generally
unordered. The Partition Engine's Graph Layout Engine sorts these into
per-shard CSC/CSR order; everything upstream of that works on this class.

Vertex ids are ``int32`` (reproduction-scale graphs stay far below 2**31)
and edge weights ``float32``, matching the paper's `float` datatype for
all experiments. Graphs whose vertex count does not fit ``int32`` fall
back to ``int64`` ids so ids straddling 2**32 survive a round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

VID_DTYPE = np.int32
WEIGHT_DTYPE = np.float32


@dataclass
class EdgeList:
    """A directed multigraph as parallel ``src``/``dst`` arrays."""

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weights: np.ndarray | None = None
    #: True when the edge set is the directed doubling of an undirected
    #: graph ("stored as pairs of directed edges", Section 6.1).
    undirected: bool = False
    name: str = field(default="graph")

    def __post_init__(self) -> None:
        vid_dtype = VID_DTYPE
        if self.num_vertices > np.iinfo(VID_DTYPE).max:
            vid_dtype = np.int64
        self.src = np.ascontiguousarray(self.src, dtype=vid_dtype)
        self.dst = np.ascontiguousarray(self.dst, dtype=vid_dtype)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        if self.weights is not None:
            self.weights = np.ascontiguousarray(self.weights, dtype=WEIGHT_DTYPE)
            if self.weights.shape != self.src.shape:
                raise ValueError("weights must match the edge arrays")
        if self.num_vertices < 0:
            raise ValueError(f"negative vertex count {self.num_vertices!r}")
        if self.num_edges:
            lo = min(self.src.min(), self.dst.min())
            hi = max(self.src.max(), self.dst.max())
            if lo < 0 or hi >= self.num_vertices:
                raise ValueError(
                    f"edge endpoints [{lo}, {hi}] outside [0, {self.num_vertices})"
                )

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Stored (directed) edge count."""
        return int(self.src.shape[0])

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.src, minlength=self.num_vertices).astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.dst, minlength=self.num_vertices).astype(np.int64)

    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs,
        num_vertices: int | None = None,
        weights=None,
        undirected: bool = False,
        name: str = "graph",
    ) -> "EdgeList":
        """Build from an iterable of (src, dst) pairs."""
        arr = np.asarray(list(pairs) if not isinstance(pairs, np.ndarray) else pairs)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("pairs must be an (m, 2) array-like")
        if num_vertices is None:
            num_vertices = int(arr.max()) + 1 if arr.size else 0
        w = None if weights is None else np.asarray(weights)
        return cls(num_vertices, arr[:, 0], arr[:, 1], w, undirected, name)

    # ------------------------------------------------------------------
    def symmetrized(self) -> "EdgeList":
        """Add the reverse of every edge (undirected storage)."""
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        w = None
        if self.weights is not None:
            w = np.concatenate([self.weights, self.weights])
        out = EdgeList(self.num_vertices, src, dst, w, True, self.name)
        return out.deduplicated()

    def deduplicated(self) -> "EdgeList":
        """Drop parallel edges (keeping the first weight) and self-loops."""
        keep = self.src != self.dst
        src, dst = self.src[keep], self.dst[keep]
        w = None if self.weights is None else self.weights[keep]
        key = src.astype(np.int64) * self.num_vertices + dst
        _, first = np.unique(key, return_index=True)
        first.sort()
        w = None if w is None else w[first]
        return EdgeList(self.num_vertices, src[first], dst[first], w, self.undirected, self.name)

    def with_unit_weights(self) -> "EdgeList":
        return EdgeList(
            self.num_vertices,
            self.src,
            self.dst,
            np.ones(self.num_edges, dtype=WEIGHT_DTYPE),
            self.undirected,
            self.name,
        )

    def with_random_weights(self, low: float = 1.0, high: float = 10.0, seed: int = 0) -> "EdgeList":
        """Uniform weights in [low, high) -- the SSSP input convention."""
        rng = np.random.default_rng(seed)
        w = rng.uniform(low, high, size=self.num_edges).astype(WEIGHT_DTYPE)
        return EdgeList(self.num_vertices, self.src, self.dst, w, self.undirected, self.name)

    def permuted(self, seed: int = 0) -> "EdgeList":
        """Shuffle edge order (the 'generally unordered' raw format)."""
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.num_edges)
        w = None if self.weights is None else self.weights[perm]
        return EdgeList(self.num_vertices, self.src[perm], self.dst[perm], w, self.undirected, self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "undirected-stored" if self.undirected else "directed"
        return (
            f"EdgeList({self.name!r}, V={self.num_vertices}, "
            f"E={self.num_edges}, {kind})"
        )
