"""Vertex relabeling / graph reordering.

Section 4.2 notes that GraphReduce "is able to take any user-provided
partitioning logic as a plugin"; reordering the vertex ids is the
classic preprocessing that makes interval partitions meaningful --
BFS order groups topologically close vertices into the same shard
(raising X-Stream-style partition locality and shard-skip rates on
road/mesh graphs), degree order concentrates hubs.

All orders return a permutation ``order`` with ``order[new_id] ==
old_id`` plus helpers to apply and invert it, so algorithm results map
back to the original ids losslessly (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import build_csr
from repro.graph.edgelist import EdgeList, VID_DTYPE


def bfs_order(edges: EdgeList, source: int = 0) -> np.ndarray:
    """Breadth-first visitation order; unreached vertices follow in id

    order. Groups each BFS level contiguously."""
    n = edges.num_vertices
    csr = build_csr(edges)
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    count = 0
    frontier = np.array([source], dtype=np.int64)
    seen[source] = True
    while len(frontier):
        order[count : count + len(frontier)] = frontier
        count += len(frontier)
        starts = csr.indptr[frontier]
        lengths = csr.indptr[frontier + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            break
        base = np.repeat(np.cumsum(lengths) - lengths, lengths)
        pos = np.repeat(starts, lengths) + np.arange(total) - base
        nxt = np.unique(csr.indices[pos])
        nxt = nxt[~seen[nxt]]
        seen[nxt] = True
        frontier = nxt.astype(np.int64)
    rest = np.flatnonzero(~seen)
    order[count : count + len(rest)] = rest
    return order


def degree_order(edges: EdgeList, descending: bool = True) -> np.ndarray:
    """Vertices sorted by total degree (hubs first by default)."""
    deg = edges.out_degrees() + edges.in_degrees()
    order = np.argsort(deg, kind="stable")
    return order[::-1].copy() if descending else order


def random_order(edges: EdgeList, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).permutation(edges.num_vertices)


def apply_order(edges: EdgeList, order: np.ndarray) -> tuple[EdgeList, np.ndarray]:
    """Relabel so old vertex ``order[i]`` becomes new vertex ``i``.

    Returns ``(relabeled, new_id_of)`` where ``new_id_of[old] == new``.
    """
    n = edges.num_vertices
    order = np.asarray(order)
    if sorted(order.tolist()) != list(range(n)):
        raise ValueError("order must be a permutation of all vertex ids")
    new_id_of = np.empty(n, dtype=np.int64)
    new_id_of[order] = np.arange(n)
    out = EdgeList(
        n,
        new_id_of[edges.src].astype(VID_DTYPE),
        new_id_of[edges.dst].astype(VID_DTYPE),
        None if edges.weights is None else edges.weights.copy(),
        undirected=edges.undirected,
        name=f"{edges.name}-relabeled",
    )
    return out, new_id_of


def unmap_values(values: np.ndarray, new_id_of: np.ndarray) -> np.ndarray:
    """Vertex values computed on the relabeled graph, in original-id

    order: ``unmap_values(v, m)[old] == v[m[old]]``."""
    return np.asarray(values)[new_id_of]


def partition_locality(edges: EdgeList, num_partitions: int) -> float:
    """Fraction of edges whose endpoints share an interval partition --

    the metric reordering improves."""
    if edges.num_edges == 0:
        return 1.0
    n = edges.num_vertices
    bounds = np.linspace(0, n, num_partitions + 1).astype(np.int64)
    part = np.searchsorted(bounds, np.arange(n), side="right") - 1
    return float(np.count_nonzero(part[edges.src] == part[edges.dst])) / edges.num_edges
