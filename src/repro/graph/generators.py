"""Synthetic generators for the graph families of Table 1.

Each of the paper's evaluation graphs belongs to a structural family that
determines its frontier dynamics (Figures 3, 16, 17): Kronecker/RMAT
graphs have tiny diameters and extreme degree skew; meshes (nlpkkt160)
and banded matrices (cage15) have large diameters and near-uniform
degrees; web crawls and social networks sit in between; road networks
have huge diameters. The generators below produce those families at
arbitrary scale, fully vectorized, deterministic under an explicit seed.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList, VID_DTYPE


def _dedup_pairs(src: np.ndarray, dst: np.ndarray, n: int):
    """Remove self-loops and duplicate pairs, preserving first occurrence order."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    key = src.astype(np.int64) * n + dst
    _, first = np.unique(key, return_index=True)
    first.sort()
    return src[first], dst[first]


# ----------------------------------------------------------------------
# Kronecker / RMAT (kron_g500-logn20, kron_g500-logn21, web, social)
# ----------------------------------------------------------------------
def rmat(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "rmat",
    oversample: float = 1.35,
    max_rounds: int = 14,
) -> EdgeList:
    """R-MAT / Graph500-style Kronecker generator.

    Produces ``num_edges`` distinct directed edges over ``2**scale``
    vertices by recursively descending into quadrants with probabilities
    (a, b, c, d=1-a-b-c). Over-samples then deduplicates, drawing more
    rounds if collisions ate too many edges.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative")
    n = 1 << scale
    if num_edges > n * (n - 1):
        raise ValueError(f"cannot fit {num_edges} simple edges in {n} vertices")
    rng = np.random.default_rng(seed)
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    have = 0
    want = num_edges
    for round_i in range(max_rounds):
        # Collisions concentrate on hub pairs, so deficits shrink slowly
        # near the end; grow the oversampling each round.
        m = int((want - have) * oversample * (1.5 ** round_i)) + 16
        src = np.zeros(m, dtype=np.int64)
        dst = np.zeros(m, dtype=np.int64)
        for _level in range(scale):
            r1 = rng.random(m)
            src_bit = r1 >= (a + b)
            # P(dst bit | src bit): top row splits a vs b, bottom c vs d.
            thresh = np.where(src_bit, c / max(c + d, 1e-12), a / max(a + b, 1e-12))
            dst_bit = rng.random(m) >= thresh
            src = (src << 1) | src_bit
            dst = (dst << 1) | dst_bit
        src_parts.append(src)
        dst_parts.append(dst)
        s = np.concatenate(src_parts)
        t = np.concatenate(dst_parts)
        s, t = _dedup_pairs(s, t, n)
        have = len(s)
        if have >= want:
            return EdgeList(n, s[:want].astype(VID_DTYPE), t[:want].astype(VID_DTYPE), name=name)
        src_parts, dst_parts = [s], [t]
    raise RuntimeError(
        f"rmat failed to reach {num_edges} distinct edges after {max_rounds} rounds "
        f"(got {have}); lower num_edges or raise oversample"
    )


def kronecker(scale: int, edge_factor: float, seed: int = 0, name: str = "kron") -> EdgeList:
    """Graph500 parameterization: 2**scale vertices, edge_factor * n edges."""
    n = 1 << scale
    return rmat(scale, int(edge_factor * n), seed=seed, name=name)


def web_graph(scale: int, num_edges: int, seed: int = 0, name: str = "web") -> EdgeList:
    """Web-crawl-like: skewed in-degree with more locality than kron."""
    return rmat(scale, num_edges, a=0.6, b=0.15, c=0.15, seed=seed, name=name)


def social_graph(scale: int, num_undirected_edges: int, seed: int = 0, name: str = "social") -> EdgeList:
    """Social-network-like (orkut): heavy-tailed, undirected storage."""
    half = rmat(scale, num_undirected_edges, a=0.45, b=0.22, c=0.22, seed=seed, name=name)
    out = half.symmetrized()
    out.name = name
    return out


def coauthor_graph(scale: int, num_undirected_edges: int, seed: int = 0, name: str = "coauthor") -> EdgeList:
    """Collaboration-network-like: milder skew, strong clustering."""
    half = rmat(scale, num_undirected_edges, a=0.42, b=0.19, c=0.19, seed=seed, name=name)
    out = half.symmetrized()
    out.name = name
    return out


# ----------------------------------------------------------------------
# Meshes and banded matrices (nlpkkt160, cage15)
# ----------------------------------------------------------------------
def mesh3d(nx: int, ny: int, nz: int, name: str = "mesh3d") -> EdgeList:
    """3-D grid with a 27-point stencil (symmetric, no self edge).

    The nlpkkt family comes from 3-D PDE-constrained optimization; the
    matrix is structurally a 3-D mesh: ~26 neighbors per interior vertex
    (avg degree 26.5 in nlpkkt160), enormous diameter relative to kron.
    """
    n = nx * ny * nz
    x, y, z = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    x, y, z = x.ravel(), y.ravel(), z.ravel()
    vid = (x * ny + y) * nz + z
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if dx == dy == dz == 0:
                    continue
                ok = (
                    (x + dx >= 0) & (x + dx < nx)
                    & (y + dy >= 0) & (y + dy < ny)
                    & (z + dz >= 0) & (z + dz < nz)
                )
                srcs.append(vid[ok])
                dsts.append(((x[ok] + dx) * ny + (y[ok] + dy)) * nz + (z[ok] + dz))
    src = np.concatenate(srcs).astype(VID_DTYPE)
    dst = np.concatenate(dsts).astype(VID_DTYPE)
    return EdgeList(n, src, dst, undirected=True, name=name)


def mesh2d(nx: int, ny: int, name: str = "mesh2d") -> EdgeList:
    """2-D grid, 4-point stencil, symmetric."""
    n = nx * ny
    x, y = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    x, y = x.ravel(), y.ravel()
    vid = x * ny + y
    srcs, dsts = [], []
    for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        ok = (x + dx >= 0) & (x + dx < nx) & (y + dy >= 0) & (y + dy < ny)
        srcs.append(vid[ok])
        dsts.append((x[ok] + dx) * ny + (y[ok] + dy))
    return EdgeList(
        n,
        np.concatenate(srcs).astype(VID_DTYPE),
        np.concatenate(dsts).astype(VID_DTYPE),
        undirected=True,
        name=name,
    )


def banded(
    n: int,
    halfwidth: int,
    out_degree: int,
    seed: int = 0,
    name: str = "banded",
) -> EdgeList:
    """Banded sparse structure (cage15-like DNA-walk matrices).

    Each vertex draws ``out_degree`` distinct neighbors within
    ``halfwidth`` positions of itself, clipped at the boundary -- a
    near-uniform-degree, large-diameter, locality-heavy structure.
    """
    if halfwidth < 1 or out_degree < 1:
        raise ValueError("halfwidth and out_degree must be >= 1")
    if out_degree > 2 * halfwidth:
        raise ValueError("out_degree cannot exceed the band population")
    rng = np.random.default_rng(seed)
    base = np.repeat(np.arange(n, dtype=np.int64), out_degree)
    mag = rng.integers(1, halfwidth + 1, size=base.shape[0])
    sign = rng.choice(np.array([-1, 1], dtype=np.int64), size=base.shape[0])
    dst = base + mag * sign
    # Reflect out-of-range targets back into the band.
    dst = np.where(dst < 0, -dst, dst)
    dst = np.where(dst >= n, 2 * (n - 1) - dst, dst)
    src, dst = _dedup_pairs(base, dst, n)
    return EdgeList(n, src.astype(VID_DTYPE), dst.astype(VID_DTYPE), name=name)


# ----------------------------------------------------------------------
# Road networks (belgium_osm)
# ----------------------------------------------------------------------
def road_network(
    rows: int,
    cols: int,
    extra_edges: int,
    seed: int = 0,
    name: str = "road",
) -> EdgeList:
    """Road-network-like: a random spanning tree of a grid plus a few

    shortcut lattice edges. Degree ~2, very large diameter -- the family
    whose BFS takes thousands of iterations (Table 4, belgium_osm).
    Returned in undirected (symmetrized) storage.
    """
    n = rows * cols
    rng = np.random.default_rng(seed)
    r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    r, c = r.ravel(), c.ravel()
    vid = r * cols + c
    # Spanning tree: every vertex except (0,0) links to the left or the
    # upper neighbor (random choice where both exist).
    mask = vid > 0
    go_up = rng.random(n) < 0.5
    can_up = r > 0
    can_left = c > 0
    up = np.where(can_left & ~(go_up & can_up), vid - 1, vid - cols)
    parent = np.where(can_up | can_left, up, vid)  # vid 0 only
    tree_src = vid[mask]
    tree_dst = parent[mask]
    # Shortcuts: random extra lattice edges to the right neighbor.
    cand = vid[(c < cols - 1)]
    extra = rng.choice(cand, size=min(extra_edges, len(cand)), replace=False)
    src = np.concatenate([tree_src, extra])
    dst = np.concatenate([tree_dst, extra + 1])
    src, dst = _dedup_pairs(src.astype(np.int64), dst.astype(np.int64), n)
    half = EdgeList(n, src.astype(VID_DTYPE), dst.astype(VID_DTYPE), name=name)
    out = half.symmetrized()
    out.name = name
    return out


def grid_road(
    rows: int,
    cols: int,
    diagonal_fraction: float = 0.1,
    seed: int = 0,
    name: str = "grid-road",
    highways: int = 0,
) -> EdgeList:
    """Road-network benchmark mesh: full 2-D lattice + random diagonals.

    Unlike :func:`road_network` (spanning tree, degree ~2) every lattice
    edge is kept, so the graph has enough edge work to time while
    preserving the high-diameter traversal profile where direction
    switching matters. Each lattice square flips a coin with probability
    ``diagonal_fraction`` and, when chosen, gains one of its two
    diagonals (equal odds). Provable bounds the unit tests pin:

    * degree <= 8 -- 4 lattice neighbors plus at most 4 incident
      diagonals (one per surrounding square);
    * diameter in ``[max(rows, cols) - 1, rows + cols - 2]`` -- every
      edge (diagonals included) moves one Chebyshev step, and the
      lattice alone walks the Manhattan distance.

    ``highways`` adds that many long-range edges between uniformly
    random vertex pairs -- a motorway overlay on the local street grid.
    Highways void the degree/diameter bounds above but create the
    re-relaxation-heavy weighted traversals (shortcut arrivals rewrite
    whole regions) where direction-optimizing traversal pays off; the
    wall-clock road scenario leans on this.

    Undirected (symmetrized) storage; deterministic for a given seed.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid_road needs at least a 2x2 grid")
    if not 0.0 <= diagonal_fraction <= 1.0:
        raise ValueError("diagonal_fraction must be in [0, 1]")
    if highways < 0:
        raise ValueError("highways must be non-negative")
    n = rows * cols
    rng = np.random.default_rng(seed)
    r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    r, c = r.ravel(), c.ravel()
    vid = r * cols + c
    right = vid[c < cols - 1]
    down = vid[r < rows - 1]
    srcs = [right, down]
    dsts = [right + 1, down + cols]
    square = vid[(r < rows - 1) & (c < cols - 1)]  # top-left corners
    chosen = square[rng.random(len(square)) < diagonal_fraction]
    down_right = rng.random(len(chosen)) < 0.5
    srcs.append(np.where(down_right, chosen, chosen + 1))
    dsts.append(np.where(down_right, chosen + cols + 1, chosen + cols))
    if highways:
        hw_src = rng.integers(0, n, size=highways)
        hw_dst = rng.integers(0, n, size=highways)
        keep = hw_src != hw_dst
        srcs.append(hw_src[keep])
        dsts.append(hw_dst[keep])
    src = np.concatenate(srcs).astype(np.int64)
    dst = np.concatenate(dsts).astype(np.int64)
    src, dst = _dedup_pairs(src, dst, n)
    half = EdgeList(n, src.astype(VID_DTYPE), dst.astype(VID_DTYPE), name=name)
    out = half.symmetrized()
    out.name = name
    return out


# ----------------------------------------------------------------------
# Triangulations and planar graphs (delaunay_n13, ak2010)
# ----------------------------------------------------------------------
def delaunay_graph(n: int, seed: int = 0, name: str = "delaunay") -> EdgeList:
    """Delaunay triangulation of n uniform random points (undirected)."""
    from scipy.spatial import Delaunay  # deferred: scipy.spatial is heavy

    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    tri = Delaunay(points)
    simplices = tri.simplices
    src = np.concatenate([simplices[:, 0], simplices[:, 1], simplices[:, 2]])
    dst = np.concatenate([simplices[:, 1], simplices[:, 2], simplices[:, 0]])
    half = EdgeList.from_pairs(
        np.stack([src, dst], axis=1), num_vertices=n, name=name
    ).deduplicated()
    out = half.symmetrized()
    out.name = name
    return out


def planar_like(n: int, num_undirected_edges: int, seed: int = 0, name: str = "planar") -> EdgeList:
    """Planar-ish graph (ak2010-like census blocks): Delaunay thinned or

    densified to the requested undirected edge count.
    """
    g = delaunay_graph(n, seed=seed, name=name)
    pairs = np.stack([g.src, g.dst], axis=1)
    canon = pairs[pairs[:, 0] < pairs[:, 1]]
    rng = np.random.default_rng(seed + 1)
    if len(canon) >= num_undirected_edges:
        keep = rng.choice(len(canon), size=num_undirected_edges, replace=False)
        canon = canon[keep]
    half = EdgeList.from_pairs(canon, num_vertices=n, name=name)
    out = half.symmetrized()
    out.name = name
    return out


# ----------------------------------------------------------------------
# Simple families for tests
# ----------------------------------------------------------------------
def erdos_renyi(n: int, num_edges: int, seed: int = 0, name: str = "er") -> EdgeList:
    """Uniform random simple directed graph with exactly ``num_edges``."""
    max_edges = n * (n - 1)
    if num_edges > max_edges:
        raise ValueError(f"cannot fit {num_edges} simple edges in {n} vertices")
    rng = np.random.default_rng(seed)
    if max_edges <= 1 << 22 and num_edges > max_edges // 4:
        # Dense request: sample edge *keys* without replacement instead of
        # rejection sampling (which stalls near saturation).
        keys = rng.choice(max_edges, size=num_edges, replace=False)
        src = keys // (n - 1)
        off = keys % (n - 1)
        dst = np.where(off >= src, off + 1, off)  # skip the self-loop slot
        return EdgeList(n, src.astype(VID_DTYPE), dst.astype(VID_DTYPE), name=name)
    src_parts, dst_parts = [], []
    have = 0
    for _ in range(12):
        m = int((num_edges - have) * 1.5) + 16
        src_parts.append(rng.integers(0, n, size=m))
        dst_parts.append(rng.integers(0, n, size=m))
        s, t = _dedup_pairs(np.concatenate(src_parts), np.concatenate(dst_parts), n)
        have = len(s)
        if have >= num_edges:
            return EdgeList(n, s[:num_edges].astype(VID_DTYPE), t[:num_edges].astype(VID_DTYPE), name=name)
        src_parts, dst_parts = [s], [t]
    raise RuntimeError(f"erdos_renyi could not draw {num_edges} distinct edges")


def path_graph(n: int, name: str = "path") -> EdgeList:
    src = np.arange(n - 1, dtype=VID_DTYPE)
    return EdgeList(n, src, src + 1, name=name)


def cycle_graph(n: int, name: str = "cycle") -> EdgeList:
    src = np.arange(n, dtype=VID_DTYPE)
    return EdgeList(n, src, (src + 1) % n, name=name)


def star_graph(n: int, name: str = "star") -> EdgeList:
    """Vertex 0 points at every other vertex."""
    dst = np.arange(1, n, dtype=VID_DTYPE)
    return EdgeList(n, np.zeros(n - 1, dtype=VID_DTYPE), dst, name=name)


def complete_graph(n: int, name: str = "complete") -> EdgeList:
    src, dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    keep = src != dst
    return EdgeList(n, src[keep].astype(VID_DTYPE), dst[keep].astype(VID_DTYPE), undirected=True, name=name)
