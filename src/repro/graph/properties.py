"""Graph statistics and the Table-1 in-memory footprint accounting.

The paper defines a graph's size as "the amount of memory required to
store the edges, vertices, and edge/vertex data states in terms of the
user-defined datatypes and a few of the temporary buffers" (Section 6.1).
:func:`footprint_bytes` is that accounting for the reproduction's layout;
it is what classifies each dataset as GPU in-memory or out-of-memory
against :class:`~repro.sim.specs.DeviceSpec` memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList

#: Bytes per stored edge: CSC index (4) + CSR index (4) + edge value in
#: each layout (4 + 4) + per-in-edge update slot (4).
BYTES_PER_EDGE = 20

#: Bytes per vertex: value (4) + gather temp (4) + CSC/CSR indptr share
#: (2 x 8) + out-degree (8) + frontier flags (2) + changed flag (1),
#: rounded up to alignment.
BYTES_PER_VERTEX = 40


def footprint_bytes(edges: EdgeList) -> int:
    """Canonical in-memory size used for Table 1 classification."""
    return edges.num_edges * BYTES_PER_EDGE + edges.num_vertices * BYTES_PER_VERTEX


@dataclass(frozen=True)
class DegreeStats:
    max_out: int
    max_in: int
    avg_degree: float
    isolated: int


def degree_stats(edges: EdgeList) -> DegreeStats:
    out_deg = edges.out_degrees()
    in_deg = edges.in_degrees()
    n = max(edges.num_vertices, 1)
    return DegreeStats(
        max_out=int(out_deg.max(initial=0)),
        max_in=int(in_deg.max(initial=0)),
        avg_degree=edges.num_edges / n,
        isolated=int(np.count_nonzero((out_deg + in_deg) == 0)),
    )


def is_symmetric(edges: EdgeList) -> bool:
    """True when every directed edge has its reverse present."""
    n = edges.num_vertices
    fwd = np.unique(edges.src.astype(np.int64) * n + edges.dst)
    rev = np.unique(edges.dst.astype(np.int64) * n + edges.src)
    return fwd.shape == rev.shape and bool(np.all(fwd == rev))


def num_components(edges: EdgeList) -> int:
    """Weakly connected components via scipy.sparse.csgraph."""
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components

    n = edges.num_vertices
    if n == 0:
        return 0
    mat = coo_matrix(
        (np.ones(edges.num_edges, dtype=np.int8), (edges.src, edges.dst)),
        shape=(n, n),
    )
    count, _ = connected_components(mat, directed=True, connection="weak")
    return int(count)


def estimate_diameter(edges: EdgeList, samples: int = 4, seed: int = 0) -> int:
    """Lower bound on diameter from a few BFS sweeps (frontier-dynamics

    sanity checks for the Figure 3/16 families).
    """
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import breadth_first_order

    n = edges.num_vertices
    if n == 0 or edges.num_edges == 0:
        return 0
    mat = coo_matrix(
        (np.ones(edges.num_edges, dtype=np.int8), (edges.src, edges.dst)),
        shape=(n, n),
    ).tocsr()
    rng = np.random.default_rng(seed)
    best = 0
    start = int(rng.integers(0, n))
    for _ in range(samples):
        order, preds = breadth_first_order(mat, start, directed=True, return_predecessors=True)
        depth = np.zeros(n, dtype=np.int64)
        for v in order[1:]:
            depth[v] = depth[preds[v]] + 1
        best = max(best, int(depth[order].max(initial=0)))
        start = int(order[-1])  # double-sweep heuristic
    return best
