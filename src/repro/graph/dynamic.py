"""Dynamically evolving graphs (the paper's future work, Section 8

item 3). Two pieces:

* :class:`DynamicGraphStream` -- an initial snapshot plus timestamped
  batches of edge insertions (the common evolving-graph model for social
  networks and crawls: edges arrive, rarely leave).
* :func:`incremental_program` -- a warm-start wrapper for *monotone* GAS
  programs. With insert-only updates, any program whose apply only ever
  moves vertex values in one direction under a min/max reduce (BFS
  depths, SSSP distances, CC labels, widest paths) can resume from the
  previous snapshot's values with a frontier seeded at the new edges'
  endpoints, converging to exactly the from-scratch answer in far fewer
  iterations -- the property the test suite asserts.

PageRank is *not* monotone; for it the stream simply reruns from
scratch per snapshot (the wrapper refuses non-monotone reduces).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.api import GASProgram
from repro.graph.edgelist import EdgeList, VID_DTYPE, WEIGHT_DTYPE


@dataclass
class EdgeBatch:
    """One insertion batch."""

    src: np.ndarray
    dst: np.ndarray
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.src = np.ascontiguousarray(self.src, dtype=VID_DTYPE)
        self.dst = np.ascontiguousarray(self.dst, dtype=VID_DTYPE)
        if self.src.shape != self.dst.shape:
            raise ValueError("batch src/dst shapes differ")
        if self.weights is not None:
            self.weights = np.ascontiguousarray(self.weights, dtype=WEIGHT_DTYPE)

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    def touched_vertices(self) -> np.ndarray:
        return np.unique(np.concatenate([self.src, self.dst]))


class DynamicGraphStream:
    """An evolving graph: snapshot 0 plus insertion batches."""

    def __init__(self, initial: EdgeList, batches: list[EdgeBatch] | None = None):
        self.initial = initial
        self.batches: list[EdgeBatch] = list(batches or [])

    def append(self, batch: EdgeBatch) -> None:
        n = self.initial.num_vertices
        if batch.num_edges:
            hi = max(batch.src.max(), batch.dst.max())
            if hi >= n:
                raise ValueError(
                    f"batch endpoint {hi} outside the vertex set [0, {n})"
                )
        self.batches.append(batch)

    def snapshot(self, upto: int) -> EdgeList:
        """The graph after applying the first ``upto`` batches."""
        if not 0 <= upto <= len(self.batches):
            raise IndexError(f"snapshot {upto} of {len(self.batches)} batches")
        parts_s = [self.initial.src]
        parts_d = [self.initial.dst]
        parts_w = [self.initial.weights] if self.initial.weights is not None else None
        for batch in self.batches[:upto]:
            parts_s.append(batch.src)
            parts_d.append(batch.dst)
            if parts_w is not None:
                if batch.weights is None:
                    raise ValueError("weighted stream requires weighted batches")
                parts_w.append(batch.weights)
        out = EdgeList(
            self.initial.num_vertices,
            np.concatenate(parts_s),
            np.concatenate(parts_d),
            None if parts_w is None else np.concatenate(parts_w),
            undirected=False,
            name=f"{self.initial.name}@{upto}",
        )
        return out.deduplicated()

    def __len__(self) -> int:
        return len(self.batches)


#: Reduces under which insert-only warm starts are exact.
MONOTONE_REDUCES = (np.minimum, np.maximum)


def incremental_program(
    base: GASProgram,
    previous_values: np.ndarray,
    batch: EdgeBatch,
) -> GASProgram:
    """Warm-start ``base`` from a previous snapshot's converged values.

    Only valid for monotone min/max programs under insertions (values
    can only improve, and only changes propagate). The returned program
    initializes vertices from ``previous_values`` and the frontier from
    the batch's destination endpoints, whose gathers pick up the new
    edges.
    """
    if base.gather_reduce not in MONOTONE_REDUCES:
        raise TypeError(
            f"{type(base).__name__} (reduce={base.gather_reduce}) is not a "
            "monotone min/max program; rerun from scratch instead"
        )
    if not base.has_gather:
        raise TypeError(
            "warm starts need a pull-style gather (apply-only programs "
            "encode the iteration number in values)"
        )
    prev = np.asarray(previous_values).copy()
    seeds = np.unique(batch.dst)

    class Incremental(type(base)):  # inherit the device functions
        name = f"{base.name}+inc"

        def init_vertices(self, ctx):
            return prev.astype(self.vertex_dtype, copy=True)

        def init_frontier(self, ctx):
            frontier = np.zeros(ctx.num_vertices, dtype=bool)
            frontier[seeds] = True
            return frontier

    inc = Incremental.__new__(Incremental)
    inc.__dict__.update(base.__dict__)  # carry source vertex, weights, etc.
    return inc
