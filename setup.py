"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-use-pep517` takes the legacy setup.py develop path,
which needs only setuptools. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
