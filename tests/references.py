"""Pure-Python reference implementations for differential testing.

Each reference recomputes an algorithm's answer with plain loops over
the edge list -- no CSR/CSC, no shards, no frontier machinery -- so a
bug anywhere in the GraphReduce stack (layout, partitioning, movement
scheduling, fusion, frontier management, compute) shows up as a
divergence.

Float32 discipline: the engine does all PageRank/SSSP arithmetic in
float32, and frontier decisions (``|new - old| > tol``, ``cand < dist``)
depend on the exact rounded values. The references therefore accumulate
with ``np.float32`` scalars in the engine's reduction order (in-edges of
a vertex reduce in original edge-list order -- the stable CSC sort) so
results match bit for bit, not just approximately.
"""

from __future__ import annotations

import numpy as np

F32 = np.float32
INF = float("inf")


def _out_adjacency(edges):
    """out[v] = list of destination ids, original edge order."""
    out = [[] for _ in range(edges.num_vertices)]
    for u, v in zip(edges.src.tolist(), edges.dst.tolist()):
        out[u].append(v)
    return out


def _in_adjacency(edges, with_weights=False):
    """inn[v] = list of sources (or (src, weight)), original edge order."""
    inn = [[] for _ in range(edges.num_vertices)]
    if with_weights:
        for u, v, w in zip(
            edges.src.tolist(), edges.dst.tolist(), edges.weights.tolist()
        ):
            inn[v].append((u, w))
    else:
        for u, v in zip(edges.src.tolist(), edges.dst.tolist()):
            inn[v].append(u)
    return inn


def bfs_levels(edges, source: int) -> np.ndarray:
    """BFS depth over out-edges from ``source``; inf where unreached."""
    out = _out_adjacency(edges)
    depth = [INF] * edges.num_vertices
    depth[source] = 0.0
    queue = [source]
    level = 0
    while queue:
        level += 1
        nxt = []
        for u in queue:
            for v in out[u]:
                if depth[v] == INF:
                    depth[v] = float(level)
                    nxt.append(v)
        queue = nxt
    return np.array(depth, dtype=np.float32)


def sssp_distances(edges, source: int) -> np.ndarray:
    """Bellman-Ford to the float32 fixpoint.

    Relaxes every edge with float32 addition until nothing improves.
    The engine's label-correcting schedule reaches the same least
    fixpoint of the same monotone float32 operator, so distances agree
    exactly.
    """
    src = edges.src.tolist()
    dst = edges.dst.tolist()
    w = [F32(x) for x in edges.weights.tolist()]
    dist = [F32(INF)] * edges.num_vertices
    dist[source] = F32(0.0)
    changed = True
    while changed:
        changed = False
        for i in range(len(src)):
            cand = F32(dist[src[i]] + w[i])
            if cand < dist[dst[i]]:
                dist[dst[i]] = cand
                changed = True
    return np.array(dist, dtype=np.float32)


def pagerank(
    edges,
    damping: float = 0.85,
    tolerance: float = 1e-3,
    max_iterations: int = 200,
):
    """Frontier-tracked Jacobi PageRank, float32 throughout.

    Mirrors the GAS semantics exactly: every active vertex gathers
    ``rank(u) / max(outdeg(u), 1)`` over ALL its in-edges (values from
    the previous iteration -- BSP barriers make it Jacobi), applies
    ``(1 - damping) + damping * g``, and the next frontier is the
    out-neighbors of vertices whose rank moved more than ``tolerance``.

    One caveat: the engine reduces gather contributions with
    ``np.add.reduceat``, whose SIMD kernels use pairwise partial sums,
    while this loop accumulates left to right. Sums over 3+ in-edges can
    therefore differ in the last float32 ULP, so callers compare ranks
    with a few-ULP tolerance -- but the *trajectory* (iteration count
    and per-iteration frontier sizes) must match exactly.

    Returns ``(ranks, iterations, frontier_sizes)``.
    """
    n = edges.num_vertices
    inn = _in_adjacency(edges)
    out = _out_adjacency(edges)
    outdeg = [F32(max(len(o), 1)) for o in out]
    base = F32(1.0 - damping)
    damp = F32(damping)
    tol = F32(tolerance)
    rank = [F32(1.0)] * n
    frontier = set(range(n))
    sizes = []
    iteration = 0
    while frontier and iteration < max_iterations:
        sizes.append(len(frontier))
        active = sorted(frontier)
        new_rank = list(rank)
        changed = []
        for v in active:
            if inn[v]:
                acc = F32(0.0)
                for u in inn[v]:  # original edge order == stable CSC order
                    acc = F32(acc + F32(rank[u] / outdeg[u]))
                g = acc
            else:
                g = F32(0.0)
            new = F32(base + F32(damp * g))
            if F32(abs(F32(new - rank[v]))) > tol:
                changed.append(v)
            new_rank[v] = new
        rank = new_rank
        frontier = {w for v in changed for w in out[v]}
        iteration += 1
    return np.array(rank, dtype=np.float32), iteration, sizes


def cc_labels(edges) -> np.ndarray:
    """Min-label fixpoint: label(v) = min vertex id with a directed path
    to v (v itself included). On symmetrized graphs this is the weakly
    connected component minimum."""
    n = edges.num_vertices
    out = _out_adjacency(edges)
    label = [None] * n
    for u in range(n):
        if label[u] is not None:
            # Some u' < u reaches u, hence everything u reaches too.
            continue
        stack = [u]
        label[u] = u
        while stack:
            x = stack.pop()
            for y in out[x]:
                if label[y] is None:
                    label[y] = u
                    stack.append(y)
    return np.array(label, dtype=np.float32)
