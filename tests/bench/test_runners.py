"""Runner plumbing on cheap experiments (the heavy campaigns run under

benchmarks/; here we exercise structure, caching and the light runners).
"""

import numpy as np
import pytest

from repro.bench import runners
from repro.bench.paper_values import HEADLINES, TABLE2, TABLE3, TABLE4


class TestPaperValues:
    def test_table3_complete(self):
        assert set(TABLE3) == {
            "kron_g500-logn21", "nlpkkt160", "uk-2002", "orkut", "cage15"
        }
        for cols in TABLE3.values():
            assert set(cols) == {"GraphChi", "X-Stream", "GR"}
            for per in cols.values():
                assert set(per) == set(runners.ALGORITHMS)

    def test_table4_complete(self):
        assert len(TABLE4) == 5
        for cols in TABLE4.values():
            assert set(cols) == {"MapGraph", "CuSha", "GR"}

    def test_headlines(self):
        assert HEADLINES["avg_speedup_over_graphchi"] == 13.4
        assert HEADLINES["max_speedup_over_xstream"] == 21.0

    def test_table2_keys_match_registry(self):
        from repro.graph.datasets import TABLE2 as GRAPHS

        assert set(TABLE2) == set(GRAPHS)


class TestRunnerPlumbing:
    def test_source_vertex_deterministic(self):
        a = runners.source_vertex("delaunay_n13")
        b = runners.source_vertex("delaunay_n13")
        assert a == b
        g = __import__("repro.graph.datasets", fromlist=["load_dataset"]).load_dataset(
            "delaunay_n13"
        )
        assert g.out_degrees()[a] == g.out_degrees().max()

    def test_prepared_graph_variants(self):
        bfs_g = runners.prepared_graph("delaunay_n13", "BFS")
        sssp_g = runners.prepared_graph("delaunay_n13", "SSSP")
        assert bfs_g.weights is None
        assert sssp_g.weights is not None
        assert np.all(sssp_g.weights >= 1.0)
        # CC on an already-undirected dataset reuses the stored graph.
        cc_g = runners.prepared_graph("delaunay_n13", "CC")
        assert cc_g.num_edges == bfs_g.num_edges

    def test_prepared_graph_symmetrizes_directed_for_cc(self):
        bfs_g = runners.prepared_graph("webbase-1M", "BFS")
        cc_g = runners.prepared_graph("webbase-1M", "CC")
        assert cc_g.num_edges > bfs_g.num_edges
        from repro.graph.properties import is_symmetric

        assert is_symmetric(cc_g)

    def test_trace_cache_returns_same_object(self):
        t1 = runners.get_trace("delaunay_n13", "BFS")
        t2 = runners.get_trace("delaunay_n13", "BFS")
        assert t1 is t2

    def test_gr_cache_keyed_by_optimization(self):
        r_opt = runners.get_gr("delaunay_n13", "BFS", optimized=True)
        r_unopt = runners.get_gr("delaunay_n13", "BFS", optimized=False)
        assert r_opt is not r_unopt
        assert np.array_equal(r_opt.vertex_values, r_unopt.vertex_values)
        assert runners.get_gr("delaunay_n13", "BFS", optimized=True) is r_opt


class TestLightRunners:
    def test_fig4_structure_and_shape(self):
        data = runners.fig4_transfer(1_000_000)
        assert set(data) == {"sequential", "random"}
        seq = {m: c["seconds"] for m, c in data["sequential"].items()}
        rnd = {m: c["seconds"] for m, c in data["random"].items()}
        assert seq["pinned"] < seq["explicit"]
        assert rnd["explicit"] < rnd["pinned"]

    def test_fig5_structure(self):
        data = runners.fig5_overlap(sizes=(256, 512))
        assert data["sizes"] == [256, 512]
        assert data["speedups"]["compute_transfer"][256] > 1

    def test_table1_rows(self):
        rows = runners.table1_datasets()
        assert len(rows) == 11
        by_name = {r["graph"]: r for r in rows}
        assert not by_name["kron_g500-logn21"]["classified_in_memory"]
        assert by_name["ak2010"]["classified_in_memory"]
        for r in rows:
            assert r["edges"] > 0
            assert r["in_memory_size_mb"] > 0
