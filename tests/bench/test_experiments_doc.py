"""EXPERIMENTS.md renderer over synthetic result files."""

import json
from pathlib import Path

import pytest

from repro.bench.experiments_doc import render


def test_render_without_results_is_skeleton(tmp_path):
    text = render(results_dir=tmp_path)
    assert text.startswith("# EXPERIMENTS")
    assert "Table 1" in text
    assert "Figure 15" in text


def test_render_with_partial_results(tmp_path):
    (tmp_path / "table2_gpu_vs_cpu.json").write_text(
        json.dumps(
            [
                {
                    "graph": "kron_g500-logn20",
                    "speedup": 42.0,
                    "paper_speedup": 388.0,
                },
                {
                    "graph": "belgium_osm",
                    "speedup": 9.0,
                    "paper_speedup": 3.0,
                },
            ]
        )
    )
    text = render(results_dir=tmp_path)
    assert "42.0x" in text
    assert "belgium_osm" in text


def test_render_fig17(tmp_path):
    (tmp_path / "fig17_low_activity.json").write_text(
        json.dumps({"orkut": {"BFS": 70.0, "Pagerank": 50.0, "CC": 40.0}})
    )
    text = render(results_dir=tmp_path)
    assert "| orkut | 70% | 50% | 40% |" in text


def test_full_campaign_renders(tmp_path):
    """With the repo's actual results directory, rendering succeeds and

    includes every section (runs after any benchmark campaign)."""
    from repro.bench.reporting import RESULTS_DIR

    if not (RESULTS_DIR / "table3_outofmem.json").exists():
        pytest.skip("no benchmark campaign results present")
    text = render()
    for section in ("Table 3", "Table 4", "Figure 15", "Ablation"):
        assert section in text
