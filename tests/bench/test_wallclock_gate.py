"""Gate semantics of ``repro bench-wallclock``.

The wall-clock suite itself is timing-dependent, so these tests drive
the gating logic -- speedup floors, direction-variant ratios, and the
CLI's exit codes -- on synthetic measurements.
"""

import argparse

import pytest

from repro import cli
from repro.obs import bench


def _measurement(
    speedup=2.0,
    min_speedup=1.0,
    variants=None,
    min_variant_ratio=0.0,
):
    m = {
        "sim_time": 1.0,
        "memcpy_time": 0.1,
        "kernel_time": 0.5,
        "iterations": 10,
        "phases": {"gather": 0.5},
        "wall_seconds_fast": 0.1,
        "wall_seconds_slow": 0.1 * speedup,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "plan_cache": {"hit_rate": 0.5},
    }
    for name, ratio in (variants or {}).items():
        m[f"wall_seconds_{name}"] = 0.1 * ratio
        m[f"speedup_vs_{name}"] = ratio
    if variants:
        m["min_variant_ratio"] = min_variant_ratio
    return m


class TestFloorFailures:
    def test_passes_above_floor(self):
        fresh = {"case": _measurement(speedup=1.5, min_speedup=1.0)}
        assert bench.floor_failures(fresh) == []

    def test_fails_below_floor(self):
        fresh = {"case": _measurement(speedup=0.8, min_speedup=1.0)}
        assert bench.floor_failures(fresh) == [("case", 0.8, 1.0)]

    def test_zero_floor_never_fails(self):
        # Floors of 0 mark ungated cases (e.g. procpool on 1 core).
        fresh = {"case": _measurement(speedup=0.2, min_speedup=0.0)}
        assert bench.floor_failures(fresh) == []

    def test_variant_ratio_below_floor(self):
        fresh = {
            "road": _measurement(
                speedup=1.6,
                min_speedup=1.3,
                variants={"push": 1.01, "pull": 1.4},
                min_variant_ratio=1.05,
            )
        }
        assert bench.floor_failures(fresh) == [("road[vs_push]", 1.01, 1.05)]

    def test_variant_ratios_above_floor(self):
        fresh = {
            "road": _measurement(
                speedup=1.6,
                min_speedup=1.3,
                variants={"push": 1.2, "pull": 1.3},
                min_variant_ratio=1.05,
            )
        }
        assert bench.floor_failures(fresh) == []

    def test_both_floor_kinds_reported(self):
        fresh = {
            "road": _measurement(
                speedup=1.0,
                min_speedup=1.3,
                variants={"pull": 0.9},
                min_variant_ratio=1.05,
            )
        }
        assert bench.floor_failures(fresh) == [
            ("road", 1.0, 1.3),
            ("road[vs_pull]", 0.9, 1.05),
        ]


class TestCheckWallclock:
    def test_combines_regressions_and_floors(self):
        base = {"case": _measurement()}
        fresh = {"case": dict(_measurement(speedup=0.5), sim_time=2.0)}
        regressions, failures = bench.check_wallclock(base, fresh, tolerance=0.1)
        assert [(r.benchmark, r.metric) for r in regressions] == [("case", "sim_time")]
        assert failures == [("case", 0.5, 1.0)]

    def test_wall_seconds_never_regress_across_machines(self):
        base = {"case": _measurement()}
        fresh = {"case": dict(_measurement(), wall_seconds_fast=99.0)}
        regressions, failures = bench.check_wallclock(base, fresh)
        assert regressions == [] and failures == []


def _args(tmp_path, **overrides):
    ns = argparse.Namespace(
        repeats=1,
        warmup=0,
        shard_store=None,
        memory_budget=None,
        out=None,
        update=False,
        snapshot=str(tmp_path / "BENCH_wallclock.json"),
        tolerance=None,
    )
    for key, val in overrides.items():
        setattr(ns, key, val)
    return ns


@pytest.fixture
def fake_suite(monkeypatch):
    """Replace the timing suite with a canned measurement dict."""

    def install(fresh):
        monkeypatch.setattr(bench, "run_wallclock_suite", lambda **kw: fresh)

    return install


class TestCliGate:
    def test_update_ok_writes_snapshot(self, tmp_path, fake_suite, capsys):
        fake_suite({"case": _measurement(speedup=1.5)})
        args = _args(tmp_path, update=True)
        assert cli.cmd_bench_wallclock(args) == 0
        assert (tmp_path / "BENCH_wallclock.json").exists()

    def test_update_fails_below_floor(self, tmp_path, fake_suite, capsys):
        fake_suite({"case": _measurement(speedup=0.7, min_speedup=1.0)})
        assert cli.cmd_bench_wallclock(_args(tmp_path, update=True)) == 1
        assert "below the" in capsys.readouterr().err

    def test_check_fails_below_floor(self, tmp_path, fake_suite, capsys):
        good = {"case": _measurement(speedup=1.5)}
        bench.save_snapshot(tmp_path / "BENCH_wallclock.json", good)
        fake_suite({"case": _measurement(speedup=0.7, min_speedup=1.0)})
        assert cli.cmd_bench_wallclock(_args(tmp_path)) == 1
        assert "below the" in capsys.readouterr().err

    def test_check_fails_variant_ratio(self, tmp_path, fake_suite, capsys):
        good = {
            "road": _measurement(
                variants={"push": 1.2, "pull": 1.3}, min_variant_ratio=1.05
            )
        }
        bench.save_snapshot(tmp_path / "BENCH_wallclock.json", good)
        fake_suite(
            {
                "road": _measurement(
                    variants={"push": 0.95, "pull": 1.3}, min_variant_ratio=1.05
                )
            }
        )
        assert cli.cmd_bench_wallclock(_args(tmp_path)) == 1
        err = capsys.readouterr().err
        assert "road[vs_push]" in err

    def test_check_ok(self, tmp_path, fake_suite, capsys):
        good = {
            "road": _measurement(
                variants={"push": 1.2, "pull": 1.3}, min_variant_ratio=1.05
            )
        }
        bench.save_snapshot(tmp_path / "BENCH_wallclock.json", good)
        fake_suite(good)
        assert cli.cmd_bench_wallclock(_args(tmp_path)) == 0
        assert "ok:" in capsys.readouterr().out

    def test_missing_snapshot_is_an_error(self, tmp_path, fake_suite, capsys):
        fake_suite({"case": _measurement()})
        assert cli.cmd_bench_wallclock(_args(tmp_path)) == 2
