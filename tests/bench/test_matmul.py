"""Figure-5 matmul harness invariants."""

import pytest

from repro.bench.matmul import SCHEMES, MatmulCase, run_scheme, stripe_ops, sweep


def test_stripe_ops_scale_with_n():
    h2d1, k1, d2h1 = stripe_ops(MatmulCase(n=1000))
    h2d2, k2, d2h2 = stripe_ops(MatmulCase(n=2000))
    assert h2d2 == 2 * h2d1
    assert k2 == pytest.approx(4 * k1)  # stripe flops ~ rows * n^2
    assert d2h1 == h2d1


def test_schemes_ordering():
    case = MatmulCase(n=1024)
    t = {s: run_scheme(case, s) for s in SCHEMES}
    assert t["compute_transfer"] < t["unoptimized"]
    assert t["compute_compute"] <= t["compute_transfer"] + 1e-12


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        run_scheme(MatmulCase(n=64), "magic")


def test_sweep_structure():
    data = sweep([128, 256])
    assert set(data) == set(SCHEMES)
    for scheme in SCHEMES:
        assert set(data[scheme]) == {128, 256}
        assert all(v > 0 for v in data[scheme].values())


def test_compute_compute_gain_shrinks_with_size():
    data = sweep([256, 4096])
    gain = {
        n: data["compute_transfer"][n] / data["compute_compute"][n]
        for n in (256, 4096)
    }
    assert gain[256] >= gain[4096] - 1e-9
