"""Reporting/formatting utilities."""

import json

import pytest

from repro.bench.reporting import format_series, format_table, save_results


def test_format_table_alignment():
    text = format_table(
        "Title", ["col_a", "b"], [["x", 1.0], ["longer", 123456.0]], note="a note"
    )
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "====="
    assert "col_a" in lines[2]
    assert "a note" in text
    # Column alignment: all data rows share the first column width.
    assert lines[4].index("1") == lines[5].index("1.23")


def test_format_table_number_rendering():
    text = format_table("t", ["v"], [[0.000123], [1234567.0], [0.5], [0]])
    assert "0.000123" in text
    assert "1.23e+06" in text
    assert "0.5" in text


def test_sparkline_shapes():
    from repro.bench.reporting import sparkline

    assert sparkline([0, 5, 10], width=3) == " =@"
    assert sparkline([]) == ""
    assert sparkline([0, 0, 0]) == "   "
    # Rise-and-fall shows a peak in the middle.
    line = sparkline([1, 5, 10, 5, 1], width=5)
    assert line[2] == "@"
    assert line[0] == line[4]


def test_sparkline_subsampling():
    from repro.bench.reporting import sparkline

    assert len(sparkline(list(range(1000)), width=40)) == 40


def test_format_series_includes_sparkline():
    from repro.bench.reporting import format_series

    text = format_series("t", {"bfs": [1, 10, 100, 10, 1]})
    assert "|" in text
    assert "peak=100" in text


def test_format_series_subsamples_long_histories():
    text = format_series("s", {"case": list(range(1000))}, max_points=10)
    assert "iterations=1000" in text
    assert "peak=999" in text
    # subsampled: far fewer than 1000 numbers on the data line
    data_line = text.splitlines()[-1]
    assert len(data_line.split()) <= 12


def test_save_results_roundtrip(tmp_path):
    path = save_results("exp", "hello\n", {"a": [1, 2]}, results_dir=tmp_path)
    assert path.read_text() == "hello\n"
    data = json.loads((tmp_path / "exp.json").read_text())
    assert data == {"a": [1, 2]}


def test_save_results_handles_numpy(tmp_path):
    import numpy as np

    save_results("np", "x", {"v": np.float32(1.5)}, results_dir=tmp_path)
    assert json.loads((tmp_path / "np.json").read_text()) == {"v": 1.5}
