"""The calibration ledger must match the live defaults."""

import pytest

from repro.bench.calibration import LEDGER, ledger_by_name, live_values, render


def test_every_ledger_entry_matches_live_default():
    live = live_values()
    for constant in LEDGER:
        assert constant.name in live, f"{constant.name} missing from live_values()"
        assert live[constant.name] == pytest.approx(constant.value), constant.name


def test_every_live_value_is_documented():
    documented = set(ledger_by_name())
    assert set(live_values()) == documented


def test_every_entry_has_derivation():
    for constant in LEDGER:
        assert len(constant.derivation) > 20, constant.name
        assert constant.unit


def test_render_mentions_all():
    text = render()
    for constant in LEDGER:
        assert constant.name in text
