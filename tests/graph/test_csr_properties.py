"""Property tests for the CSR/CSC layouts (hypothesis).

The Graph Layout Engine's contract (Section 4.2): in-edges sorted by
destination, out-edges by source, stably, with ``edge_ids`` mapping
every slot back to the original edge-list position. Random directed
multigraphs (self-loops and parallel edges allowed) must round-trip
through both layouts losslessly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import build_csc, build_csr, ragged_gather, segment_reduce
from repro.graph.edgelist import EdgeList


@st.composite
def edge_lists(draw, max_vertices=40, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    vid = st.integers(min_value=0, max_value=n - 1)
    src = draw(st.lists(vid, min_size=m, max_size=m))
    dst = draw(st.lists(vid, min_size=m, max_size=m))
    return EdgeList(
        n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)
    )


def _row_of_slot(indptr):
    """Row index owning each flat slot."""
    return np.repeat(np.arange(len(indptr) - 1), np.diff(indptr))


class TestRoundTrip:
    @settings(max_examples=100)
    @given(edges=edge_lists())
    def test_csr_recovers_edge_list(self, edges):
        csr = build_csr(edges)
        rows = _row_of_slot(csr.indptr)
        # Every slot maps back to the edge it came from, exactly.
        assert np.array_equal(edges.src[csr.edge_ids], rows)
        assert np.array_equal(edges.dst[csr.edge_ids], csr.indices)
        # edge_ids is a permutation: nothing lost, nothing duplicated.
        assert np.array_equal(np.sort(csr.edge_ids), np.arange(edges.num_edges))

    @settings(max_examples=100)
    @given(edges=edge_lists())
    def test_csc_recovers_edge_list(self, edges):
        csc = build_csc(edges)
        rows = _row_of_slot(csc.indptr)
        assert np.array_equal(edges.dst[csc.edge_ids], rows)
        assert np.array_equal(edges.src[csc.edge_ids], csc.indices)
        assert np.array_equal(np.sort(csc.edge_ids), np.arange(edges.num_edges))

    @settings(max_examples=100)
    @given(edges=edge_lists())
    def test_csc_is_csr_of_transpose(self, edges):
        transpose = EdgeList(edges.num_vertices, edges.dst, edges.src)
        csc = build_csc(edges)
        csr_t = build_csr(transpose)
        assert np.array_equal(csc.indptr, csr_t.indptr)
        assert np.array_equal(csc.indices, csr_t.indices)
        assert np.array_equal(csc.edge_ids, csr_t.edge_ids)


class TestSortInvariants:
    @settings(max_examples=100)
    @given(edges=edge_lists())
    def test_out_edges_sorted_by_source_stably(self, edges):
        csr = build_csr(edges)
        # Sorted by source == slot rows non-decreasing.
        rows = edges.src[csr.edge_ids]
        assert np.all(np.diff(rows) >= 0)
        # Stable: within one source, original edge order is preserved
        # (the invariant the float32 gather-reduction order rests on).
        same_row = np.diff(rows) == 0
        assert np.all(np.diff(csr.edge_ids)[same_row] > 0)
        assert np.array_equal(csr.degrees(), edges.out_degrees())

    @settings(max_examples=100)
    @given(edges=edge_lists())
    def test_in_edges_sorted_by_destination_stably(self, edges):
        csc = build_csc(edges)
        rows = edges.dst[csc.edge_ids]
        assert np.all(np.diff(rows) >= 0)
        same_row = np.diff(rows) == 0
        assert np.all(np.diff(csc.edge_ids)[same_row] > 0)
        assert np.array_equal(csc.degrees(), edges.in_degrees())


class TestRaggedGather:
    @settings(max_examples=100)
    @given(edges=edge_lists(), data=st.data())
    def test_matches_concatenated_slices(self, edges, data):
        csr = build_csr(edges)
        n = edges.num_vertices
        rows = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                max_size=n,
                unique=True,
            ).map(sorted)
        )
        rows = np.array(rows, dtype=np.int64)
        pos, seg = ragged_gather(csr.indptr, rows)
        expected_pos = np.concatenate(
            [np.arange(csr.indptr[r], csr.indptr[r + 1]) for r in rows]
        ) if len(rows) else np.empty(0, dtype=np.int64)
        expected_seg = np.repeat(
            rows, (csr.indptr[rows + 1] - csr.indptr[rows]) if len(rows) else 0
        )
        assert np.array_equal(pos, expected_pos)
        assert np.array_equal(seg, expected_seg)


class TestSegmentReduce:
    @settings(max_examples=100)
    @given(
        segments=st.lists(
            st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=9),
            min_size=0,
            max_size=12,
        )
    )
    def test_matches_per_segment_reduce(self, segments):
        values = np.array(
            [v for seg in segments for v in seg], dtype=np.int64
        )
        starts = np.cumsum([0] + [len(s) for s in segments[:-1]], dtype=np.int64)
        for ufunc in (np.add, np.minimum, np.maximum):
            out = segment_reduce(ufunc, values, starts[: len(segments)])
            expected = np.array(
                [ufunc.reduce(np.array(s, dtype=np.int64)) for s in segments],
                dtype=np.int64,
            )
            assert np.array_equal(out, expected)
