"""CSR/CSC builders, ragged gather and segment reduce."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSR, build_csc, build_csr, ragged_gather, segment_reduce
from repro.graph.edgelist import EdgeList
from repro.graph.generators import erdos_renyi


def small_graph():
    return EdgeList.from_pairs([(0, 1), (0, 2), (2, 1), (1, 0), (2, 0)])


def test_csr_rows_are_out_neighbors():
    csr = build_csr(small_graph())
    assert sorted(csr.neighbors(0).tolist()) == [1, 2]
    assert csr.neighbors(1).tolist() == [0]
    assert sorted(csr.neighbors(2).tolist()) == [0, 1]
    assert csr.num_edges == 5


def test_csc_rows_are_in_neighbors():
    csc = build_csc(small_graph())
    assert sorted(csc.neighbors(0).tolist()) == [1, 2]
    assert sorted(csc.neighbors(1).tolist()) == [0, 2]
    assert csc.neighbors(2).tolist() == [0]


def test_edge_ids_map_back_to_edge_list():
    g = small_graph()
    csr = build_csr(g)
    for v in range(g.num_vertices):
        lo, hi = csr.indptr[v], csr.indptr[v + 1]
        for slot in range(lo, hi):
            eid = csr.edge_ids[slot]
            assert g.src[eid] == v
            assert g.dst[eid] == csr.indices[slot]


def test_csc_edge_ids_map_back():
    g = small_graph()
    csc = build_csc(g)
    for v in range(g.num_vertices):
        lo, hi = csc.indptr[v], csc.indptr[v + 1]
        for slot in range(lo, hi):
            eid = csc.edge_ids[slot]
            assert g.dst[eid] == v
            assert g.src[eid] == csc.indices[slot]


def test_row_slice_rebases():
    csr = build_csr(small_graph())
    sub = csr.row_slice(1, 3)
    assert sub.num_rows == 2
    assert sub.indptr[0] == 0
    assert sub.num_edges == csr.indptr[3] - csr.indptr[1]
    assert sub.neighbors(0).tolist() == csr.neighbors(1).tolist()


def test_degrees_match_edgelist():
    g = erdos_renyi(50, 200, seed=7)
    assert np.array_equal(build_csr(g).degrees(), g.out_degrees())
    assert np.array_equal(build_csc(g).degrees(), g.in_degrees())


def test_invalid_csr_rejected():
    with pytest.raises(ValueError):
        CSR(np.array([1, 2]), np.array([0]), np.array([0]))  # indptr[0] != 0
    with pytest.raises(ValueError):
        CSR(np.array([0, 2, 1]), np.array([0, 1]), np.array([0, 1]))  # decreasing
    with pytest.raises(ValueError):
        CSR(np.array([0, 3]), np.array([0, 1]), np.array([0, 1]))  # size mismatch


def test_ragged_gather_basics():
    indptr = np.array([0, 2, 2, 5], dtype=np.int64)
    pos, seg = ragged_gather(indptr, np.array([0, 2]))
    assert pos.tolist() == [0, 1, 2, 3, 4]
    assert seg.tolist() == [0, 0, 2, 2, 2]


def test_ragged_gather_empty_selection():
    indptr = np.array([0, 2, 4], dtype=np.int64)
    pos, seg = ragged_gather(indptr, np.array([], dtype=np.int64))
    assert len(pos) == 0 and len(seg) == 0


def test_ragged_gather_all_empty_rows():
    indptr = np.array([0, 0, 0, 5], dtype=np.int64)
    pos, seg = ragged_gather(indptr, np.array([0, 1]))
    assert len(pos) == 0


def test_ragged_gather_skips_empty_rows_between():
    indptr = np.array([0, 2, 2, 5], dtype=np.int64)
    pos, seg = ragged_gather(indptr, np.array([0, 1, 2]))
    assert pos.tolist() == [0, 1, 2, 3, 4]
    assert seg.tolist() == [0, 0, 2, 2, 2]


@settings(max_examples=50, deadline=None)
@given(
    degrees=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=30),
    data=st.data(),
)
def test_ragged_gather_matches_python_loop(degrees, data):
    indptr = np.zeros(len(degrees) + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    rows = data.draw(
        st.lists(st.integers(min_value=0, max_value=len(degrees) - 1), max_size=20)
    )
    rows = np.array(rows, dtype=np.int64)
    pos, seg = ragged_gather(indptr, rows)
    expect_pos, expect_seg = [], []
    for r in rows:
        for p in range(indptr[r], indptr[r + 1]):
            expect_pos.append(p)
            expect_seg.append(r)
    assert pos.tolist() == expect_pos
    assert seg.tolist() == expect_seg


def test_segment_reduce_sum_and_min():
    vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    starts = np.array([0, 2, 3])
    assert segment_reduce(np.add, vals, starts).tolist() == [3.0, 3.0, 9.0]
    assert segment_reduce(np.minimum, vals, starts).tolist() == [1.0, 3.0, 4.0]


def test_segment_reduce_empty_values():
    out = segment_reduce(np.add, np.empty(0), np.empty(0, dtype=np.int64))
    assert len(out) == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=5),
        min_size=1,
        max_size=20,
    )
)
def test_segment_reduce_matches_per_segment_sum(segments):
    vals = np.array([v for seg in segments for v in seg])
    starts = np.cumsum([0] + [len(s) for s in segments[:-1]]).astype(np.int64)
    got = segment_reduce(np.add, vals, starts)
    want = [sum(s) for s in segments]
    np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-9)
