"""Dynamic graph streams, incremental warm starts, and relabeling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BFSGather, ConnectedComponents, PageRank, SSSP
from repro.core.runtime import GraphReduce
from repro.graph.dynamic import DynamicGraphStream, EdgeBatch, incremental_program
from repro.graph.edgelist import EdgeList
from repro.graph.generators import erdos_renyi, mesh2d, rmat, road_network
from repro.graph.relabel import (
    apply_order,
    bfs_order,
    degree_order,
    partition_locality,
    random_order,
    unmap_values,
)


class TestDynamicStream:
    def make_stream(self, seed=0):
        g = erdos_renyi(100, 400, seed=seed)
        rng = np.random.default_rng(seed + 1)
        stream = DynamicGraphStream(g)
        for _ in range(3):
            m = 50
            stream.append(EdgeBatch(rng.integers(0, 100, m), rng.integers(0, 100, m)))
        return stream

    def test_snapshots_grow(self):
        stream = self.make_stream()
        sizes = [stream.snapshot(i).num_edges for i in range(4)]
        assert sizes == sorted(sizes)
        assert sizes[0] <= 400  # dedup may trim the base too

    def test_snapshot_bounds(self):
        stream = self.make_stream()
        with pytest.raises(IndexError):
            stream.snapshot(4)

    def test_batch_validation(self):
        g = erdos_renyi(10, 20, seed=1)
        stream = DynamicGraphStream(g)
        with pytest.raises(ValueError):
            stream.append(EdgeBatch(np.array([3]), np.array([99])))
        with pytest.raises(ValueError):
            EdgeBatch(np.array([1, 2]), np.array([1]))

    def test_weighted_stream_requires_weighted_batches(self):
        g = erdos_renyi(10, 20, seed=2).with_unit_weights()
        stream = DynamicGraphStream(g)
        stream.append(EdgeBatch(np.array([1]), np.array([2])))
        with pytest.raises(ValueError, match="weighted"):
            stream.snapshot(1)


class TestIncrementalWarmStart:
    @pytest.mark.parametrize("prog_factory", [
        lambda: BFSGather(source=0),
        lambda: ConnectedComponents(),
    ])
    def test_warm_start_equals_from_scratch(self, prog_factory):
        g0 = erdos_renyi(200, 600, seed=3)
        rng = np.random.default_rng(4)
        batch = EdgeBatch(rng.integers(0, 200, 80), rng.integers(0, 200, 80))
        stream = DynamicGraphStream(g0, [batch])

        base = GraphReduce(stream.snapshot(0)).run(prog_factory())
        g1 = stream.snapshot(1)
        scratch = GraphReduce(g1).run(prog_factory())
        inc_prog = incremental_program(prog_factory(), base.vertex_values, batch)
        warm = GraphReduce(g1).run(inc_prog)
        assert np.array_equal(warm.vertex_values, scratch.vertex_values)

    def test_warm_start_converges_faster(self):
        g0 = rmat(10, 8000, seed=5)
        batch = EdgeBatch(np.array([1, 2, 3]), np.array([4, 5, 6]))
        stream = DynamicGraphStream(g0, [batch])
        base = GraphReduce(stream.snapshot(0)).run(BFSGather(source=0))
        g1 = stream.snapshot(1)
        scratch = GraphReduce(g1).run(BFSGather(source=0))
        warm = GraphReduce(g1).run(
            incremental_program(BFSGather(source=0), base.vertex_values, batch)
        )
        assert warm.iterations <= scratch.iterations
        assert np.array_equal(warm.vertex_values, scratch.vertex_values)

    def test_sssp_incremental(self):
        g0 = erdos_renyi(150, 500, seed=6).with_random_weights(seed=7)
        rng = np.random.default_rng(8)
        batch = EdgeBatch(
            rng.integers(0, 150, 30),
            rng.integers(0, 150, 30),
            rng.uniform(1, 10, 30).astype(np.float32),
        )
        stream = DynamicGraphStream(g0, [batch])
        base = GraphReduce(stream.snapshot(0)).run(SSSP(source=0))
        g1 = stream.snapshot(1)
        scratch = GraphReduce(g1).run(SSSP(source=0))
        warm = GraphReduce(g1).run(
            incremental_program(SSSP(source=0), base.vertex_values, batch)
        )
        np.testing.assert_allclose(
            warm.vertex_values, scratch.vertex_values, rtol=1e-5, atol=1e-5
        )

    def test_non_monotone_rejected(self):
        batch = EdgeBatch(np.array([0]), np.array([1]))
        with pytest.raises(TypeError, match="monotone"):
            incremental_program(PageRank(), np.zeros(5), batch)

    def test_apply_only_rejected(self):
        from repro.algorithms import BFS

        batch = EdgeBatch(np.array([0]), np.array([1]))
        with pytest.raises(TypeError, match="gather"):
            incremental_program(BFS(source=0), np.zeros(5), batch)


class TestRelabel:
    def test_apply_order_roundtrip(self):
        g = erdos_renyi(60, 200, seed=9)
        order = random_order(g, seed=10)
        relabeled, new_id_of = apply_order(g, order)
        # Every original edge exists under new ids.
        orig = set(zip(g.src.tolist(), g.dst.tolist()))
        new = set(zip(relabeled.src.tolist(), relabeled.dst.tolist()))
        assert {(new_id_of[s], new_id_of[d]) for s, d in orig} == new

    def test_invalid_order_rejected(self):
        g = erdos_renyi(10, 20, seed=11)
        with pytest.raises(ValueError):
            apply_order(g, np.zeros(10, dtype=np.int64))

    def test_unmap_values_inverts(self):
        g = erdos_renyi(40, 150, seed=12).symmetrized()
        order = degree_order(g)
        relabeled, new_id_of = apply_order(g, order)
        labels_new = GraphReduce(relabeled).run(ConnectedComponents()).vertex_values
        labels_orig = GraphReduce(g).run(ConnectedComponents()).vertex_values
        mapped = unmap_values(labels_new, new_id_of)
        # Component *partitions* agree (label values differ by naming).
        for e in range(g.num_edges):
            u, v = int(g.src[e]), int(g.dst[e])
            assert (mapped[u] == mapped[v]) == (labels_orig[u] == labels_orig[v])

    def test_bfs_order_visits_levels_contiguously(self):
        g = mesh2d(6, 6)
        order = bfs_order(g, source=0)
        assert sorted(order.tolist()) == list(range(36))
        assert order[0] == 0
        # Neighbors of the source come right after it.
        first = set(order[1:3].tolist())
        assert first == {1, 6}

    def test_degree_order_puts_hubs_first(self):
        g = rmat(9, 3000, seed=13)
        order = degree_order(g)
        deg = g.out_degrees() + g.in_degrees()
        assert deg[order[0]] == deg.max()

    def test_bfs_order_improves_road_locality(self):
        g = road_network(40, 40, 60, seed=14)
        shuffled, _ = apply_order(g, random_order(g, seed=15))
        reordered, _ = apply_order(shuffled, bfs_order(shuffled, source=0))
        assert partition_locality(reordered, 16) > partition_locality(shuffled, 16)

    def test_partition_locality_bounds(self):
        g = erdos_renyi(50, 200, seed=16)
        loc = partition_locality(g, 8)
        assert 0.0 <= loc <= 1.0
        empty = EdgeList.from_pairs([], num_vertices=4)
        assert partition_locality(empty, 2) == 1.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_relabeling_preserves_bfs_distances(self, seed):
        from repro.algorithms import BFS

        g = erdos_renyi(50, 180, seed=seed)
        order = random_order(g, seed=seed + 1)
        relabeled, new_id_of = apply_order(g, order)
        d_orig = GraphReduce(g).run(BFS(source=0)).vertex_values
        d_new = GraphReduce(relabeled).run(BFS(source=int(new_id_of[0]))).vertex_values
        assert np.array_equal(unmap_values(d_new, new_id_of), d_orig)
