"""Graph I/O round-trips and the dataset registry contract."""

import io

import numpy as np
import pytest

from repro.graph.datasets import DATASETS, IN_MEMORY_TABLE4, OUT_OF_MEMORY, TABLE2, load_dataset
from repro.graph.edgelist import EdgeList
from repro.graph.generators import erdos_renyi
from repro.graph.io import (
    load_edgelist_txt,
    load_matrix_market,
    load_npz,
    save_edgelist_txt,
    save_npz,
)


class TestIO:
    def test_txt_roundtrip(self, tmp_path):
        g = erdos_renyi(30, 100, seed=1).with_random_weights(seed=2)
        path = tmp_path / "g.txt"
        save_edgelist_txt(g, path)
        h = load_edgelist_txt(path, num_vertices=30)
        assert np.array_equal(g.src, h.src)
        assert np.array_equal(g.dst, h.dst)
        np.testing.assert_allclose(g.weights, h.weights, rtol=1e-5)

    def test_txt_unweighted_and_comments(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n% other comment\n0 1\n1 2\n\n")
        g = load_edgelist_txt(path)
        assert g.num_edges == 2
        assert g.weights is None
        assert g.num_vertices == 3

    def test_txt_inconsistent_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n1 2 3.0\n")
        with pytest.raises(ValueError):
            load_edgelist_txt(path)

    def test_txt_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = load_edgelist_txt(path, num_vertices=4)
        assert g.num_edges == 0 and g.num_vertices == 4

    def test_npz_roundtrip(self, tmp_path):
        g = erdos_renyi(30, 80, seed=3).symmetrized()
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert h.undirected
        assert np.array_equal(g.src, h.src)
        assert h.num_vertices == 30

    def test_npz_small_ids_stored_uint32(self, tmp_path):
        g = erdos_renyi(30, 80, seed=4).with_random_weights(seed=5)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        with np.load(path) as data:
            assert data["src"].dtype == np.uint32
            assert data["dst"].dtype == np.uint32
        h = load_npz(path)
        assert h.src.dtype == g.src.dtype  # coerced back to the vid dtype
        assert np.array_equal(g.src, h.src)
        assert np.array_equal(g.dst, h.dst)
        assert np.array_equal(g.weights, h.weights)  # npz is bit-exact

    def test_npz_ids_straddling_2_32_roundtrip(self, tmp_path):
        n = 2**32 + 8
        src = np.array([2**32 + 5, 2, 2**32 + 1], dtype=np.int64)
        dst = np.array([1, 2**32 + 3, 0], dtype=np.int64)
        g = EdgeList(n, src, dst, name="huge")
        assert g.src.dtype == np.int64
        path = tmp_path / "huge.npz"
        save_npz(g, path)
        with np.load(path) as data:
            assert data["src"].dtype == np.int64  # uint32 would truncate
        h = load_npz(path)
        assert h.num_vertices == n
        assert h.src.dtype == np.int64
        assert np.array_equal(g.src, h.src)
        assert np.array_equal(g.dst, h.dst)

    def test_npz_wide_graph_small_ids_still_downcast(self, tmp_path):
        # Vertex count above int32 but every endpoint below 2**32: the
        # ids downcast to uint32 on disk and come back as int64.
        n = 2**33
        g = EdgeList(n, np.array([0, 2**31]), np.array([2**32 - 1, 1]), name="wide")
        path = tmp_path / "wide.npz"
        save_npz(g, path)
        with np.load(path) as data:
            assert data["src"].dtype == np.uint32
        h = load_npz(path)
        assert h.src.dtype == np.int64
        assert np.array_equal(g.src, h.src)
        assert np.array_equal(g.dst, h.dst)

    def test_txt_chunked_reader_matches_whole_file(self, tmp_path, monkeypatch):
        import repro.graph.io as gio

        g = erdos_renyi(40, 200, seed=6).with_random_weights(seed=7)
        path = tmp_path / "g.txt"
        save_edgelist_txt(g, path)
        whole = load_edgelist_txt(path, num_vertices=40)
        # 7 does not divide 200: forces many chunks plus a ragged tail.
        monkeypatch.setattr(gio, "TXT_CHUNK_LINES", 7)
        chunked = load_edgelist_txt(path, num_vertices=40)
        assert np.array_equal(whole.src, chunked.src)
        assert np.array_equal(whole.dst, chunked.dst)
        assert np.array_equal(whole.weights, chunked.weights)

    def test_iter_edge_chunks_concatenates_to_full_load(self, tmp_path):
        from repro.graph.io import iter_edge_chunks

        g = erdos_renyi(30, 101, seed=8).with_random_weights(seed=9)
        for suffix, save in (("txt", save_edgelist_txt), ("npz", save_npz)):
            path = tmp_path / f"g.{suffix}"
            save(g, path)
            chunks = list(iter_edge_chunks(path, chunk_edges=13))
            assert len(chunks) == -(-g.num_edges // 13)
            src = np.concatenate([c[0] for c in chunks])
            dst = np.concatenate([c[1] for c in chunks])
            w = np.concatenate([c[2] for c in chunks])
            assert np.array_equal(src, g.src.astype(np.int64)), suffix
            assert np.array_equal(dst, g.dst.astype(np.int64)), suffix
            if suffix == "npz":
                assert np.array_equal(w, g.weights)
            else:
                np.testing.assert_allclose(w, g.weights, rtol=1e-5)

    def test_iter_edge_chunks_unweighted(self, tmp_path):
        from repro.graph.io import iter_edge_chunks

        g = erdos_renyi(20, 50, seed=10)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        for _src, _dst, w in iter_edge_chunks(path, chunk_edges=16):
            assert w is None

    def test_matrix_market_general_real(self):
        buf = io.StringIO(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "3 3 2\n"
            "1 2 5.0\n"
            "3 1 7.0\n"
        )
        g = load_matrix_market(buf)
        assert g.num_vertices == 3
        assert set(zip(g.src.tolist(), g.dst.tolist())) == {(0, 1), (2, 0)}
        assert sorted(g.weights.tolist()) == [5.0, 7.0]

    def test_matrix_market_symmetric_pattern(self):
        buf = io.StringIO(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 2\n"
            "2 1\n"
            "3 2\n"
        )
        g = load_matrix_market(buf)
        assert g.undirected
        assert g.num_edges == 4

    def test_matrix_market_rejects_unsupported(self):
        with pytest.raises(ValueError):
            load_matrix_market(io.StringIO("%%MatrixMarket matrix array real general\n"))
        with pytest.raises(ValueError):
            load_matrix_market(io.StringIO("not a header\n"))
        with pytest.raises(ValueError):
            load_matrix_market(
                io.StringIO("%%MatrixMarket matrix coordinate complex general\n1 1 0\n")
            )


class TestDatasets:
    def test_registry_names(self):
        assert set(IN_MEMORY_TABLE4) <= set(DATASETS)
        assert set(OUT_OF_MEMORY) <= set(DATASETS)
        assert set(TABLE2) <= set(DATASETS)
        assert len(OUT_OF_MEMORY) == 5

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("yahoo-web")

    def test_cache_returns_same_object(self):
        a = load_dataset("delaunay_n13")
        b = load_dataset("delaunay_n13")
        assert a is b
        c = load_dataset("delaunay_n13", cache=False)
        assert c is not a
        assert c.num_edges == a.num_edges

    def test_small_entries_build_and_classify(self):
        """Full classification of every dataset is covered by the
        integration suite; here, spot-check the cheap ones."""
        from repro.graph.properties import footprint_bytes
        from repro.sim.specs import DeviceSpec

        cap = DeviceSpec().memory_bytes
        for name in ("delaunay_n13", "ak2010"):
            info = DATASETS[name]
            g = load_dataset(name)
            assert isinstance(g, EdgeList)
            assert (footprint_bytes(g) <= cap) == info.in_memory
            assert g.undirected == info.undirected
