"""EdgeList construction, validation and transformations."""

import numpy as np
import pytest

from repro.graph.edgelist import EdgeList


def test_from_pairs_infers_vertex_count():
    g = EdgeList.from_pairs([(0, 1), (1, 2), (2, 0)])
    assert g.num_vertices == 3
    assert g.num_edges == 3


def test_empty_graph():
    g = EdgeList.from_pairs([], num_vertices=5)
    assert g.num_edges == 0
    assert g.out_degrees().tolist() == [0] * 5


def test_out_of_range_endpoint_rejected():
    with pytest.raises(ValueError):
        EdgeList.from_pairs([(0, 3)], num_vertices=3)
    with pytest.raises(ValueError):
        EdgeList(2, np.array([-1]), np.array([0]))


def test_mismatched_arrays_rejected():
    with pytest.raises(ValueError):
        EdgeList(3, np.array([0, 1]), np.array([1]))
    with pytest.raises(ValueError):
        EdgeList(3, np.array([0]), np.array([1]), weights=np.array([1.0, 2.0]))


def test_degrees():
    g = EdgeList.from_pairs([(0, 1), (0, 2), (1, 2)])
    assert g.out_degrees().tolist() == [2, 1, 0]
    assert g.in_degrees().tolist() == [0, 1, 2]


def test_symmetrized_doubles_and_marks_undirected():
    g = EdgeList.from_pairs([(0, 1), (1, 2)])
    s = g.symmetrized()
    assert s.undirected
    assert s.num_edges == 4
    pairs = set(zip(s.src.tolist(), s.dst.tolist()))
    assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}


def test_symmetrized_dedups_existing_reverse():
    g = EdgeList.from_pairs([(0, 1), (1, 0)])
    assert g.symmetrized().num_edges == 2


def test_deduplicated_removes_self_loops_and_parallels():
    g = EdgeList.from_pairs([(0, 1), (0, 1), (1, 1), (1, 2)])
    d = g.deduplicated()
    assert d.num_edges == 2
    pairs = set(zip(d.src.tolist(), d.dst.tolist()))
    assert pairs == {(0, 1), (1, 2)}


def test_deduplicated_keeps_first_weight():
    g = EdgeList.from_pairs([(0, 1), (0, 1)], weights=[5.0, 9.0])
    d = g.deduplicated()
    assert d.weights.tolist() == [5.0]


def test_unit_and_random_weights():
    g = EdgeList.from_pairs([(0, 1), (1, 2)])
    assert g.with_unit_weights().weights.tolist() == [1.0, 1.0]
    w = g.with_random_weights(low=1.0, high=10.0, seed=3).weights
    assert np.all(w >= 1.0) and np.all(w < 10.0)
    w2 = g.with_random_weights(low=1.0, high=10.0, seed=3).weights
    assert np.array_equal(w, w2)  # deterministic


def test_permuted_preserves_multiset():
    g = EdgeList.from_pairs([(0, 1), (1, 2), (2, 3)], weights=[1.0, 2.0, 3.0])
    p = g.permuted(seed=1)
    orig = sorted(zip(g.src.tolist(), g.dst.tolist(), g.weights.tolist()))
    perm = sorted(zip(p.src.tolist(), p.dst.tolist(), p.weights.tolist()))
    assert orig == perm


def test_dtypes_are_compact():
    g = EdgeList.from_pairs([(0, 1)], weights=[1.0])
    assert g.src.dtype == np.int32
    assert g.weights.dtype == np.float32
