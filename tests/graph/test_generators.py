"""Generator family properties: the structure Table 1 relies on."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.properties import degree_stats, estimate_diameter, is_symmetric, num_components


def test_rmat_counts_and_determinism():
    g1 = gen.rmat(10, 5000, seed=3)
    g2 = gen.rmat(10, 5000, seed=3)
    assert g1.num_vertices == 1024
    assert g1.num_edges == 5000
    assert np.array_equal(g1.src, g2.src) and np.array_equal(g1.dst, g2.dst)
    g3 = gen.rmat(10, 5000, seed=4)
    assert not np.array_equal(g1.src, g3.src)


def test_rmat_is_simple():
    g = gen.rmat(9, 3000, seed=1)
    assert np.all(g.src != g.dst)
    key = g.src.astype(np.int64) * g.num_vertices + g.dst
    assert len(np.unique(key)) == g.num_edges


def test_rmat_is_skewed():
    g = gen.rmat(12, 40_000, seed=5)
    stats = degree_stats(g)
    assert stats.max_out > 20 * stats.avg_degree  # heavy tail


def test_rmat_rejects_impossible_request():
    with pytest.raises(ValueError):
        gen.rmat(2, 100)
    with pytest.raises(ValueError):
        gen.rmat(4, 10, a=0.9, b=0.2, c=0.2)


def test_kronecker_edge_factor():
    g = gen.kronecker(8, 4.0, seed=2)
    assert g.num_edges == 1024


def test_mesh3d_structure():
    g = gen.mesh3d(5, 5, 5)
    assert g.num_vertices == 125
    assert is_symmetric(g)
    stats = degree_stats(g)
    assert stats.max_out == 26  # interior vertex full stencil
    assert num_components(g) == 1
    # central vertex has all 26 neighbors; corner has 7
    assert np.sort(g.out_degrees())[0] == 7


def test_mesh2d_structure():
    g = gen.mesh2d(4, 6)
    assert g.num_vertices == 24
    assert is_symmetric(g)
    assert g.num_edges == 2 * (3 * 6 + 4 * 5)
    assert num_components(g) == 1


def test_mesh_has_large_diameter():
    g = gen.mesh2d(16, 16)
    k = gen.rmat(8, g.num_edges, seed=1)
    assert estimate_diameter(g) > 2 * estimate_diameter(k)


def test_banded_locality():
    g = gen.banded(500, 10, 8, seed=6)
    assert np.all(np.abs(g.src.astype(int) - g.dst.astype(int)) <= 10)
    assert np.all(g.src != g.dst)
    stats = degree_stats(g)
    assert stats.max_out <= 8


def test_banded_validation():
    with pytest.raises(ValueError):
        gen.banded(10, 0, 1)
    with pytest.raises(ValueError):
        gen.banded(10, 2, 5)


def test_road_network_is_connected_tree_plus_shortcuts():
    g = gen.road_network(20, 25, 30, seed=7)
    assert g.num_vertices == 500
    assert is_symmetric(g)
    assert num_components(g) == 1
    stats = degree_stats(g)
    assert stats.avg_degree < 5  # sparse like a road network
    # Diameter far larger than a random graph of the same size.
    assert estimate_diameter(g) > 15


def test_delaunay_graph_is_planarish():
    g = gen.delaunay_graph(300, seed=8)
    assert is_symmetric(g)
    assert num_components(g) == 1
    # Planar: undirected edge count <= 3n - 6.
    assert g.num_edges / 2 <= 3 * 300 - 6


def test_planar_like_hits_edge_target():
    g = gen.planar_like(300, 500, seed=9)
    assert g.num_edges == 1000  # stored directed
    assert is_symmetric(g)


def test_social_and_coauthor_are_symmetric():
    for fn in (gen.social_graph, gen.coauthor_graph):
        g = fn(10, 3000, seed=10)
        assert is_symmetric(g)
        assert g.undirected


def test_erdos_renyi_exact_count():
    g = gen.erdos_renyi(100, 1000, seed=11)
    assert g.num_edges == 1000
    key = g.src.astype(np.int64) * 100 + g.dst
    assert len(np.unique(key)) == 1000


def test_simple_families():
    p = gen.path_graph(5)
    assert p.num_edges == 4
    c = gen.cycle_graph(5)
    assert c.num_edges == 5
    s = gen.star_graph(6)
    assert s.out_degrees()[0] == 5
    k = gen.complete_graph(4)
    assert k.num_edges == 12
    assert is_symmetric(k)


def test_grid_road_determinism_and_symmetry():
    a = gen.grid_road(12, 9, 0.2, seed=4)
    b = gen.grid_road(12, 9, 0.2, seed=4)
    assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)
    assert is_symmetric(a)
    assert a.undirected
    assert a.num_vertices == 12 * 9
    c = gen.grid_road(12, 9, 0.2, seed=5)
    assert not (
        a.num_edges == c.num_edges
        and np.array_equal(a.src, c.src)
        and np.array_equal(a.dst, c.dst)
    )


def test_grid_road_degree_bound():
    # 4 lattice neighbors + at most one diagonal per surrounding square.
    g = gen.grid_road(15, 15, 1.0, seed=0)  # every square gets a diagonal
    assert int(g.out_degrees().max()) <= 8
    assert int(g.in_degrees().max()) <= 8


def test_grid_road_diameter_bounds():
    from tests.references import bfs_levels

    rows, cols = 14, 9
    for frac in (0.0, 0.3, 1.0):
        g = gen.grid_road(rows, cols, frac, seed=2)
        levels = bfs_levels(g, 0)
        assert np.isfinite(levels).all()  # connected
        ecc = int(levels.max())
        # Every edge (diagonals included) is one Chebyshev step; the
        # lattice walks the Manhattan distance.
        assert max(rows, cols) - 1 <= ecc <= rows + cols - 2


def test_grid_road_edge_counts():
    rows, cols = 10, 10
    lattice = rows * (cols - 1) + cols * (rows - 1)
    none = gen.grid_road(rows, cols, 0.0, seed=0)
    assert none.num_edges == 2 * lattice  # symmetrized storage
    full = gen.grid_road(rows, cols, 1.0, seed=0)
    assert full.num_edges == 2 * (lattice + (rows - 1) * (cols - 1))


def test_grid_road_validation():
    with pytest.raises(ValueError, match="2x2"):
        gen.grid_road(1, 5)
    with pytest.raises(ValueError, match="diagonal_fraction"):
        gen.grid_road(4, 4, 1.5)


def test_grid_road_highways_deterministic_overlay():
    base = gen.grid_road(12, 9, 0.2, seed=4)
    a = gen.grid_road(12, 9, 0.2, seed=4, highways=50)
    b = gen.grid_road(12, 9, 0.2, seed=4, highways=50)
    assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)
    # Strictly more edges than the street grid, bounded by the overlay
    # size (self-loops dropped, duplicates deduped, symmetrized).
    assert base.num_edges < a.num_edges <= base.num_edges + 2 * 50
    # The overlay leaves the street grid intact: every base edge is
    # still present.
    pairs = set(zip(a.src.tolist(), a.dst.tolist()))
    assert all((s, d) in pairs for s, d in zip(base.src.tolist(), base.dst.tolist()))


def test_grid_road_highways_shrink_diameter():
    from tests.references import bfs_levels

    rows, cols = 20, 20
    local = gen.grid_road(rows, cols, 0.2, seed=3)
    overlay = gen.grid_road(rows, cols, 0.2, seed=3, highways=300)
    assert np.isfinite(bfs_levels(overlay, 0)).all()  # still connected
    assert int(bfs_levels(overlay, 0).max()) < int(bfs_levels(local, 0).max())


def test_grid_road_highways_validation():
    with pytest.raises(ValueError, match="highways"):
        gen.grid_road(4, 4, 0.2, highways=-1)
