"""Generator family properties: the structure Table 1 relies on."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.properties import degree_stats, estimate_diameter, is_symmetric, num_components


def test_rmat_counts_and_determinism():
    g1 = gen.rmat(10, 5000, seed=3)
    g2 = gen.rmat(10, 5000, seed=3)
    assert g1.num_vertices == 1024
    assert g1.num_edges == 5000
    assert np.array_equal(g1.src, g2.src) and np.array_equal(g1.dst, g2.dst)
    g3 = gen.rmat(10, 5000, seed=4)
    assert not np.array_equal(g1.src, g3.src)


def test_rmat_is_simple():
    g = gen.rmat(9, 3000, seed=1)
    assert np.all(g.src != g.dst)
    key = g.src.astype(np.int64) * g.num_vertices + g.dst
    assert len(np.unique(key)) == g.num_edges


def test_rmat_is_skewed():
    g = gen.rmat(12, 40_000, seed=5)
    stats = degree_stats(g)
    assert stats.max_out > 20 * stats.avg_degree  # heavy tail


def test_rmat_rejects_impossible_request():
    with pytest.raises(ValueError):
        gen.rmat(2, 100)
    with pytest.raises(ValueError):
        gen.rmat(4, 10, a=0.9, b=0.2, c=0.2)


def test_kronecker_edge_factor():
    g = gen.kronecker(8, 4.0, seed=2)
    assert g.num_edges == 1024


def test_mesh3d_structure():
    g = gen.mesh3d(5, 5, 5)
    assert g.num_vertices == 125
    assert is_symmetric(g)
    stats = degree_stats(g)
    assert stats.max_out == 26  # interior vertex full stencil
    assert num_components(g) == 1
    # central vertex has all 26 neighbors; corner has 7
    assert np.sort(g.out_degrees())[0] == 7


def test_mesh2d_structure():
    g = gen.mesh2d(4, 6)
    assert g.num_vertices == 24
    assert is_symmetric(g)
    assert g.num_edges == 2 * (3 * 6 + 4 * 5)
    assert num_components(g) == 1


def test_mesh_has_large_diameter():
    g = gen.mesh2d(16, 16)
    k = gen.rmat(8, g.num_edges, seed=1)
    assert estimate_diameter(g) > 2 * estimate_diameter(k)


def test_banded_locality():
    g = gen.banded(500, 10, 8, seed=6)
    assert np.all(np.abs(g.src.astype(int) - g.dst.astype(int)) <= 10)
    assert np.all(g.src != g.dst)
    stats = degree_stats(g)
    assert stats.max_out <= 8


def test_banded_validation():
    with pytest.raises(ValueError):
        gen.banded(10, 0, 1)
    with pytest.raises(ValueError):
        gen.banded(10, 2, 5)


def test_road_network_is_connected_tree_plus_shortcuts():
    g = gen.road_network(20, 25, 30, seed=7)
    assert g.num_vertices == 500
    assert is_symmetric(g)
    assert num_components(g) == 1
    stats = degree_stats(g)
    assert stats.avg_degree < 5  # sparse like a road network
    # Diameter far larger than a random graph of the same size.
    assert estimate_diameter(g) > 15


def test_delaunay_graph_is_planarish():
    g = gen.delaunay_graph(300, seed=8)
    assert is_symmetric(g)
    assert num_components(g) == 1
    # Planar: undirected edge count <= 3n - 6.
    assert g.num_edges / 2 <= 3 * 300 - 6


def test_planar_like_hits_edge_target():
    g = gen.planar_like(300, 500, seed=9)
    assert g.num_edges == 1000  # stored directed
    assert is_symmetric(g)


def test_social_and_coauthor_are_symmetric():
    for fn in (gen.social_graph, gen.coauthor_graph):
        g = fn(10, 3000, seed=10)
        assert is_symmetric(g)
        assert g.undirected


def test_erdos_renyi_exact_count():
    g = gen.erdos_renyi(100, 1000, seed=11)
    assert g.num_edges == 1000
    key = g.src.astype(np.int64) * 100 + g.dst
    assert len(np.unique(key)) == 1000


def test_simple_families():
    p = gen.path_graph(5)
    assert p.num_edges == 4
    c = gen.cycle_graph(5)
    assert c.num_edges == 5
    s = gen.star_graph(6)
    assert s.out_degrees()[0] == 5
    k = gen.complete_graph(4)
    assert k.num_edges == 12
    assert is_symmetric(k)
