"""Property-based tests on algorithm invariants (hypothesis-driven)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import BFS, SSSP, ConnectedComponents, PageRank
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.edgelist import EdgeList
from repro.graph.generators import erdos_renyi


def random_graph(draw_n, draw_m, seed):
    n = draw_n
    m = min(draw_m, n * (n - 1))
    if m == 0:
        return EdgeList.from_pairs([], num_vertices=n)
    return erdos_renyi(n, m, seed=seed)


graph_strategy = st.builds(
    random_graph,
    draw_n=st.integers(min_value=2, max_value=60),
    draw_m=st.integers(min_value=0, max_value=150),
    seed=st.integers(min_value=0, max_value=10**6),
)


@settings(max_examples=25, deadline=None)
@given(g=graph_strategy, source_frac=st.floats(min_value=0, max_value=0.999))
def test_bfs_depths_are_consistent(g, source_frac):
    """Depth of any reached vertex is 1 + min over in-neighbor depths

    (except the source), and the source has depth 0."""
    source = int(source_frac * g.num_vertices)
    depths = GraphReduce(g).run(BFS(source=source)).vertex_values
    assert depths[source] == 0
    for e in range(g.num_edges):
        u, v = int(g.src[e]), int(g.dst[e])
        if not np.isinf(depths[u]):
            assert depths[v] <= depths[u] + 1  # edge relaxation holds


@settings(max_examples=20, deadline=None)
@given(g=graph_strategy, seed=st.integers(min_value=0, max_value=100))
def test_sssp_triangle_inequality(g, seed):
    gw = g.with_random_weights(seed=seed)
    dist = GraphReduce(gw).run(SSSP(source=0)).vertex_values
    assert dist[0] == 0
    for e in range(gw.num_edges):
        u, v = int(gw.src[e]), int(gw.dst[e])
        if not np.isinf(dist[u]):
            assert dist[v] <= dist[u] + gw.weights[e] + 1e-3


@settings(max_examples=20, deadline=None)
@given(g=graph_strategy)
def test_cc_fixed_point(g):
    """Labels are a fixed point: no edge can lower its endpoint label,

    and every label is the id of a vertex in the same component."""
    sym = g.symmetrized() if g.num_edges else g
    labels = GraphReduce(sym).run(ConnectedComponents()).vertex_values
    for e in range(sym.num_edges):
        u, v = int(sym.src[e]), int(sym.dst[e])
        assert labels[v] <= labels[u]  # symmetric storage -> equality
        assert labels[u] <= labels[v]
    assert np.all(labels <= np.arange(sym.num_vertices))


@settings(max_examples=15, deadline=None)
@given(g=graph_strategy)
def test_pagerank_bounds(g):
    """Every rank lies in [1-d, 1-d + d*V] and isolated vertices get 1-d."""
    ranks = GraphReduce(g).run(PageRank(tolerance=1e-5)).vertex_values
    assert np.all(ranks >= 0.15 - 1e-4)
    in_deg = g.in_degrees()
    assert np.allclose(ranks[in_deg == 0], 0.15, atol=1e-4)


@settings(max_examples=15, deadline=None)
@given(
    g=graph_strategy,
    p=st.integers(min_value=1, max_value=9),
)
def test_partition_count_does_not_change_results(g, p):
    base = GraphReduce(g).run(BFS(source=0)).vertex_values
    other = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=p)
    ).run(BFS(source=0)).vertex_values
    assert np.array_equal(base, other)


def test_bfs_frontier_rise_and_fall():
    """The Figure 3/16 BFS shape: starts at 1, peaks, falls to 0."""
    g = erdos_renyi(500, 4000, seed=3)
    r = GraphReduce(g).run(BFS(source=0))
    h = r.frontier_history
    assert h[0] == 1
    assert max(h) > 1
    assert h[-1] == 0


def test_pagerank_frontier_starts_full_and_decays():
    g = erdos_renyi(300, 2500, seed=4)
    r = GraphReduce(g).run(PageRank(tolerance=1e-4))
    h = r.frontier_history
    assert h[0] == 300
    assert h[-1] == 0 or r.iterations == PageRank().max_iterations


def test_cc_frontier_starts_full():
    g = erdos_renyi(200, 1000, seed=5).symmetrized()
    r = GraphReduce(g).run(ConnectedComponents())
    assert r.frontier_history[0] == 200
    assert r.frontier_history[-1] == 0
