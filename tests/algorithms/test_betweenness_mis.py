"""Betweenness centrality and maximal independent set correctness."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import MaximalIndependentSet, betweenness_centrality
from repro.algorithms.betweenness import SigmaPhase
from repro.algorithms.bfs import BFS
from repro.core.runtime import GraphReduce
from repro.graph.edgelist import EdgeList
from repro.graph.generators import erdos_renyi, mesh2d, path_graph, star_graph


class TestSigmaPhase:
    def test_path_counts_on_diamond(self):
        # 0 -> {1, 2} -> 3: two shortest paths to 3.
        g = EdgeList.from_pairs([(0, 1), (0, 2), (1, 3), (2, 3)], num_vertices=4)
        depths = GraphReduce(g).run(BFS(source=0)).vertex_values
        sigma = GraphReduce(g).run(SigmaPhase(0, depths)).vertex_values
        assert sigma.tolist() == [1.0, 1.0, 1.0, 2.0]

    def test_matches_networkx_counts(self):
        g = erdos_renyi(60, 240, seed=61)
        depths = GraphReduce(g).run(BFS(source=0)).vertex_values
        sigma = GraphReduce(g).run(SigmaPhase(0, depths)).vertex_values
        G = nx.DiGraph(zip(g.src.tolist(), g.dst.tolist()))
        G.add_nodes_from(range(60))
        # networkx: count shortest paths via all_shortest_paths per target
        for v in range(60):
            if v == 0 or not np.isfinite(depths[v]):
                continue
            want = len(list(nx.all_shortest_paths(G, 0, v)))
            assert sigma[v] == want, v


class TestBetweenness:
    @pytest.mark.parametrize("make_graph", [
        lambda: erdos_renyi(40, 160, seed=62),
        lambda: path_graph(12),
        lambda: star_graph(10),
        lambda: mesh2d(5, 5),
    ])
    def test_matches_networkx(self, make_graph):
        g = make_graph()
        got = betweenness_centrality(g)
        G = nx.DiGraph(zip(g.src.tolist(), g.dst.tolist()))
        G.add_nodes_from(range(g.num_vertices))
        want_dict = nx.betweenness_centrality(G, normalized=False)
        want = np.array([want_dict[v] for v in range(g.num_vertices)])
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_sampled_sources_subset(self):
        g = erdos_renyi(50, 200, seed=63)
        full = betweenness_centrality(g)
        sample = betweenness_centrality(g, sources=range(10))
        assert np.all(sample <= full + 1e-6)

    def test_isolated_source_contributes_nothing(self):
        g = EdgeList.from_pairs([(1, 2)], num_vertices=4)
        got = betweenness_centrality(g, sources=[0, 3])
        assert np.allclose(got, 0.0)


class TestMIS:
    def check_mis(self, g, members):
        member_set = set(members.tolist())
        adj = {}
        for s, d in zip(g.src.tolist(), g.dst.tolist()):
            adj.setdefault(s, set()).add(d)
        # Independence: no edge inside the set.
        for v in member_set:
            assert not (adj.get(v, set()) & member_set), v
        # Maximality: every non-member has a member neighbor.
        for v in range(g.num_vertices):
            if v not in member_set:
                neighbors = adj.get(v, set())
                assert neighbors & member_set or not neighbors, v

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_mis_on_random_graph(self, seed):
        g = erdos_renyi(120, 500, seed=70 + seed).symmetrized()
        prog = MaximalIndependentSet(seed=seed)
        r = GraphReduce(g).run(prog)
        assert r.converged
        self.check_mis(g, prog.members(r.vertex_values))

    def test_isolated_vertices_join(self):
        g = EdgeList.from_pairs([(0, 1)], num_vertices=4).symmetrized()
        prog = MaximalIndependentSet()
        r = GraphReduce(g).run(prog)
        members = set(prog.members(r.vertex_values).tolist())
        assert {2, 3} <= members  # isolated vertices are always in
        assert len({0, 1} & members) == 1

    def test_mesh_mis(self):
        g = mesh2d(8, 8)
        prog = MaximalIndependentSet(seed=5)
        r = GraphReduce(g).run(prog)
        members = prog.members(r.vertex_values)
        self.check_mis(g, members)
        # A grid MIS covers at least ~1/5 of the vertices.
        assert len(members) >= g.num_vertices // 5

    def test_deterministic_under_seed(self):
        g = erdos_renyi(80, 300, seed=80).symmetrized()
        a = GraphReduce(g).run(MaximalIndependentSet(seed=3)).vertex_values
        b = GraphReduce(g).run(MaximalIndependentSet(seed=3)).vertex_values
        assert np.array_equal(a, b)
