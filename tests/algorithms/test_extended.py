"""KCore and LabelPropagation correctness vs NetworkX."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import KCore, LabelPropagation, ConnectedComponents
from repro.core.runtime import GraphReduce
from repro.graph.generators import complete_graph, erdos_renyi, path_graph


def undirected_fixture(seed=1, n=80, m=250):
    g = erdos_renyi(n, m, seed=seed).symmetrized()
    G = nx.Graph(zip(g.src.tolist(), g.dst.tolist()))
    G.add_nodes_from(range(n))
    return g, G


class TestKCore:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_networkx(self, k):
        g, G = undirected_fixture()
        G.remove_edges_from(nx.selfloop_edges(G))
        r = GraphReduce(g).run(KCore(k=k))
        got = set(KCore(k).core_members(r.vertex_values).tolist())
        want = set(nx.k_core(G, k=k).nodes())
        assert got == want

    def test_complete_graph_survives(self):
        g = complete_graph(6)
        r = GraphReduce(g).run(KCore(k=5))
        assert len(KCore(5).core_members(r.vertex_values)) == 6
        r2 = GraphReduce(g).run(KCore(k=6))
        assert len(KCore(6).core_members(r2.vertex_values)) == 0

    def test_path_has_no_2core(self):
        g = path_graph(10).symmetrized()
        r = GraphReduce(g).run(KCore(k=2))
        assert len(KCore(2).core_members(r.vertex_values)) == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KCore(k=0)

    def test_peeling_cascade(self):
        # A triangle with a tail: the tail peels first, triangle stays.
        from repro.graph.edgelist import EdgeList

        g = EdgeList.from_pairs(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)], num_vertices=5
        ).symmetrized()
        r = GraphReduce(g).run(KCore(k=2))
        assert set(KCore(2).core_members(r.vertex_values).tolist()) == {0, 1, 2}


class TestLabelPropagation:
    def test_converges_to_component_max(self):
        g, G = undirected_fixture(seed=2)
        r = GraphReduce(g).run(LabelPropagation())
        labels = r.vertex_values
        for comp in nx.connected_components(G):
            expected = max(comp)
            for v in comp:
                assert labels[v] == expected

    def test_partition_agrees_with_cc(self):
        g, _ = undirected_fixture(seed=3)
        lp = GraphReduce(g).run(LabelPropagation()).vertex_values
        cc = GraphReduce(g).run(ConnectedComponents()).vertex_values
        # Same partition, opposite canonical representatives.
        for e in range(g.num_edges):
            u, v = int(g.src[e]), int(g.dst[e])
            assert (lp[u] == lp[v]) == (cc[u] == cc[v])

    def test_max_rounds_cuts_off(self):
        g = path_graph(50).symmetrized()
        r = GraphReduce(g).run(LabelPropagation(max_rounds=3))
        assert r.iterations <= 3
