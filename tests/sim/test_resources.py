"""Unit and property tests for water-filling fluid resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.resources import FluidResource


def run_jobs(capacity, jobs, max_concurrent=None):
    """Submit (work, max_rate) jobs at t=0 and return completion times."""
    sim = Simulator()
    res = FluidResource(sim, capacity, max_concurrent=max_concurrent)
    done = {}
    for i, (work, max_rate) in enumerate(jobs):
        res.submit(work, (lambda i=i: done.setdefault(i, sim.now)), max_rate=max_rate)
    sim.run()
    return done, sim


def test_single_job_duration():
    done, sim = run_jobs(10.0, [(100.0, None)])
    assert done[0] == pytest.approx(10.0)


def test_job_capped_by_max_rate():
    done, _ = run_jobs(10.0, [(100.0, 2.0)])
    assert done[0] == pytest.approx(50.0)


def test_two_equal_jobs_share_capacity():
    done, _ = run_jobs(10.0, [(100.0, None), (100.0, None)])
    assert done[0] == pytest.approx(20.0)
    assert done[1] == pytest.approx(20.0)


def test_water_filling_gives_leftover_to_hungry_job():
    # Job 0 demands at most rate 2; job 1 takes the remaining 8.
    done, _ = run_jobs(10.0, [(20.0, 2.0), (80.0, None)])
    assert done[0] == pytest.approx(10.0)
    assert done[1] == pytest.approx(10.0)


def test_departure_speeds_up_survivor():
    # Both share rate 5 until t=2 (job0 done: work 10), then job1 runs at 10.
    done, _ = run_jobs(10.0, [(10.0, None), (30.0, None)])
    assert done[0] == pytest.approx(2.0)
    assert done[1] == pytest.approx(2.0 + 20.0 / 10.0)


def test_fifo_with_max_concurrent_one():
    done, _ = run_jobs(10.0, [(10.0, None), (20.0, None), (30.0, None)], max_concurrent=1)
    assert done[0] == pytest.approx(1.0)
    assert done[1] == pytest.approx(3.0)
    assert done[2] == pytest.approx(6.0)


def test_zero_work_completes_immediately():
    done, sim = run_jobs(10.0, [(0.0, None)])
    assert done[0] == 0.0


def test_late_arrival_shares_remaining():
    sim = Simulator()
    res = FluidResource(sim, 10.0)
    done = {}
    res.submit(100.0, lambda: done.setdefault("a", sim.now))
    # At t=5 job a has 50 left; arrival makes both run at 5.
    sim.at(5.0, lambda: res.submit(25.0, lambda: done.setdefault("b", sim.now)))
    sim.run()
    assert done["b"] == pytest.approx(10.0)
    # a: 50 left at t=5, shares rate 5 until t=10 (25 left), then rate 10.
    assert done["a"] == pytest.approx(12.5)


def test_busy_time_accounting():
    sim = Simulator()
    res = FluidResource(sim, 10.0)
    res.submit(50.0, lambda: None, max_rate=5.0)
    sim.run()
    # Ran 10s at half capacity -> 5s of busy (capacity-normalized) time.
    assert res.busy_time == pytest.approx(5.0)
    assert res.served_work == pytest.approx(50.0)


def test_invalid_arguments():
    sim = Simulator()
    with pytest.raises(ValueError):
        FluidResource(sim, 0.0)
    with pytest.raises(ValueError):
        FluidResource(sim, 1.0, max_concurrent=0)
    res = FluidResource(sim, 1.0)
    with pytest.raises(ValueError):
        res.submit(-1.0, lambda: None)
    with pytest.raises(ValueError):
        res.submit(1.0, lambda: None, max_rate=0.0)


def test_callback_submitting_followon_work():
    sim = Simulator()
    res = FluidResource(sim, 1.0)
    done = []

    def second():
        done.append(("second", sim.now))

    def first():
        done.append(("first", sim.now))
        res.submit(2.0, second)

    res.submit(3.0, first)
    sim.run()
    assert done == [("first", 3.0), ("second", 5.0)]


@settings(max_examples=60, deadline=None)
@given(
    works=st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=8),
    capacity=st.floats(min_value=0.5, max_value=50.0),
)
def test_total_time_bounded_by_serial_and_ideal(works, capacity):
    """Makespan is at least total_work/capacity and at most serial time."""
    done, sim = run_jobs(capacity, [(w, None) for w in works])
    total = sum(works)
    assert sim.now >= total / capacity - 1e-6
    assert sim.now <= total / capacity + 1e-6  # equal sharing is work-conserving
    assert len(done) == len(works)


@settings(max_examples=60, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=50.0),
            st.floats(min_value=0.1, max_value=20.0),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_work_conservation_with_rate_caps(jobs):
    """All submitted work is eventually served, exactly once."""
    capacity = 10.0
    done, sim = run_jobs(capacity, jobs)
    assert len(done) == len(jobs)
    res_total = sum(w for w, _ in jobs)
    # Each job takes at least work/min(cap, max_rate); makespan covers max.
    longest = max(w / min(capacity, r) for w, r in jobs)
    assert sim.now >= longest - 1e-6


@settings(max_examples=40, deadline=None)
@given(
    works=st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1, max_size=10),
    conc=st.integers(min_value=1, max_value=4),
)
def test_fifo_queue_respects_concurrency(works, conc):
    sim = Simulator()
    res = FluidResource(sim, 5.0, max_concurrent=conc)
    peak = {"v": 0}
    orig_reallocate = res._reallocate

    def spy():
        orig_reallocate()
        peak["v"] = max(peak["v"], res.active_jobs)

    res._reallocate = spy
    for w in works:
        res.submit(w, lambda: None)
    sim.run()
    assert peak["v"] <= conc
