"""Energy model over device traces."""

import pytest

from repro.sim.energy import EnergyModel, PowerModel
from repro.sim.trace import TraceRecorder


def make_trace():
    tr = TraceRecorder()
    tr.record(0.0, 1.0, "h2d", "s", 100)
    tr.record(0.5, 1.5, "kernel", "s", 10)
    tr.record(2.0, 3.0, "d2h", "s", 100)
    return tr


def test_components_sum_to_total():
    model = EnergyModel()
    report = model.energy(make_trace())
    parts = (
        report.device_idle_j + report.sm_j + report.copy_j + report.host_j + report.storage_j
    )
    assert report.total_j == pytest.approx(parts)
    assert report.makespan == 3.0


def test_idle_power_scales_with_makespan():
    p = PowerModel()
    model = EnergyModel(p)
    report = model.energy(make_trace())
    assert report.device_idle_j == pytest.approx(p.device_idle * 3.0)


def test_active_energy_uses_busy_spans():
    p = PowerModel()
    report = EnergyModel(p).energy(make_trace())
    assert report.sm_j == pytest.approx(p.sm_active * 1.0)
    # h2d busy 1.0 s + d2h busy 1.0 s
    assert report.copy_j == pytest.approx(p.copy_engine_active * 2.0)
    # host active while ANY copy is in flight: union = 2.0 s
    assert report.host_j == pytest.approx(p.host_idle * 3.0 + p.host_active * 2.0)


def test_empty_trace():
    report = EnergyModel().energy(TraceRecorder())
    assert report.total_j == 0.0
    assert report.average_watts == 0.0


def test_efficiency_metric():
    model = EnergyModel()
    tr = make_trace()
    teps_per_j = model.efficiency(tr, edges_processed=1e6)
    assert teps_per_j == pytest.approx(1e6 / model.energy(tr).total_j)


def test_optimized_gr_uses_less_energy():
    """End-to-end: the Section-5 optimizations cut energy, not just time."""
    from repro.algorithms import BFS
    from repro.core.runtime import GraphReduce, GraphReduceOptions
    from repro.graph.generators import rmat

    g = rmat(10, 12_000, seed=1)
    opt = GraphReduce(g, options=GraphReduceOptions(cache_policy="never")).run(BFS(source=1))
    unopt = GraphReduce(g, options=GraphReduceOptions.unoptimized()).run(BFS(source=1))
    model = EnergyModel()
    e_opt = model.energy(opt.trace, makespan=opt.sim_time)
    e_unopt = model.energy(unopt.trace, makespan=unopt.sim_time)
    assert e_opt.total_j < e_unopt.total_j
