"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.at(3.0, lambda: order.append("c"))
    sim.at(1.0, lambda: order.append("a"))
    sim.at(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.at(1.0, lambda n=name: order.append(n))
    sim.run()
    assert order == list("abcde")


def test_after_is_relative_to_now():
    sim = Simulator()
    times = []
    sim.at(5.0, lambda: sim.after(2.5, lambda: times.append(sim.now)))
    sim.run()
    assert times == [7.5]


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(5.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.at(1.0, lambda: fired.append(1))
    sim.cancel(handle)
    sim.run()
    assert fired == []
    assert sim.now == 0.0  # nothing actually ran


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.at(1.0, lambda: None)
    sim.cancel(handle)
    sim.cancel(handle)
    sim.run()


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    seen = []
    sim.at(1.0, lambda: sim.at(2.0, lambda: seen.append("late")))
    sim.run()
    assert seen == ["late"]
    assert sim.now == 2.0


def test_run_until_stops_at_bound():
    sim = Simulator()
    seen = []
    sim.at(1.0, lambda: seen.append(1))
    sim.at(5.0, lambda: seen.append(5))
    sim.run(until=3.0)
    assert seen == [1]
    assert sim.now == 3.0
    sim.run()
    assert seen == [1, 5]


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False
    sim.at(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_pending_counts_live_events():
    sim = Simulator()
    h1 = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    assert sim.pending == 2
    sim.cancel(h1)
    assert sim.pending == 1


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.at(1.0, reenter)
    sim.run()
