"""Figure-4 transfer-mechanism model: orderings the paper relies on."""

import pytest

from repro.sim.specs import DeviceSpec
from repro.sim.transfer import MECHANISMS, PATTERNS, TransferModel


@pytest.fixture
def model():
    return TransferModel(spec=DeviceSpec())


N = 100_000_000  # the paper's 100M doubles


def test_pinned_is_best_for_sequential(model):
    times = model.compare(N)["sequential"]
    assert times["pinned"] < times["explicit"] < times["managed"]


def test_explicit_is_best_for_random(model):
    times = model.compare(N)["random"]
    assert times["explicit"] < times["managed"] < times["pinned"]


def test_pinned_random_is_catastrophic(model):
    times = model.compare(N)["random"]
    assert times["pinned"] > 5 * times["explicit"]


def test_throughput_is_inverse_of_time(model):
    nbytes = N * 8
    t = model.time("explicit", nbytes, 8, "sequential")
    assert model.throughput("explicit", nbytes, 8, "sequential") == pytest.approx(
        nbytes / t
    )


def test_compare_covers_all_cells(model):
    table = model.compare(1_000_000)
    assert set(table) == set(PATTERNS)
    for row in table.values():
        assert set(row) == set(MECHANISMS)
        for v in row.values():
            assert v > 0


def test_sequential_scales_linearly(model):
    t1 = model.time("pinned", 8 * 10**6, 8, "sequential")
    t2 = model.time("pinned", 8 * 2 * 10**6, 8, "sequential")
    assert t2 == pytest.approx(2 * t1)


def test_unknown_inputs_rejected(model):
    with pytest.raises(ValueError):
        model.time("dma", 8, 8, "sequential")
    with pytest.raises(ValueError):
        model.time("pinned", 8, 8, "strided")
