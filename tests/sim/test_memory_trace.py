"""Allocator and trace-recorder tests."""

import pytest

from repro.sim.memory import DeviceMemoryAllocator, DeviceOOMError
from repro.sim.trace import TraceRecorder


class TestAllocator:
    def test_alloc_free_roundtrip(self):
        mem = DeviceMemoryAllocator(100)
        mem.alloc("a", 40)
        mem.alloc("b", 60)
        assert mem.free_bytes == 0
        assert mem.free("a") == 40
        assert mem.free_bytes == 40
        mem.alloc("c", 30)
        assert mem.allocated == 90

    def test_oom_raises_with_details(self):
        mem = DeviceMemoryAllocator(100)
        mem.alloc("a", 80)
        with pytest.raises(DeviceOOMError) as exc:
            mem.alloc("b", 30)
        assert exc.value.requested == 30
        assert exc.value.free == 20
        assert exc.value.capacity == 100
        # Failed alloc must not leak accounting.
        assert mem.allocated == 80

    def test_duplicate_name_rejected(self):
        mem = DeviceMemoryAllocator(100)
        mem.alloc("a", 10)
        with pytest.raises(ValueError):
            mem.alloc("a", 10)

    def test_free_unknown_name(self):
        mem = DeviceMemoryAllocator(100)
        with pytest.raises(KeyError):
            mem.free("ghost")

    def test_high_water_mark(self):
        mem = DeviceMemoryAllocator(100)
        mem.alloc("a", 70)
        mem.free("a")
        mem.alloc("b", 30)
        assert mem.high_water == 70

    def test_exact_fit_allowed(self):
        mem = DeviceMemoryAllocator(100)
        mem.alloc("a", 100)
        assert mem.free_bytes == 0

    def test_zero_byte_alloc(self):
        mem = DeviceMemoryAllocator(10)
        mem.alloc("empty", 0)
        assert mem.contains("empty")
        assert mem.size_of("empty") == 0

    def test_negative_rejected(self):
        mem = DeviceMemoryAllocator(10)
        with pytest.raises(ValueError):
            mem.alloc("a", -1)
        with pytest.raises(ValueError):
            DeviceMemoryAllocator(0)

    def test_reset(self):
        mem = DeviceMemoryAllocator(10)
        mem.alloc("a", 5)
        mem.reset()
        assert mem.allocated == 0
        assert not mem.contains("a")


class TestTrace:
    def test_totals_by_category(self):
        tr = TraceRecorder()
        tr.record(0.0, 1.0, "h2d", "s0", 100)
        tr.record(1.0, 3.0, "d2h", "s0", 200)
        tr.record(0.5, 2.0, "kernel", "s1", 10)
        assert tr.total_duration("h2d") == pytest.approx(1.0)
        assert tr.memcpy_time() == pytest.approx(3.0)
        assert tr.kernel_time() == pytest.approx(1.5)
        assert tr.memcpy_bytes() == 300
        assert tr.makespan() == 3.0
        assert len(tr) == 3

    def test_busy_span_merges_overlaps(self):
        tr = TraceRecorder()
        tr.record(0.0, 2.0, "h2d", "a", 1)
        tr.record(1.0, 3.0, "h2d", "b", 1)
        tr.record(5.0, 6.0, "d2h", "a", 1)
        assert tr.busy_span("h2d", "d2h") == pytest.approx(4.0)
        assert tr.total_duration("h2d", "d2h") == pytest.approx(5.0)

    def test_busy_span_empty(self):
        assert TraceRecorder().busy_span() == 0.0

    def test_disabled_recorder_records_nothing(self):
        tr = TraceRecorder(enabled=False)
        tr.record(0.0, 1.0, "h2d", "s", 1)
        assert len(tr) == 0

    def test_invalid_category_and_interval(self):
        tr = TraceRecorder()
        with pytest.raises(ValueError):
            tr.record(0.0, 1.0, "dma", "s", 1)
        with pytest.raises(ValueError):
            tr.record(2.0, 1.0, "h2d", "s", 1)

    def test_clear(self):
        tr = TraceRecorder()
        tr.record(0.0, 1.0, "h2d", "s", 1)
        tr.clear()
        assert len(tr) == 0
