"""Stream ordering, overlap, spray benefit, and device model tests."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.device import GPUDevice
from repro.sim.specs import DeviceSpec
from repro.sim.stream import StreamEvent


def make_device(**overrides):
    sim = Simulator()
    spec = DeviceSpec(**overrides)
    return sim, GPUDevice(sim, spec)


def test_ops_on_one_stream_serialize():
    sim, dev = make_device()
    s = dev.create_stream("s0")
    s.memcpy_h2d(6_000_000)  # 1 ms of DMA + 10 us setup
    s.kernel(2_000_000)      # 1 ms of work + 6 us launch
    dev.synchronize()
    copies = [i for i in dev.trace.intervals if i.category == "h2d"]
    kernels = [i for i in dev.trace.intervals if i.category == "kernel"]
    assert len(copies) == 1 and len(kernels) == 1
    assert kernels[0].start >= copies[0].end  # in-order within the stream


def test_copy_and_kernel_on_different_streams_overlap():
    sim, dev = make_device()
    nbytes = int(dev.spec.pcie_bandwidth / 100)  # 10 ms of DMA
    items = int(dev.spec.edge_rate_seq / 100)    # 10 ms of kernel
    dev.create_stream("a").memcpy_h2d(nbytes)
    dev.create_stream("b").kernel(items)
    dev.synchronize()
    # Full overlap: makespan ~ max of the two, not the sum.
    assert dev.trace.makespan() < 0.015


def test_h2d_and_d2h_are_full_duplex():
    sim, dev = make_device()
    nbytes = int(dev.spec.pcie_bandwidth / 100)
    dev.create_stream("a").memcpy_h2d(nbytes)
    dev.create_stream("b").memcpy_d2h(nbytes)
    dev.synchronize()
    assert dev.trace.makespan() == pytest.approx(0.01, rel=0.05)


def test_same_direction_copies_serialize_on_copy_engine():
    sim, dev = make_device()
    nbytes = int(dev.spec.pcie_bandwidth / 100)
    dev.create_stream("a").memcpy_h2d(nbytes)
    dev.create_stream("b").memcpy_h2d(nbytes)
    dev.synchronize()
    assert dev.trace.makespan() >= 0.02  # both 10ms DMAs share one engine


def test_spray_overlaps_setup_latency():
    """K sub-copies on K streams beat K sub-copies on one stream by
    roughly (K-1) * memcpy_setup -- the spray-stream effect."""
    n_sub, sub_bytes = 8, 600_000  # 100 us DMA each

    sim1, dev1 = make_device()
    s = dev1.create_stream()
    for _ in range(n_sub):
        s.memcpy_h2d(sub_bytes)
    dev1.synchronize()
    serial = dev1.trace.makespan()

    sim2, dev2 = make_device()
    for i in range(n_sub):
        dev2.create_stream().memcpy_h2d(sub_bytes)
    dev2.synchronize()
    sprayed = dev2.trace.makespan()

    spec = dev1.spec
    assert sprayed < serial
    saved = serial - sprayed
    assert saved == pytest.approx((n_sub - 1) * spec.memcpy_setup, rel=0.2)


def test_small_kernels_share_sm_pool():
    """Two sub-saturating kernels overlap (compute-compute scheme)."""
    sim, dev = make_device()
    items = 1000  # far below one full wave
    dev.create_stream("a").kernel(items)
    dev.create_stream("b").kernel(items)
    dev.synchronize()
    solo = dev.kernel_time(items)
    # Both finish in about one solo duration, not two.
    assert dev.trace.makespan() < 1.5 * solo


def test_two_saturating_kernels_serialize_in_effect():
    sim, dev = make_device()
    items = 20_000_000  # 10 ms each at full occupancy
    dev.create_stream("a").kernel(items)
    dev.create_stream("b").kernel(items)
    dev.synchronize()
    assert dev.trace.makespan() >= 0.02


def test_kernel_min_time_floor():
    sim, dev = make_device()
    dev.create_stream().kernel(1)
    dev.synchronize()
    spec = dev.spec
    assert dev.trace.makespan() == pytest.approx(
        spec.kernel_launch_overhead + spec.kernel_min_time, rel=0.01
    )


def test_event_orders_across_streams():
    sim, dev = make_device()
    ev = StreamEvent("gate")
    order = []
    a = dev.create_stream("a")
    b = dev.create_stream("b")
    b.wait_event(ev)
    b.callback(lambda: order.append("b"))
    a.kernel(2_000_000)
    a.callback(lambda: order.append("a"))
    a.record_event(ev)
    dev.synchronize()
    assert order == ["a", "b"]


def test_callback_runs_in_stream_order():
    sim, dev = make_device()
    ticks = []
    s = dev.create_stream()
    s.kernel(2_000_000)
    s.callback(lambda: ticks.append(sim.now))
    dev.synchronize()
    assert len(ticks) == 1
    assert ticks[0] > 0.0009


def test_synchronize_handles_callback_enqueued_work():
    sim, dev = make_device()
    s = dev.create_stream()
    s.callback(lambda: s.kernel(2_000_000))
    dev.synchronize()
    assert dev.trace.kernel_time() > 0


def test_hyperq_caps_concurrent_kernels():
    sim, dev = make_device(hyperq=2)
    for i in range(4):
        dev.create_stream().kernel(20_000_000)  # 10ms saturating each
    dev.synchronize()
    # With only 2 queues and saturating kernels: ~40ms regardless; but
    # the SM pool should never hold more than 2 active jobs.
    assert dev.sm_pool.max_concurrent == 2
    assert dev.trace.makespan() >= 0.04


def test_invalid_ops():
    sim, dev = make_device()
    s = dev.create_stream()
    with pytest.raises(ValueError):
        s.memcpy_h2d(-1)
    with pytest.raises(ValueError):
        s.kernel(-1)
    with pytest.raises(ValueError):
        s.kernel(1, kind="nope")
        dev.synchronize()


def test_analytic_helpers():
    sim, dev = make_device()
    spec = dev.spec
    assert dev.transfer_time(spec.pcie_bandwidth) == pytest.approx(
        1.0 + spec.memcpy_setup
    )
    assert dev.kernel_time(spec.edge_rate_seq) == pytest.approx(
        1.0 + spec.kernel_launch_overhead
    )
