"""Property tests on stream semantics: ordering and conservation hold

for arbitrary operation sequences across arbitrary stream counts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.device import GPUDevice
from repro.sim.engine import Simulator
from repro.sim.specs import DeviceSpec

op_strategy = st.tuples(
    st.integers(min_value=0, max_value=3),  # stream index
    st.sampled_from(["h2d", "d2h", "kernel"]),
    st.integers(min_value=1, max_value=2_000_000),  # bytes or items
)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=25))
def test_per_stream_issue_order_is_execution_order(ops):
    sim = Simulator()
    dev = GPUDevice(sim, DeviceSpec())
    streams = [dev.create_stream(f"s{i}") for i in range(4)]
    for stream_i, kind, amount in ops:
        if kind == "kernel":
            streams[stream_i].kernel(amount)
        elif kind == "h2d":
            streams[stream_i].memcpy_h2d(amount)
        else:
            streams[stream_i].memcpy_d2h(amount)
    dev.synchronize()
    # Every issued op completed exactly once.
    assert len(dev.trace.intervals) == len(ops)
    # Within each stream, completion order equals issue order.
    per_stream_expected: dict[str, list[str]] = {}
    for stream_i, kind, _ in ops:
        per_stream_expected.setdefault(f"s{stream_i}", []).append(
            "kernel" if kind == "kernel" else kind
        )
    by_end = sorted(dev.trace.intervals, key=lambda i: (i.end, i.start))
    per_stream_got: dict[str, list[str]] = {}
    for interval in by_end:
        per_stream_got.setdefault(interval.stream, []).append(interval.category)
    assert per_stream_got == per_stream_expected


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=25))
def test_conservation_of_bytes_and_items(ops):
    sim = Simulator()
    dev = GPUDevice(sim, DeviceSpec())
    streams = [dev.create_stream(f"s{i}") for i in range(4)]
    totals = {"h2d": 0, "d2h": 0, "kernel": 0}
    for stream_i, kind, amount in ops:
        totals[kind] += amount
        if kind == "kernel":
            streams[stream_i].kernel(amount)
        else:
            streams[stream_i].enqueue(
                __import__("repro.sim.stream", fromlist=["Memcpy"]).Memcpy(amount, kind)
            )
    dev.synchronize()
    for cat in ("h2d", "d2h", "kernel"):
        assert dev.trace.total_amount(cat) == totals[cat]


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=25))
def test_makespan_bounded_by_serial_time(ops):
    """Parallel execution never exceeds fully-serial execution, and is at

    least as long as any single resource's demand."""
    sim = Simulator()
    dev = GPUDevice(sim, DeviceSpec())
    spec = dev.spec
    streams = [dev.create_stream(f"s{i}") for i in range(4)]
    serial = 0.0
    per_resource = {"h2d": 0.0, "d2h": 0.0}
    for stream_i, kind, amount in ops:
        if kind == "kernel":
            streams[stream_i].kernel(amount)
            serial += dev.kernel_time(amount)
        else:
            streams[stream_i].enqueue(
                __import__("repro.sim.stream", fromlist=["Memcpy"]).Memcpy(amount, kind)
            )
            serial += dev.transfer_time(amount)
            per_resource[kind] += amount / spec.pcie_bandwidth
    dev.synchronize()
    assert sim.now <= serial + 1e-9
    for demand in per_resource.values():
        assert sim.now >= demand - 1e-9
