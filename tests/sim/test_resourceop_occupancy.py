"""ResourceOp (shared storage) and explicit kernel occupancy."""

import pytest

from repro.sim.device import GPUDevice
from repro.sim.engine import Simulator
from repro.sim.resources import FluidResource
from repro.sim.specs import DeviceSpec
from repro.sim.stream import Kernel, ResourceOp


def make_device():
    sim = Simulator()
    return sim, GPUDevice(sim, DeviceSpec())


class TestResourceOp:
    def test_occupies_shared_resource(self):
        sim, dev = make_device()
        ssd = FluidResource(sim, 100.0, name="ssd")
        dev.create_stream().enqueue(ResourceOp(ssd, 50.0, label="read"))
        dev.synchronize()
        assert sim.now == pytest.approx(0.5)
        assert dev.trace.total_duration("storage") == pytest.approx(0.5)

    def test_contention_between_streams(self):
        sim, dev = make_device()
        ssd = FluidResource(sim, 100.0, max_concurrent=1, name="ssd")
        dev.create_stream().enqueue(ResourceOp(ssd, 50.0))
        dev.create_stream().enqueue(ResourceOp(ssd, 50.0))
        dev.synchronize()
        assert sim.now == pytest.approx(1.0)  # serialized

    def test_orders_before_following_copy(self):
        sim, dev = make_device()
        ssd = FluidResource(sim, 100.0, name="ssd")
        s = dev.create_stream()
        s.enqueue(ResourceOp(ssd, 100.0))
        s.memcpy_h2d(3300)  # 1 us of DMA
        dev.synchronize()
        copy = next(i for i in dev.trace.intervals if i.category == "h2d")
        assert copy.start >= 1.0

    def test_record_flag(self):
        sim, dev = make_device()
        ssd = FluidResource(sim, 100.0, name="ssd")
        dev.create_stream().enqueue(ResourceOp(ssd, 10.0, record=False))
        dev.synchronize()
        assert dev.trace.total_duration("storage") == 0

    def test_negative_work_rejected(self):
        sim, dev = make_device()
        ssd = FluidResource(sim, 100.0)
        with pytest.raises(ValueError):
            ResourceOp(ssd, -1.0)


class TestKernelOccupancy:
    def test_explicit_occupancy_slows_solo_kernel(self):
        sim, dev = make_device()
        dev.create_stream().enqueue(
            Kernel(10_000, "vertex", work_seconds=1e-3, occupancy=0.25)
        )
        dev.synchronize()
        # 1 ms of machine-work at quarter occupancy -> 4 ms.
        assert dev.trace.kernel_time() == pytest.approx(4e-3, rel=0.01)

    def test_low_occupancy_kernels_overlap(self):
        sim, dev = make_device()
        for i in range(4):
            dev.create_stream().enqueue(
                Kernel(1000, "vertex", work_seconds=1e-3, occupancy=0.25)
            )
        dev.synchronize()
        # Four quarter-occupancy kernels fill the machine: ~4 ms total,
        # not 16 ms.
        assert dev.trace.makespan() < 5e-3

    def test_invalid_occupancy(self):
        with pytest.raises(ValueError):
            Kernel(10, occupancy=0.0)
        with pytest.raises(ValueError):
            Kernel(10, occupancy=1.5)

    def test_negative_work_seconds(self):
        with pytest.raises(ValueError):
            Kernel(10, work_seconds=-1.0)
