"""The shared differential-testing fixture set: ~20 small seeded graphs.

Families: Erdős–Rényi at several densities, power-law (R-MAT, web,
social), explicitly disconnected unions, and structured shapes (path,
cycle, star, clique, mesh, band, road) whose exact answers are easy to
reason about. Everything is seeded, so the set is deterministic.

Kept small on purpose: the pure-Python references in
``tests/references.py`` walk these edge lists with scalar float32
arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    banded,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    mesh2d,
    path_graph,
    rmat,
    road_network,
    social_graph,
    star_graph,
    web_graph,
)


def disjoint_union(*parts: EdgeList, extra_vertices: int = 0, name: str = "union") -> EdgeList:
    """Relabel each part into its own vertex block; no edges between blocks.

    ``extra_vertices`` appends that many isolated vertices at the end.
    """
    srcs, dsts = [], []
    offset = 0
    for g in parts:
        srcs.append(g.src.astype(np.int64) + offset)
        dsts.append(g.dst.astype(np.int64) + offset)
        offset += g.num_vertices
    return EdgeList(
        offset + extra_vertices,
        np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64),
        np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64),
        name=name,
    )


def _two_cliques_bridge() -> EdgeList:
    g = disjoint_union(complete_graph(10), complete_graph(10), name="two_cliques")
    src = np.concatenate([g.src, [9]])
    dst = np.concatenate([g.dst, [10]])
    return EdgeList(g.num_vertices, src, dst, name="two_cliques")


def _mostly_isolated() -> EdgeList:
    return EdgeList.from_pairs(
        [(0, 1), (1, 2), (2, 0)], num_vertices=12, name="mostly_isolated"
    )


#: name -> zero-arg builder. Builders, not instances, so importing this
#: module stays cheap and each test gets a fresh EdgeList.
FIXTURE_BUILDERS = {
    # Erdős–Rényi at several densities (er_sparse is usually disconnected)
    "er_small": lambda: erdos_renyi(60, 240, seed=1, name="er_small"),
    "er_mid": lambda: erdos_renyi(200, 1_200, seed=2, name="er_mid"),
    "er_dense": lambda: erdos_renyi(80, 2_000, seed=3, name="er_dense"),
    "er_sparse": lambda: erdos_renyi(300, 450, seed=4, name="er_sparse"),
    "er_sym": lambda: erdos_renyi(120, 500, seed=15, name="er_sym").symmetrized(),
    # Power-law families
    "rmat_small": lambda: rmat(7, 500, seed=5, name="rmat_small"),
    "rmat_mid": lambda: rmat(9, 2_500, seed=6, name="rmat_mid"),
    "web_small": lambda: web_graph(8, 1_000, seed=7, name="web_small"),
    "social_small": lambda: social_graph(7, 400, seed=8, name="social_small"),
    # Explicitly disconnected
    "disc_er": lambda: disjoint_union(
        erdos_renyi(80, 300, seed=9),
        erdos_renyi(60, 200, seed=10),
        extra_vertices=10,
        name="disc_er",
    ),
    "disc_rmat": lambda: disjoint_union(
        rmat(6, 150, seed=11), rmat(6, 150, seed=12), name="disc_rmat"
    ),
    "mostly_isolated": _mostly_isolated,
    # Structured shapes
    "path300": lambda: path_graph(300),
    "cycle64": lambda: cycle_graph(64),
    "star200": lambda: star_graph(200),
    "complete24": lambda: complete_graph(24),
    "mesh12x12": lambda: mesh2d(12, 12),
    "banded150": lambda: banded(150, 4, 3, seed=13),
    "road10x10": lambda: road_network(10, 10, 20, seed=14),
    "two_cliques": _two_cliques_bridge,
}

FIXTURE_NAMES = sorted(FIXTURE_BUILDERS)


def build(name: str) -> EdgeList:
    return FIXTURE_BUILDERS[name]()
