"""Optimized-vs-unoptimized equivalence on every fixture graph.

The Figure-15 baseline (no fusion, no frontier skipping, single-stream
full-shard movement) must compute bit-identical answers to the fully
optimized runtime: the optimizations may only change *when bytes move*,
never *what is computed*. Any divergence means an optimization changed
semantics -- the exact bug class this suite exists to catch.
"""

import numpy as np
import pytest

from tests.fixture_graphs import FIXTURE_NAMES, build
from repro.algorithms import BFS, ConnectedComponents, PageRank, SSSP
from repro.core.runtime import GraphReduce, GraphReduceOptions

PROGRAMS = {
    "bfs": lambda: BFS(source=0),
    "sssp": lambda: SSSP(source=0),
    "pagerank": lambda: PageRank(tolerance=1e-3),
    "cc": lambda: ConnectedComponents(),
}


@pytest.mark.parametrize("algo", sorted(PROGRAMS))
@pytest.mark.parametrize("graph_name", FIXTURE_NAMES)
def test_unoptimized_matches_optimized(graph_name, algo):
    g = build(graph_name)
    if algo == "sssp":
        g = g.with_random_weights(seed=33)
    optimized = GraphReduce(g).run(PROGRAMS[algo]())
    baseline = GraphReduce(g, options=GraphReduceOptions.unoptimized()).run(
        PROGRAMS[algo]()
    )
    assert np.array_equal(optimized.vertex_values, baseline.vertex_values)
    assert optimized.iterations == baseline.iterations
    assert optimized.converged == baseline.converged
    # The baseline moves at least as many bytes: the whole point of the
    # optimizations is eliminating movement, not changing answers.
    assert baseline.stats.h2d_bytes >= optimized.stats.h2d_bytes
