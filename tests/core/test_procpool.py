"""Process-pool backend tests (repro.core.procpool).

The pool is a pure host-side rewrite of shard execution: every run must
be bit-identical to serial (values, frontier trajectory, simulated
timeline, kernel censuses) whether the shard arrays are exported through
shared memory (in-RAM graphs) or attached as per-worker memmaps (shard
stores). The failure-handling half covers the hard guarantees: a killed
worker degrades to a serial re-run with a warning and an unchanged
result, shared-memory segments never outlive the run, and the host
prefetcher's threads never outlive an iteration that raises.
"""

import os
import signal
import threading
import warnings

import numpy as np
import pytest

from tests.core.test_fastpath import PROGRAMS, _kernel_items
from tests.fixture_graphs import build
from repro.algorithms import PageRank
from repro.core.kernels import numba_available
from repro.core.partition import PartitionEngine
from repro.core.procpool import ENV_WORKER_FLAG, SHM_PREFIX
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.core.shardstore import ShardStore

POOL = dict(parallel_shards=2, parallel_backend="processes")


def _shm_entries() -> set:
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith(SHM_PREFIX)}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _prefetch_threads() -> list:
    return [t for t in threading.enumerate() if t.name.startswith("shard-prefetch")]


def _assert_identical(label, pool, serial):
    assert pool.procpool is not None, f"{label}: pool fell back to serial"
    assert pool.procpool["tasks"] > 0, label
    assert np.array_equal(pool.vertex_values, serial.vertex_values), label
    assert pool.frontier_history == serial.frontier_history, label
    assert pool.sim_time == serial.sim_time, label
    assert pool.iterations == serial.iterations, label
    assert pool.converged == serial.converged, label
    assert _kernel_items(pool) == _kernel_items(serial), label


# `stamping_sssp` has a real scatter phase plus edge state, so the
# edge-state delta path is exercised, not just vertex/frontier deltas.
MATRIX = ("bfs", "sssp", "pagerank", "cc", "stamping_sssp")


def test_process_backend_matches_serial_in_ram():
    g = build("er_mid")
    weighted = g.with_random_weights(seed=33)
    before = _shm_entries()
    for algo in MATRIX:
        graph = weighted if "sssp" in algo else g
        make = PROGRAMS[algo]
        serial = GraphReduce(
            graph, options=GraphReduceOptions(num_partitions=3, parallel_backend="serial")
        ).run(make())
        pool = GraphReduce(
            graph, options=GraphReduceOptions(num_partitions=3, **POOL)
        ).run(make())
        _assert_identical(algo, pool, serial)
    assert _shm_entries() == before  # every segment unlinked on exit


def test_process_backend_matches_serial_store_backed(tmp_path):
    g = build("er_mid")
    weighted = g.with_random_weights(seed=33)
    for label, graph, algo in (
        ("plain", g, "bfs"),
        ("plain", g, "pagerank"),
        ("weighted", weighted, "stamping_sssp"),
    ):
        store = ShardStore.save(
            PartitionEngine().partition(graph, 3), tmp_path / f"{label}-{algo}"
        )
        make = PROGRAMS[algo]
        serial = GraphReduce(
            graph, options=GraphReduceOptions(num_partitions=3, parallel_backend="serial")
        ).run(make())
        pool = GraphReduce(
            shard_store=store, options=GraphReduceOptions(**POOL)
        ).run(make())
        _assert_identical(f"store/{algo}", pool, serial)


@pytest.mark.parametrize(
    "kernel_backend",
    (
        "numpy",
        pytest.param(
            "numba",
            marks=pytest.mark.skipif(
                not numba_available(), reason="Numba not installed"
            ),
        ),
    ),
)
def test_process_backend_kernel_axis(kernel_backend):
    """Workers resolve the fused backend locally and stay bit-identical.

    The pool pickles captured deltas *after* the next task may have
    reused the kernel arena, so this doubles as the regression test for
    the delta-capture copy; the aggregated pool kernel stats must also
    show the workers actually ran the fused path.
    """
    g = build("er_mid")
    weighted = g.with_random_weights(seed=33)
    for algo in ("bfs", "pagerank", "stamping_sssp"):
        graph = weighted if "sssp" in algo else g
        make = PROGRAMS[algo]
        serial = GraphReduce(
            graph,
            options=GraphReduceOptions(num_partitions=3, kernel_backend="off"),
        ).run(make())
        pool = GraphReduce(
            graph,
            options=GraphReduceOptions(
                num_partitions=3, kernel_backend=kernel_backend, **POOL
            ),
        ).run(make())
        _assert_identical(f"{algo}/{kernel_backend}", pool, serial)
        assert pool.kernels is not None, algo
        assert pool.kernels["backend"] == kernel_backend, algo
        assert pool.kernels["fused_calls"] > 0, algo
        assert pool.kernels["fallbacks"] == 0, algo


# ----------------------------------------------------------------------
# Worker-crash recovery
# ----------------------------------------------------------------------
class CrashyPageRank(PageRank):
    """Kills the hosting pool worker dead (SIGKILL) in iteration >= 1."""

    def apply(self, ctx, vertex_ids, old_values, gathered, has_gathered, iteration):
        if iteration >= 1 and os.environ.get(ENV_WORKER_FLAG):
            os.kill(os.getpid(), signal.SIGKILL)
        return super().apply(ctx, vertex_ids, old_values, gathered, has_gathered, iteration)


def test_worker_crash_falls_back_to_serial():
    g = build("er_mid")
    before = _shm_entries()
    serial = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=3, parallel_backend="serial")
    ).run(PageRank(tolerance=1e-3))
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        recovered = GraphReduce(
            g, options=GraphReduceOptions(num_partitions=3, **POOL)
        ).run(CrashyPageRank(tolerance=1e-3))
    # The serial re-run is deterministic, so the result is unchanged.
    assert recovered.procpool is None
    assert np.array_equal(recovered.vertex_values, serial.vertex_values)
    assert recovered.frontier_history == serial.frontier_history
    assert recovered.sim_time == serial.sim_time
    assert _shm_entries() == before  # crashed run leaked nothing


# ----------------------------------------------------------------------
# Prefetcher lifetime when an iteration raises mid-run
# ----------------------------------------------------------------------
class ExplodingPageRank(PageRank):
    def apply(self, ctx, vertex_ids, old_values, gathered, has_gathered, iteration):
        if iteration >= 1:
            raise RuntimeError("boom in apply")
        return super().apply(ctx, vertex_ids, old_values, gathered, has_gathered, iteration)


def test_prefetcher_threads_die_when_iteration_raises(tmp_path):
    g = build("er_mid")
    store = ShardStore.save(PartitionEngine().partition(g, 3), tmp_path / "s")
    assert not _prefetch_threads()
    with pytest.raises(RuntimeError, match="boom in apply"):
        GraphReduce(
            shard_store=store,
            options=GraphReduceOptions(host_prefetch=True, prefetch_workers=2),
        ).run(ExplodingPageRank(tolerance=1e-3))
    # runtime's try/finally shuts the pool down synchronously
    # (shutdown(wait=True)), so no warming thread survives the raise.
    assert not _prefetch_threads()


def test_prefetcher_context_manager_shuts_down(tmp_path):
    from repro.core.movement import HostPrefetcher

    g = build("er_mid")
    store = ShardStore.save(PartitionEngine().partition(g, 3), tmp_path / "s")
    with pytest.raises(RuntimeError, match="mid-iteration"):
        with HostPrefetcher(store, capacity=3, workers=2) as pf:
            pf.schedule([0, 1, 2])
            raise RuntimeError("mid-iteration")
    assert not _prefetch_threads()


# ----------------------------------------------------------------------
# Plan-cache LRU byte budget
# ----------------------------------------------------------------------
def test_plan_cache_budget_evicts_and_preserves_results():
    g = build("er_mid")
    make = PROGRAMS["pagerank_power"]
    unbounded = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=3, plan_cache_budget=None)
    ).run(make())
    assert unbounded.plan_cache["evictions"] == 0
    assert unbounded.plan_cache["budget_bytes"] is None
    # A budget far below one shard's plan footprint forces evictions on
    # every reuse attempt; semantics must be untouched.
    tiny = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=3, plan_cache_budget=64)
    ).run(make())
    assert tiny.plan_cache["evictions"] > 0
    assert tiny.plan_cache["budget_bytes"] == 64
    assert np.array_equal(tiny.vertex_values, unbounded.vertex_values)
    assert tiny.frontier_history == unbounded.frontier_history
    assert tiny.sim_time == unbounded.sim_time
    assert _kernel_items(tiny) == _kernel_items(unbounded)


def test_plan_cache_budget_bounds_held_bytes():
    g = build("er_mid")
    budget = 32 * 1024
    result = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=3, plan_cache_budget=budget)
    ).run(PROGRAMS["pagerank"]())
    pc = result.plan_cache
    # The LRU keeps at least the most recent plan even when it alone
    # exceeds the budget; with several shards cached, held bytes must
    # settle at or below the budget after evictions.
    assert pc["evictions"] > 0 or pc["held_bytes"] <= budget


def test_plan_cache_counts_evictions_in_metrics():
    g = build("er_mid")
    result = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=3, plan_cache_budget=64)
    ).run(PROGRAMS["pagerank_power"]())
    metrics = result.observer.metrics
    assert metrics.value("plans.evictions") == result.plan_cache["evictions"]


# ----------------------------------------------------------------------
# Observability surfaces
# ----------------------------------------------------------------------
def test_pool_snapshot_feeds_profile_and_trace():
    from repro.obs.export import result_to_chrome_trace
    from repro.obs.profile import build_profile

    g = build("er_mid")
    result = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=3, **POOL)
    ).run(PROGRAMS["pagerank"]())
    assert result.procpool is not None
    report = build_profile(result)
    assert report.procpool["workers"] == 2
    assert report.procpool["tasks"] == result.procpool["tasks"]
    assert "lane" not in report.procpool
    assert "process pool" in report.to_text()
    assert "evictions" in report.to_text()
    doc = result_to_chrome_trace(result)
    lanes = [
        ev for ev in doc["traceEvents"]
        if ev.get("ph") == "X" and ev.get("cat") == "procpool.task"
    ]
    assert len(lanes) == result.procpool["tasks"]
    workers = {
        ev["args"]["name"]
        for ev in doc["traceEvents"]
        if ev.get("ph") == "M" and ev.get("pid") == 4 and ev.get("name") == "thread_name"
    }
    assert workers == {"pool worker 0 (wall clock)", "pool worker 1 (wall clock)"}


def test_serial_backend_ignores_parallel_shards():
    g = build("er_mid")
    result = GraphReduce(
        g,
        options=GraphReduceOptions(
            num_partitions=3, parallel_shards=4, parallel_backend="serial"
        ),
    ).run(PROGRAMS["bfs"]())
    assert result.procpool is None


def test_unknown_backend_rejected():
    g = build("er_mid")
    with pytest.raises(ValueError, match="parallel_backend"):
        GraphReduce(
            g, options=GraphReduceOptions(parallel_backend="fibers")
        ).run(PROGRAMS["bfs"]())


# ----------------------------------------------------------------------
# Watchdog escalation: a SIGSTOP'd worker is a stall, not a slow task
# ----------------------------------------------------------------------
class StallingPageRank(PageRank):
    """SIGSTOPs its hosting pool worker once, mid-apply, in iteration 1.

    The worker stays alive (``_check_alive`` passes) but stops beating;
    only the heartbeat stall check can tell this hang from a slow task.
    """

    def apply(self, ctx, vertex_ids, old_values, gathered, has_gathered, iteration):
        if (
            iteration >= 1
            and os.environ.get(ENV_WORKER_FLAG)
            and not getattr(self, "_stopped", False)
        ):
            self._stopped = True
            os.kill(os.getpid(), signal.SIGSTOP)
        return super().apply(ctx, vertex_ids, old_values, gathered, has_gathered, iteration)


def _sigcont_stopped_children(done, grace):
    """SIGCONT any stopped pool worker, after ``grace`` seconds.

    The grace period is longer than the stall timeout plus the pool's
    0.1s detection poll, so escalation always lands first; the resume
    then lets the pool's shutdown join the worker instead of leaking a
    stopped process.
    """
    import multiprocessing as mp
    import time as _time

    deadline = _time.monotonic() + 60.0
    while _time.monotonic() < deadline and not done.is_set():
        for proc in mp.active_children():
            try:
                with open(f"/proc/{proc.pid}/stat") as fh:
                    state = fh.read().rsplit(")", 1)[1].split()[0]
            except (OSError, IndexError):
                continue
            if state == "T":
                _time.sleep(grace)
                try:
                    os.kill(proc.pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
        _time.sleep(0.05)


def test_sigstopped_worker_escalates_as_stall_incident(tmp_path):
    import json

    from repro.obs.telemetry import TelemetryConfig

    g = build("er_mid")
    stream = tmp_path / "telemetry.jsonl"
    serial = GraphReduce(
        g, options=GraphReduceOptions(num_partitions=3, parallel_backend="serial")
    ).run(PageRank(tolerance=1e-3))
    done = threading.Event()
    resumer = threading.Thread(
        target=_sigcont_stopped_children, args=(done, 2.0), daemon=True
    )
    resumer.start()
    try:
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            recovered = GraphReduce(
                g,
                options=GraphReduceOptions(
                    num_partitions=3,
                    telemetry=TelemetryConfig(
                        out=str(stream),
                        interval=3600.0,
                        stall_timeout=0.75,
                        watchdog_poll=30.0,
                    ),
                    **POOL,
                ),
            ).run(StallingPageRank(tolerance=1e-3))
    finally:
        done.set()
        resumer.join(timeout=5.0)
    # The deterministic serial fallback produced the serial answer.
    assert recovered.procpool is None
    assert np.array_equal(recovered.vertex_values, serial.vertex_values)
    records = [json.loads(l) for l in stream.read_text().splitlines()]
    stalls = [r for r in records if r.get("kind") == "incident"]
    assert stalls, "no stall incident reached the telemetry stream"
    assert stalls[0]["incident_kind"] == "stall"
    assert stalls[0]["component_kind"] == "worker"
    assert "escalating to serial fallback" in stalls[0]["details"]
    # Both executions streamed to the same sink: the pool run ends with
    # the WorkerCrashed error, the fallback run ends converged.
    ends = [r for r in records if r.get("kind") == "run_end"]
    assert len(ends) == 2
    assert "WorkerCrashed" in ends[0]["error"]
    assert ends[0]["incidents"] >= 1
    assert ends[1]["error"] is None and ends[1]["converged"]
