"""Cross-feature combinations that a downstream user will reach for."""

import numpy as np
import pytest

from repro.algorithms import BFSGather, ConnectedComponents, PageRank
from repro.core.multigpu import MultiGPUGraphReduce
from repro.core.runtime import GraphReduce, GraphReduceOptions
from repro.graph.generators import rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(10, 20_000, seed=91).symmetrized()


def test_multigpu_with_async_mode(graph):
    single = GraphReduce(graph).run(ConnectedComponents())
    opts = GraphReduceOptions(execution_mode="async", cache_policy="never")
    multi = MultiGPUGraphReduce(graph, num_devices=2, options=opts).run(
        ConnectedComponents()
    )
    assert np.array_equal(multi.vertex_values, single.vertex_values)


def test_async_with_lru(graph):
    base = GraphReduce(graph).run(BFSGather(source=1))
    combo = GraphReduce(
        graph,
        options=GraphReduceOptions(execution_mode="async", cache_policy="lru"),
    ).run(BFSGather(source=1))
    assert np.array_equal(combo.vertex_values, base.vertex_values)
    assert combo.iterations <= base.iterations


def test_async_with_ssd(graph):
    from repro.sim.specs import HostSpec, MachineSpec

    machine = MachineSpec(host=HostSpec(memory_bytes=200_000))
    base = GraphReduce(graph).run(PageRank(tolerance=1e-3))
    combo = GraphReduce(
        graph,
        machine=machine,
        options=GraphReduceOptions(
            execution_mode="async", cache_policy="never", host_backing="ssd"
        ),
    ).run(PageRank(tolerance=1e-3))
    np.testing.assert_allclose(
        combo.vertex_values, base.vertex_values, rtol=1e-3, atol=1e-4
    )
    assert combo.trace.total_duration("storage") > 0


def test_unoptimized_async_is_rejected_cleanly(graph):
    # Async mode + unoptimized() both try to control the plan; the
    # options compose by letting execution_mode win, which must still
    # produce correct results.
    opts = GraphReduceOptions.unoptimized().replace(execution_mode="async")
    base = GraphReduce(graph).run(ConnectedComponents())
    r = GraphReduce(graph, options=opts).run(ConnectedComponents())
    assert np.array_equal(r.vertex_values, base.vertex_values)


def test_report_over_async_run(graph):
    from repro.core.report import build_report

    r = GraphReduce(
        graph,
        options=GraphReduceOptions(execution_mode="async", cache_policy="never"),
    ).run(PageRank(tolerance=1e-3))
    report = build_report(r)
    assert "async_sweep" in report.phases
    assert report.phases["async_sweep"].kernel_launches > 0
